//! Umbrella crate for the IDN reexamination workspace.
//!
//! Re-exports every subsystem crate under a short module name so examples and
//! integration tests can use one import root. See the README for the overall
//! architecture and `DESIGN.md` for the per-experiment index.

pub use idnre_blacklist as blacklist;
pub use idnre_browser as browser;
pub use idnre_certs as certs;
pub use idnre_core as core;
pub use idnre_crawler as crawler;
pub use idnre_datagen as datagen;
pub use idnre_fault as fault;
pub use idnre_idna as idna;
pub use idnre_langid as langid;
pub use idnre_pdns as pdns;
pub use idnre_render as render;
pub use idnre_stats as stats;
pub use idnre_unicode as unicode;
pub use idnre_whois as whois;
pub use idnre_zonefile as zonefile;
