//! Browser survey: derive the paper's Table XI from the executable policy
//! models and walk one attack through every policy family.
//!
//! ```text
//! cargo run --example browser_survey
//! ```

use idn_reexamination::browser::{
    run_survey, PolicyKind, Rendering, MIXED_SCRIPT_SPOOFS, WHOLE_SCRIPT_SPOOFS,
};

fn main() {
    println!("Table XI (derived from policy models):\n");
    println!(
        "{:<10} {:<8} {:>6}  {:<14} Homograph Attack",
        "Browser", "Platform", "Ver.", "iTLD IDN"
    );
    for row in run_survey() {
        println!(
            "{:<10} {:<8} {:>6}  {:<14} {}",
            row.browser,
            row.platform.to_string(),
            row.version,
            row.itld.to_string(),
            row.outcome
        );
    }

    println!("\nper-policy behaviour on the attack corpus:");
    let policies = [
        ("Chrome mixed-script", PolicyKind::ChromeMixedScript),
        ("Firefox single-script", PolicyKind::FirefoxSingleScript),
        ("Punycode-always", PolicyKind::PunycodeAlways),
        ("Unicode-always", PolicyKind::UnicodeAlways),
    ];
    for (name, kind) in policies {
        let policy = kind.policy();
        println!("\n  {name}:");
        for spoof in MIXED_SCRIPT_SPOOFS
            .iter()
            .chain(WHOLE_SCRIPT_SPOOFS)
            .take(4)
        {
            let verdict = match policy.display(spoof) {
                Rendering::Unicode(_) => "DISPLAYED IN UNICODE (spoofable)",
                Rendering::Punycode(_) => "punycode (defused)",
                Rendering::Title => "title shown",
                Rendering::Blank => "about:blank",
            };
            println!("    {spoof:<18} {verdict}");
        }
    }
}
