//! Passive-DNS provider probe: the same domain set seen through 360 DNS Pai
//! and Farsight DNSDB — different observation windows, different query
//! quotas, different answers (Section III's data-collection constraints).
//!
//! ```text
//! cargo run --release --example passive_dns_probe
//! ```

use idn_reexamination::pdns::Provider;
use idnre_datagen::{Ecosystem, EcosystemConfig};

fn main() {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 500,
        attack_scale: 5,
        ..EcosystemConfig::default()
    });

    let pai = Provider::dns_pai();
    let farsight = Provider::farsight();
    println!(
        "providers: {} (window {}..{}, unlimited) vs {} (window {}..{}, {}/day)",
        pai.name,
        pai.window_start,
        pai.window_end,
        farsight.name,
        farsight.window_start,
        farsight.window_end,
        farsight.daily_query_limit.unwrap()
    );

    // The paper submitted all IDNs to DNS Pai (no limit)…
    let all: Vec<&str> = eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.as_str())
        .collect();
    let pai_results = pai
        .query_batch(&eco.pdns, all.iter().copied(), 0)
        .expect("dns pai has no quota");
    let pai_hits = pai_results.iter().flatten().count();
    println!(
        "\n{}: submitted {} IDNs, {} observed",
        pai.name,
        all.len(),
        pai_hits
    );

    // …but could only afford its abusive sets through Farsight.
    let abusive: Vec<&str> = eco
        .idn_registrations
        .iter()
        .filter(|r| r.malicious.is_some())
        .map(|r| r.domain.as_str())
        .collect();
    let days = farsight.days_needed(abusive.len());
    println!(
        "{}: {} abusive IDNs need {} day(s) of quota",
        farsight.name,
        abusive.len(),
        days
    );
    match farsight.query_batch(&eco.pdns, all.iter().copied(), 1) {
        Err(quota) => println!("  full corpus in one day: {quota}"),
        Ok(_) => println!("  full corpus fit in one day (unexpectedly small run)"),
    }
    let results = farsight
        .query_batch(&eco.pdns, abusive.iter().copied(), days.max(1))
        .expect("budgeted batch fits");

    // Window differences: Farsight's 2010 start sees longer histories.
    let mut longer = 0usize;
    let mut compared = 0usize;
    for domain in &abusive {
        if let (Some(via_pai), Some(via_farsight)) = (
            pai.query(&eco.pdns, domain),
            farsight.query(&eco.pdns, domain),
        ) {
            compared += 1;
            if via_farsight.active_days() > via_pai.active_days() {
                longer += 1;
            }
        }
    }
    println!(
        "\nof {} abusive domains visible in both feeds, {} show longer history in {}",
        compared, longer, farsight.name
    );
    println!(
        "farsight batch returned {} aggregates ({} observed)",
        results.len(),
        results.iter().flatten().count()
    );
}
