//! Spoof gallery: renders brand domains and their best homograph spoofs to
//! PGM images (plus terminal ASCII art), so the visual near-identity behind
//! the paper's Table XII can literally be looked at.
//!
//! ```text
//! cargo run --example spoof_gallery [output-dir]
//! ```

use idn_reexamination::core::AvailabilityEnumerator;
use idn_reexamination::render::{render_text, ssim_strings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/spoof_gallery".to_string());
    std::fs::create_dir_all(&out_dir)?;

    let enumerator = AvailabilityEnumerator::new();
    let mut written = 0usize;
    for brand in ["google.com", "apple.com", "facebook.com"] {
        let brand_image = render_text(brand);
        let brand_file = format!("{out_dir}/{}.pgm", brand.replace('.', "_"));
        std::fs::write(&brand_file, brand_image.to_pgm())?;
        written += 1;

        println!("{brand}:");
        println!("{}", brand_image.to_ascii_art());

        let mut candidates = enumerator.homographic(brand);
        candidates.sort_by(|a, b| b.ssim.partial_cmp(&a.ssim).expect("finite"));
        for candidate in candidates.iter().take(2) {
            let spoof = format!(
                "{}.{}",
                candidate.unicode_sld,
                brand.rsplit('.').next().unwrap()
            );
            let image = render_text(&spoof);
            let file = format!(
                "{out_dir}/{}_spoof_{}.pgm",
                brand.replace('.', "_"),
                candidate.ace.replace(['.', '-'], "_")
            );
            std::fs::write(&file, image.to_pgm())?;
            written += 1;
            println!(
                "  spoof {spoof} (punycode {}, SSIM {:.3}):",
                candidate.ace,
                ssim_strings(&spoof, brand)
            );
            println!("{}", image.to_ascii_art());
        }
    }
    println!("wrote {written} PGM images to {out_dir}/");
    Ok(())
}
