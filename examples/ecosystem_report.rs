//! Ecosystem measurement: the Section IV pipeline — zone scan, language
//! identification, registrar/registrant analytics, traffic ECDFs and
//! certificate health — over a generated ecosystem.
//!
//! ```text
//! cargo run --release --example ecosystem_report
//! ```

use idn_reexamination::certs::Validator;
use idn_reexamination::langid::Classifier;
use idn_reexamination::pdns::ActivityAnalytics;
use idn_reexamination::stats::{percent, TopK};
use idn_reexamination::whois::analytics::RegistrationAnalytics;
use idn_reexamination::zonefile::ZoneScanner;
use idnre_datagen::{Ecosystem, EcosystemConfig};

fn main() {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 300,
        attack_scale: 5,
        ..EcosystemConfig::default()
    });

    // Zone scan (Table I).
    let report = ZoneScanner::new().scan_all(eco.zones.iter());
    println!(
        "zone scan: {} SLDs, {} IDNs",
        report.total_slds(),
        report.total_idns()
    );
    for zone in &report.zones {
        println!(
            "  {:<12} {:>6} SLDs, {:>6} IDNs ({})",
            zone.tld,
            zone.total_slds,
            zone.idns.len(),
            percent(zone.idns.len() as u64, zone.total_slds.max(1) as u64)
        );
    }

    // Language mix (Table II / Finding 1).
    let clf = Classifier::global();
    let mut languages = TopK::new();
    for idn in report.all_idns() {
        let unicode = idn.to_display();
        let sld = unicode.split('.').next().unwrap_or("");
        languages.add(clf.classify(sld).to_string());
    }
    println!("\nlanguage mix (top 5):");
    for (language, count) in languages.top(5) {
        println!("  {:<10} {}", language, percent(count, languages.total()));
    }

    // Registration analytics (Tables III/IV, Finding 2-4).
    let mut registrations = RegistrationAnalytics::new();
    registrations.extend(eco.whois.iter());
    println!(
        "\nregistrars: {} distinct; top-10 hold {}",
        registrations.distinct_registrars(),
        percent(
            (registrations.top_registrar_share(10) * registrations.total() as f64) as u64,
            registrations.total()
        )
    );
    println!("top registrants:");
    for (email, count) in registrations.top_registrants(3) {
        println!("  {email:<28} {count} IDNs");
    }

    // Traffic (Figures 2/3, Findings 5/6).
    let mut idn_traffic = ActivityAnalytics::new();
    let mut non_traffic = ActivityAnalytics::new();
    for reg in &eco.idn_registrations {
        if let Some(agg) = eco.pdns.lookup(&reg.domain) {
            idn_traffic.add(agg);
        }
    }
    for reg in &eco.non_idn_registrations {
        if let Some(agg) = eco.pdns.lookup(&reg.domain) {
            non_traffic.add(agg);
        }
    }
    println!(
        "\nactive <100 days: IDN {:.0}% vs non-IDN {:.0}% (paper: 60% vs 40%)",
        idn_traffic.active_time_ecdf().fraction_at_or_below(100.0) * 100.0,
        non_traffic.active_time_ecdf().fraction_at_or_below(100.0) * 100.0
    );
    println!(
        "queried <100 times: IDN {:.0}% vs non-IDN {:.0}% (paper: 88% vs 74%)",
        idn_traffic.query_volume_ecdf().fraction_at_or_below(100.0) * 100.0,
        non_traffic.query_volume_ecdf().fraction_at_or_below(100.0) * 100.0
    );

    // Certificate health (Table VI, Finding 9).
    let validator = Validator::with_default_roots(eco.config.snapshot.day_number());
    let idn_certs: Vec<_> = eco
        .certificates
        .iter()
        .filter(|(domain, _)| idn_reexamination::idna::is_idn(domain))
        .collect();
    let broken = idn_certs
        .iter()
        .filter(|(domain, cert)| validator.classify(cert, domain).is_some())
        .count();
    println!(
        "\nHTTPS-enabled IDNs: {}; certificates with problems: {} (paper: 97.95%)",
        idn_certs.len(),
        percent(broken as u64, idn_certs.len() as u64)
    );
}
