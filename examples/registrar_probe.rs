//! Registrar probe: replay the paper's Section VI-D registration experiment
//! against the SRS model — first with a plain gTLD policy (GoDaddy approved
//! all 10 sampled homographic IDNs), then with the brand-protection
//! resemblance checks the paper recommends (Section VIII).
//!
//! ```text
//! cargo run --example registrar_probe
//! ```

use idn_reexamination::core::{AvailabilityEnumerator, SrsPolicy};

fn main() {
    // Build ten homographic candidates of well-known brands, like the
    // paper's sampled probe set.
    let enumerator = AvailabilityEnumerator::new();
    let mut probes: Vec<String> = Vec::new();
    for brand in ["google.com", "apple.com", "ea.com", "go.com"] {
        for candidate in enumerator.homographic(brand).into_iter().take(3) {
            probes.push(candidate.unicode_sld);
            if probes.len() == 10 {
                break;
            }
        }
    }

    println!("probing a plain gTLD policy (no resemblance checks):");
    let mut plain = SrsPolicy::gtld("com");
    let mut approved = 0;
    for label in &probes {
        match plain.request(label) {
            Ok(ace) => {
                approved += 1;
                println!("  {label:<12} APPROVED as {ace}");
            }
            Err(rejection) => println!("  {label:<12} rejected: {rejection}"),
        }
    }
    println!(
        "  {approved}/{} approved (paper: 10/10 at GoDaddy)\n",
        probes.len()
    );

    println!("probing the same labels with brand protection enabled:");
    let mut protected = SrsPolicy::gtld("cn").with_brand_protection([
        "google.com",
        "apple.com",
        "ea.com",
        "go.com",
    ]);
    let mut blocked = 0;
    for label in &probes {
        match protected.request(label) {
            Ok(ace) => println!("  {label:<12} approved as {ace}"),
            Err(rejection) => {
                blocked += 1;
                println!("  {label:<12} REJECTED: {rejection}");
            }
        }
    }
    println!(
        "  {blocked}/{} blocked — the resemblance check the paper found on three TLDs",
        probes.len()
    );
}
