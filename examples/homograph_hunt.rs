//! Homograph hunt: generate a synthetic IDN ecosystem, scan the registered
//! corpus for brand lookalikes, and report the attack surface — the
//! Section VI workflow end to end.
//!
//! ```text
//! cargo run --release --example homograph_hunt
//! ```

use idn_reexamination::core::{AbuseAnalysis, AvailabilityEnumerator, HomographDetector};
use idn_reexamination::datagen::{Ecosystem, EcosystemConfig};

fn main() {
    let config = EcosystemConfig {
        scale: 200,
        attack_scale: 2,
        ..EcosystemConfig::default()
    };
    println!("generating ecosystem (scale 1:{})...", config.scale);
    let eco = Ecosystem::generate(&config);
    println!(
        "  {} registered IDNs ({} injected homograph lookalikes)",
        eco.idn_registrations.len(),
        eco.homograph_attacks.len()
    );

    // Scan every registered IDN against the Alexa-style brand list.
    let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brands, 0.95);
    let corpus: Vec<&str> = eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.as_str())
        .collect();
    let findings = detector.scan(corpus.iter().copied(), 8);
    println!(
        "  {} homographic IDNs detected at SSIM ≥ 0.95",
        findings.len()
    );

    for finding in findings.iter().take(8) {
        println!(
            "    {} → {} (SSIM {:.3})",
            finding.unicode, finding.brand, finding.ssim
        );
    }

    // Who is being targeted, and did the brands protect themselves?
    let analysis = AbuseAnalysis::from_homographs(&findings, &eco.whois, &eco.blacklist);
    println!("\ntop targeted brands:");
    for row in analysis.top_brands(5) {
        println!(
            "    {:<16} {:>4} lookalikes ({} protective)",
            row.brand, row.idns, row.protective
        );
    }
    println!(
        "blacklisted: {} of {}; protectively registered: {}",
        analysis.blacklisted(),
        analysis.total(),
        analysis.protective()
    );

    // The remaining attack surface: unregistered candidates (Section VI-D).
    let enumerator = AvailabilityEnumerator::new();
    println!("\nunregistered attack surface (one-character substitutions):");
    for brand in ["google.com", "facebook.com", "apple.com"] {
        let candidates = enumerator.homographic(brand);
        let registered: usize = candidates
            .iter()
            .filter(|c| eco.registration(&c.ace).is_some())
            .count();
        println!(
            "    {:<14} {:>3} homographic candidates, {} already registered",
            brand,
            candidates.len(),
            registered
        );
    }
}
