//! Quickstart: the library's core operations in one minute.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use idn_reexamination::browser::{PolicyKind, Rendering};
use idn_reexamination::core::{HomographDetector, SemanticDetector};
use idn_reexamination::idna::{to_ascii, to_unicode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Punycode / IDNA: the codec every IDN passes through.
    let spoof = "аррӏе.com"; // Cyrillic lookalike of apple.com
    let ace = to_ascii(spoof)?;
    println!("{spoof} encodes to {ace}");
    println!("{ace} decodes back to {}", to_unicode(&ace)?);

    // 2. Homograph detection: render both names, compare with SSIM.
    let detector = HomographDetector::new(["apple.com", "google.com", "facebook.com"], 0.95);
    match detector.detect(&ace) {
        Some(finding) => println!(
            "homograph: {} impersonates {} (SSIM {:.2})",
            finding.unicode, finding.brand, finding.ssim
        ),
        None => println!("no homograph found"),
    }

    // 3. Semantic (Type-1) detection: brand + foreign keyword.
    let semantic = SemanticDetector::new(["icloud.com", "58.com"]);
    let finding = semantic
        .detect("icloud登录.com")
        .expect("icloud登录.com is a Type-1 attack");
    println!(
        "semantic: {} impersonates {} ({:?})",
        finding.unicode, finding.brand, finding.kind
    );

    // 4. Browser display policies: what would the address bar show?
    for (name, kind) in [
        ("Chrome", PolicyKind::ChromeMixedScript),
        ("Firefox", PolicyKind::FirefoxSingleScript),
    ] {
        let rendering = kind.policy().display(spoof);
        let shown = match &rendering {
            Rendering::Unicode(s) => format!("Unicode {s:?}"),
            Rendering::Punycode(s) => format!("Punycode {s:?}"),
            other => format!("{other:?}"),
        };
        println!("{name} displays {spoof} as {shown}");
    }
    Ok(())
}
