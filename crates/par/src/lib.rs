//! A deterministic work-stealing executor for the pipeline's fan-out
//! stages.
//!
//! Every parallel stage in this workspace — the homograph and semantic
//! scans, lenient zone ingest, the crawl surveys, the report generators —
//! shares one scheduling discipline: the input is split into fixed chunks,
//! the chunks go into a shared queue, and each worker thread repeatedly
//! *steals* the next unclaimed chunk (an atomic cursor bump) until the
//! queue drains. Fast workers therefore absorb the slow chunks instead of
//! idling behind a static partition, which is what makes the pipeline
//! scale with cores on skewed workloads (ZDNS-style self-scheduling).
//!
//! # Determinism contract
//!
//! Results are returned **in input order** regardless of which worker
//! processed which chunk and in what order: each chunk's output is slotted
//! by chunk index and reassembled after the scope joins. As long as the
//! per-item closure is a pure function of its item (plus commutative
//! side effects such as telemetry counters), the output is byte-identical
//! for every thread count, including `threads == 1`, which runs inline
//! without spawning. The proptests in `idnre-bench` hold every pipeline
//! stage to this contract across 1/2/8 threads.
//!
//! # Examples
//!
//! ```
//! let squares = idnre_par::par_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Hard cap on worker threads, matching the pipeline-wide clamp.
pub const MAX_THREADS: usize = 64;

/// Chunks-per-worker granularity: enough chunks that stealing evens out
/// skew, few enough that queue traffic stays negligible.
const CHUNKS_PER_THREAD: usize = 4;

/// The number of workers to use when the caller has no preference:
/// the machine's available parallelism, clamped to [`MAX_THREADS`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_THREADS)
}

/// The chunk size that splits `len` items into roughly
/// `threads × CHUNKS_PER_THREAD` steal units (at least 1).
pub fn chunk_size(len: usize, threads: usize) -> usize {
    let threads = threads.clamp(1, MAX_THREADS);
    len.div_ceil(threads * CHUNKS_PER_THREAD).max(1)
}

/// Maps `f` over `items` on `threads` workers, returning results in input
/// order. `threads <= 1` (or a short input) runs inline on the caller's
/// thread. See the module docs for the determinism contract.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let per_chunk = par_chunks(
        items,
        threads,
        chunk_size(items.len(), threads),
        |_, chunk| chunk.iter().map(&f).collect::<Vec<R>>(),
    );
    per_chunk.into_iter().flatten().collect()
}

/// Runs `f(chunk_index, chunk)` over `items` split into `size`-item
/// chunks, pulling chunks from a shared work queue on `threads` workers.
/// The returned vector holds one result per chunk, **in chunk order** —
/// scheduling never leaks into the output.
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let size = size.max(1);
    let n_chunks = items.len().div_ceil(size);
    let threads = threads.clamp(1, MAX_THREADS).min(n_chunks.max(1));
    if threads <= 1 {
        return items
            .chunks(size)
            .enumerate()
            .map(|(i, chunk)| f(i, chunk))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n_chunks {
                    break;
                }
                let start = i * size;
                let end = (start + size).min(items.len());
                let result = f(i, &items[start..end]);
                slots
                    .lock()
                    .expect("result slot poisoned")
                    .push((i, result));
            });
        }
    })
    .expect("worker panicked");
    let mut per_chunk = slots.into_inner().expect("result slot poisoned");
    per_chunk.sort_unstable_by_key(|&(i, _)| i);
    per_chunk.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [1, 2, 3, 8, 64] {
            let doubled = par_map(&items, threads, |&x| x * 2);
            assert_eq!(doubled.len(), items.len());
            assert!(doubled.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
        }
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let items: Vec<u64> = (0..777).collect();
        let serial = par_map(&items, 1, |&x| x.wrapping_mul(0x9e37_79b9));
        for threads in [2, 4, 8] {
            assert_eq!(
                serial,
                par_map(&items, threads, |&x| x.wrapping_mul(0x9e37_79b9))
            );
        }
    }

    #[test]
    fn chunks_arrive_in_chunk_order() {
        let items: Vec<u32> = (0..103).collect();
        let sums = par_chunks(&items, 4, 10, |i, chunk| {
            (i, chunk.iter().copied().sum::<u32>())
        });
        assert_eq!(sums.len(), 11);
        assert!(sums.iter().enumerate().all(|(k, &(i, _))| k == i));
        let total: u32 = sums.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, items.iter().sum::<u32>());
    }

    #[test]
    fn every_item_visited_exactly_once() {
        let items: Vec<usize> = (0..5000).collect();
        let visits = AtomicU64::new(0);
        let _ = par_map(&items, 8, |_| visits.fetch_add(1, Ordering::Relaxed));
        assert_eq!(visits.into_inner(), 5000);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u8], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn skewed_work_is_stolen_not_partitioned() {
        // One pathological item 100x slower than the rest; with chunk
        // stealing the wall time stays near the single slow item rather
        // than serializing behind a static partition. We only assert
        // correctness here (timing is for the bench harness), but the
        // chunk count guarantees the slow chunk is a steal unit.
        let items: Vec<u64> = (0..256).collect();
        let out = par_map(&items, 8, |&x| {
            if x == 0 {
                (0..10_000u64).fold(x, |a, b| a.wrapping_add(b))
            } else {
                x
            }
        });
        assert_eq!(out[1..], items[1..]);
    }

    #[test]
    fn default_threads_is_sane() {
        let n = default_threads();
        assert!((1..=MAX_THREADS).contains(&n));
    }

    #[test]
    fn chunk_size_scales() {
        assert_eq!(chunk_size(0, 8), 1);
        assert_eq!(chunk_size(1, 8), 1);
        assert!(chunk_size(100_000, 8) >= 100_000 / (8 * CHUNKS_PER_THREAD));
    }
}
