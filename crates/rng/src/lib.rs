//! Counter-based, splittable PRNG for embarrassingly parallel generation.
//!
//! The sequential generator this crate replaces (`rand::rngs::StdRng`
//! threaded through every datagen stage) forces a total order on the
//! records it feeds: record *n*'s randomness depends on how many draws
//! records `0..n` consumed, so no record can be generated out of turn.
//! Here every stream is instead a **pure function of its key**:
//!
//! ```text
//! rng(record) = KeyedRng::from( Key::root(master_seed)
//!                                   .stage(stage_id)
//!                                   .record(record_index) )
//! ```
//!
//! Any worker can therefore generate any record in any order — or retry
//! it, or skip it — and the output bytes are identical to a sequential
//! pass, which is the schedule-independence oracle the datagen proptests
//! hold the pipeline to. This is the SplitMix/Philox construction:
//! a strongly mixed key selects a stream, and the stream itself is a
//! counter sequence pushed through an avalanching output function.
//!
//! # Construction
//!
//! [`Key`] is a 64-bit state absorbed one word at a time through the
//! SplitMix64 finalizer (two multiply–xorshift rounds per word, full
//! avalanche). [`KeyedRng`] runs SplitMix64 proper from the keyed state:
//! output `i` is `mix(state + (i+1)·φ)` where φ is the golden-ratio
//! increment — so the generator is *counter-based*: [`KeyedRng::at`]
//! addresses any position in O(1) without generating the prefix, and
//! failure paths that return early simply never consume shared state
//! (there is none).
//!
//! # Examples
//!
//! ```
//! use idnre_rng::{Key, StageId};
//! use rand::Rng;
//!
//! let key = Key::root(0x1DAE_2018).stage(StageId::OrdinaryRegistrations);
//! let mut a = key.record(7).rng();
//! let mut b = key.record(7).rng();
//! assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
//! // Neighbouring records are independent streams.
//! let mut c = key.record(8).rng();
//! let _ = c.gen_range(0..1000u32); // no relation to record 7's draws
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::RngCore;

/// The golden-ratio Weyl increment SplitMix64 steps its counter by.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: two multiply–xorshift rounds, full avalanche.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identifier of one RNG-bearing datagen stage.
///
/// Every stage of the ecosystem generator owns a disjoint key subspace so
/// streams never collide across stages. The discriminants are part of the
/// `idnre-dataset/2` determinism contract (see DESIGN.md §8) — reordering
/// or renumbering them is a dataset-schema break.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u64)]
pub enum StageId {
    /// Table III bulk (opportunistic) registrations.
    BulkRegistrations = 1,
    /// Ordinary per-TLD IDN registrations (Table I volumes).
    OrdinaryRegistrations = 2,
    /// Blacklist assignment over the organic population.
    Blacklist = 3,
    /// Registered homographic IDN population (Table XIII).
    HomographAttacks = 4,
    /// Type-1 semantic population (Table XIV).
    SemanticType1Attacks = 5,
    /// Type-2 (translated-brand) semantic population (Table X).
    SemanticType2Attacks = 6,
    /// Conversion of attack domains into registrations.
    AttackInjection = 7,
    /// The non-IDN comparison sample.
    NonIdnSample = 8,
    /// WHOIS emission with per-TLD coverage.
    Whois = 9,
    /// Passive-DNS traffic aggregates.
    PdnsTraffic = 10,
    /// Certificate issuance for HTTPS hosts.
    Certificates = 11,
    // --- Day-simulator stages (epoch deltas). Appended after the frozen
    // --- 1–11 block: the v2 dataset fingerprint never draws from these,
    // --- so adding them is NOT a dataset-schema break — renumbering the
    // --- block above still is.
    /// Per-epoch churn: newly registered IDNs appended to the corpus tail.
    EpochChurn = 12,
    /// Per-epoch expiry: contiguous registration cohorts dropping out.
    EpochExpiry = 13,
    /// Re-registration of previously expired names (drop-catching).
    EpochReRegistration = 14,
    /// Nameserver/registrar migrations over contiguous cohorts.
    EpochNsChange = 15,
    /// Blacklist listings that lag the registration by one or more epochs.
    EpochBlacklistLag = 16,
}

/// A derivation key: 64 bits of absorbed context selecting one stream.
///
/// Keys are value types — deriving never mutates the parent, so a stage
/// key can be captured once and fanned out across workers:
///
/// ```
/// use idnre_rng::{Key, StageId};
/// let stage = Key::root(42).stage(StageId::Whois);
/// let streams: Vec<_> = (0..4u64).map(|i| stage.record(i).rng()).collect();
/// assert_eq!(streams.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Key(u64);

impl Key {
    /// The root key of a generation run, derived from the master seed.
    pub fn root(master_seed: u64) -> Self {
        // Domain-separate the root from a raw SplitMix64 stream seeded
        // with the same integer (the vendored StdRng seeding path).
        Key(mix(master_seed ^ 0xA076_1D64_78BD_642F))
    }

    /// Absorbs one context word, returning the child key.
    ///
    /// Absorption is a keyed permutation followed by the finalizer, so
    /// `derive(a).derive(b)` and `derive(b).derive(a)` are unrelated
    /// streams — order is significant, as a derivation path should be.
    #[must_use]
    pub fn derive(self, word: u64) -> Self {
        Key(mix(self
            .0
            .wrapping_mul(0xD120_3C85_57B3_F2D9)
            .wrapping_add(PHI)
            ^ mix(word)))
    }

    /// Child key for a pipeline stage.
    #[must_use]
    pub fn stage(self, stage: StageId) -> Self {
        self.derive(stage as u64)
    }

    /// Child key for one record within a stage.
    #[must_use]
    pub fn record(self, index: u64) -> Self {
        self.derive(index)
    }

    /// The generator for this key's stream.
    pub fn rng(self) -> KeyedRng {
        KeyedRng {
            base: self.0,
            counter: 0,
        }
    }
}

/// A counter-based generator over one key's stream (SplitMix64 from the
/// keyed state). Implements [`rand::RngCore`], so every existing sampler
/// (`gen_range`, `gen_ratio`, `gen_bool`, …) works unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedRng {
    base: u64,
    counter: u64,
}

impl KeyedRng {
    /// Output at counter position `i` (0-based), without advancing: the
    /// random-access form of the stream. `rng.at(i)` equals the `i`-th
    /// value a fresh generator's [`RngCore::next_u64`] would return.
    pub fn at(&self, i: u64) -> u64 {
        mix(self.base.wrapping_add(i.wrapping_add(1).wrapping_mul(PHI)))
    }

    /// How many 64-bit outputs have been drawn so far.
    pub fn position(&self) -> u64 {
        self.counter
    }
}

impl RngCore for KeyedRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let v = self.at(self.counter);
        self.counter += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_pure_functions_of_their_key() {
        let key = Key::root(7).stage(StageId::Whois).record(123);
        let a: Vec<u64> = {
            let mut rng = key.rng();
            (0..64).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = key.rng();
            (0..64).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn counter_addressing_matches_sequential_draws() {
        let key = Key::root(99).stage(StageId::PdnsTraffic).record(5);
        let sequential: Vec<u64> = {
            let mut rng = key.rng();
            (0..100).map(|_| rng.next_u64()).collect()
        };
        let addressed: Vec<u64> = (0..100).map(|i| key.rng().at(i)).collect();
        assert_eq!(sequential, addressed);
    }

    #[test]
    fn neighbouring_records_are_decorrelated() {
        // Adjacent record indices (the worst case for a weak mixer) must
        // not share outputs: over 1000 neighbours × 8 draws, collisions
        // in 64-bit space should be absent.
        let stage = Key::root(0x1DAE_2018).stage(StageId::OrdinaryRegistrations);
        let mut seen = std::collections::HashSet::new();
        for record in 0..1000u64 {
            let mut rng = stage.record(record).rng();
            for _ in 0..8 {
                assert!(seen.insert(rng.next_u64()), "stream collision");
            }
        }
    }

    #[test]
    fn stages_partition_the_key_space() {
        let root = Key::root(1);
        let a = root.stage(StageId::BulkRegistrations).record(0);
        let b = root.stage(StageId::OrdinaryRegistrations).record(0);
        assert_ne!(a, b);
        assert_ne!(a.rng().at(0), b.rng().at(0));
        // Derivation order matters: (stage, record) != (record, stage).
        assert_ne!(
            root.derive(2).derive(3),
            root.derive(3).derive(2),
            "absorption must not commute"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = Key::root(1).stage(StageId::Whois).record(0).rng().at(0);
        let b = Key::root(2).stage(StageId::Whois).record(0).rng().at(0);
        assert_ne!(a, b);
    }

    #[test]
    fn uniformity_over_small_range() {
        let mut rng = Key::root(3).stage(StageId::Certificates).record(0).rng();
        let mut buckets = [0usize; 10];
        for _ in 0..50_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((4_300..5_700).contains(&b), "bucket {i} count {b}");
        }
    }

    #[test]
    fn gen_bool_and_ratio_track_probability() {
        let mut rng = Key::root(4).stage(StageId::Blacklist).record(0).rng();
        let n = 40_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.23..0.27).contains(&rate), "gen_bool rate {rate}");
        let hits = (0..n).filter(|_| rng.gen_ratio(1, 5)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.18..0.22).contains(&rate), "gen_ratio rate {rate}");
    }

    #[test]
    fn fill_bytes_is_deterministic() {
        let key = Key::root(5).stage(StageId::NonIdnSample).record(9);
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        key.rng().fill_bytes(&mut a);
        key.rng().fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    fn position_tracks_draws() {
        let mut rng = Key::root(6).stage(StageId::Whois).record(0).rng();
        assert_eq!(rng.position(), 0);
        let _ = rng.next_u64();
        let _ = rng.next_u32();
        assert_eq!(rng.position(), 2);
    }
}
