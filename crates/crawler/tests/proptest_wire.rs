//! Property-based tests for the DNS wire codec.

use idnre_crawler::wire::{decode, encode, qtype, Message, Question, Rcode, WireRecord};
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9]{1,12}", 1..4).prop_map(|labels| labels.join("."))
}

fn message() -> impl Strategy<Value = Message> {
    (
        any::<u16>(),
        any::<bool>(),
        any::<bool>(),
        proptest::collection::vec(name(), 1..3),
        proptest::collection::vec((name(), any::<u32>(), any::<[u8; 4]>()), 0..5),
        0u16..6,
    )
        .prop_map(
            |(id, is_response, rd, questions, answers, rcode_bits)| Message {
                id,
                is_response,
                recursion_desired: rd,
                rcode: match rcode_bits {
                    0 => Rcode::NoError,
                    1 => Rcode::FormErr,
                    2 => Rcode::ServFail,
                    3 => Rcode::NxDomain,
                    4 => Rcode::NotImp,
                    _ => Rcode::Refused,
                },
                questions: questions
                    .into_iter()
                    .map(|name| Question {
                        name,
                        qtype: qtype::A,
                    })
                    .collect(),
                answers: answers
                    .into_iter()
                    .map(|(name, ttl, ip)| WireRecord::a(&name, ttl, ip.into()))
                    .collect(),
            },
        )
}

proptest! {
    /// encode ∘ decode is the identity on arbitrary well-formed messages.
    #[test]
    fn round_trip(msg in message()) {
        let bytes = encode(&msg);
        let decoded = decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// Decoding never panics on arbitrary bytes.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode(&bytes);
    }

    /// Truncating a valid message never panics and never produces a bogus
    /// longer message.
    #[test]
    fn truncation_is_safe(msg in message(), cut_fraction in 0.0f64..1.0) {
        let bytes = encode(&msg);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let _ = decode(&bytes[..cut.min(bytes.len())]);
    }

    /// Compression never changes semantics: every answer name decodes to
    /// its original text.
    #[test]
    fn compression_is_transparent(owner in name(), count in 1usize..6) {
        let query = Message::query(1, &owner);
        let mut response = Message::response_to(&query, Rcode::NoError);
        for i in 0..count {
            response.answers.push(WireRecord::a(&owner, i as u32, [10, 0, 0, i as u8].into()));
        }
        let decoded = decode(&encode(&response)).unwrap();
        prop_assert_eq!(decoded.answers.len(), count);
        for answer in decoded.answers {
            prop_assert_eq!(&answer.name, &owner);
        }
    }
}
