//! DNS-resolution and web-crawl simulation — the measurement front-end of
//! the paper's Section IV-D content analysis.
//!
//! The paper's crawlers resolved each domain (observing name-server errors
//! like `REFUSED` — "all resolution errors come from name servers"), fetched
//! the homepage, and manually classified the result into the Table V
//! categories. This crate models that front-end:
//!
//! * [`Resolver`] — iterative resolution over TLD zone delegations plus
//!   per-domain authoritative-server behaviour (answer / refuse / servfail /
//!   timeout).
//! * [`Page`] / [`fetch`] — the HTTP layer: status, title and page kind.
//! * [`classify`] — the resolution+fetch outcome folded into the Table V
//!   [`UsageCategory`].
//!
//! # Examples
//!
//! ```
//! use idnre_crawler::{AuthBehavior, Crawler, Page, PageKind, UsageCategory};
//! use idnre_zonefile::parse_zone;
//!
//! let zone = parse_zone("com", "shop IN NS ns1.shop.com.\n").unwrap();
//! let mut crawler = Crawler::new();
//! crawler.add_zone(&zone);
//! crawler.set_host(
//!     "shop.com",
//!     AuthBehavior::Answer("203.0.113.7".parse().unwrap()),
//!     Some(Page::new(200, "Shop", PageKind::Content)),
//! );
//!
//! assert_eq!(crawler.crawl("shop.com"), UsageCategory::Meaningful);
//! assert_eq!(crawler.crawl("missing.com"), UsageCategory::NotResolved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod dns;
mod faulted;
mod http;
mod sched;
pub mod wire;

pub use classify::{classify, UsageCategory};
pub use dns::{AuthBehavior, ResolutionOutcome, Resolver};
pub use faulted::{
    survey_slice_span, FaultContext, FaultedCrawl, FaultedResolution, ATTEMPTS_HISTOGRAM,
    FAULT_COUNTERS, RETRY_COUNTERS, SURVEY_SLICE_RECORDS, SURVEY_SLICE_SPAN,
};
pub use http::{fetch, FetchOutcome, Page, PageKind};
pub use sched::{
    sched_slice_span, ScheduledCrawl, SliceSchedule, SCHED_COUNTERS, SCHED_INFLIGHT_GAUGE,
    SCHED_LATENCY_HISTOGRAM, SCHED_QUEUE_DEPTH_GAUGE, SCHED_SLICE_SPAN,
};

use idnre_telemetry::Recorder;
use idnre_zonefile::Zone;
use std::collections::HashMap;

/// Counter names for each [`ResolutionOutcome`], used by
/// [`Crawler::resolve_recorded`]. Exposed so harnesses can pre-register
/// the full set (a counter that never fires still shows up at zero).
pub const OUTCOME_COUNTERS: [&str; 5] = [
    "crawler.outcome.resolved",
    "crawler.outcome.nxdomain",
    "crawler.outcome.refused",
    "crawler.outcome.servfail",
    "crawler.outcome.timeout",
];

pub(crate) fn outcome_counter(outcome: ResolutionOutcome) -> &'static str {
    match outcome {
        ResolutionOutcome::Resolved(_) => OUTCOME_COUNTERS[0],
        ResolutionOutcome::NxDomain => OUTCOME_COUNTERS[1],
        ResolutionOutcome::Refused => OUTCOME_COUNTERS[2],
        ResolutionOutcome::ServFail => OUTCOME_COUNTERS[3],
        ResolutionOutcome::Timeout => OUTCOME_COUNTERS[4],
    }
}

/// Counter names for each [`UsageCategory`], in [`UsageCategory::ALL`]
/// order, used by [`Crawler::crawl_recorded`]. Exposed so multi-threaded
/// harnesses can pre-register the full set — snapshot ordering is
/// insertion order, so counters must exist before workers race to them.
pub const USAGE_COUNTERS: [&str; 7] = [
    "crawler.usage.not_resolved",
    "crawler.usage.error",
    "crawler.usage.empty",
    "crawler.usage.parked",
    "crawler.usage.for_sale",
    "crawler.usage.redirected",
    "crawler.usage.meaningful",
];

pub(crate) fn usage_counter(category: UsageCategory) -> &'static str {
    match category {
        UsageCategory::NotResolved => USAGE_COUNTERS[0],
        UsageCategory::Error => USAGE_COUNTERS[1],
        UsageCategory::Empty => USAGE_COUNTERS[2],
        UsageCategory::Parked => USAGE_COUNTERS[3],
        UsageCategory::ForSale => USAGE_COUNTERS[4],
        UsageCategory::Redirected => USAGE_COUNTERS[5],
        UsageCategory::Meaningful => USAGE_COUNTERS[6],
    }
}

/// The whole crawl pipeline: resolver plus the web content behind each
/// resolvable host.
#[derive(Debug, Clone, Default)]
pub struct Crawler {
    resolver: Resolver,
    pages: HashMap<String, Page>,
}

impl Crawler {
    /// Creates an empty crawler (no zones, no hosts).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a TLD zone's delegations into the resolver.
    pub fn add_zone(&mut self, zone: &Zone) {
        self.resolver.add_zone(zone);
    }

    /// Configures a host: its authoritative-server behaviour and (when it
    /// serves anything) its homepage.
    pub fn set_host(&mut self, domain: &str, behavior: AuthBehavior, page: Option<Page>) {
        self.resolver.set_behavior(domain, behavior);
        if let Some(page) = page {
            self.pages.insert(domain.to_ascii_lowercase(), page);
        }
    }

    /// Resolves a domain.
    pub fn resolve(&self, domain: &str) -> ResolutionOutcome {
        self.resolver.resolve(domain)
    }

    /// Crawls one domain end-to-end: resolve, fetch, classify.
    pub fn crawl(&self, domain: &str) -> UsageCategory {
        let resolution = self.resolver.resolve(domain);
        let outcome = fetch(&resolution, self.pages.get(&domain.to_ascii_lowercase()));
        classify(&outcome)
    }

    /// [`Crawler::resolve`] with a `crawler.resolve` latency span and a
    /// per-outcome counter (`crawler.outcome.*`) reported to `recorder`.
    pub fn resolve_recorded(&self, domain: &str, recorder: &dyn Recorder) -> ResolutionOutcome {
        let mut span = recorder.span("crawler.resolve");
        let outcome = self.resolver.resolve(domain);
        span.add_records(1);
        drop(span);
        recorder.incr(outcome_counter(outcome));
        outcome
    }

    /// [`Crawler::crawl`] with `crawler.crawl` latency, per-outcome DNS
    /// counters and per-category usage counters (`crawler.usage.*`)
    /// reported to `recorder`.
    pub fn crawl_recorded(&self, domain: &str, recorder: &dyn Recorder) -> UsageCategory {
        let mut span = recorder.span("crawler.crawl");
        let resolution = self.resolve_recorded(domain, recorder);
        let outcome = fetch(&resolution, self.pages.get(&domain.to_ascii_lowercase()));
        let category = classify(&outcome);
        span.add_records(1);
        drop(span);
        recorder.incr(usage_counter(category));
        category
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_zonefile::parse_zone;

    #[test]
    fn crawl_pipeline_categories() {
        let zone = parse_zone(
            "com",
            "a IN NS ns1.a.com.\nb IN NS ns1.b.com.\nc IN NS ns1.c.com.\n",
        )
        .unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        let ip = "203.0.113.9".parse().unwrap();
        crawler.set_host(
            "a.com",
            AuthBehavior::Answer(ip),
            Some(Page::new(200, "Parked — buy now", PageKind::Parking)),
        );
        crawler.set_host("b.com", AuthBehavior::Refuse, None);
        // c.com delegated but its server answers nothing (lame, times out).
        crawler.set_host("c.com", AuthBehavior::Timeout, None);

        assert_eq!(crawler.crawl("a.com"), UsageCategory::Parked);
        assert_eq!(crawler.crawl("b.com"), UsageCategory::NotResolved);
        assert_eq!(crawler.crawl("c.com"), UsageCategory::NotResolved);
        assert_eq!(crawler.crawl("nx.com"), UsageCategory::NotResolved);
    }

    #[test]
    fn recorded_crawl_matches_plain_and_counts_outcomes() {
        let zone = parse_zone("com", "a IN NS ns1.a.com.\nb IN NS ns1.b.com.\n").unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        crawler.set_host(
            "a.com",
            AuthBehavior::Answer("203.0.113.9".parse().unwrap()),
            Some(Page::new(200, "Site", PageKind::Content)),
        );
        crawler.set_host("b.com", AuthBehavior::Refuse, None);

        let registry = idnre_telemetry::Registry::new();
        for name in OUTCOME_COUNTERS {
            registry.add(name, 0);
        }
        for domain in ["a.com", "b.com", "nx.com"] {
            assert_eq!(
                crawler.crawl_recorded(domain, &registry),
                crawler.crawl(domain),
                "{domain}"
            );
        }
        assert_eq!(registry.counter_value("crawler.outcome.resolved"), 1);
        assert_eq!(registry.counter_value("crawler.outcome.refused"), 1);
        assert_eq!(registry.counter_value("crawler.outcome.nxdomain"), 1);
        assert_eq!(registry.counter_value("crawler.outcome.servfail"), 0);
        assert_eq!(registry.counter_value("crawler.usage.meaningful"), 1);
        assert_eq!(registry.counter_value("crawler.usage.not_resolved"), 2);
        let resolve = registry.stage("crawler.resolve");
        assert_eq!(resolve.calls(), 3);
        assert_eq!(resolve.histogram().count(), 3);
    }

    #[test]
    fn resolvable_but_no_content_is_error() {
        let zone = parse_zone("com", "d IN NS ns1.d.com.\n").unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        crawler.set_host(
            "d.com",
            AuthBehavior::Answer("203.0.113.1".parse().unwrap()),
            None,
        );
        // Resolves, but the web server answers nothing: HTTP-level error.
        assert_eq!(crawler.crawl("d.com"), UsageCategory::Error);
    }
}
