//! DNS-resolution and web-crawl simulation — the measurement front-end of
//! the paper's Section IV-D content analysis.
//!
//! The paper's crawlers resolved each domain (observing name-server errors
//! like `REFUSED` — "all resolution errors come from name servers"), fetched
//! the homepage, and manually classified the result into the Table V
//! categories. This crate models that front-end:
//!
//! * [`Resolver`] — iterative resolution over TLD zone delegations plus
//!   per-domain authoritative-server behaviour (answer / refuse / servfail /
//!   timeout).
//! * [`Page`] / [`fetch`] — the HTTP layer: status, title and page kind.
//! * [`classify`] — the resolution+fetch outcome folded into the Table V
//!   [`UsageCategory`].
//!
//! # Examples
//!
//! ```
//! use idnre_crawler::{AuthBehavior, Crawler, Page, PageKind, UsageCategory};
//! use idnre_zonefile::parse_zone;
//!
//! let zone = parse_zone("com", "shop IN NS ns1.shop.com.\n").unwrap();
//! let mut crawler = Crawler::new();
//! crawler.add_zone(&zone);
//! crawler.set_host(
//!     "shop.com",
//!     AuthBehavior::Answer("203.0.113.7".parse().unwrap()),
//!     Some(Page::new(200, "Shop", PageKind::Content)),
//! );
//!
//! assert_eq!(crawler.crawl("shop.com"), UsageCategory::Meaningful);
//! assert_eq!(crawler.crawl("missing.com"), UsageCategory::NotResolved);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod dns;
mod http;
pub mod wire;

pub use classify::{classify, UsageCategory};
pub use dns::{AuthBehavior, ResolutionOutcome, Resolver};
pub use http::{fetch, FetchOutcome, Page, PageKind};

use idnre_zonefile::Zone;
use std::collections::HashMap;

/// The whole crawl pipeline: resolver plus the web content behind each
/// resolvable host.
#[derive(Debug, Clone, Default)]
pub struct Crawler {
    resolver: Resolver,
    pages: HashMap<String, Page>,
}

impl Crawler {
    /// Creates an empty crawler (no zones, no hosts).
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a TLD zone's delegations into the resolver.
    pub fn add_zone(&mut self, zone: &Zone) {
        self.resolver.add_zone(zone);
    }

    /// Configures a host: its authoritative-server behaviour and (when it
    /// serves anything) its homepage.
    pub fn set_host(&mut self, domain: &str, behavior: AuthBehavior, page: Option<Page>) {
        self.resolver.set_behavior(domain, behavior);
        if let Some(page) = page {
            self.pages.insert(domain.to_ascii_lowercase(), page);
        }
    }

    /// Resolves a domain.
    pub fn resolve(&self, domain: &str) -> ResolutionOutcome {
        self.resolver.resolve(domain)
    }

    /// Crawls one domain end-to-end: resolve, fetch, classify.
    pub fn crawl(&self, domain: &str) -> UsageCategory {
        let resolution = self.resolver.resolve(domain);
        let outcome = fetch(
            &resolution,
            self.pages.get(&domain.to_ascii_lowercase()),
        );
        classify(&outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_zonefile::parse_zone;

    #[test]
    fn crawl_pipeline_categories() {
        let zone = parse_zone(
            "com",
            "a IN NS ns1.a.com.\nb IN NS ns1.b.com.\nc IN NS ns1.c.com.\n",
        )
        .unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        let ip = "203.0.113.9".parse().unwrap();
        crawler.set_host(
            "a.com",
            AuthBehavior::Answer(ip),
            Some(Page::new(200, "Parked — buy now", PageKind::Parking)),
        );
        crawler.set_host("b.com", AuthBehavior::Refuse, None);
        // c.com delegated but its server answers nothing (lame, times out).
        crawler.set_host("c.com", AuthBehavior::Timeout, None);

        assert_eq!(crawler.crawl("a.com"), UsageCategory::Parked);
        assert_eq!(crawler.crawl("b.com"), UsageCategory::NotResolved);
        assert_eq!(crawler.crawl("c.com"), UsageCategory::NotResolved);
        assert_eq!(crawler.crawl("nx.com"), UsageCategory::NotResolved);
    }

    #[test]
    fn resolvable_but_no_content_is_error() {
        let zone = parse_zone("com", "d IN NS ns1.d.com.\n").unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        crawler.set_host("d.com", AuthBehavior::Answer("203.0.113.1".parse().unwrap()), None);
        // Resolves, but the web server answers nothing: HTTP-level error.
        assert_eq!(crawler.crawl("d.com"), UsageCategory::Error);
    }
}
