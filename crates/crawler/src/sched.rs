//! Scheduled crawling: the event-driven front-end over `idnre-sched`.
//!
//! [`crate::Crawler::crawl_faulted`] executes one domain's whole retry
//! schedule synchronously on a private clock — queries never contend.
//! This module runs a *population* of domains through
//! [`idnre_sched::run_schedule`]: arrivals pace in on a shared virtual
//! timeline, a bounded in-flight window arbitrates, per-nameserver token
//! buckets and circuit breakers gate the DNS phase, and overload is shed
//! by priority class instead of queueing without bound. Each query's
//! attempt semantics are *identical* to the synchronous path (the same
//! fault plan consultation, the same verdict table, the same attempt
//! costs); what changes is the schedule around them.
//!
//! Outcome accounting splits in two:
//!
//! * **executed** queries (never shed) classify into the usual
//!   `crawler.outcome.*` / `crawler.usage.*` counters plus the retry
//!   counters and the attempts histogram;
//! * **shed** queries appear only in the `crawler.shed.*` counters (and
//!   the error budget's shed class) — a shed domain was not measured,
//!   and pretending it produced a category would bias Table V.
//!
//! Scheduling is per-slice deterministic: a fixed `(plan, config, slice)`
//! replays byte-identically at any worker-thread count.

use crate::{classify, fetch, outcome_counter, usage_counter};
use crate::{Crawler, FetchOutcome, ResolutionOutcome, UsageCategory};
use crate::{ATTEMPTS_HISTOGRAM, RETRY_COUNTERS};
use idnre_fault::FaultPlan;
use idnre_sched::{run_schedule, QueryDriver, SchedConfig, SchedStats, ShedCause, StepVerdict};
use idnre_telemetry::{Recorder, Span, SpanCtx};

/// Counter names of the scheduler machinery, for pre-registration.
pub const SCHED_COUNTERS: [&str; 8] = [
    "crawler.sched.executed",
    "crawler.sched.deferred",
    "crawler.shed.admission",
    "crawler.shed.breaker_open",
    "crawler.shed.starved",
    "crawler.breaker.open",
    "crawler.breaker.half_open",
    "crawler.breaker.closed",
];

/// Histogram stage fed one sample per *executed* query: the virtual
/// first-dispatch → terminal-event latency. Its exact maximum backs the
/// deadline contract check (no query may exceed its deadline by more
/// than one wheel tick).
pub const SCHED_LATENCY_HISTOGRAM: &str = "crawler.sched.latency";

/// Stage name of one scheduled-survey slice.
pub const SCHED_SLICE_SPAN: &str = "crawler.sched.slice";

/// Gauge tracking the deepest pending queue any scheduler instance saw.
pub const SCHED_QUEUE_DEPTH_GAUGE: &str = "crawler.sched.queue_depth";

/// Gauge tracking the widest in-flight window any scheduler instance saw.
pub const SCHED_INFLIGHT_GAUGE: &str = "crawler.sched.inflight";

/// Opens the timed span for scheduled-survey slice `index`, parented
/// under the survey's own span (same shape as
/// [`crate::survey_slice_span`]).
pub fn sched_slice_span(recorder: &dyn Recorder, parent: SpanCtx, index: u64) -> Span {
    recorder.span_at(SCHED_SLICE_SPAN, parent, index)
}

/// One domain's terminal record from a scheduled crawl.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledCrawl {
    /// The Table V category — `None` when the query was shed (a shed
    /// domain was not measured).
    pub category: Option<UsageCategory>,
    /// The DNS phase's terminal outcome — `None` when the query was shed.
    pub dns_outcome: Option<ResolutionOutcome>,
    /// Why the scheduler shed the query, if it did.
    pub shed: Option<ShedCause>,
    /// Attempts launched across both phases.
    pub attempts: u32,
    /// Retries performed.
    pub retries: u32,
    /// Virtual backoff slept between attempts.
    pub backoff_nanos: u64,
    /// First-dispatch → terminal-event virtual latency.
    pub latency_nanos: u64,
    /// Whether the per-query deadline ended the schedule.
    pub deadline_hit: bool,
    /// Whether the schedule ended without a terminal success.
    pub exhausted: bool,
    /// Injected faults met along the way.
    pub faults_injected: u32,
    /// Whether the terminal verdict was manufactured by an injected
    /// fault (only meaningful for executed queries).
    pub terminal_faulted: bool,
}

/// Everything one slice's scheduled crawl produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceSchedule {
    /// One record per domain, in slice order.
    pub crawls: Vec<ScheduledCrawl>,
    /// The slice's scheduler accounting.
    pub stats: SchedStats,
}

/// What one attempt stepped to, DNS or HTTP flavoured.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CrawlStep {
    Dns(ResolutionOutcome),
    Http(FetchOutcome),
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[derive(Debug, Clone, Default)]
struct DomainState {
    /// Base resolution, computed once on first DNS attempt (the host's
    /// configured behaviour never changes mid-schedule).
    base: Option<ResolutionOutcome>,
    /// The DNS phase's terminal outcome, once it resolved.
    resolution: Option<ResolutionOutcome>,
    faults_injected: u32,
    last_was_fault: bool,
}

/// The [`QueryDriver`] mapping scheduler queries onto crawler domains,
/// reusing the synchronous path's attempt semantics verbatim.
struct CrawlDriver<'a> {
    crawler: &'a Crawler,
    plan: &'a FaultPlan,
    config: &'a SchedConfig,
    domains: Vec<&'a str>,
    state: Vec<DomainState>,
    recorder: &'a dyn Recorder,
}

impl QueryDriver for CrawlDriver<'_> {
    type Step = CrawlStep;

    fn attempt(&mut self, query: usize, phase: u8, attempt: u32) -> (StepVerdict<CrawlStep>, u64) {
        let domain = self.domains[query];
        let policy = &self.config.policy;
        if phase == 0 {
            let base = *self.state[query]
                .base
                .get_or_insert_with(|| self.crawler.resolver.resolve(domain));
            match self.plan.dns_fault(domain, attempt) {
                Some(fault) => {
                    self.state[query].faults_injected += 1;
                    self.state[query].last_was_fault = true;
                    self.recorder.incr(fault.kind.counter());
                    match fault.kind {
                        idnre_fault::FaultKind::DnsServFail => (
                            StepVerdict::Transient(CrawlStep::Dns(ResolutionOutcome::ServFail)),
                            policy.attempt_cost_nanos,
                        ),
                        idnre_fault::FaultKind::DnsRefused => (
                            StepVerdict::Transient(CrawlStep::Dns(ResolutionOutcome::Refused)),
                            policy.attempt_cost_nanos,
                        ),
                        // DnsTimeout; HTTP kinds cannot come from dns_fault.
                        _ => (
                            StepVerdict::Transient(CrawlStep::Dns(ResolutionOutcome::Timeout)),
                            policy.attempt_timeout_nanos,
                        ),
                    }
                }
                None => {
                    self.state[query].last_was_fault = false;
                    match base {
                        // The host's own pathology, not the shared
                        // infrastructure's: breaker-neutral transients.
                        ResolutionOutcome::ServFail => (
                            StepVerdict::TransientLocal(CrawlStep::Dns(base)),
                            policy.attempt_cost_nanos,
                        ),
                        ResolutionOutcome::Timeout => (
                            StepVerdict::TransientLocal(CrawlStep::Dns(base)),
                            policy.attempt_timeout_nanos,
                        ),
                        terminal if terminal.is_resolved() => {
                            self.state[query].resolution = Some(terminal);
                            (
                                StepVerdict::NextPhase(CrawlStep::Dns(terminal)),
                                policy.attempt_cost_nanos,
                            )
                        }
                        terminal => (
                            StepVerdict::Terminal(CrawlStep::Dns(terminal)),
                            policy.attempt_cost_nanos,
                        ),
                    }
                }
            }
        } else {
            let resolution = self.state[query]
                .resolution
                .expect("phase 1 implies a resolved DNS phase");
            let page = self.crawler.pages.get(&domain.to_ascii_lowercase());
            match self.plan.http_fault(domain, attempt) {
                Some(fault) => {
                    self.state[query].faults_injected += 1;
                    self.recorder.incr(fault.kind.counter());
                    if fault.kind == idnre_fault::FaultKind::HttpSlow {
                        // A stall, not a failure: the page arrives after
                        // the attempt-timeout's worth of waiting.
                        self.state[query].last_was_fault = false;
                        (
                            StepVerdict::Terminal(CrawlStep::Http(fetch(&resolution, page))),
                            policy.attempt_timeout_nanos,
                        )
                    } else {
                        self.state[query].last_was_fault = true;
                        (
                            StepVerdict::Transient(CrawlStep::Http(FetchOutcome::ConnectionError)),
                            policy.attempt_cost_nanos,
                        )
                    }
                }
                None => {
                    self.state[query].last_was_fault = false;
                    match fetch(&resolution, page) {
                        FetchOutcome::ConnectionError => (
                            StepVerdict::TransientLocal(CrawlStep::Http(
                                FetchOutcome::ConnectionError,
                            )),
                            policy.attempt_cost_nanos,
                        ),
                        terminal => (
                            StepVerdict::Terminal(CrawlStep::Http(terminal)),
                            policy.attempt_cost_nanos,
                        ),
                    }
                }
            }
        }
    }

    fn cancelled(&mut self, query: usize, phase: u8) -> CrawlStep {
        // The deadline cancelled an in-flight attempt: the scheduler's
        // doing, not the fault plan's.
        self.state[query].last_was_fault = false;
        if phase == 0 {
            CrawlStep::Dns(ResolutionOutcome::Timeout)
        } else {
            CrawlStep::Http(FetchOutcome::ConnectionError)
        }
    }

    fn nameserver(&self, query: usize) -> u32 {
        fnv1a(self.domains[query].as_bytes()) as u32
    }

    fn jitter_seed(&self, query: usize, phase: u8) -> u64 {
        let seed = self.plan.jitter_seed(self.domains[query]);
        if phase == 0 {
            seed
        } else {
            // The HTTP phase's jitter stream, as in the synchronous path.
            seed ^ 0xC2B2_AE3D_27D4_EB4F
        }
    }
}

impl Crawler {
    /// Crawls one slice of domains through the event-driven scheduler.
    ///
    /// Attempt semantics match [`Crawler::crawl_faulted`] exactly; the
    /// scheduler adds the shared timeline, admission control, per-
    /// nameserver rate limits and breakers, and load shedding. See the
    /// module docs for the executed/shed telemetry split.
    pub fn crawl_slice_scheduled<S: AsRef<str>>(
        &self,
        domains: &[S],
        plan: &FaultPlan,
        config: &SchedConfig,
        recorder: &dyn Recorder,
    ) -> SliceSchedule {
        let mut driver = CrawlDriver {
            crawler: self,
            plan,
            config,
            domains: domains.iter().map(|d| d.as_ref()).collect(),
            state: vec![DomainState::default(); domains.len()],
            recorder,
        };
        let run = run_schedule(&mut driver, domains.len(), config);
        let state = driver.state;

        let mut crawls = Vec::with_capacity(run.reports.len());
        for (q, report) in run.reports.into_iter().enumerate() {
            let executed = report.shed.is_none();
            let (category, dns_outcome) = if executed {
                let outcome = match report.verdict.as_ref().expect("executed implies a verdict") {
                    CrawlStep::Dns(resolution) => FetchOutcome::DnsFailure(*resolution),
                    CrawlStep::Http(fetched) => fetched.clone(),
                };
                let dns_outcome = state[q]
                    .resolution
                    .or(match outcome {
                        FetchOutcome::DnsFailure(resolution) => Some(resolution),
                        _ => None,
                    })
                    .expect("executed implies a DNS verdict");
                let category = classify(&outcome);
                recorder.incr(outcome_counter(dns_outcome));
                recorder.incr(usage_counter(category));
                recorder.record_nanos(ATTEMPTS_HISTOGRAM, u64::from(report.attempts));
                recorder.record_nanos(SCHED_LATENCY_HISTOGRAM, report.latency_nanos);
                recorder.add(RETRY_COUNTERS[0], u64::from(report.retries));
                if report.retries > 0 && !report.exhausted {
                    recorder.incr(RETRY_COUNTERS[1]);
                }
                if report.deadline_hit {
                    recorder.incr(RETRY_COUNTERS[2]);
                }
                if report.exhausted {
                    recorder.incr(RETRY_COUNTERS[3]);
                }
                (Some(category), Some(dns_outcome))
            } else {
                (None, None)
            };
            crawls.push(ScheduledCrawl {
                category,
                dns_outcome,
                shed: report.shed,
                attempts: report.attempts,
                retries: report.retries,
                backoff_nanos: report.backoff_nanos,
                latency_nanos: report.latency_nanos,
                deadline_hit: report.deadline_hit,
                exhausted: report.exhausted,
                faults_injected: state[q].faults_injected,
                terminal_faulted: executed && report.exhausted && state[q].last_was_fault,
            });
        }

        let stats = run.stats;
        recorder.add(SCHED_COUNTERS[0], stats.arrivals - stats.shed_total());
        recorder.add(SCHED_COUNTERS[1], stats.deferred);
        recorder.add(SCHED_COUNTERS[2], stats.shed_admission);
        recorder.add(SCHED_COUNTERS[3], stats.shed_breaker);
        recorder.add(SCHED_COUNTERS[4], stats.shed_starved);
        recorder.add(SCHED_COUNTERS[5], stats.breaker_opened);
        recorder.add(SCHED_COUNTERS[6], stats.breaker_half_open);
        recorder.add(SCHED_COUNTERS[7], stats.breaker_reclosed);
        recorder.gauge_max(SCHED_QUEUE_DEPTH_GAUGE, stats.peak_queue_depth);
        recorder.gauge_max(SCHED_INFLIGHT_GAUGE, stats.peak_inflight);

        SliceSchedule { crawls, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuthBehavior, FaultContext, Page, PageKind};
    use idnre_fault::{FaultProfile, RetryPolicy, SimClock};
    use idnre_telemetry::Registry;
    use idnre_zonefile::parse_zone;

    /// A mixed population: meaningful, refused, lame, parked, absent.
    fn crawler_with_population(n: usize) -> (Crawler, Vec<String>) {
        let mut zone_text = String::new();
        for i in 0..n {
            zone_text.push_str(&format!("d{i} IN NS ns1.d{i}.com.\n"));
        }
        let zone = parse_zone("com", &zone_text).unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        let ip = "203.0.113.9".parse().unwrap();
        let mut domains = Vec::with_capacity(n);
        for i in 0..n {
            let domain = format!("d{i}.com");
            match i % 5 {
                0 => crawler.set_host(
                    &domain,
                    AuthBehavior::Answer(ip),
                    Some(Page::new(200, "Site", PageKind::Content)),
                ),
                1 => crawler.set_host(
                    &domain,
                    AuthBehavior::Answer(ip),
                    Some(Page::new(200, "Parked — buy now", PageKind::Parking)),
                ),
                2 => crawler.set_host(&domain, AuthBehavior::Refuse, None),
                3 => crawler.set_host(&domain, AuthBehavior::Lame, None),
                _ => {} // delegated, no host: NXDOMAIN at the authority
            }
            domains.push(domain);
        }
        (crawler, domains)
    }

    #[test]
    fn clean_plan_matches_the_synchronous_categories() {
        let (crawler, domains) = crawler_with_population(200);
        let plan = FaultPlan::new(7, FaultProfile::none());
        let config = SchedConfig::default();
        let out =
            crawler.crawl_slice_scheduled(&domains, &plan, &config, &idnre_telemetry::NoopRecorder);
        assert_eq!(out.stats.shed_total(), 0, "{:?}", out.stats);
        let ctx = FaultContext {
            plan,
            policy: config.policy,
        };
        for (domain, crawl) in domains.iter().zip(&out.crawls) {
            let mut clock = SimClock::new();
            let sync =
                crawler.crawl_faulted(domain, &ctx, &mut clock, &idnre_telemetry::NoopRecorder);
            assert_eq!(crawl.category, Some(sync.category), "{domain}");
            assert_eq!(crawl.faults_injected, 0);
        }
    }

    #[test]
    fn storm_saturates_sheds_and_trips_breakers() {
        let (crawler, domains) = crawler_with_population(2_000);
        let plan = FaultPlan::new(11, FaultProfile::storm());
        let config = SchedConfig::default();
        let registry = Registry::new();
        let out = crawler.crawl_slice_scheduled(&domains, &plan, &config, &registry);
        assert!(out.stats.shed_total() > 0, "{:?}", out.stats);
        assert!(out.stats.breaker_opened > 0, "{:?}", out.stats);
        assert!(
            registry.counter_value("crawler.breaker.open") > 0
                && registry.counter_value("crawler.shed.admission")
                    + registry.counter_value("crawler.shed.breaker_open")
                    + registry.counter_value("crawler.shed.starved")
                    > 0,
            "shed/breaker counters must surface in telemetry"
        );
        let shed = out.crawls.iter().filter(|c| c.shed.is_some()).count() as u64;
        assert_eq!(shed, out.stats.shed_total());
        for crawl in &out.crawls {
            assert_eq!(crawl.category.is_none(), crawl.shed.is_some());
        }
    }

    #[test]
    fn no_query_exceeds_deadline_by_more_than_one_tick() {
        let (crawler, domains) = crawler_with_population(1_500);
        let plan = FaultPlan::new(3, FaultProfile::storm());
        let config = SchedConfig::default();
        let registry = Registry::new();
        let out = crawler.crawl_slice_scheduled(&domains, &plan, &config, &registry);
        let bound = config.policy.deadline_nanos + config.wheel_tick_nanos;
        assert!(
            out.stats.max_latency_nanos <= bound,
            "latency {} > deadline+tick {bound}",
            out.stats.max_latency_nanos
        );
        // The latency histogram's exact max backs the same contract.
        let snapshot = registry.snapshot();
        let stage = snapshot
            .stages
            .iter()
            .find(|s| s.name == SCHED_LATENCY_HISTOGRAM)
            .expect("latency stage recorded");
        assert!(stage.max_nanos <= bound);
    }

    #[test]
    fn scheduled_slices_replay_byte_identically() {
        let (crawler, domains) = crawler_with_population(600);
        for profile in [
            FaultProfile::none(),
            FaultProfile::flaky(),
            FaultProfile::storm(),
        ] {
            let plan = FaultPlan::new(42, profile);
            let config = SchedConfig {
                policy: RetryPolicy::default(),
                ..SchedConfig::default()
            };
            let run = || {
                let registry = Registry::new();
                registry.preregister_groups(&[&SCHED_COUNTERS[..]]);
                let out = crawler.crawl_slice_scheduled(&domains, &plan, &config, &registry);
                (out, registry.snapshot().render_deterministic_json())
            };
            let (o1, j1) = run();
            let (o2, j2) = run();
            assert_eq!(o1, o2, "{}", profile.name);
            assert_eq!(j1, j2, "{}", profile.name);
        }
    }
}
