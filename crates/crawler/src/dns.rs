//! The resolution model: TLD-zone delegation plus per-domain authoritative
//! behaviour.

use idnre_zonefile::{RecordType, Zone};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;

/// What a domain's authoritative name server does with an A query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AuthBehavior {
    /// Answers with this address.
    Answer(Ipv4Addr),
    /// Answers `REFUSED` — the misconfiguration the paper highlights
    /// ("e.g., DNS REFUSED error").
    Refuse,
    /// Answers `SERVFAIL`.
    ServFail,
    /// Never answers (the server exists but drops queries).
    Timeout,
    /// A lame delegation: the zone delegates to this server, but it is not
    /// actually authoritative for the domain and never produces an answer.
    /// Observationally identical to [`AuthBehavior::Timeout`] — the paper's
    /// crawler cannot tell the two apart either — but modelled explicitly
    /// so populations can declare *why* a name goes dark. A delegated
    /// domain with no configured behaviour defaults to this.
    Lame,
}

/// Terminal outcome of resolving one name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResolutionOutcome {
    /// An address was obtained.
    Resolved(Ipv4Addr),
    /// The TLD zone has no delegation for the name.
    NxDomain,
    /// The authoritative server refused the query.
    Refused,
    /// The authoritative server failed.
    ServFail,
    /// No response before the deadline.
    Timeout,
}

impl ResolutionOutcome {
    /// Whether an address was obtained.
    pub fn is_resolved(self) -> bool {
        matches!(self, ResolutionOutcome::Resolved(_))
    }
}

/// An iterative resolver over loaded TLD zones.
///
/// Delegations come from zone files (every registered domain in a TLD zone
/// carries NS records); what happens *below* the delegation is configured
/// per domain with [`AuthBehavior`]. A delegated domain with no configured
/// behaviour is a lame delegation ([`AuthBehavior::Lame`]): the query goes
/// unanswered, so it resolves to [`ResolutionOutcome::Timeout`].
#[derive(Debug, Clone, Default)]
pub struct Resolver {
    delegated: HashSet<String>,
    behaviors: HashMap<String, AuthBehavior>,
}

impl Resolver {
    /// Creates a resolver with no zones loaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads the delegations (NS record owners) of a TLD zone.
    pub fn add_zone(&mut self, zone: &Zone) {
        let origin = zone.origin.to_string();
        for record in zone.records_of(RecordType::Ns) {
            let owner = record.owner.to_string();
            if owner != origin {
                self.delegated.insert(owner);
            }
        }
    }

    /// Sets the authoritative behaviour for a domain (implies delegation).
    pub fn set_behavior(&mut self, domain: &str, behavior: AuthBehavior) {
        let key = domain.to_ascii_lowercase();
        self.delegated.insert(key.clone());
        self.behaviors.insert(key, behavior);
    }

    /// Whether the name has a delegation in a loaded zone.
    pub fn is_delegated(&self, domain: &str) -> bool {
        self.delegated.contains(&domain.to_ascii_lowercase())
    }

    /// Serves one wire-format query, producing the wire-format response a
    /// sensor would capture — or `None` when the authoritative server times
    /// out (no packet at all).
    ///
    /// # Errors
    ///
    /// Returns `Some` response with rcode `FORMERR` on undecodable queries
    /// that still carry a readable header; fully garbled bytes yield `None`.
    pub fn serve_wire(&self, query_bytes: &[u8]) -> Option<Vec<u8>> {
        use crate::wire::{self, Message, Rcode};
        let query = match wire::decode(query_bytes) {
            Ok(message) if !message.questions.is_empty() => message,
            Ok(message) => {
                return Some(wire::encode(&Message::response_to(
                    &message,
                    Rcode::FormErr,
                )))
            }
            Err(_) => return None,
        };
        let name = query.questions[0].name.clone();
        let mut response = match self.resolve(&name) {
            ResolutionOutcome::Resolved(ip) => {
                let mut r = Message::response_to(&query, Rcode::NoError);
                r.answers.push(crate::wire::WireRecord::a(&name, 300, ip));
                r
            }
            ResolutionOutcome::NxDomain => Message::response_to(&query, Rcode::NxDomain),
            ResolutionOutcome::Refused => Message::response_to(&query, Rcode::Refused),
            ResolutionOutcome::ServFail => Message::response_to(&query, Rcode::ServFail),
            ResolutionOutcome::Timeout => return None,
        };
        response.recursion_desired = query.recursion_desired;
        Some(wire::encode(&response))
    }

    /// Resolves a name to its terminal outcome.
    pub fn resolve(&self, domain: &str) -> ResolutionOutcome {
        let key = domain.to_ascii_lowercase();
        if !self.delegated.contains(&key) {
            return ResolutionOutcome::NxDomain;
        }
        match self.behaviors.get(&key) {
            Some(AuthBehavior::Answer(ip)) => ResolutionOutcome::Resolved(*ip),
            Some(AuthBehavior::Refuse) => ResolutionOutcome::Refused,
            Some(AuthBehavior::ServFail) => ResolutionOutcome::ServFail,
            Some(AuthBehavior::Timeout) | Some(AuthBehavior::Lame) | None => {
                ResolutionOutcome::Timeout
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_zonefile::parse_zone;

    fn resolver() -> Resolver {
        let zone = parse_zone(
            "com",
            "@ IN NS a.gtld-servers.net.\nexample IN NS ns1.example.com.\nlame IN NS ns1.lame.com.\n",
        )
        .unwrap();
        let mut r = Resolver::new();
        r.add_zone(&zone);
        r
    }

    #[test]
    fn undelegated_names_are_nxdomain() {
        assert_eq!(
            resolver().resolve("missing.com"),
            ResolutionOutcome::NxDomain
        );
    }

    #[test]
    fn apex_ns_records_are_not_delegations() {
        assert!(!resolver().is_delegated("com"));
    }

    #[test]
    fn lame_delegations_time_out() {
        // In the zone (NS present) but the child server never answers:
        // the implicit default for an unconfigured delegation...
        assert_eq!(resolver().resolve("lame.com"), ResolutionOutcome::Timeout);
        // ...and the explicit behaviour pin the same terminal outcome.
        let mut r = resolver();
        r.set_behavior("lame.com", AuthBehavior::Lame);
        assert_eq!(r.resolve("lame.com"), ResolutionOutcome::Timeout);
        // A lame server emits no packet at all on the wire.
        let query = crate::wire::encode(&crate::wire::Message::query(9, "lame.com"));
        assert!(r.serve_wire(&query).is_none());
    }

    #[test]
    fn behaviours_map_to_outcomes() {
        let mut r = resolver();
        let ip = Ipv4Addr::new(203, 0, 113, 5);
        r.set_behavior("example.com", AuthBehavior::Answer(ip));
        assert_eq!(r.resolve("EXAMPLE.com"), ResolutionOutcome::Resolved(ip));
        r.set_behavior("example.com", AuthBehavior::Refuse);
        assert_eq!(r.resolve("example.com"), ResolutionOutcome::Refused);
        r.set_behavior("example.com", AuthBehavior::ServFail);
        assert_eq!(r.resolve("example.com"), ResolutionOutcome::ServFail);
    }

    #[test]
    fn wire_round_trip_through_the_server() {
        use crate::wire::{self, Message, Rcode};
        let mut r = resolver();
        let ip = Ipv4Addr::new(203, 0, 113, 5);
        r.set_behavior("example.com", AuthBehavior::Answer(ip));

        let query = wire::encode(&Message::query(0xBEEF, "example.com"));
        let response = wire::decode(&r.serve_wire(&query).unwrap()).unwrap();
        assert_eq!(response.id, 0xBEEF);
        assert_eq!(response.rcode, Rcode::NoError);
        assert_eq!(response.answers[0].a_addr(), Some(ip));

        let nx = wire::encode(&Message::query(1, "missing.com"));
        let response = wire::decode(&r.serve_wire(&nx).unwrap()).unwrap();
        assert_eq!(response.rcode, Rcode::NxDomain);

        r.set_behavior("example.com", AuthBehavior::Refuse);
        let refused = wire::encode(&Message::query(2, "example.com"));
        let response = wire::decode(&r.serve_wire(&refused).unwrap()).unwrap();
        assert_eq!(response.rcode, Rcode::Refused);

        r.set_behavior("example.com", AuthBehavior::Timeout);
        let dropped = wire::encode(&Message::query(3, "example.com"));
        assert!(r.serve_wire(&dropped).is_none());

        // Garbage in, nothing out.
        assert!(r.serve_wire(&[0xFF; 4]).is_none());
    }

    #[test]
    fn set_behavior_implies_delegation() {
        let mut r = Resolver::new();
        r.set_behavior("solo.net", AuthBehavior::Refuse);
        assert!(r.is_delegated("solo.net"));
        assert_eq!(r.resolve("solo.net"), ResolutionOutcome::Refused);
    }
}
