//! Folding a crawl outcome into the paper's Table V usage taxonomy.

use crate::http::{FetchOutcome, PageKind};

/// Table V's usage categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum UsageCategory {
    /// DNS resolution failed (NXDOMAIN / REFUSED / SERVFAIL / timeout).
    NotResolved,
    /// Resolution succeeded but HTTP failed (connection error or 4xx/5xx).
    Error,
    /// A blank page.
    Empty,
    /// A parking lander.
    Parked,
    /// A for-sale lander.
    ForSale,
    /// Redirected elsewhere.
    Redirected,
    /// A real website.
    Meaningful,
}

impl UsageCategory {
    /// All categories in Table V row order.
    pub const ALL: [UsageCategory; 7] = [
        UsageCategory::NotResolved,
        UsageCategory::Error,
        UsageCategory::Empty,
        UsageCategory::Parked,
        UsageCategory::ForSale,
        UsageCategory::Redirected,
        UsageCategory::Meaningful,
    ];

    /// Table V row label.
    pub fn label(self) -> &'static str {
        match self {
            UsageCategory::NotResolved => "Not resolved",
            UsageCategory::Error => "Error",
            UsageCategory::Empty => "Empty",
            UsageCategory::Parked => "Parked",
            UsageCategory::ForSale => "For sale",
            UsageCategory::Redirected => "Redirected",
            UsageCategory::Meaningful => "Meaningful content",
        }
    }
}

/// Classifies one crawl outcome.
pub fn classify(outcome: &FetchOutcome) -> UsageCategory {
    match outcome {
        FetchOutcome::DnsFailure(_) => UsageCategory::NotResolved,
        FetchOutcome::ConnectionError => UsageCategory::Error,
        FetchOutcome::Http(page) => {
            if page.status >= 400 {
                return UsageCategory::Error;
            }
            match &page.kind {
                PageKind::Parking => UsageCategory::Parked,
                PageKind::ForSale => UsageCategory::ForSale,
                PageKind::Empty => UsageCategory::Empty,
                PageKind::Redirect(_) => UsageCategory::Redirected,
                PageKind::Content => UsageCategory::Meaningful,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dns::ResolutionOutcome;
    use crate::http::Page;

    #[test]
    fn every_dns_failure_is_not_resolved() {
        for failure in [
            ResolutionOutcome::NxDomain,
            ResolutionOutcome::Refused,
            ResolutionOutcome::ServFail,
            ResolutionOutcome::Timeout,
        ] {
            assert_eq!(
                classify(&FetchOutcome::DnsFailure(failure)),
                UsageCategory::NotResolved
            );
        }
    }

    #[test]
    fn http_status_errors() {
        let page = Page::new(404, "not found", PageKind::Content);
        assert_eq!(classify(&FetchOutcome::Http(page)), UsageCategory::Error);
        assert_eq!(
            classify(&FetchOutcome::ConnectionError),
            UsageCategory::Error
        );
    }

    #[test]
    fn page_kinds_map_to_categories() {
        let cases = [
            (PageKind::Parking, UsageCategory::Parked),
            (PageKind::ForSale, UsageCategory::ForSale),
            (PageKind::Empty, UsageCategory::Empty),
            (
                PageKind::Redirect("https://other.example/".into()),
                UsageCategory::Redirected,
            ),
            (PageKind::Content, UsageCategory::Meaningful),
        ];
        for (kind, expected) in cases {
            let page = Page::new(200, "t", kind);
            assert_eq!(classify(&FetchOutcome::Http(page)), expected);
        }
    }
}
