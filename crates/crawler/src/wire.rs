//! RFC 1035 §4 wire format: DNS message encoding and decoding with name
//! compression — the byte-level substrate under every resolver and passive
//! DNS sensor in the measured ecosystem.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::net::Ipv4Addr;

/// DNS response codes (RFC 1035 §4.1.1, the subset the simulation emits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused by policy — the misconfiguration Finding 8 observes.
    Refused,
}

impl Rcode {
    fn to_bits(self) -> u16 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
        }
    }

    fn from_bits(bits: u16) -> Option<Self> {
        Some(match bits {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            _ => return None,
        })
    }
}

/// Record types carried on the wire (subset).
pub mod qtype {
    /// IPv4 address record.
    pub const A: u16 = 1;
    /// Authoritative name server.
    pub const NS: u16 = 2;
    /// Canonical alias.
    pub const CNAME: u16 = 5;
}

/// One question section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name (ACE form, no trailing dot).
    pub name: String,
    /// Query type (see [`qtype`]).
    pub qtype: u16,
}

/// One resource record on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRecord {
    /// Owner name.
    pub name: String,
    /// Record type.
    pub rtype: u16,
    /// Time to live.
    pub ttl: u32,
    /// Raw RDATA (callers use [`WireRecord::a`] / [`WireRecord::a_addr`]
    /// for A records).
    pub rdata: Vec<u8>,
}

impl WireRecord {
    /// Builds an A record.
    pub fn a(name: &str, ttl: u32, addr: Ipv4Addr) -> Self {
        WireRecord {
            name: name.to_string(),
            rtype: qtype::A,
            ttl,
            rdata: addr.octets().to_vec(),
        }
    }

    /// Reads the address of an A record.
    pub fn a_addr(&self) -> Option<Ipv4Addr> {
        if self.rtype == qtype::A && self.rdata.len() == 4 {
            Some(Ipv4Addr::new(
                self.rdata[0],
                self.rdata[1],
                self.rdata[2],
                self.rdata[3],
            ))
        } else {
            None
        }
    }
}

/// A DNS message (header + sections).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Transaction id.
    pub id: u16,
    /// Response flag (false = query).
    pub is_response: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Response code.
    pub rcode: Rcode,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<WireRecord>,
}

impl Message {
    /// Builds a standard A query.
    pub fn query(id: u16, name: &str) -> Self {
        Message {
            id,
            is_response: false,
            recursion_desired: true,
            rcode: Rcode::NoError,
            questions: vec![Question {
                name: name.to_ascii_lowercase(),
                qtype: qtype::A,
            }],
            answers: Vec::new(),
        }
    }

    /// Builds the response skeleton for a query.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            id: query.id,
            is_response: true,
            recursion_desired: query.recursion_desired,
            rcode,
            questions: query.questions.clone(),
            answers: Vec::new(),
        }
    }
}

/// Errors from decoding a wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// Message ended before the announced content.
    Truncated,
    /// A compression pointer was malformed or looped.
    BadPointer,
    /// A label exceeded 63 octets or the name exceeded 253.
    BadName,
    /// Reserved header bits or unknown rcode.
    BadHeader,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated dns message"),
            WireError::BadPointer => write!(f, "bad compression pointer"),
            WireError::BadName => write!(f, "malformed name"),
            WireError::BadHeader => write!(f, "malformed header"),
        }
    }
}

impl Error for WireError {}

/// Encodes a message to wire bytes with name compression.
pub fn encode(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&message.id.to_be_bytes());
    let mut flags: u16 = 0;
    if message.is_response {
        flags |= 0x8000;
    }
    if message.recursion_desired {
        flags |= 0x0100;
    }
    flags |= message.rcode.to_bits();
    out.extend_from_slice(&flags.to_be_bytes());
    out.extend_from_slice(&(message.questions.len() as u16).to_be_bytes());
    out.extend_from_slice(&(message.answers.len() as u16).to_be_bytes());
    out.extend_from_slice(&0u16.to_be_bytes()); // authority
    out.extend_from_slice(&0u16.to_be_bytes()); // additional

    let mut offsets: HashMap<String, u16> = HashMap::new();
    for question in &message.questions {
        encode_name(&mut out, &question.name, &mut offsets);
        out.extend_from_slice(&question.qtype.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes()); // class IN
    }
    for record in &message.answers {
        encode_name(&mut out, &record.name, &mut offsets);
        out.extend_from_slice(&record.rtype.to_be_bytes());
        out.extend_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&record.ttl.to_be_bytes());
        out.extend_from_slice(&(record.rdata.len() as u16).to_be_bytes());
        out.extend_from_slice(&record.rdata);
    }
    out
}

/// Writes a (possibly compressed) name, registering suffix offsets.
fn encode_name(out: &mut Vec<u8>, name: &str, offsets: &mut HashMap<String, u16>) {
    let name = name.trim_end_matches('.').to_ascii_lowercase();
    let mut remaining = name.as_str();
    loop {
        if remaining.is_empty() {
            out.push(0);
            return;
        }
        if let Some(&offset) = offsets.get(remaining) {
            out.extend_from_slice(&(0xC000u16 | offset).to_be_bytes());
            return;
        }
        if out.len() <= 0x3FFF {
            offsets.insert(remaining.to_string(), out.len() as u16);
        }
        let (label, rest) = match remaining.split_once('.') {
            Some((l, r)) => (l, r),
            None => (remaining, ""),
        };
        out.push(label.len().min(63) as u8);
        out.extend_from_slice(&label.as_bytes()[..label.len().min(63)]);
        remaining = rest;
    }
}

/// Decodes wire bytes into a [`Message`].
///
/// # Errors
///
/// Returns a [`WireError`] describing the malformation; decoding is total
/// (never panics) on arbitrary input.
pub fn decode(bytes: &[u8]) -> Result<Message, WireError> {
    if bytes.len() < 12 {
        return Err(WireError::Truncated);
    }
    let id = u16::from_be_bytes([bytes[0], bytes[1]]);
    let flags = u16::from_be_bytes([bytes[2], bytes[3]]);
    let rcode = Rcode::from_bits(flags & 0x000F).ok_or(WireError::BadHeader)?;
    let qdcount = u16::from_be_bytes([bytes[4], bytes[5]]) as usize;
    let ancount = u16::from_be_bytes([bytes[6], bytes[7]]) as usize;

    let mut pos = 12usize;
    let mut questions = Vec::with_capacity(qdcount.min(16));
    for _ in 0..qdcount {
        let (name, next) = decode_name(bytes, pos)?;
        pos = next;
        if pos + 4 > bytes.len() {
            return Err(WireError::Truncated);
        }
        let qtype = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
        pos += 4; // skip class
        questions.push(Question { name, qtype });
    }
    let mut answers = Vec::with_capacity(ancount.min(32));
    for _ in 0..ancount {
        let (name, next) = decode_name(bytes, pos)?;
        pos = next;
        if pos + 10 > bytes.len() {
            return Err(WireError::Truncated);
        }
        let rtype = u16::from_be_bytes([bytes[pos], bytes[pos + 1]]);
        let ttl = u32::from_be_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        let rdlen = u16::from_be_bytes([bytes[pos + 8], bytes[pos + 9]]) as usize;
        pos += 10;
        if pos + rdlen > bytes.len() {
            return Err(WireError::Truncated);
        }
        answers.push(WireRecord {
            name,
            rtype,
            ttl,
            rdata: bytes[pos..pos + rdlen].to_vec(),
        });
        pos += rdlen;
    }
    Ok(Message {
        id,
        is_response: flags & 0x8000 != 0,
        recursion_desired: flags & 0x0100 != 0,
        rcode,
        questions,
        answers,
    })
}

/// Decodes a name at `pos`; returns `(name, position after the name)`.
fn decode_name(bytes: &[u8], start: usize) -> Result<(String, usize), WireError> {
    let mut labels: Vec<String> = Vec::new();
    let mut pos = start;
    let mut jumped = false;
    let mut end = start;
    let mut hops = 0usize;
    loop {
        let &len = bytes.get(pos).ok_or(WireError::Truncated)?;
        if len & 0xC0 == 0xC0 {
            let &low = bytes.get(pos + 1).ok_or(WireError::Truncated)?;
            let target = (((len & 0x3F) as usize) << 8) | low as usize;
            if !jumped {
                end = pos + 2;
                jumped = true;
            }
            if target >= pos {
                return Err(WireError::BadPointer); // forward pointers loop
            }
            hops += 1;
            if hops > 32 {
                return Err(WireError::BadPointer);
            }
            pos = target;
            continue;
        }
        if len == 0 {
            if !jumped {
                end = pos + 1;
            }
            break;
        }
        if len > 63 {
            return Err(WireError::BadName);
        }
        let label_end = pos + 1 + len as usize;
        let label = bytes.get(pos + 1..label_end).ok_or(WireError::Truncated)?;
        labels.push(String::from_utf8_lossy(label).to_ascii_lowercase());
        pos = label_end;
        if labels.iter().map(|l| l.len() + 1).sum::<usize>() > 254 {
            return Err(WireError::BadName);
        }
    }
    Ok((labels.join("."), end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let query = Message::query(0x1234, "xn--0wwy37b.com");
        let bytes = encode(&query);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, query);
    }

    #[test]
    fn response_with_answers_round_trips() {
        let query = Message::query(7, "example.com");
        let mut response = Message::response_to(&query, Rcode::NoError);
        response.answers.push(WireRecord::a(
            "example.com",
            300,
            Ipv4Addr::new(203, 0, 113, 7),
        ));
        response.answers.push(WireRecord::a(
            "example.com",
            300,
            Ipv4Addr::new(203, 0, 113, 8),
        ));
        let bytes = encode(&response);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, response);
        assert_eq!(
            decoded.answers[0].a_addr(),
            Some(Ipv4Addr::new(203, 0, 113, 7))
        );
    }

    #[test]
    fn compression_shrinks_repeated_names() {
        let query = Message::query(7, "aaaa.example.com");
        let mut response = Message::response_to(&query, Rcode::NoError);
        for i in 0..4 {
            response.answers.push(WireRecord::a(
                "aaaa.example.com",
                60,
                Ipv4Addr::new(10, 0, 0, i),
            ));
        }
        let bytes = encode(&response);
        // With compression, each repeated owner costs 2 bytes, not 18.
        let uncompressed_estimate = 12 + 5 * 18 + 4 * 14;
        assert!(bytes.len() < uncompressed_estimate, "{} bytes", bytes.len());
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.answers.len(), 4);
        assert!(decoded.answers.iter().all(|a| a.name == "aaaa.example.com"));
    }

    #[test]
    fn rcode_round_trips() {
        for rcode in [
            Rcode::NoError,
            Rcode::FormErr,
            Rcode::ServFail,
            Rcode::NxDomain,
            Rcode::NotImp,
            Rcode::Refused,
        ] {
            let query = Message::query(1, "a.com");
            let response = Message::response_to(&query, rcode);
            let decoded = decode(&encode(&response)).unwrap();
            assert_eq!(decoded.rcode, rcode);
            assert!(decoded.is_response);
        }
    }

    #[test]
    fn truncated_inputs_error() {
        let bytes = encode(&Message::query(9, "example.com"));
        for cut in [0, 5, 11, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn pointer_loops_rejected() {
        // Header + a name that points at itself.
        let mut bytes = vec![0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0];
        bytes.extend_from_slice(&[0xC0, 12]); // pointer to its own offset
        bytes.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(decode(&bytes).unwrap_err(), WireError::BadPointer);
    }

    #[test]
    fn case_is_folded_on_the_wire() {
        let query = Message::query(3, "ExAmPlE.CoM");
        let decoded = decode(&encode(&query)).unwrap();
        assert_eq!(decoded.questions[0].name, "example.com");
    }
}
