//! Fault-aware resolution and crawling: every domain gets a retry
//! schedule, and a seeded [`FaultPlan`] decides which attempts hiccup.
//!
//! The plain [`Crawler::crawl`](crate::Crawler::crawl) path resolves each
//! name exactly once. The paper's measurement ran for weeks against real
//! infrastructure, where transient SERVFAILs, refused queries and stalled
//! web servers are routine — a single attempt would misclassify every
//! hiccup as a dead domain. This module makes the *schedule* the unit of
//! measurement: an attempt either produces a terminal verdict or a
//! transient failure, the [`RetryPolicy`] decides how many attempts and
//! how much (virtual) backoff a target deserves, and the
//! [`ResolutionOutcome`] that feeds classification is the verdict left
//! standing when the schedule ends.
//!
//! Everything is deterministic: faults come from the stateless seeded
//! plan, backoff jitter from a per-target hash, and time from a
//! [`SimClock`] the caller owns — so a fixed `(seed, policy)` replays the
//! same schedule byte-for-byte regardless of thread interleaving.

use crate::{classify, fetch, outcome_counter, usage_counter};
use crate::{Crawler, FetchOutcome, ResolutionOutcome, Resolver, UsageCategory};
use idnre_fault::{Attempt, FaultKind, FaultPlan, RetryPolicy, SimClock};
use idnre_telemetry::{Recorder, Span, SpanCtx};

/// Counter names of the retry machinery, for pre-registration (a counter
/// that never fires still shows up at zero in the snapshot).
pub const RETRY_COUNTERS: [&str; 4] = [
    "crawler.retry.retries",
    "crawler.retry.recovered",
    "crawler.retry.deadline_exceeded",
    "crawler.retry.exhausted",
];

/// Counter names of the injected fault kinds (`crawler.fault.*`), for
/// pre-registration alongside [`RETRY_COUNTERS`].
pub const FAULT_COUNTERS: [&str; 5] = [
    "crawler.fault.dns_timeout",
    "crawler.fault.dns_servfail",
    "crawler.fault.dns_refused",
    "crawler.fault.http_slow",
    "crawler.fault.http_truncated",
];

/// Histogram stage fed one sample per crawled domain, whose recorded
/// value is the *attempt count* (not nanoseconds): the distribution of
/// how many attempts each target needed.
pub const ATTEMPTS_HISTOGRAM: &str = "crawler.retry.attempts";

/// Stage name of one faulted-survey slice: a batch of crawl schedules
/// executed together by a survey worker.
pub const SURVEY_SLICE_SPAN: &str = "crawler.survey.slice";

/// How many domains one faulted-survey slice covers. The slice size is a
/// constant (never derived from the worker count), so the slice spans —
/// and therefore the trace tree's structure — are identical across
/// thread counts for a given population.
pub const SURVEY_SLICE_RECORDS: usize = 2_048;

/// Opens the timed span for faulted-survey slice `index`, parented under
/// the survey's own span. Per-*domain* spans would swamp a trace (and a
/// schedule costs nanoseconds, far below span resolution), so the slice
/// is the unit of span parenting for the faulted survey: coarse enough
/// to stay readable, fine enough to show worker-level cost spread.
pub fn survey_slice_span(recorder: &dyn Recorder, parent: SpanCtx, index: u64) -> Span {
    recorder.span_at(SURVEY_SLICE_SPAN, parent, index)
}

/// The fault schedule and retry discipline a crawl executes under.
#[derive(Debug, Clone, Copy)]
pub struct FaultContext {
    /// Which attempts fail, and how.
    pub plan: FaultPlan,
    /// How many attempts each target gets, and at what backoff.
    pub policy: RetryPolicy,
}

impl FaultContext {
    /// A context that injects nothing and never retries — the plain
    /// pipeline expressed in the fault vocabulary.
    pub fn inert() -> Self {
        FaultContext {
            plan: FaultPlan::new(0, idnre_fault::FaultProfile::none()),
            policy: RetryPolicy::single_attempt(),
        }
    }
}

/// The terminal verdict of one domain's resolution schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultedResolution {
    /// The outcome left standing when the schedule ended.
    pub outcome: ResolutionOutcome,
    /// Attempts performed (≥ 1).
    pub attempts: u32,
    /// Retries performed.
    pub retries: u32,
    /// Virtual backoff slept between attempts, in nanoseconds.
    pub backoff_nanos: u64,
    /// Virtual time the schedule consumed, in nanoseconds.
    pub elapsed_nanos: u64,
    /// Whether the per-target deadline ended the schedule early.
    pub deadline_hit: bool,
    /// Whether the schedule exhausted without a terminal success.
    pub exhausted: bool,
    /// Injected faults met along the way.
    pub faults_injected: u32,
    /// Whether the *terminal* outcome was manufactured by an injected
    /// fault (rather than the host's configured behaviour) — the part of
    /// the damage the error budget should attribute to the fault layer.
    pub terminal_faulted: bool,
}

/// The terminal verdict of one domain's full crawl schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultedCrawl {
    /// The Table V category the schedule's outcome classifies into.
    pub category: UsageCategory,
    /// The DNS phase's terminal verdict.
    pub resolution: FaultedResolution,
    /// HTTP attempts performed (0 when resolution failed).
    pub http_attempts: u32,
    /// Total injected faults across both phases.
    pub faults_injected: u32,
    /// Whether either phase's terminal verdict was fault-manufactured.
    pub terminal_faulted: bool,
    /// Virtual time consumed by both phases, in nanoseconds.
    pub elapsed_nanos: u64,
}

impl Resolver {
    /// Resolves `domain` under a retry schedule with injected faults.
    ///
    /// Each attempt first consults the fault plan. An injected DNS fault
    /// replaces the configured outcome for that attempt (timeouts cost
    /// [`RetryPolicy::attempt_timeout_nanos`], answered errors
    /// [`RetryPolicy::attempt_cost_nanos`]) and is always worth retrying.
    /// Without a fault, the configured behaviour answers: `SERVFAIL` and
    /// timeouts are retried (a real crawler cannot tell a transient from
    /// a persistent server failure), while `Resolved`, `NXDOMAIN` and
    /// authoritative `REFUSED` are terminal on first sight.
    ///
    /// Telemetry: one `crawler.fault.*` increment per injected fault, the
    /// schedule's sample in [`ATTEMPTS_HISTOGRAM`], the
    /// `crawler.retry.*` counters, and the terminal `crawler.outcome.*`
    /// counter. Recording never influences the schedule.
    pub fn resolve_faulted(
        &self,
        domain: &str,
        ctx: &FaultContext,
        clock: &mut SimClock,
        recorder: &dyn Recorder,
    ) -> FaultedResolution {
        let base = self.resolve(domain);
        let mut faults_injected = 0u32;
        let mut last_was_fault = false;
        let report = ctx
            .policy
            .execute(ctx.plan.jitter_seed(domain), clock, |attempt| {
                match ctx.plan.dns_fault(domain, attempt) {
                    Some(fault) => {
                        faults_injected += 1;
                        last_was_fault = true;
                        recorder.incr(fault.kind.counter());
                        match fault.kind {
                            FaultKind::DnsServFail => (
                                Attempt::Retry(ResolutionOutcome::ServFail),
                                ctx.policy.attempt_cost_nanos,
                            ),
                            FaultKind::DnsRefused => (
                                Attempt::Retry(ResolutionOutcome::Refused),
                                ctx.policy.attempt_cost_nanos,
                            ),
                            // DnsTimeout; HTTP kinds cannot come from dns_fault.
                            _ => (
                                Attempt::Retry(ResolutionOutcome::Timeout),
                                ctx.policy.attempt_timeout_nanos,
                            ),
                        }
                    }
                    None => {
                        last_was_fault = false;
                        match base {
                            ResolutionOutcome::ServFail => {
                                (Attempt::Retry(base), ctx.policy.attempt_cost_nanos)
                            }
                            ResolutionOutcome::Timeout => {
                                (Attempt::Retry(base), ctx.policy.attempt_timeout_nanos)
                            }
                            terminal => (Attempt::Done(terminal), ctx.policy.attempt_cost_nanos),
                        }
                    }
                }
            });

        recorder.record_nanos(ATTEMPTS_HISTOGRAM, u64::from(report.attempts));
        recorder.add(RETRY_COUNTERS[0], u64::from(report.retries));
        if report.retries > 0 && !report.exhausted {
            recorder.incr(RETRY_COUNTERS[1]);
        }
        if report.deadline_hit {
            recorder.incr(RETRY_COUNTERS[2]);
        }
        if report.exhausted {
            recorder.incr(RETRY_COUNTERS[3]);
        }
        recorder.incr(outcome_counter(report.value));

        FaultedResolution {
            outcome: report.value,
            attempts: report.attempts,
            retries: report.retries,
            backoff_nanos: report.backoff_nanos,
            elapsed_nanos: report.elapsed_nanos,
            deadline_hit: report.deadline_hit,
            exhausted: report.exhausted,
            faults_injected,
            terminal_faulted: report.exhausted && last_was_fault,
        }
    }
}

impl Crawler {
    /// Crawls `domain` end-to-end under a retry schedule with injected
    /// faults: [`Resolver::resolve_faulted`], then — when an address came
    /// back — an HTTP schedule, then classification of whatever verdict
    /// is left standing.
    ///
    /// HTTP attempts consult the plan too: `HttpSlow` stalls the attempt
    /// (timeout-priced) but still delivers the page; `HttpTruncated` cuts
    /// the response off and is retried as a connection error. Without an
    /// injected fault, a configured connection error is retried and
    /// anything else is terminal.
    pub fn crawl_faulted(
        &self,
        domain: &str,
        ctx: &FaultContext,
        clock: &mut SimClock,
        recorder: &dyn Recorder,
    ) -> FaultedCrawl {
        let resolution = self.resolver.resolve_faulted(domain, ctx, clock, recorder);

        let mut faults_injected = resolution.faults_injected;
        let mut terminal_faulted = resolution.terminal_faulted;
        let mut http_attempts = 0u32;
        let mut http_elapsed = 0u64;

        let outcome = if resolution.outcome.is_resolved() {
            let page = self.pages.get(&domain.to_ascii_lowercase());
            let mut last_was_fault = false;
            let report = ctx.policy.execute(
                ctx.plan.jitter_seed(domain) ^ 0xC2B2_AE3D_27D4_EB4F,
                clock,
                |attempt| match ctx.plan.http_fault(domain, attempt) {
                    Some(fault) => {
                        faults_injected += 1;
                        recorder.incr(fault.kind.counter());
                        if fault.kind == FaultKind::HttpSlow {
                            // A stall, not a failure: the page arrives
                            // after the attempt-timeout's worth of waiting.
                            last_was_fault = false;
                            (
                                Attempt::Done(fetch(&resolution.outcome, page)),
                                ctx.policy.attempt_timeout_nanos,
                            )
                        } else {
                            last_was_fault = true;
                            (
                                Attempt::Retry(FetchOutcome::ConnectionError),
                                ctx.policy.attempt_cost_nanos,
                            )
                        }
                    }
                    None => {
                        last_was_fault = false;
                        match fetch(&resolution.outcome, page) {
                            FetchOutcome::ConnectionError => (
                                Attempt::Retry(FetchOutcome::ConnectionError),
                                ctx.policy.attempt_cost_nanos,
                            ),
                            terminal => (Attempt::Done(terminal), ctx.policy.attempt_cost_nanos),
                        }
                    }
                },
            );
            http_attempts = report.attempts;
            http_elapsed = report.elapsed_nanos;
            recorder.add(RETRY_COUNTERS[0], u64::from(report.retries));
            if report.retries > 0 && !report.exhausted {
                recorder.incr(RETRY_COUNTERS[1]);
            }
            if report.deadline_hit {
                recorder.incr(RETRY_COUNTERS[2]);
            }
            if report.exhausted {
                recorder.incr(RETRY_COUNTERS[3]);
            }
            terminal_faulted = terminal_faulted || (report.exhausted && last_was_fault);
            report.value
        } else {
            FetchOutcome::DnsFailure(resolution.outcome)
        };

        let category = classify(&outcome);
        recorder.incr(usage_counter(category));

        FaultedCrawl {
            category,
            elapsed_nanos: resolution.elapsed_nanos + http_elapsed,
            resolution,
            http_attempts,
            faults_injected,
            terminal_faulted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuthBehavior, Page, PageKind};
    use idnre_fault::FaultProfile;
    use idnre_telemetry::Registry;
    use idnre_zonefile::parse_zone;

    fn crawler() -> Crawler {
        let zone = parse_zone(
            "com",
            "a IN NS ns1.a.com.\nb IN NS ns1.b.com.\nc IN NS ns1.c.com.\n",
        )
        .unwrap();
        let mut crawler = Crawler::new();
        crawler.add_zone(&zone);
        crawler.set_host(
            "a.com",
            AuthBehavior::Answer("203.0.113.9".parse().unwrap()),
            Some(Page::new(200, "Site", PageKind::Content)),
        );
        crawler.set_host("b.com", AuthBehavior::Refuse, None);
        crawler.set_host("c.com", AuthBehavior::Lame, None);
        crawler
    }

    #[test]
    fn inert_context_matches_the_plain_pipeline() {
        let crawler = crawler();
        let ctx = FaultContext::inert();
        for domain in ["a.com", "b.com", "c.com", "nx.com"] {
            let mut clock = SimClock::new();
            let faulted =
                crawler.crawl_faulted(domain, &ctx, &mut clock, &idnre_telemetry::NoopRecorder);
            assert_eq!(faulted.category, crawler.crawl(domain), "{domain}");
            assert_eq!(faulted.resolution.attempts, 1, "{domain}");
            assert_eq!(faulted.faults_injected, 0, "{domain}");
            assert!(!faulted.terminal_faulted, "{domain}");
        }
    }

    #[test]
    fn base_refused_is_terminal_on_first_sight() {
        let crawler = crawler();
        let ctx = FaultContext {
            plan: FaultPlan::new(0, FaultProfile::none()),
            policy: RetryPolicy::default(),
        };
        let mut clock = SimClock::new();
        let report = crawler.resolver.resolve_faulted(
            "b.com",
            &ctx,
            &mut clock,
            &idnre_telemetry::NoopRecorder,
        );
        assert_eq!(report.outcome, ResolutionOutcome::Refused);
        assert_eq!(report.attempts, 1);
        assert!(!report.exhausted);
    }

    #[test]
    fn lame_delegations_exhaust_the_whole_schedule() {
        let crawler = crawler();
        let ctx = FaultContext {
            plan: FaultPlan::new(0, FaultProfile::none()),
            policy: RetryPolicy::default(),
        };
        let mut clock = SimClock::new();
        let report = crawler.resolver.resolve_faulted(
            "c.com",
            &ctx,
            &mut clock,
            &idnre_telemetry::NoopRecorder,
        );
        assert_eq!(report.outcome, ResolutionOutcome::Timeout);
        assert_eq!(report.attempts, ctx.policy.max_attempts);
        assert!(report.exhausted);
        // Lame the whole way down is the host's doing, not the plan's.
        assert!(!report.terminal_faulted);
        assert!(report.backoff_nanos > 0);
    }

    #[test]
    fn transient_faults_recover_within_the_schedule() {
        let crawler = crawler();
        let registry = Registry::new();
        let ctx = FaultContext {
            plan: FaultPlan::new(0xFEED, FaultProfile::flaky()),
            policy: RetryPolicy::default(),
        };
        // Hunt for a seeded schedule where a healthy host hiccups on the
        // first DNS attempt but lands anyway.
        let mut plan = None;
        for seed in 0..4096u64 {
            let candidate = FaultPlan::new(seed, FaultProfile::flaky());
            let first = candidate.dns_fault("a.com", 0);
            if first.is_some_and(|f| !f.persistent)
                && candidate.dns_fault("a.com", 1).is_none()
                && candidate.http_fault("a.com", 0).is_none()
            {
                plan = Some(candidate);
                break;
            }
        }
        let ctx = FaultContext {
            plan: plan.expect("no recovering seed in 4096"),
            ..ctx
        };
        let mut clock = SimClock::new();
        let crawl = crawler.crawl_faulted("a.com", &ctx, &mut clock, &registry);
        assert_eq!(crawl.category, UsageCategory::Meaningful);
        assert_eq!(crawl.resolution.attempts, 2);
        assert!(crawl.faults_injected >= 1);
        assert!(!crawl.terminal_faulted);
        assert_eq!(registry.counter_value("crawler.retry.recovered"), 1);
        assert!(registry.counter_value("crawler.retry.retries") >= 1);
        assert_eq!(registry.stage(ATTEMPTS_HISTOGRAM).calls(), 1);
    }

    #[test]
    fn persistent_faults_exhaust_and_are_attributed() {
        let crawler = crawler();
        // Hunt for a plan that rolls a persistent DNS fault on a healthy host.
        let plan = (0..4096u64)
            .map(|seed| FaultPlan::new(seed, FaultProfile::storm()))
            .find(|p| p.dns_fault("a.com", 0).is_some_and(|f| f.persistent))
            .expect("no persistent seed in 4096");
        let ctx = FaultContext {
            plan,
            policy: RetryPolicy::default(),
        };
        let registry = Registry::new();
        let mut clock = SimClock::new();
        let crawl = crawler.crawl_faulted("a.com", &ctx, &mut clock, &registry);
        assert_eq!(crawl.category, UsageCategory::NotResolved);
        assert!(crawl.resolution.exhausted);
        assert!(crawl.terminal_faulted, "fault-made verdict not attributed");
        assert_eq!(crawl.http_attempts, 0);
        assert_eq!(registry.counter_value("crawler.retry.exhausted"), 1);
    }

    #[test]
    fn schedules_replay_byte_identically() {
        let crawler = crawler();
        let ctx = FaultContext {
            plan: FaultPlan::new(2024, FaultProfile::storm()),
            policy: RetryPolicy::default(),
        };
        let run = || {
            let registry = Registry::new();
            let mut verdicts = Vec::new();
            for domain in ["a.com", "b.com", "c.com", "nx.com"] {
                let mut clock = SimClock::new();
                verdicts.push(crawler.crawl_faulted(domain, &ctx, &mut clock, &registry));
            }
            (verdicts, registry.snapshot().render_deterministic_json())
        };
        let (v1, c1) = run();
        let (v2, c2) = run();
        assert_eq!(v1, v2);
        assert_eq!(c1, c2);
    }
}
