//! The HTTP layer of the crawl: homepages and fetch outcomes.

use crate::dns::ResolutionOutcome;

/// What kind of page a host serves.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PageKind {
    /// A parking lander with ads.
    Parking,
    /// A "this domain is for sale" lander.
    ForSale,
    /// A blank page (HTTP 200, no content).
    Empty,
    /// A redirect to another location.
    Redirect(String),
    /// A real website.
    Content,
}

/// A fetched homepage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    /// HTTP status code.
    pub status: u16,
    /// The `<title>` — what title-displaying mobile browsers put in the
    /// address bar (Table XI's "Title" rows).
    pub title: String,
    /// Page class.
    pub kind: PageKind,
}

impl Page {
    /// Creates a page.
    pub fn new(status: u16, title: &str, kind: PageKind) -> Self {
        Page {
            status,
            title: title.to_string(),
            kind,
        }
    }
}

/// Terminal outcome of the resolve-then-fetch sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FetchOutcome {
    /// Resolution failed; no connection was attempted.
    DnsFailure(ResolutionOutcome),
    /// Resolution succeeded but no web server answered (or it answered
    /// with a transport/HTTP failure).
    ConnectionError,
    /// A page came back.
    Http(Page),
}

/// Performs the fetch step given a resolution outcome and the page the
/// host would serve (if any).
pub fn fetch(resolution: &ResolutionOutcome, page: Option<&Page>) -> FetchOutcome {
    match resolution {
        ResolutionOutcome::Resolved(_) => match page {
            Some(page) if page.status >= 500 => FetchOutcome::ConnectionError,
            Some(page) => FetchOutcome::Http(page.clone()),
            None => FetchOutcome::ConnectionError,
        },
        other => FetchOutcome::DnsFailure(*other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn dns_failures_short_circuit() {
        let outcome = fetch(&ResolutionOutcome::Refused, None);
        assert_eq!(
            outcome,
            FetchOutcome::DnsFailure(ResolutionOutcome::Refused)
        );
    }

    #[test]
    fn resolved_without_server_is_connection_error() {
        let resolved = ResolutionOutcome::Resolved(Ipv4Addr::LOCALHOST);
        assert_eq!(fetch(&resolved, None), FetchOutcome::ConnectionError);
    }

    #[test]
    fn server_errors_are_connection_errors() {
        let resolved = ResolutionOutcome::Resolved(Ipv4Addr::LOCALHOST);
        let page = Page::new(503, "oops", PageKind::Content);
        assert_eq!(fetch(&resolved, Some(&page)), FetchOutcome::ConnectionError);
    }

    #[test]
    fn pages_pass_through() {
        let resolved = ResolutionOutcome::Resolved(Ipv4Addr::LOCALHOST);
        let page = Page::new(200, "Shop", PageKind::Content);
        assert_eq!(fetch(&resolved, Some(&page)), FetchOutcome::Http(page));
    }
}
