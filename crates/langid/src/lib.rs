//! Language identification for internationalized domain names.
//!
//! Re-implements the approach of LangID (Lui & Baldwin) at the scale a
//! domain-label classifier needs: a multinomial naive-Bayes model over
//! character uni- and bi-grams, trained on an embedded multilingual seed
//! corpus, with Unicode-script priors narrowing the candidate set first
//! (Hangul → Korean, kana → Japanese, Han → {Chinese, Japanese}, …).
//!
//! The paper (Table II) classifies 1.4M IDNs into 15 top languages; this
//! crate covers those 15 plus English.
//!
//! # Examples
//!
//! ```
//! use idnre_langid::{Classifier, Language};
//!
//! let clf = Classifier::global();
//! assert_eq!(clf.classify("彩票"), Language::Chinese);
//! assert_eq!(clf.classify("ニュース"), Language::Japanese);
//! assert_eq!(clf.classify("뉴스"), Language::Korean);
//! assert_eq!(clf.classify("münchen"), Language::German);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod model;

pub use corpus::vocabulary;
pub use model::{Classifier, Prediction};

use std::fmt;

/// The languages the classifier distinguishes — the paper's Table II top-15
/// plus English (for ASCII-heavy labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Language {
    /// Mandarin Chinese (simplified or traditional Han).
    Chinese,
    /// Japanese (kana and/or kanji).
    Japanese,
    /// Korean (Hangul).
    Korean,
    /// German.
    German,
    /// Turkish.
    Turkish,
    /// Thai.
    Thai,
    /// Swedish.
    Swedish,
    /// Spanish.
    Spanish,
    /// French.
    French,
    /// Finnish.
    Finnish,
    /// Russian.
    Russian,
    /// Hungarian.
    Hungarian,
    /// Arabic.
    Arabic,
    /// Danish.
    Danish,
    /// Persian (Farsi).
    Persian,
    /// Vietnamese (Latin with stacked diacritics — the script whose
    /// characters power many Table VIII homographs).
    Vietnamese,
    /// Greek.
    Greek,
    /// Hebrew.
    Hebrew,
    /// English.
    English,
    /// Could not be determined (empty input or unmodelled script).
    Unknown,
}

impl Language {
    /// All concrete languages (excludes [`Language::Unknown`]).
    pub const ALL: [Language; 19] = [
        Language::Chinese,
        Language::Japanese,
        Language::Korean,
        Language::German,
        Language::Turkish,
        Language::Thai,
        Language::Swedish,
        Language::Spanish,
        Language::French,
        Language::Finnish,
        Language::Russian,
        Language::Hungarian,
        Language::Arabic,
        Language::Danish,
        Language::Persian,
        Language::Vietnamese,
        Language::Greek,
        Language::Hebrew,
        Language::English,
    ];

    /// Dense `u8` id for columnar storage: the index in [`Language::ALL`],
    /// with [`Language::Unknown`] mapped to `ALL.len()`.
    pub fn id(self) -> u8 {
        match self {
            Language::Unknown => Language::ALL.len() as u8,
            lang => Language::ALL
                .iter()
                .position(|&l| l == lang)
                .expect("every concrete language is in ALL") as u8,
        }
    }

    /// Inverse of [`Language::id`]; out-of-range ids decode to
    /// [`Language::Unknown`].
    pub fn from_id(id: u8) -> Language {
        Language::ALL
            .get(usize::from(id))
            .copied()
            .unwrap_or(Language::Unknown)
    }

    /// Whether the language is spoken primarily in east Asia — the grouping
    /// behind the paper's Finding 1 (">75% of IDNs are in east-Asian
    /// languages": Chinese, Japanese, Korean, Thai).
    pub fn is_east_asian(self) -> bool {
        matches!(
            self,
            Language::Chinese | Language::Japanese | Language::Korean | Language::Thai
        )
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Language::Chinese => "Chinese",
            Language::Japanese => "Japanese",
            Language::Korean => "Korean",
            Language::German => "German",
            Language::Turkish => "Turkish",
            Language::Thai => "Thai",
            Language::Swedish => "Swedish",
            Language::Spanish => "Spanish",
            Language::French => "French",
            Language::Finnish => "Finnish",
            Language::Russian => "Russian",
            Language::Hungarian => "Hungarian",
            Language::Arabic => "Arabic",
            Language::Danish => "Danish",
            Language::Persian => "Persian",
            Language::Vietnamese => "Vietnamese",
            Language::Greek => "Greek",
            Language::Hebrew => "Hebrew",
            Language::English => "English",
            Language::Unknown => "Unknown",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn east_asian_grouping_matches_finding_1() {
        assert!(Language::Chinese.is_east_asian());
        assert!(Language::Thai.is_east_asian());
        assert!(!Language::German.is_east_asian());
        assert!(!Language::Russian.is_east_asian());
    }

    #[test]
    fn all_excludes_unknown() {
        assert!(!Language::ALL.contains(&Language::Unknown));
        assert_eq!(Language::ALL.len(), 19);
    }

    #[test]
    fn id_round_trips() {
        for lang in Language::ALL {
            assert_eq!(Language::from_id(lang.id()), lang);
        }
        assert_eq!(Language::from_id(Language::Unknown.id()), Language::Unknown);
        assert_eq!(Language::from_id(255), Language::Unknown);
    }

    #[test]
    fn display_names() {
        assert_eq!(Language::Chinese.to_string(), "Chinese");
        assert_eq!(Language::Unknown.to_string(), "Unknown");
    }
}
