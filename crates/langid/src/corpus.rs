//! Embedded multilingual seed corpus.
//!
//! Each language contributes a list of vocabulary items of the kind that
//! appears in domain labels (place names, commerce terms, common nouns).
//! These train the naive-Bayes model; they also seed the synthetic IDN
//! generator in `idnre-datagen`, which keeps the generated corpus and the
//! classifier consistent by construction.

use crate::Language;

/// Seed vocabulary for one language.
pub fn vocabulary(lang: Language) -> &'static [&'static str] {
    match lang {
        Language::Chinese => &[
            "中国", "北京", "上海", "广州", "深圳", "重庆", "成都", "彩票", "博彩", "购物",
            "新闻", "游戏", "娱乐", "公司", "网站", "手机", "汽车", "旅游", "酒店", "银行",
            "保险", "学校", "大学", "医院", "商城", "书店", "音乐", "电影", "小说", "财经",
            "体育", "健康", "美食", "天气", "地图", "招聘", "房产", "家居", "教育", "科技",
            "软件", "下载", "视频", "直播", "商店", "超市", "快递", "物流", "装修", "婚庆",
            "美容", "减肥", "股票", "基金", "贷款", "信用卡", "棋牌", "六合彩", "赌场", "投注",
            "时时彩", "百家乐", "开户", "注册", "售后", "客服", "登录", "激活", "邮箱", "空调",
        ],
        Language::Japanese => &[
            "日本", "東京", "大阪", "京都", "横浜", "名古屋", "札幌", "ニュース", "ショップ",
            "ゲーム", "会社", "ホテル", "さくら", "かわいい", "ありがとう", "おすすめ",
            "らーめん", "すし", "てんぷら", "まつり", "はなび", "ふじさん", "おんせん",
            "りょかん", "くるま", "でんしゃ", "ひこうき", "がっこう", "だいがく", "びょういん",
            "ぎんこう", "ほけん", "ふどうさん", "きもの", "アニメ", "マンガ", "カラオケ",
            "パチンコ", "サッカー", "やきゅう", "音楽", "映画", "旅行", "天気", "地図",
            "求人", "不動産", "きょういく", "結婚", "びよう", "無料", "通販", "格安", "予約",
        ],
        Language::Korean => &[
            "한국", "서울", "부산", "인천", "대구", "대전", "광주", "뉴스", "쇼핑", "게임",
            "회사", "호텔", "무료", "사랑", "음악", "영화", "여행", "날씨", "지도", "채용",
            "부동산", "교육", "결혼", "미용", "건강", "음식", "김치", "불고기", "비빔밥",
            "태권도", "노래방", "찜질방", "대학교", "병원", "은행", "보험", "자동차", "휴대폰",
            "컴퓨터", "인터넷", "카페", "블로그", "배달", "택배", "할인", "쿠폰", "이벤트",
        ],
        Language::German => &[
            "münchen", "berlin", "hamburg", "köln", "frankfurt", "stuttgart", "düsseldorf",
            "straße", "bücher", "schön", "kaufen", "haus", "geld", "über", "für",
            "nachrichten", "zeitung", "wetter", "auto", "versicherung", "krankenkasse",
            "möbel", "küche", "schule", "universität", "krankenhaus", "sparkasse", "reisen",
            "urlaub", "gasthaus", "flug", "bahn", "fußball", "musikverein", "spiele", "günstig",
            "kostenlos", "angebote", "geschäft", "handwerk", "bäckerei", "metzgerei",
            "apotheke", "friseur", "gärtnerei", "würstchen", "brötchen", "müller", "schäfer",
        ],
        Language::Turkish => &[
            "istanbul", "ankara", "izmir", "bursa", "antalya", "türkiye", "güzel", "şehir",
            "haber", "oyun", "müzik", "alışveriş", "ücretsiz", "açık", "çiçek", "şirket",
            "otel", "uçak", "otobüs", "araba", "sigorta", "banka", "okul", "üniversite",
            "hastane", "sağlık", "yemek", "döner", "kebap", "baklava", "çay", "kahve",
            "futbol", "spor", "hava", "harita", "eğitim", "düğün", "güvenlik", "yazılım",
            "bilgisayar", "telefon", "indirim", "kupon", "kargo", "ödeme", "üyelik",
        ],
        Language::Thai => &[
            "ไทย", "กรุงเทพ", "เชียงใหม่", "ภูเก็ต", "พัทยา", "ข่าว", "เกม", "ฟรี",
            "ช้อปปิ้ง", "โรงแรม", "บริษัท", "เพลง", "หนัง", "ท่องเที่ยว", "อากาศ",
            "แผนที่", "งาน", "อสังหา", "การศึกษา", "แต่งงาน", "ความงาม", "สุขภาพ",
            "อาหาร", "ต้มยำ", "ส้มตำ", "มวยไทย", "ฟุตบอล", "หวย", "คาสิโน", "บาคาร่า",
            "แทงบอล", "สมัคร", "โปรโมชั่น", "ส่วนลด", "ธนาคาร", "ประกัน", "รถยนต์",
        ],
        Language::Swedish => &[
            "stockholm", "göteborg", "malmö", "uppsala", "västerås", "sverige", "köpa",
            "billig", "nyheter", "väder", "aktiebolag", "företag", "hotell", "resor",
            "flyg", "tåg", "bil", "försäkring", "bank", "skola", "universitet", "sjukhus",
            "hälsa", "mat", "köttbullar", "fika", "musik", "spel", "fotboll", "gratis",
            "erbjudande", "butik", "bageri", "apotek", "frisör", "trädgård", "möbler",
            "kök", "bröllop", "skönhet", "jobb", "bostäder", "utbildning", "lägenhet",
        ],
        Language::Spanish => &[
            "españa", "madrid", "barcelona", "sevilla", "valencia", "méxico", "compañía",
            "niño", "años", "información", "tienda", "jardín", "noticias", "tiempo",
            "coche", "seguro", "banco", "escuela", "universidad", "clínica", "salud",
            "comida", "paella", "jamón", "música", "juegos", "fútbol", "regalo",
            "ofertas", "panadería", "farmacia", "peluquería", "muebles", "cocina",
            "boda", "belleza", "trabajo", "educación", "viajes", "hostal", "vuelos",
            "teléfono", "ordenador", "descuento", "envío", "pequeño", "señor", "mañana",
        ],
        Language::French => &[
            "français", "paris", "lyon", "marseille", "toulouse", "hôtel", "café",
            "être", "où", "déjà", "société", "achat", "vêtements", "nouvelles", "météo",
            "voiture", "assurance", "banque", "école", "université", "hôpital", "santé",
            "cuisine", "fromage", "boulangerie", "pâtisserie", "musique", "jeux",
            "pétanque", "gratuit", "offres", "pharmacie", "coiffeur", "meubles",
            "mariage", "beauté", "travail", "éducation", "voyages", "vols", "téléphone",
            "ordinateur", "réduction", "livraison", "château", "élève", "très", "crème",
        ],
        Language::Finnish => &[
            "suomi", "helsinki", "tampere", "turku", "oulu", "espoo", "yhtiö", "myydään",
            "halpa", "sää", "uutiset", "pelit", "hotelli", "matkat", "lennot", "juna",
            "autot", "vakuutus", "pankki", "koulu", "yliopisto", "sairaala", "terveys",
            "ruoka", "sauna", "järvi", "mökki", "musiikki", "jalkapallo", "jääkiekko",
            "ilmainen", "tarjoukset", "kauppa", "leipomo", "apteekki", "kampaamo",
            "huonekalut", "keittiö", "häät", "kauneus", "työpaikat", "asunnot", "koulutus",
        ],
        Language::Russian => &[
            "россия", "москва", "петербург", "новосибирск", "екатеринбург", "новости",
            "погода", "купить", "бесплатно", "игры", "музыка", "фильмы", "путешествия",
            "карта", "работа", "недвижимость", "образование", "свадьба", "красота",
            "здоровье", "еда", "борщ", "пельмени", "футбол", "хоккей", "гостиница",
            "компания", "банк", "страхование", "школа", "университет", "больница",
            "машина", "телефон", "компьютер", "скидка", "доставка", "магазин", "аптека",
        ],
        Language::Hungarian => &[
            "magyarország", "budapest", "debrecen", "szeged", "miskolc", "hírek",
            "időjárás", "olcsó", "játék", "zene", "vásárlás", "ingyenes", "szálloda",
            "utazás", "repülő", "vonat", "autó", "biztosítás", "bankok", "iskola",
            "egyetem", "kórház", "egészség", "étel", "gulyás", "lángos", "pálinka",
            "labdarúgás", "ajánlatok", "üzlet", "pékség", "gyógyszertár", "fodrász",
            "bútor", "konyha", "esküvő", "szépség", "munka", "ingatlan", "oktatás",
        ],
        Language::Arabic => &[
            "العربية", "مصر", "السعودية", "الإمارات", "الكويت", "قطر", "أخبار", "سوق",
            "شراء", "موقع", "مجاني", "ألعاب", "موسيقى", "أفلام", "سفر", "طقس", "خريطة",
            "وظائف", "عقارات", "تعليم", "زواج", "جمال", "صحة", "طعام", "فندق", "شركة",
            "بنك", "تأمين", "مدرسة", "جامعة", "مستشفى", "سيارة", "هاتف", "حاسوب",
            "خصم", "توصيل", "متجر", "صيدلية", "مطعم", "قهوة",
        ],
        Language::Danish => &[
            "danmark", "københavn", "aarhus", "odense", "aalborg", "nyheder", "vejr",
            "køb", "billigst", "spil", "sange", "film", "rejser", "flybilletter", "tog", "biler",
            "forsikring", "sparekasse", "skole", "universiteter", "sygehus", "sundhed", "mad",
            "smørrebrød", "rugbrød", "hygge", "fodbold", "gratis", "tilbud", "forretning",
            "bagerier", "apoteket", "frisør", "møbler", "køkken", "bryllup", "skønhed",
            "arbejde", "boliger", "uddannelse", "lejlighed", "værksted", "gård",
        ],
        Language::Persian => &[
            "ایران", "تهران", "مشهد", "اصفهان", "شیراز", "تبریز", "اخبار", "بازار",
            "خرید", "رایگان", "بازی", "موسیقی", "فیلم", "گردشگری", "هوا", "نقشه", "شغل",
            "املاک", "آموزش", "عروسی", "زیبایی", "سلامت", "غذا", "کباب", "هتل",
            "شرکت", "بانک", "بیمه", "مدرسه", "دانشگاه", "بیمارستان", "ماشین", "گوشی",
            "رایانه", "تخفیف", "ارسال", "فروشگاه", "داروخانه", "رستوران", "چای",
        ],
        Language::Vietnamese => &[
            "việtnam", "hànội", "sàigòn", "đànẵng", "huế", "dulịch", "kháchsạn",
            "tintức", "muasắm", "trựctuyến", "giảitrí", "âmnhạc", "phimảnh",
            "thểthao", "sứckhỏe", "ẩmthực", "phởbò", "bánhmì", "càphê",
            "hoatươi", "nhàđất", "việclàm", "giáodục", "đámcưới", "làmđẹp",
            "ngânhàng", "bảohiểm", "xehơi", "điệnthoại", "máytính", "giảmgiá",
            "giaohàng", "cửahàng", "nhàthuốc", "nhàhàng", "khuyếnmãi",
            "miễnphí", "trườnghọc", "bệnhviện", "thờitiết", "bảnđồ",
        ],
        Language::Greek => &[
            "ελλάδα", "αθήνα", "θεσσαλονίκη", "πάτρα", "κρήτη", "νέα",
            "καιρός", "αγορά", "παιχνίδια", "μουσική", "ταινίες", "ταξίδια",
            "ξενοδοχείο", "εταιρεία", "τράπεζα", "ασφάλεια", "σχολείο",
            "πανεπιστήμιο", "νοσοκομείο", "υγεία", "φαγητό", "σουβλάκι",
            "ποδόσφαιρο", "δωρεάν", "προσφορές", "κατάστημα", "φαρμακείο",
            "κομμωτήριο", "έπιπλα", "κουζίνα", "γάμος", "ομορφιά", "εργασία",
            "ακίνητα", "εκπαίδευση", "αυτοκίνητο", "τηλέφωνο", "υπολογιστής",
        ],
        Language::Hebrew => &[
            "ישראל", "תלאביב", "ירושלים", "חיפה", "אילת", "חדשות",
            "מזגאוויר", "קניות", "משחקים", "מוזיקה", "סרטים", "טיולים",
            "מלון", "חברה", "בנק", "ביטוח", "ביתספר", "אוניברסיטה",
            "ביתחולים", "בריאות", "אוכל", "פלאפל", "כדורגל", "חינם",
            "מבצעים", "חנות", "ביתמרקחת", "מספרה", "רהיטים", "מטבח",
            "חתונה", "יופי", "עבודה", "נדלן", "חינוך", "מכונית", "טלפון",
        ],
        Language::English => &[
            "online", "news", "free", "games", "store", "world", "best", "shop", "blog",
            "travel", "hotel", "flights", "weather", "maps", "jobs", "realestate",
            "education", "wedding", "beauty", "health", "food", "pizza", "music",
            "movies", "football", "deals", "bakery", "pharmacy", "salon", "furniture",
            "kitchen", "work", "homes", "school", "university", "clinics", "insurance",
            "banking", "cars", "phones", "computers", "discount", "delivery", "market",
            "service", "cloud", "login", "account", "secure", "payment", "support",
        ],
        Language::Unknown => &[],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_language_has_vocabulary() {
        for lang in Language::ALL {
            assert!(
                vocabulary(lang).len() >= 30,
                "{lang} corpus too small ({})",
                vocabulary(lang).len()
            );
        }
        assert!(vocabulary(Language::Unknown).is_empty());
    }

    #[test]
    fn vocabularies_are_mostly_disjoint() {
        // A small amount of overlap is tolerable, but corpora must not be
        // copies of each other.
        use std::collections::HashSet;
        for a in Language::ALL {
            for b in Language::ALL {
                if a >= b {
                    continue;
                }
                let set_a: HashSet<_> = vocabulary(a).iter().collect();
                let overlap = vocabulary(b).iter().filter(|w| set_a.contains(*w)).count();
                assert!(
                    overlap * 10 <= vocabulary(b).len(),
                    "{a} and {b} overlap too much ({overlap} items)"
                );
            }
        }
    }
}
