//! Multinomial naive-Bayes classifier over character n-grams with
//! script priors.

use crate::{corpus, Language};
use idnre_unicode::{dominant_script, Script};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A trained language classifier.
///
/// The model is cheap to train (the seed corpus is small); [`Classifier::global`]
/// provides a process-wide instance trained once on first use.
#[derive(Debug)]
pub struct Classifier {
    /// Per-language n-gram log-probabilities.
    models: HashMap<Language, NgramModel>,
}

/// One language's n-gram statistics.
#[derive(Debug, Default)]
struct NgramModel {
    log_probs: HashMap<String, f64>,
    /// Log-probability assigned to unseen n-grams (add-one smoothing mass).
    unseen: f64,
}

/// A scored prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The winning language.
    pub language: Language,
    /// Normalized posterior over the candidate set, in `(0, 1]`.
    pub confidence: f64,
}

impl Classifier {
    /// Trains a classifier from the embedded seed corpus.
    pub fn train() -> Self {
        let mut models = HashMap::new();
        for lang in Language::ALL {
            let mut counts: HashMap<String, u64> = HashMap::new();
            let mut total: u64 = 0;
            for word in corpus::vocabulary(lang) {
                for gram in ngrams(word) {
                    *counts.entry(gram).or_insert(0) += 1;
                    total += 1;
                }
            }
            let vocab_size = counts.len().max(1) as f64;
            let denom = total as f64 + vocab_size + 1.0;
            let log_probs = counts
                .into_iter()
                .map(|(gram, c)| (gram, ((c + 1) as f64 / denom).ln()))
                .collect();
            models.insert(
                lang,
                NgramModel {
                    log_probs,
                    unseen: (1.0 / denom).ln(),
                },
            );
        }
        Classifier { models }
    }

    /// The process-wide classifier, trained on first use.
    pub fn global() -> &'static Classifier {
        static GLOBAL: OnceLock<Classifier> = OnceLock::new();
        GLOBAL.get_or_init(Classifier::train)
    }

    /// Classifies `text` (typically the Unicode form of an IDN label).
    ///
    /// # Examples
    ///
    /// ```
    /// use idnre_langid::{Classifier, Language};
    /// assert_eq!(Classifier::global().classify("彩票"), Language::Chinese);
    /// ```
    pub fn classify(&self, text: &str) -> Language {
        self.classify_detailed(text).language
    }

    /// Classifies `text`, returning the winner and its normalized posterior.
    pub fn classify_detailed(&self, text: &str) -> Prediction {
        let cleaned = clean(text);
        if cleaned.is_empty() {
            return Prediction {
                language: Language::Unknown,
                confidence: 1.0,
            };
        }
        let candidates = candidates_for(&cleaned);
        if candidates.is_empty() {
            return Prediction {
                language: Language::Unknown,
                confidence: 1.0,
            };
        }
        if candidates.len() == 1 {
            return Prediction {
                language: candidates[0],
                confidence: 1.0,
            };
        }
        let grams: Vec<String> = ngrams(&cleaned).collect();
        let mut scores: Vec<(Language, f64)> = candidates
            .iter()
            .map(|&lang| {
                let model = &self.models[&lang];
                let log_likelihood: f64 = grams
                    .iter()
                    .map(|g| model.log_probs.get(g).copied().unwrap_or(model.unseen))
                    .sum();
                (lang, log_likelihood)
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite log-likelihoods"));
        // Softmax-normalize for a comparable confidence.
        let max = scores[0].1;
        let z: f64 = scores.iter().map(|&(_, s)| (s - max).exp()).sum();
        Prediction {
            language: scores[0].0,
            confidence: 1.0 / z * (scores[0].1 - max).exp().max(f64::MIN_POSITIVE),
        }
    }
}

/// Strips digits, punctuation and whitespace; lowercases.
fn clean(text: &str) -> String {
    text.chars()
        .filter(|c| !c.is_ascii_digit() && !matches!(c, '-' | '.' | '_' | ' '))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Character uni-, bi- and tri-grams with boundary markers.
fn ngrams(word: &str) -> impl Iterator<Item = String> + '_ {
    let chars: Vec<char> = std::iter::once('^')
        .chain(word.chars())
        .chain(std::iter::once('$'))
        .collect();
    let unigrams: Vec<String> = chars.iter().map(|c| c.to_string()).collect();
    let bigrams: Vec<String> = chars.windows(2).map(|w| w.iter().collect()).collect();
    let trigrams: Vec<String> = chars.windows(3).map(|w| w.iter().collect()).collect();
    unigrams.into_iter().chain(bigrams).chain(trigrams)
}

/// Script prior: restricts the candidate languages by dominant script.
fn candidates_for(cleaned: &str) -> Vec<Language> {
    match dominant_script(cleaned) {
        Script::Hiragana | Script::Katakana => vec![Language::Japanese],
        Script::Hangul => vec![Language::Korean],
        Script::Thai => vec![Language::Thai],
        Script::Han => vec![Language::Chinese, Language::Japanese],
        Script::Arabic => vec![Language::Arabic, Language::Persian],
        Script::Cyrillic => vec![Language::Russian],
        Script::Greek => vec![Language::Greek],
        Script::Hebrew => vec![Language::Hebrew],
        Script::Latin => vec![
            Language::German,
            Language::Turkish,
            Language::Swedish,
            Language::Spanish,
            Language::French,
            Language::Finnish,
            Language::Hungarian,
            Language::Danish,
            Language::Vietnamese,
            Language::English,
        ],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clf() -> &'static Classifier {
        Classifier::global()
    }

    #[test]
    fn script_bound_languages() {
        assert_eq!(clf().classify("ニュース"), Language::Japanese);
        assert_eq!(clf().classify("ひらがな"), Language::Japanese);
        assert_eq!(clf().classify("뉴스쇼핑"), Language::Korean);
        assert_eq!(clf().classify("ข่าวเกม"), Language::Thai);
        assert_eq!(clf().classify("новости"), Language::Russian);
    }

    #[test]
    fn han_disambiguation() {
        // Pure simplified-Chinese commerce terms → Chinese.
        assert_eq!(clf().classify("彩票"), Language::Chinese);
        assert_eq!(clf().classify("购物网站"), Language::Chinese);
        // Kanji + kana mix → Japanese (kana dominates the script vote when
        // present in equal measure; here kana wins via Han+kana mix).
        assert_eq!(clf().classify("日本のニュース"), Language::Japanese);
    }

    #[test]
    fn latin_languages() {
        assert_eq!(clf().classify("münchen"), Language::German);
        assert_eq!(clf().classify("alışveriş"), Language::Turkish);
        assert_eq!(clf().classify("göteborg"), Language::Swedish);
        assert_eq!(clf().classify("información"), Language::Spanish);
        assert_eq!(clf().classify("pâtisserie"), Language::French);
        assert_eq!(clf().classify("jääkiekko"), Language::Finnish);
        assert_eq!(clf().classify("időjárás"), Language::Hungarian);
        assert_eq!(clf().classify("smørrebrød"), Language::Danish);
    }

    #[test]
    fn arabic_vs_persian() {
        assert_eq!(clf().classify("أخبار"), Language::Arabic);
        assert_eq!(clf().classify("اخبار ایران"), Language::Persian);
    }

    #[test]
    fn digits_and_punctuation_ignored() {
        assert_eq!(clf().classify("58汽车"), Language::Chinese);
        assert_eq!(clf().classify("彩票-123"), Language::Chinese);
    }

    #[test]
    fn empty_and_unmodelled_are_unknown() {
        assert_eq!(clf().classify(""), Language::Unknown);
        assert_eq!(clf().classify("123-456"), Language::Unknown);
        // Devanagari is not in the model's language set.
        assert_eq!(clf().classify("समाचार"), Language::Unknown);
    }

    #[test]
    fn tail_languages() {
        assert_eq!(clf().classify("χαλκίδα νέα"), Language::Greek);
        assert_eq!(clf().classify("חדשות"), Language::Hebrew);
        assert_eq!(clf().classify("dulịch"), Language::Vietnamese);
        assert_eq!(clf().classify("kháchsạn"), Language::Vietnamese);
    }

    #[test]
    fn confidence_is_normalized() {
        let p = clf().classify_detailed("münchen");
        assert!(p.confidence > 0.0 && p.confidence <= 1.0);
        let single = clf().classify_detailed("뉴스");
        assert_eq!(single.confidence, 1.0);
    }

    #[test]
    fn seed_corpus_self_classification_accuracy() {
        // The paper reports 0.904–0.992 accuracy for langid.py. On our own
        // seed corpus (training data) accuracy should be near-perfect.
        let mut correct = 0u32;
        let mut total = 0u32;
        for lang in Language::ALL {
            for word in crate::corpus::vocabulary(lang) {
                total += 1;
                if clf().classify(word) == lang {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.9, "self-accuracy {accuracy} below 0.9");
    }
}
