//! Multinomial naive-Bayes classifier over character n-grams with
//! script priors.

use crate::{corpus, Language};
use idnre_unicode::{dominant_script, Script};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A trained language classifier.
///
/// The model is cheap to train (the seed corpus is small); [`Classifier::global`]
/// provides a process-wide instance trained once on first use.
#[derive(Debug)]
pub struct Classifier {
    /// Per-language n-gram log-probabilities.
    models: HashMap<Language, NgramModel>,
}

/// One language's n-gram statistics.
///
/// N-grams are keyed by their [packed](pack_gram) `u64` form rather than a
/// `String`: a 1–3 char gram fits three 21-bit codepoint slots (each stored
/// as `cp + 1` so zero means "no char"), which is bijective with the gram
/// text — probabilities are identical to the string-keyed model, but lookups
/// hash 8 bytes and classification allocates no gram strings.
#[derive(Debug, Default)]
struct NgramModel {
    log_probs: HashMap<u64, f64>,
    /// Log-probability assigned to unseen n-grams (add-one smoothing mass).
    unseen: f64,
}

/// A scored prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The winning language.
    pub language: Language,
    /// Normalized posterior over the candidate set, in `(0, 1]`.
    pub confidence: f64,
}

impl Classifier {
    /// Trains a classifier from the embedded seed corpus.
    pub fn train() -> Self {
        let mut models = HashMap::new();
        for lang in Language::ALL {
            let mut counts: HashMap<u64, u64> = HashMap::new();
            let mut total: u64 = 0;
            for word in corpus::vocabulary(lang) {
                for gram in ngrams(word) {
                    *counts.entry(gram).or_insert(0) += 1;
                    total += 1;
                }
            }
            let vocab_size = counts.len().max(1) as f64;
            let denom = total as f64 + vocab_size + 1.0;
            let log_probs = counts
                .into_iter()
                .map(|(gram, c)| (gram, ((c + 1) as f64 / denom).ln()))
                .collect();
            models.insert(
                lang,
                NgramModel {
                    log_probs,
                    unseen: (1.0 / denom).ln(),
                },
            );
        }
        Classifier { models }
    }

    /// The process-wide classifier, trained on first use.
    pub fn global() -> &'static Classifier {
        static GLOBAL: OnceLock<Classifier> = OnceLock::new();
        GLOBAL.get_or_init(Classifier::train)
    }

    /// Classifies `text` (typically the Unicode form of an IDN label).
    ///
    /// # Examples
    ///
    /// ```
    /// use idnre_langid::{Classifier, Language};
    /// assert_eq!(Classifier::global().classify("彩票"), Language::Chinese);
    /// ```
    pub fn classify(&self, text: &str) -> Language {
        self.classify_detailed(text).language
    }

    /// Classifies `text`, returning the winner and its normalized posterior.
    pub fn classify_detailed(&self, text: &str) -> Prediction {
        let cleaned = clean(text);
        if cleaned.is_empty() {
            return Prediction {
                language: Language::Unknown,
                confidence: 1.0,
            };
        }
        let candidates = candidates_for(&cleaned);
        if candidates.is_empty() {
            return Prediction {
                language: Language::Unknown,
                confidence: 1.0,
            };
        }
        if candidates.len() == 1 {
            return Prediction {
                language: candidates[0],
                confidence: 1.0,
            };
        }
        let grams: Vec<u64> = ngrams(&cleaned).collect();
        let mut scores: Vec<(Language, f64)> = candidates
            .iter()
            .map(|&lang| {
                let model = &self.models[&lang];
                let log_likelihood: f64 = grams
                    .iter()
                    .map(|g| model.log_probs.get(g).copied().unwrap_or(model.unseen))
                    .sum();
                (lang, log_likelihood)
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite log-likelihoods"));
        // Softmax-normalize for a comparable confidence.
        let max = scores[0].1;
        let z: f64 = scores.iter().map(|&(_, s)| (s - max).exp()).sum();
        Prediction {
            language: scores[0].0,
            confidence: 1.0 / z * (scores[0].1 - max).exp().max(f64::MIN_POSITIVE),
        }
    }
}

/// Byte classes for the ASCII fast path of [`clean`], indexed by byte value.
/// `0` = keep (lowercase unchanged), `1` = drop, `2` = keep after
/// `to_ascii_lowercase`. Bytes ≥ 0x80 never consult the table.
const CLEAN_CLASS: [u8; 128] = {
    let mut table = [0u8; 128];
    let mut b = 0usize;
    while b < 128 {
        table[b] = match b as u8 {
            b'0'..=b'9' | b'-' | b'.' | b'_' | b' ' => 1,
            b'A'..=b'Z' => 2,
            _ => 0,
        };
        b += 1;
    }
    table
};

/// Strips digits, punctuation and whitespace; lowercases.
fn clean(text: &str) -> String {
    if text.is_ascii() {
        // Byte-table fast path: ASCII lowercasing is 1:1, so the generic
        // `char::to_lowercase` expansion can't differ here.
        return text
            .bytes()
            .filter(|&b| CLEAN_CLASS[b as usize] != 1)
            .map(|b| {
                if CLEAN_CLASS[b as usize] == 2 {
                    b.to_ascii_lowercase()
                } else {
                    b
                }
            })
            .map(char::from)
            .collect();
    }
    text.chars()
        .filter(|c| !c.is_ascii_digit() && !matches!(c, '-' | '.' | '_' | ' '))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Packs a 1–3 char n-gram into a `u64`: three 21-bit slots holding
/// `codepoint + 1` (0 = empty slot). Unicode scalar values fit 21 bits, and
/// `+ 1` keeps a leading NUL distinct from an absent char, so the packing is
/// injective over all grams up to length 3.
fn pack_gram(gram: &[char]) -> u64 {
    let mut packed = 0u64;
    for &c in gram {
        packed = (packed << 21) | (c as u64 + 1);
    }
    packed
}

/// Character uni-, bi- and tri-grams with boundary markers, in packed form.
fn ngrams(word: &str) -> impl Iterator<Item = u64> + '_ {
    let chars: Vec<char> = std::iter::once('^')
        .chain(word.chars())
        .chain(std::iter::once('$'))
        .collect();
    let unigrams: Vec<u64> = chars.iter().map(|&c| pack_gram(&[c])).collect();
    let bigrams: Vec<u64> = chars.windows(2).map(pack_gram).collect();
    let trigrams: Vec<u64> = chars.windows(3).map(pack_gram).collect();
    unigrams.into_iter().chain(bigrams).chain(trigrams)
}

/// Script prior: restricts the candidate languages by dominant script.
fn candidates_for(cleaned: &str) -> Vec<Language> {
    match dominant_script(cleaned) {
        Script::Hiragana | Script::Katakana => vec![Language::Japanese],
        Script::Hangul => vec![Language::Korean],
        Script::Thai => vec![Language::Thai],
        Script::Han => vec![Language::Chinese, Language::Japanese],
        Script::Arabic => vec![Language::Arabic, Language::Persian],
        Script::Cyrillic => vec![Language::Russian],
        Script::Greek => vec![Language::Greek],
        Script::Hebrew => vec![Language::Hebrew],
        Script::Latin => vec![
            Language::German,
            Language::Turkish,
            Language::Swedish,
            Language::Spanish,
            Language::French,
            Language::Finnish,
            Language::Hungarian,
            Language::Danish,
            Language::Vietnamese,
            Language::English,
        ],
        _ => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clf() -> &'static Classifier {
        Classifier::global()
    }

    #[test]
    fn script_bound_languages() {
        assert_eq!(clf().classify("ニュース"), Language::Japanese);
        assert_eq!(clf().classify("ひらがな"), Language::Japanese);
        assert_eq!(clf().classify("뉴스쇼핑"), Language::Korean);
        assert_eq!(clf().classify("ข่าวเกม"), Language::Thai);
        assert_eq!(clf().classify("новости"), Language::Russian);
    }

    #[test]
    fn han_disambiguation() {
        // Pure simplified-Chinese commerce terms → Chinese.
        assert_eq!(clf().classify("彩票"), Language::Chinese);
        assert_eq!(clf().classify("购物网站"), Language::Chinese);
        // Kanji + kana mix → Japanese (kana dominates the script vote when
        // present in equal measure; here kana wins via Han+kana mix).
        assert_eq!(clf().classify("日本のニュース"), Language::Japanese);
    }

    #[test]
    fn latin_languages() {
        assert_eq!(clf().classify("münchen"), Language::German);
        assert_eq!(clf().classify("alışveriş"), Language::Turkish);
        assert_eq!(clf().classify("göteborg"), Language::Swedish);
        assert_eq!(clf().classify("información"), Language::Spanish);
        assert_eq!(clf().classify("pâtisserie"), Language::French);
        assert_eq!(clf().classify("jääkiekko"), Language::Finnish);
        assert_eq!(clf().classify("időjárás"), Language::Hungarian);
        assert_eq!(clf().classify("smørrebrød"), Language::Danish);
    }

    #[test]
    fn arabic_vs_persian() {
        assert_eq!(clf().classify("أخبار"), Language::Arabic);
        assert_eq!(clf().classify("اخبار ایران"), Language::Persian);
    }

    #[test]
    fn digits_and_punctuation_ignored() {
        assert_eq!(clf().classify("58汽车"), Language::Chinese);
        assert_eq!(clf().classify("彩票-123"), Language::Chinese);
    }

    #[test]
    fn empty_and_unmodelled_are_unknown() {
        assert_eq!(clf().classify(""), Language::Unknown);
        assert_eq!(clf().classify("123-456"), Language::Unknown);
        // Devanagari is not in the model's language set.
        assert_eq!(clf().classify("समाचार"), Language::Unknown);
    }

    #[test]
    fn tail_languages() {
        assert_eq!(clf().classify("χαλκίδα νέα"), Language::Greek);
        assert_eq!(clf().classify("חדשות"), Language::Hebrew);
        assert_eq!(clf().classify("dulịch"), Language::Vietnamese);
        assert_eq!(clf().classify("kháchsạn"), Language::Vietnamese);
    }

    #[test]
    fn confidence_is_normalized() {
        let p = clf().classify_detailed("münchen");
        assert!(p.confidence > 0.0 && p.confidence <= 1.0);
        let single = clf().classify_detailed("뉴스");
        assert_eq!(single.confidence, 1.0);
    }

    #[test]
    fn clean_ascii_fast_path_matches_generic() {
        for text in [
            "",
            "abc",
            "ABC-123.def_GHI jkl",
            "x9y",
            "---",
            "Mixed Case 42",
        ] {
            let generic: String = text
                .chars()
                .filter(|c| !c.is_ascii_digit() && !matches!(c, '-' | '.' | '_' | ' '))
                .flat_map(char::to_lowercase)
                .collect();
            assert_eq!(clean(text), generic, "fast path diverged on {text:?}");
        }
    }

    #[test]
    fn packed_grams_are_injective() {
        // Distinct grams that would collide under naive concatenation.
        assert_ne!(pack_gram(&['a', 'b']), pack_gram(&['b', 'a']));
        assert_ne!(pack_gram(&['a']), pack_gram(&['a', '\0']));
        assert_ne!(pack_gram(&['^', 'a', '$']), pack_gram(&['a', '$']));
        // The '+1' offset keeps NUL distinct from absence.
        assert_ne!(pack_gram(&['\0', 'a']), pack_gram(&['a']));
    }

    #[test]
    fn seed_corpus_self_classification_accuracy() {
        // The paper reports 0.904–0.992 accuracy for langid.py. On our own
        // seed corpus (training data) accuracy should be near-perfect.
        let mut correct = 0u32;
        let mut total = 0u32;
        for lang in Language::ALL {
            for word in crate::corpus::vocabulary(lang) {
                total += 1;
                if clf().classify(word) == lang {
                    correct += 1;
                }
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.9, "self-accuracy {accuracy} below 0.9");
    }
}
