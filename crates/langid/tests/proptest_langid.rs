//! Property-based tests for the language classifier.

use idnre_langid::{Classifier, Language};
use proptest::prelude::*;

proptest! {
    /// Classification is total: arbitrary Unicode never panics.
    #[test]
    fn classify_is_total(s in "\\PC{0,32}") {
        let _ = Classifier::global().classify(&s);
    }

    /// Script priors are hard constraints: Hangul text is never classified
    /// as anything but Korean, kana never as anything but Japanese.
    #[test]
    fn script_priors_bind(
        hangul in proptest::collection::vec(proptest::char::range('\u{AC00}', '\u{D7A3}'), 1..8),
        kana in proptest::collection::vec(proptest::char::range('\u{3041}', '\u{3096}'), 1..8),
    ) {
        let clf = Classifier::global();
        let hangul_text: String = hangul.into_iter().collect();
        prop_assert_eq!(clf.classify(&hangul_text), Language::Korean);
        let kana_text: String = kana.into_iter().collect();
        prop_assert_eq!(clf.classify(&kana_text), Language::Japanese);
    }

    /// Cyrillic-only text resolves within the Cyrillic candidate set.
    #[test]
    fn cyrillic_resolves_to_russian(
        chars in proptest::collection::vec(proptest::char::range('\u{0430}', '\u{044F}'), 1..10)
    ) {
        let text: String = chars.into_iter().collect();
        prop_assert_eq!(Classifier::global().classify(&text), Language::Russian);
    }

    /// Digits, dots and hyphens never change the classification.
    #[test]
    fn punctuation_is_transparent(
        word_idx in 0usize..30,
        digits in "[0-9]{0,4}",
    ) {
        let clf = Classifier::global();
        let vocab = idnre_langid::vocabulary(Language::Chinese);
        let word = vocab[word_idx % vocab.len()];
        let plain = clf.classify(word);
        let decorated = format!("{digits}{word}-{digits}");
        prop_assert_eq!(clf.classify(&decorated), plain);
    }

    /// Confidence is always a valid probability.
    #[test]
    fn confidence_in_range(s in "\\PC{0,24}") {
        let p = Classifier::global().classify_detailed(&s);
        prop_assert!(p.confidence > 0.0 && p.confidence <= 1.0 + 1e-12);
    }
}
