//! A hierarchical timeout wheel over virtual time.
//!
//! The scheduler's event loop needs a priority queue of timers — arrival
//! times, attempt completions, retry backoffs, rate-limit deferrals — but
//! a binary heap's pop order under equal keys depends on insertion
//! history in ways that are easy to get subtly wrong. The wheel gives the
//! classic O(1) schedule/advance structure (Varghese & Lauck's
//! hierarchical wheels, the same shape Linux and every serious DNS
//! front-end use) with one extra promise this codebase cares about:
//! **total determinism**. Timers due in the same tick pop in schedule
//! order (a monotonically increasing sequence number breaks ties), so a
//! replay of the same schedule stream pops the same token stream.
//!
//! Granularity: every due time is rounded *up* to the next tick boundary.
//! A timer never fires early, and fires at most one tick late — the
//! invariant the crawl scheduler's deadline contract ("no query exceeds
//! its deadline by more than one wheel tick") is built on.

/// Slots per wheel level. Four levels of 64 cover `64^4` ticks (~4.8 days
/// at the default 1 ms tick) before timers spill into the overflow list.
const SLOTS: u64 = 64;

/// Wheel levels before the overflow list.
const LEVELS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Entry {
    due_tick: u64,
    seq: u64,
    token: u64,
}

/// A hierarchical timing wheel holding opaque `u64` tokens.
///
/// Due times are virtual nanoseconds (the same timeline as
/// [`idnre_fault::SimClock`]); the wheel quantizes them to `tick_nanos`.
#[derive(Debug)]
pub struct TimerWheel {
    tick_nanos: u64,
    /// The next tick that has not been drained yet.
    current_tick: u64,
    levels: Vec<Vec<Vec<Entry>>>,
    overflow: Vec<Entry>,
    ready: std::collections::VecDeque<Entry>,
    seq: u64,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel with the given tick granularity (clamped to ≥ 1 ns).
    pub fn new(tick_nanos: u64) -> Self {
        TimerWheel {
            tick_nanos: tick_nanos.max(1),
            current_tick: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            overflow: Vec::new(),
            ready: std::collections::VecDeque::new(),
            seq: 0,
            len: 0,
        }
    }

    /// The wheel's tick granularity in nanoseconds.
    pub fn tick_nanos(&self) -> u64 {
        self.tick_nanos
    }

    /// Timers scheduled and not yet popped.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `token` to fire at `due_nanos`, rounded **up** to the
    /// next tick boundary (never early; at most one tick late). A due
    /// time already in the past fires on the next pop.
    pub fn schedule(&mut self, due_nanos: u64, token: u64) {
        let due_tick = due_nanos.div_ceil(self.tick_nanos).max(self.current_tick);
        let entry = Entry {
            due_tick,
            seq: self.seq,
            token,
        };
        self.seq += 1;
        self.len += 1;
        self.place(entry);
    }

    fn place(&mut self, entry: Entry) {
        let delta = entry.due_tick - self.current_tick;
        let mut span = SLOTS;
        for level in 0..LEVELS {
            if delta < span {
                let slot_width = span / SLOTS; // SLOTS^level
                let slot = ((entry.due_tick / slot_width) % SLOTS) as usize;
                self.levels[level][slot].push(entry);
                return;
            }
            span *= SLOTS;
        }
        self.overflow.push(entry);
    }

    /// Pops the earliest pending timer: `(due_nanos, token)` with the due
    /// time quantized to the tick it fired on. Timers due in the same
    /// tick pop in schedule order. Returns `None` when the wheel is
    /// empty.
    pub fn pop_next(&mut self) -> Option<(u64, u64)> {
        if let Some(entry) = self.ready.pop_front() {
            self.len -= 1;
            return Some((entry.due_tick * self.tick_nanos, entry.token));
        }
        if self.len == 0 {
            return None;
        }
        loop {
            let slot = (self.current_tick % SLOTS) as usize;
            if !self.levels[0][slot].is_empty() {
                let mut due: Vec<Entry> = self.levels[0][slot].drain(..).collect();
                debug_assert!(due.iter().all(|e| e.due_tick == self.current_tick));
                // Cascades can interleave re-filed entries with directly
                // placed ones; restore global (tick, seq) order.
                due.sort_unstable_by_key(|e| e.seq);
                self.ready.extend(due);
                let entry = self.ready.pop_front().expect("slot was non-empty");
                self.len -= 1;
                return Some((entry.due_tick * self.tick_nanos, entry.token));
            }
            self.current_tick += 1;
            self.cascade();
        }
    }

    /// Re-files upper-level slots (and the overflow list) whose window
    /// just opened after `current_tick` advanced.
    fn cascade(&mut self) {
        let mut span = SLOTS;
        for level in 1..LEVELS {
            if !self.current_tick.is_multiple_of(span) {
                return;
            }
            let slot = ((self.current_tick / span) % SLOTS) as usize;
            let entries: Vec<Entry> = self.levels[level][slot].drain(..).collect();
            for entry in entries {
                self.place(entry);
            }
            span *= SLOTS;
        }
        if self.current_tick.is_multiple_of(span) {
            let entries: Vec<Entry> = std::mem::take(&mut self.overflow);
            for entry in entries {
                self.place(entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn due_times_round_up_never_early() {
        let mut wheel = TimerWheel::new(1_000);
        wheel.schedule(1, 7); // 1 ns → fires at tick 1 = 1000 ns
        wheel.schedule(0, 8); // exactly on a boundary → tick 0
        wheel.schedule(1_000, 9); // exactly on a boundary → tick 1
        assert_eq!(wheel.pop_next(), Some((0, 8)));
        assert_eq!(wheel.pop_next(), Some((1_000, 7)));
        assert_eq!(wheel.pop_next(), Some((1_000, 9)));
        assert_eq!(wheel.pop_next(), None);
    }

    #[test]
    fn same_tick_pops_in_schedule_order() {
        let mut wheel = TimerWheel::new(100);
        for token in 0..16 {
            wheel.schedule(250, token);
        }
        let order: Vec<u64> = std::iter::from_fn(|| wheel.pop_next())
            .map(|(_, t)| t)
            .collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn cascades_preserve_global_order() {
        let mut wheel = TimerWheel::new(1);
        // Entries across level boundaries: a level-1 resident (tick 100)
        // scheduled before a level-0 resident with the same due tick.
        wheel.schedule(100, 1); // seq 0, lands in level 1
        wheel.schedule(5, 2); // seq 1
                              // Drain the early entry, advancing close to the boundary.
        assert_eq!(wheel.pop_next(), Some((5, 2)));
        // Schedule another timer for tick 100 now that it's within 64.
        wheel.schedule(100, 3); // seq 2, lands in level 0
        assert_eq!(
            wheel.pop_next(),
            Some((100, 1)),
            "seq order survives cascade"
        );
        assert_eq!(wheel.pop_next(), Some((100, 3)));
    }

    #[test]
    fn distant_timers_traverse_levels_and_overflow() {
        let mut wheel = TimerWheel::new(1);
        let far = [
            63u64, 64, 4_095, 4_096, 262_143, 262_144, 16_777_215, 16_777_216, 20_000_000,
        ];
        for (i, &due) in far.iter().enumerate() {
            wheel.schedule(due, i as u64);
        }
        let mut popped = Vec::new();
        while let Some((due, token)) = wheel.pop_next() {
            popped.push((due, token));
        }
        let expected: Vec<(u64, u64)> = far
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i as u64))
            .collect();
        assert_eq!(popped, expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wheel pops exactly the sorted-by-(quantized-due, seq)
        /// stream a reference sort produces, for arbitrary schedules.
        #[test]
        fn pop_order_matches_reference_sort(
            dues in proptest::collection::vec(0u64..5_000_000, 1..200),
            tick in 1u64..10_000,
        ) {
            let mut wheel = TimerWheel::new(tick);
            let mut reference: Vec<(u64, u64)> = Vec::new();
            for (i, &due) in dues.iter().enumerate() {
                wheel.schedule(due, i as u64);
                reference.push((due.div_ceil(tick) * tick, i as u64));
            }
            reference.sort();
            let mut popped = Vec::new();
            while let Some(fired) = wheel.pop_next() {
                popped.push(fired);
            }
            prop_assert_eq!(popped, reference);
        }

        /// Interleaved schedule/pop never fires a timer before its due
        /// time and never more than one tick after.
        #[test]
        fn fires_within_one_tick(
            dues in proptest::collection::vec(0u64..1_000_000, 1..100),
            tick in 1u64..50_000,
        ) {
            let mut wheel = TimerWheel::new(tick);
            let mut now = 0u64;
            let mut pending = dues.clone();
            pending.reverse();
            while let Some(due) = pending.pop() {
                wheel.schedule(now.saturating_add(due), 0);
                // Drain half the time to interleave.
                if pending.len() % 2 == 0 {
                    if let Some((fired, _)) = wheel.pop_next() {
                        prop_assert!(fired >= now, "fired in the past");
                        now = fired;
                    }
                }
            }
            while let Some((fired, _)) = wheel.pop_next() {
                prop_assert!(fired >= now);
                now = fired;
            }
        }
    }
}
