//! Per-nameserver token-bucket rate limiting over virtual time.
//!
//! The paper's crawl hammered a long tail of authoritative servers; a
//! polite front-end paces queries *per target*, not globally (ZDNS calls
//! this per-nameserver pacing). The bucket here is the classic integer
//! formulation: capacity `burst` tokens, one token refilled every
//! `refill_interval` nanoseconds, all arithmetic in whole nanoseconds of
//! the same virtual timeline the scheduler runs on — so admission
//! decisions replay byte-identically.

/// Rate-limit configuration applied to every nameserver bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RateConfig {
    /// Sustained tokens per virtual second (queries/s per nameserver).
    pub tokens_per_sec: u32,
    /// Bucket capacity: how many queries may burst ahead of the refill.
    pub burst: u32,
}

impl Default for RateConfig {
    /// 16 q/s sustained with a burst of 8 per nameserver: generous
    /// against the default offered load spread over the nameserver pool,
    /// binding when retries pile onto a few hot authorities.
    fn default() -> Self {
        RateConfig {
            tokens_per_sec: 16,
            burst: 8,
        }
    }
}

impl RateConfig {
    /// Nanoseconds between token refills.
    pub fn refill_interval_nanos(&self) -> u64 {
        1_000_000_000 / u64::from(self.tokens_per_sec.max(1))
    }
}

/// One nameserver's token bucket.
#[derive(Debug, Clone, Copy)]
pub struct TokenBucket {
    capacity: u64,
    refill_interval_nanos: u64,
    tokens: u64,
    last_refill_nanos: u64,
}

impl TokenBucket {
    /// A full bucket under `config`.
    pub fn new(config: &RateConfig) -> Self {
        let capacity = u64::from(config.burst.max(1));
        TokenBucket {
            capacity,
            refill_interval_nanos: config.refill_interval_nanos(),
            tokens: capacity,
            last_refill_nanos: 0,
        }
    }

    fn refill(&mut self, now_nanos: u64) {
        let elapsed = now_nanos.saturating_sub(self.last_refill_nanos);
        let refills = elapsed / self.refill_interval_nanos;
        if refills > 0 {
            self.tokens = (self.tokens + refills).min(self.capacity);
            self.last_refill_nanos += refills * self.refill_interval_nanos;
            if self.tokens == self.capacity {
                // A full bucket forgets its refill phase, like the real
                // thing: idle time beyond capacity earns nothing.
                self.last_refill_nanos = now_nanos;
            }
        }
    }

    /// Takes one token at `now_nanos`, or reports the earliest virtual
    /// time a token will be available.
    pub fn try_acquire(&mut self, now_nanos: u64) -> Result<(), u64> {
        self.refill(now_nanos);
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            Err(self.last_refill_nanos + self.refill_interval_nanos)
        }
    }

    /// Tokens currently available (after refilling to `now_nanos`).
    pub fn available(&mut self, now_nanos: u64) -> u64 {
        self.refill(now_nanos);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bucket(rate: u32, burst: u32) -> TokenBucket {
        TokenBucket::new(&RateConfig {
            tokens_per_sec: rate,
            burst,
        })
    }

    #[test]
    fn burst_then_pace() {
        let mut b = bucket(10, 3); // refill every 100 ms
        assert!(b.try_acquire(0).is_ok());
        assert!(b.try_acquire(0).is_ok());
        assert!(b.try_acquire(0).is_ok());
        let ready = b.try_acquire(0).unwrap_err();
        assert_eq!(ready, 100_000_000, "next token one refill away");
        assert!(
            b.try_acquire(ready).is_ok(),
            "token available exactly at ready"
        );
    }

    #[test]
    fn idle_time_refills_to_capacity_not_beyond() {
        let mut b = bucket(10, 2);
        assert!(b.try_acquire(0).is_ok());
        assert!(b.try_acquire(0).is_ok());
        assert_eq!(b.available(10_000_000_000), 2, "caps at burst");
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut b = bucket(7, 4);
            (0..50u64)
                .map(|i| b.try_acquire(i * 37_000_000).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ready_time_is_honoured() {
        let mut b = bucket(4, 1); // refill every 250 ms
        assert!(b.try_acquire(0).is_ok());
        let ready = b.try_acquire(1).unwrap_err();
        assert!(b.try_acquire(ready - 1).is_err(), "still dry just before");
        assert!(b.try_acquire(ready).is_ok());
    }
}
