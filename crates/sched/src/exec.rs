//! The event loop: per-query state machines over the timeout wheel.
//!
//! `run_schedule` turns a population of queries into events on a
//! [`TimerWheel`](crate::TimerWheel): arrivals pace in on a fixed virtual
//! interval, dispatches flow through admission control (bounded pending
//! queue), per-nameserver [`CircuitBreaker`](crate::CircuitBreaker)s and
//! [`TokenBucket`](crate::TokenBucket)s, attempts complete after their
//! virtual cost, and transient failures re-enter through the
//! [`RetryPolicy`](idnre_fault::RetryPolicy)'s backoff timers. The caller
//! supplies a [`QueryDriver`] that evaluates one attempt at a time —
//! typically against an [`idnre_fault::FaultPlan`] — and gets back one
//! [`QueryReport`] per query plus the run's [`SchedStats`].
//!
//! # Degradation contract
//!
//! Overload is shed by priority class — retries and phase transitions
//! outrank fresh arrivals, and fresh arrivals are dropped first:
//!
//! * a fresh arrival finding the pending queue full is shed
//!   ([`ShedCause::Admission`]);
//! * a dispatch against an open breaker fails fast
//!   ([`ShedCause::BreakerOpen`]);
//! * a query rate-deferred past its deadline before its first attempt is
//!   shed ([`ShedCause::Starved`]).
//!
//! # Determinism
//!
//! The loop is strictly single-threaded and every timestamp is virtual:
//! wheel pops are totally ordered by `(tick, schedule-seq)`, so a fixed
//! `(driver, config)` replays the identical event sequence — and
//! therefore identical reports, stats and counter totals — on every run
//! and at every worker-thread count (parallel harnesses run one
//! independent loop per fixed-size slice).
//!
//! # Deadline bound
//!
//! Every query's terminal event lands at most **one wheel tick** past its
//! deadline: retry and deferral timers are only scheduled strictly before
//! the deadline, and an attempt whose completion would overshoot is
//! cancelled *at* the deadline (both rounded up by at most one tick).

use crate::{BreakerConfig, BreakerDecision, CircuitBreaker, RateConfig, TimerWheel, TokenBucket};
use idnre_fault::RetryPolicy;

/// Maximum phases a query can pass through (DNS then HTTP today).
pub const MAX_PHASES: usize = 2;

/// How the scheduler is tuned. `Copy` so harness setups can embed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// Attempts, backoff, per-attempt costs and the per-query deadline.
    pub policy: RetryPolicy,
    /// Bounded in-flight window: attempts executing concurrently.
    pub max_inflight: usize,
    /// Bounded pending queue; fresh arrivals beyond it are shed.
    pub queue_capacity: usize,
    /// Virtual nanoseconds between query arrivals (the offered load).
    pub arrival_interval_nanos: u64,
    /// Timeout-wheel granularity in virtual nanoseconds.
    pub wheel_tick_nanos: u64,
    /// Synthetic nameservers per scheduler instance; queries hash onto
    /// them for rate limiting and breaking.
    pub nameserver_pool: u32,
    /// Per-nameserver token-bucket tuning.
    pub rate: RateConfig,
    /// Per-nameserver circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl Default for SchedConfig {
    /// A 256-query window over a 512-deep queue, 400 arrivals per
    /// virtual second, a 1 ms wheel tick and 32 nameservers: sized so
    /// the healthy and `flaky` profiles flow freely while `storm`
    /// saturates the window and sheds.
    fn default() -> Self {
        SchedConfig {
            policy: RetryPolicy::default(),
            max_inflight: 256,
            queue_capacity: 512,
            arrival_interval_nanos: 2_500_000,
            wheel_tick_nanos: 1_000_000,
            nameserver_pool: 32,
            rate: RateConfig::default(),
            breaker: BreakerConfig::default(),
        }
    }
}

/// What one evaluated attempt means for the query's state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepVerdict<T> {
    /// The query is finished with this value.
    Terminal(T),
    /// A transient failure that indicts the shared infrastructure (an
    /// injected storm fault): retried if the schedule allows, and the
    /// nameserver's breaker hears it.
    Transient(T),
    /// A transient failure that is the *target's own* pathology (a lame
    /// delegation's timeout, a host's configured SERVFAIL): retried
    /// exactly like [`StepVerdict::Transient`], but breaker-neutral — a
    /// nameserver is not indicted for one domain's broken delegation.
    TransientLocal(T),
    /// This phase succeeded; advance to the next phase (e.g. DNS
    /// resolved, proceed to HTTP).
    NextPhase(T),
}

/// Evaluates attempts for the scheduler. Implementations are called in a
/// deterministic single-threaded order and may carry per-query state
/// (cached base resolutions, fault bookkeeping).
pub trait QueryDriver {
    /// The verdict type attempts produce.
    type Step;

    /// Evaluates attempt `attempt` (0-based) of `phase` for query
    /// `query`, returning the verdict and the attempt's virtual cost in
    /// nanoseconds. Called once per attempt actually launched.
    fn attempt(&mut self, query: usize, phase: u8, attempt: u32) -> (StepVerdict<Self::Step>, u64);

    /// The value standing in for an attempt cancelled at the deadline
    /// (launched, but cut off before its completion landed).
    fn cancelled(&mut self, query: usize, phase: u8) -> Self::Step;

    /// Which nameserver (within the pool) phase 0 of `query` targets.
    fn nameserver(&self, query: usize) -> u32;

    /// The backoff-jitter seed for `query`'s `phase`.
    fn jitter_seed(&self, query: usize, phase: u8) -> u64;
}

/// Why a query was shed instead of executed to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// Fresh arrival dropped: the pending queue was full.
    Admission,
    /// Dispatch refused: the target nameserver's breaker was open.
    BreakerOpen,
    /// Rate-deferred past the deadline before any attempt ran.
    Starved,
}

/// One query's terminal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport<T> {
    /// The last value the driver produced (`None` only when the query
    /// was shed before any attempt ran).
    pub verdict: Option<T>,
    /// Set when the scheduler shed the query instead of finishing its
    /// schedule.
    pub shed: Option<ShedCause>,
    /// The phase the query reached (0-based).
    pub phase: u8,
    /// Attempts launched across all phases.
    pub attempts: u32,
    /// Attempts per phase.
    pub phase_attempts: [u32; MAX_PHASES],
    /// Retries performed (per-phase attempts beyond the first).
    pub retries: u32,
    /// Virtual backoff slept between attempts.
    pub backoff_nanos: u64,
    /// First-dispatch → terminal-event virtual latency (0 when the query
    /// never dispatched).
    pub latency_nanos: u64,
    /// Whether the per-query deadline ended the schedule.
    pub deadline_hit: bool,
    /// Whether the schedule ended without a terminal success.
    pub exhausted: bool,
}

/// Aggregate accounting of one scheduler run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Queries that arrived (always the population size).
    pub arrivals: u64,
    /// Attempts launched.
    pub attempts: u64,
    /// Fresh arrivals shed at admission.
    pub shed_admission: u64,
    /// Dispatches shed against open breakers.
    pub shed_breaker: u64,
    /// Queries starved out by rate deferral before any attempt.
    pub shed_starved: u64,
    /// Dispatches deferred by a dry token bucket.
    pub deferred: u64,
    /// Deepest the pending queue ever got.
    pub peak_queue_depth: u64,
    /// Widest the in-flight window ever got.
    pub peak_inflight: u64,
    /// Breaker transitions into open.
    pub breaker_opened: u64,
    /// Breaker transitions into half-open.
    pub breaker_half_open: u64,
    /// Breaker recoveries back to closed.
    pub breaker_reclosed: u64,
    /// Largest per-query latency observed.
    pub max_latency_nanos: u64,
}

impl SchedStats {
    /// Queries shed for any cause.
    pub fn shed_total(&self) -> u64 {
        self.shed_admission + self.shed_breaker + self.shed_starved
    }

    /// Folds another run's stats in (peaks take the max).
    pub fn merge(&mut self, other: &SchedStats) {
        self.arrivals += other.arrivals;
        self.attempts += other.attempts;
        self.shed_admission += other.shed_admission;
        self.shed_breaker += other.shed_breaker;
        self.shed_starved += other.shed_starved;
        self.deferred += other.deferred;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        self.peak_inflight = self.peak_inflight.max(other.peak_inflight);
        self.breaker_opened += other.breaker_opened;
        self.breaker_half_open += other.breaker_half_open;
        self.breaker_reclosed += other.breaker_reclosed;
        self.max_latency_nanos = self.max_latency_nanos.max(other.max_latency_nanos);
    }
}

/// Everything one scheduler run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRun<T> {
    /// One report per query, in query order.
    pub reports: Vec<QueryReport<T>>,
    /// The run's aggregate accounting.
    pub stats: SchedStats,
}

// Event tokens: kind in the top bits, query index below.
const EV_ARRIVAL: u64 = 0 << 62;
const EV_COMPLETE: u64 = 1 << 62;
const EV_RETRY: u64 = 2 << 62;
const EV_DEFER: u64 = 3 << 62;
const EV_MASK: u64 = 3 << 62;

enum Pending<T> {
    Result(StepVerdict<T>),
    CancelledAtDeadline,
}

struct Query<T> {
    phase: u8,
    phase_attempts: [u32; MAX_PHASES],
    attempts: u32,
    backoff_nanos: u64,
    dispatched_at: Option<u64>,
    deadline: u64,
    last: Option<T>,
    pending: Option<Pending<T>>,
    done: Option<QueryReport<T>>,
}

impl<T> Query<T> {
    fn new() -> Self {
        Query {
            phase: 0,
            phase_attempts: [0; MAX_PHASES],
            attempts: 0,
            backoff_nanos: 0,
            dispatched_at: None,
            deadline: u64::MAX,
            last: None,
            pending: None,
            done: None,
        }
    }

    fn retries(&self) -> u32 {
        self.phase_attempts
            .iter()
            .map(|&a| a.saturating_sub(1))
            .sum()
    }
}

struct Loop<'a, D: QueryDriver> {
    driver: &'a mut D,
    config: SchedConfig,
    wheel: TimerWheel,
    queries: Vec<Query<D::Step>>,
    pending_retry: std::collections::VecDeque<usize>,
    pending_fresh: std::collections::VecDeque<usize>,
    inflight: usize,
    buckets: Vec<TokenBucket>,
    breakers: Vec<CircuitBreaker>,
    stats: SchedStats,
}

/// Runs `queries` query state machines to completion under `config`,
/// evaluating attempts through `driver`. See the module docs for the
/// shedding, determinism and deadline contracts.
pub fn run_schedule<D: QueryDriver>(
    driver: &mut D,
    queries: usize,
    config: &SchedConfig,
) -> ScheduleRun<D::Step> {
    let pool = config.nameserver_pool.max(1) as usize;
    let mut lp = Loop {
        driver,
        config: *config,
        wheel: TimerWheel::new(config.wheel_tick_nanos),
        queries: (0..queries).map(|_| Query::new()).collect(),
        pending_retry: std::collections::VecDeque::new(),
        pending_fresh: std::collections::VecDeque::new(),
        inflight: 0,
        buckets: vec![TokenBucket::new(&config.rate); pool],
        breakers: vec![CircuitBreaker::new(&config.breaker); pool],
        stats: SchedStats::default(),
    };
    for q in 0..queries {
        lp.wheel.schedule(
            q as u64 * config.arrival_interval_nanos,
            EV_ARRIVAL | q as u64,
        );
    }
    lp.run();

    let mut stats = lp.stats;
    for breaker in &lp.breakers {
        stats.breaker_opened += breaker.opened();
        stats.breaker_half_open += breaker.half_opened();
        stats.breaker_reclosed += breaker.reclosed();
    }
    let reports: Vec<QueryReport<D::Step>> = lp
        .queries
        .into_iter()
        .map(|q| q.done.expect("every query terminates"))
        .collect();
    for report in &reports {
        stats.max_latency_nanos = stats.max_latency_nanos.max(report.latency_nanos);
    }
    ScheduleRun { reports, stats }
}

impl<D: QueryDriver> Loop<'_, D> {
    fn run(&mut self) {
        while let Some((now, token)) = self.wheel.pop_next() {
            let q = (token & !EV_MASK) as usize;
            match token & EV_MASK {
                EV_ARRIVAL => self.arrive(q, now),
                EV_COMPLETE => self.complete(q, now),
                // Retry backoff and rate deferral both re-enter through
                // the priority (retry) class: the query already owns a
                // schedule slot, fresh arrivals queue behind it.
                EV_RETRY | EV_DEFER => {
                    self.pending_retry.push_back(q);
                    self.note_queue_depth();
                }
                _ => unreachable!("unknown event kind"),
            }
            self.dispatch(now);
        }
        debug_assert!(self.pending_retry.is_empty());
        debug_assert!(self.pending_fresh.is_empty());
        debug_assert_eq!(self.inflight, 0);
    }

    fn ns(&self, q: usize) -> usize {
        (self.driver.nameserver(q) % self.config.nameserver_pool.max(1)) as usize
    }

    fn note_queue_depth(&mut self) {
        let depth = (self.pending_retry.len() + self.pending_fresh.len()) as u64;
        self.stats.peak_queue_depth = self.stats.peak_queue_depth.max(depth);
    }

    fn arrive(&mut self, q: usize, _now: u64) {
        self.stats.arrivals += 1;
        if self.pending_retry.len() + self.pending_fresh.len() >= self.config.queue_capacity {
            self.stats.shed_admission += 1;
            self.finish(q, _now, None, Some(ShedCause::Admission), false, false);
            return;
        }
        self.pending_fresh.push_back(q);
        self.note_queue_depth();
    }

    fn dispatch(&mut self, now: u64) {
        while self.inflight < self.config.max_inflight {
            let Some(q) = self
                .pending_retry
                .pop_front()
                .or_else(|| self.pending_fresh.pop_front())
            else {
                return;
            };
            self.try_dispatch(q, now);
        }
    }

    fn try_dispatch(&mut self, q: usize, now: u64) {
        if self.queries[q].dispatched_at.is_none() {
            self.queries[q].dispatched_at = Some(now);
            self.queries[q].deadline = now.saturating_add(self.config.policy.deadline_nanos);
        }
        let deadline = self.queries[q].deadline;
        if now >= deadline {
            // A retry/deferral timer can land up to one tick past the
            // deadline; the schedule ends here.
            let verdict = self.queries[q].last.take();
            let shed = verdict.is_none().then_some(ShedCause::Starved);
            if shed.is_some() {
                self.stats.shed_starved += 1;
            }
            self.finish(q, now, verdict, shed, true, true);
            return;
        }

        // Phase 0 is the nameserver-facing phase: it is the one gated by
        // breakers and token buckets. Later phases (HTTP) share the
        // window and the wheel but target the resolved host, not the
        // nameserver.
        if self.queries[q].phase == 0 {
            let ns = self.ns(q);
            if !self.breakers[ns].would_admit(now) {
                self.stats.shed_breaker += 1;
                let exhausted = self.queries[q].attempts > 0;
                let verdict = self.queries[q].last.take();
                self.finish(
                    q,
                    now,
                    verdict,
                    Some(ShedCause::BreakerOpen),
                    false,
                    exhausted,
                );
                return;
            }
            match self.buckets[ns].try_acquire(now) {
                Ok(()) => {}
                Err(ready) => {
                    self.stats.deferred += 1;
                    if ready >= deadline {
                        if self.queries[q].attempts == 0 {
                            self.stats.shed_starved += 1;
                            self.finish(q, now, None, Some(ShedCause::Starved), true, false);
                        } else {
                            let verdict = self.queries[q].last.take();
                            self.finish(q, now, verdict, None, true, true);
                        }
                        return;
                    }
                    self.wheel.schedule(ready, EV_DEFER | q as u64);
                    return;
                }
            }
            // Reserve the half-open probe slot only once the dispatch is
            // definitely happening.
            let decision = self.breakers[ns].admit(now);
            debug_assert_eq!(decision, BreakerDecision::Allow);
        }
        self.execute(q, now);
    }

    fn execute(&mut self, q: usize, now: u64) {
        let phase = self.queries[q].phase;
        let attempt = self.queries[q].phase_attempts[phase as usize];
        let (verdict, cost) = self.driver.attempt(q, phase, attempt);
        self.queries[q].phase_attempts[phase as usize] += 1;
        self.queries[q].attempts += 1;
        self.stats.attempts += 1;
        self.inflight += 1;
        self.stats.peak_inflight = self.stats.peak_inflight.max(self.inflight as u64);
        let deadline = self.queries[q].deadline;
        let completes = now.saturating_add(cost);
        if completes > deadline {
            // The attempt launched, but the deadline cancels it before
            // its completion lands.
            self.queries[q].pending = Some(Pending::CancelledAtDeadline);
            self.wheel.schedule(deadline, EV_COMPLETE | q as u64);
        } else {
            self.queries[q].pending = Some(Pending::Result(verdict));
            self.wheel.schedule(completes, EV_COMPLETE | q as u64);
        }
    }

    fn complete(&mut self, q: usize, now: u64) {
        self.inflight -= 1;
        let phase = self.queries[q].phase;
        let pending = self.queries[q]
            .pending
            .take()
            .expect("completion without dispatch");
        match pending {
            Pending::CancelledAtDeadline => {
                // The deadline is the scheduler's own budget, so a
                // cancellation says nothing about the nameserver:
                // breaker-neutral (the half-open probe slot is released).
                if phase == 0 {
                    let ns = self.ns(q);
                    self.breakers[ns].record_neutral(now);
                }
                let value = self.driver.cancelled(q, phase);
                self.finish(q, now, Some(value), None, true, true);
            }
            Pending::Result(StepVerdict::Terminal(value)) => {
                if phase == 0 {
                    let ns = self.ns(q);
                    self.breakers[ns].record(now, true);
                }
                self.finish(q, now, Some(value), None, false, false);
            }
            Pending::Result(StepVerdict::NextPhase(value)) => {
                if phase == 0 {
                    let ns = self.ns(q);
                    self.breakers[ns].record(now, true);
                }
                self.queries[q].last = Some(value);
                self.queries[q].phase = phase + 1;
                debug_assert!((self.queries[q].phase as usize) < MAX_PHASES);
                self.pending_retry.push_back(q);
                self.note_queue_depth();
            }
            Pending::Result(StepVerdict::Transient(value)) => {
                if phase == 0 {
                    let ns = self.ns(q);
                    self.breakers[ns].record(now, false);
                }
                self.retry_or_finish(q, now, phase, value);
            }
            Pending::Result(StepVerdict::TransientLocal(value)) => {
                // The target's own pathology: retried the same, but the
                // nameserver's breaker is not indicted (a half-open probe
                // slot is still released).
                if phase == 0 {
                    let ns = self.ns(q);
                    self.breakers[ns].record_neutral(now);
                }
                self.retry_or_finish(q, now, phase, value);
            }
        }
    }

    /// Books a transient result: schedule the next backoff, or finish the
    /// query when attempts or the deadline run out.
    fn retry_or_finish(&mut self, q: usize, now: u64, phase: u8, value: D::Step) {
        self.queries[q].last = Some(value);
        let attempts = self.queries[q].phase_attempts[phase as usize];
        if attempts >= self.config.policy.max_attempts.max(1) {
            let verdict = self.queries[q].last.take();
            self.finish(q, now, verdict, None, false, true);
            return;
        }
        let seed = self.driver.jitter_seed(q, phase);
        let backoff = self.config.policy.backoff_nanos(seed, attempts - 1);
        if now.saturating_add(backoff) >= self.queries[q].deadline {
            // Same boundary rule as `RetryPolicy::execute`: a backoff
            // landing exactly on the deadline never schedules the sleep
            // or another attempt.
            let verdict = self.queries[q].last.take();
            self.finish(q, now, verdict, None, true, true);
            return;
        }
        self.queries[q].backoff_nanos += backoff;
        self.wheel.schedule(now + backoff, EV_RETRY | q as u64);
    }

    fn finish(
        &mut self,
        q: usize,
        now: u64,
        verdict: Option<D::Step>,
        shed: Option<ShedCause>,
        deadline_hit: bool,
        exhausted: bool,
    ) {
        let query = &mut self.queries[q];
        debug_assert!(query.done.is_none(), "query finished twice");
        let latency = query.dispatched_at.map_or(0, |at| now.saturating_sub(at));
        query.done = Some(QueryReport {
            verdict,
            shed,
            phase: query.phase,
            attempts: query.attempts,
            phase_attempts: query.phase_attempts,
            retries: query.retries(),
            backoff_nanos: query.backoff_nanos,
            latency_nanos: latency,
            deadline_hit,
            exhausted,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic toy driver: per-query behaviour is a pure function
    /// of the query index.
    struct ToyDriver {
        /// Queries whose phase-0 attempts always fail transiently.
        fail_all: fn(usize) -> bool,
        cost: u64,
        fail_cost: u64,
        two_phase: bool,
        pool: u32,
    }

    impl QueryDriver for ToyDriver {
        type Step = (u8, bool);

        fn attempt(
            &mut self,
            query: usize,
            phase: u8,
            _attempt: u32,
        ) -> (StepVerdict<(u8, bool)>, u64) {
            if (self.fail_all)(query) {
                (StepVerdict::Transient((phase, false)), self.fail_cost)
            } else if phase == 0 && self.two_phase {
                (StepVerdict::NextPhase((phase, true)), self.cost)
            } else {
                (StepVerdict::Terminal((phase, true)), self.cost)
            }
        }

        fn cancelled(&mut self, _query: usize, phase: u8) -> (u8, bool) {
            (phase, false)
        }

        fn nameserver(&self, query: usize) -> u32 {
            query as u32 % self.pool
        }

        fn jitter_seed(&self, query: usize, phase: u8) -> u64 {
            query as u64 * 31 + u64::from(phase)
        }
    }

    fn healthy(pool: u32) -> ToyDriver {
        ToyDriver {
            fail_all: |_| false,
            cost: 50_000_000,
            fail_cost: 2_000_000_000,
            two_phase: false,
            pool,
        }
    }

    #[test]
    fn healthy_population_completes_without_shedding() {
        let config = SchedConfig::default();
        let mut driver = healthy(32);
        let run = run_schedule(&mut driver, 500, &config);
        assert_eq!(run.reports.len(), 500);
        assert_eq!(run.stats.arrivals, 500);
        assert_eq!(run.stats.shed_total(), 0, "{:?}", run.stats);
        assert_eq!(run.stats.breaker_opened, 0);
        for report in &run.reports {
            assert_eq!(report.attempts, 1);
            assert!(!report.exhausted);
            assert!(report.verdict.is_some());
        }
    }

    #[test]
    fn two_phase_queries_traverse_both_phases() {
        let config = SchedConfig::default();
        let mut driver = ToyDriver {
            two_phase: true,
            ..healthy(8)
        };
        let run = run_schedule(&mut driver, 100, &config);
        for report in &run.reports {
            assert_eq!(report.phase, 1);
            assert_eq!(report.phase_attempts, [1, 1]);
            assert_eq!(report.verdict, Some((1, true)));
        }
    }

    #[test]
    fn uniform_failure_storm_trips_breakers_and_sheds() {
        let config = SchedConfig {
            queue_capacity: 64,
            max_inflight: 32,
            ..SchedConfig::default()
        };
        let mut driver = ToyDriver {
            fail_all: |_| true,
            ..healthy(4)
        };
        let run = run_schedule(&mut driver, 2_000, &config);
        assert!(run.stats.breaker_opened > 0, "{:?}", run.stats);
        assert!(run.stats.shed_breaker > 0, "{:?}", run.stats);
        assert!(run.stats.shed_admission > 0, "{:?}", run.stats);
        assert!(run.stats.peak_queue_depth > 0);
        // Every query terminates exactly once, one way or another.
        assert_eq!(run.reports.len(), 2_000);
        let shed = run.reports.iter().filter(|r| r.shed.is_some()).count() as u64;
        assert_eq!(shed, run.stats.shed_total());
    }

    #[test]
    fn one_bad_nameserver_only_trips_its_own_breaker() {
        let config = SchedConfig::default();
        let mut driver = ToyDriver {
            // Nameserver 0's queries all fail; everyone else is healthy.
            fail_all: |q| q % 8 == 0,
            fail_cost: 100_000_000,
            ..healthy(8)
        };
        let run = run_schedule(&mut driver, 1_000, &config);
        assert!(run.stats.breaker_opened >= 1);
        let healthy_shed = run
            .reports
            .iter()
            .enumerate()
            .filter(|(q, r)| q % 8 != 0 && r.shed == Some(ShedCause::BreakerOpen))
            .count();
        assert_eq!(healthy_shed, 0, "healthy nameservers shed by a breaker");
    }

    #[test]
    fn no_query_exceeds_deadline_by_more_than_one_tick() {
        let config = SchedConfig {
            max_inflight: 16,
            queue_capacity: 2_048,
            ..SchedConfig::default()
        };
        let mut driver = ToyDriver {
            fail_all: |q| q % 3 != 0,
            ..healthy(8)
        };
        let run = run_schedule(&mut driver, 600, &config);
        let bound = config.policy.deadline_nanos + config.wheel_tick_nanos;
        for (q, report) in run.reports.iter().enumerate() {
            assert!(
                report.latency_nanos <= bound,
                "query {q} latency {} > deadline+tick {bound}",
                report.latency_nanos
            );
        }
        assert_eq!(
            run.stats.max_latency_nanos,
            run.reports.iter().map(|r| r.latency_nanos).max().unwrap()
        );
    }

    #[test]
    fn deadline_on_backoff_boundary_adds_no_attempt() {
        // Cost 1 ms, backoff exactly deadline - cost: after the first
        // attempt the next backoff lands exactly on the deadline, which
        // must end the schedule without a zero-duration sleep or a
        // second attempt (the wheel-granularity off-by-one).
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_nanos: 9_000_000,
            backoff_multiplier: 1,
            jitter_per_mille: 0,
            attempt_timeout_nanos: 1_000_000,
            attempt_cost_nanos: 1_000_000,
            deadline_nanos: 10_000_000,
        };
        let config = SchedConfig {
            policy,
            arrival_interval_nanos: 0,
            ..SchedConfig::default()
        };
        let mut driver = ToyDriver {
            fail_all: |_| true,
            fail_cost: 1_000_000,
            ..healthy(1)
        };
        let run = run_schedule(&mut driver, 1, &config);
        let report = &run.reports[0];
        assert_eq!(report.attempts, 1, "backoff == deadline must not retry");
        assert!(report.deadline_hit);
        assert!(report.exhausted);
        assert_eq!(report.backoff_nanos, 0);
    }

    /// A driver whose failures are all the targets' own pathology.
    struct LocalFailDriver;

    impl QueryDriver for LocalFailDriver {
        type Step = ();

        fn attempt(&mut self, _query: usize, _phase: u8, _attempt: u32) -> (StepVerdict<()>, u64) {
            (StepVerdict::TransientLocal(()), 100_000_000)
        }

        fn cancelled(&mut self, _query: usize, _phase: u8) {}

        fn nameserver(&self, query: usize) -> u32 {
            query as u32 % 4
        }

        fn jitter_seed(&self, query: usize, _phase: u8) -> u64 {
            query as u64
        }
    }

    #[test]
    fn local_pathology_never_trips_breakers() {
        let config = SchedConfig::default();
        let run = run_schedule(&mut LocalFailDriver, 1_000, &config);
        assert_eq!(run.stats.breaker_opened, 0, "{:?}", run.stats);
        assert_eq!(run.stats.shed_breaker, 0);
        for report in &run.reports {
            // Heavy rate deferral starves some schedules short of their
            // full attempt budget, but none may succeed and none may be
            // blamed on a breaker.
            assert!(report.exhausted || report.shed == Some(ShedCause::Starved));
            assert!(report.attempts <= config.policy.max_attempts);
            assert_ne!(report.shed, Some(ShedCause::BreakerOpen));
        }
    }

    #[test]
    fn runs_replay_identically() {
        let config = SchedConfig {
            max_inflight: 24,
            queue_capacity: 48,
            ..SchedConfig::default()
        };
        let run = || {
            let mut driver = ToyDriver {
                fail_all: |q| q % 5 < 2,
                ..healthy(8)
            };
            run_schedule(&mut driver, 800, &config)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_population_is_a_no_op() {
        let config = SchedConfig::default();
        let mut driver = healthy(4);
        let run = run_schedule(&mut driver, 0, &config);
        assert!(run.reports.is_empty());
        assert_eq!(run.stats, SchedStats::default());
    }
}
