//! Per-nameserver circuit breakers: closed → open → half-open.
//!
//! A nameserver drowning in garbage registrations (the DNS-abuse storms
//! the paper's measurement had to survive) answers a burst of timeouts
//! and SERVFAILs; hammering it with retries makes both sides worse. The
//! breaker watches a sliding window of recent attempt results per
//! nameserver and, once failures dominate the window, *opens*: queries
//! fail fast instead of queueing behind a dead authority. After a
//! cool-down the breaker goes *half-open* and admits a few probe queries;
//! if they succeed it closes, if any fails it re-opens.
//!
//! The window is sized so the storm profile's ~40% per-attempt failure
//! rate trips breakers reliably while the flaky profile's ~16% almost
//! never does — overload is a state, not a bad dice roll. All state
//! transitions are driven by virtual time and the deterministic result
//! stream, so they replay byte-identically.

/// Breaker tuning shared by every nameserver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding window of most recent completions considered (≤ 64).
    pub window: u32,
    /// Failures within the window that trip the breaker.
    pub trip_failures: u32,
    /// Virtual nanoseconds the breaker stays open before probing.
    pub open_nanos: u64,
    /// Consecutive half-open probe successes required to close.
    pub close_probes: u32,
}

impl Default for BreakerConfig {
    /// Trip at ≥ 8 failures in the last 16 completions (50%), cool down
    /// 5 virtual seconds, close after 2 successful probes.
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_failures: 8,
            open_nanos: 5_000_000_000,
            close_probes: 2,
        }
    }
}

/// Breaker state, in the classic three-state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: everything is admitted, results feed the window.
    Closed,
    /// Tripped: reject everything until the cool-down elapses.
    Open,
    /// Cooling down: admit a bounded number of probes.
    HalfOpen,
}

/// The admission verdict for one dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Dispatch normally.
    Allow,
    /// Rejected: the breaker is open (or half-open with its probe quota
    /// already in flight). Fail fast / shed.
    Reject,
}

/// One nameserver's circuit breaker.
#[derive(Debug, Clone, Copy)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Ring of the last `window` completions, 1 bit per failure.
    history: u64,
    filled: u32,
    failures: u32,
    open_until_nanos: u64,
    probes_in_flight: u32,
    probe_successes: u32,
    /// Transitions into open (the `crawler.breaker.open` counter's feed).
    opened: u64,
    /// Transitions into half-open.
    half_opened: u64,
    /// Recoveries back to closed.
    reclosed: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty history window.
    pub fn new(config: &BreakerConfig) -> Self {
        CircuitBreaker {
            config: BreakerConfig {
                window: config.window.clamp(1, 64),
                trip_failures: config.trip_failures.max(1),
                ..*config
            },
            state: BreakerState::Closed,
            history: 0,
            filled: 0,
            failures: 0,
            open_until_nanos: 0,
            probes_in_flight: 0,
            probe_successes: 0,
            opened: 0,
            half_opened: 0,
            reclosed: 0,
        }
    }

    /// Current state after observing `now_nanos` (an open breaker whose
    /// cool-down elapsed reports — and becomes — half-open).
    pub fn state(&mut self, now_nanos: u64) -> BreakerState {
        if self.state == BreakerState::Open && now_nanos >= self.open_until_nanos {
            self.state = BreakerState::HalfOpen;
            self.half_opened += 1;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
        }
        self.state
    }

    /// Asks to dispatch one query at `now_nanos`. An `Allow` from a
    /// half-open breaker reserves one probe slot; the caller must report
    /// the probe's result via [`CircuitBreaker::record`].
    pub fn admit(&mut self, now_nanos: u64) -> BreakerDecision {
        match self.state(now_nanos) {
            BreakerState::Closed => BreakerDecision::Allow,
            BreakerState::Open => BreakerDecision::Reject,
            BreakerState::HalfOpen => {
                if self.probes_in_flight < self.config.close_probes {
                    self.probes_in_flight += 1;
                    BreakerDecision::Allow
                } else {
                    BreakerDecision::Reject
                }
            }
        }
    }

    /// Whether [`CircuitBreaker::admit`] would currently allow a
    /// dispatch, without reserving a half-open probe slot. Lets a caller
    /// check the breaker before spending other admission resources (rate
    /// tokens), then reserve with `admit` once the dispatch is certain.
    pub fn would_admit(&mut self, now_nanos: u64) -> bool {
        match self.state(now_nanos) {
            BreakerState::Closed => true,
            BreakerState::Open => false,
            BreakerState::HalfOpen => self.probes_in_flight < self.config.close_probes,
        }
    }

    /// Feeds one completed attempt's result into the breaker.
    pub fn record(&mut self, now_nanos: u64, success: bool) {
        match self.state(now_nanos) {
            BreakerState::Closed => {
                self.push_history(success);
                if self.failures >= self.config.trip_failures {
                    self.trip(now_nanos);
                }
            }
            BreakerState::HalfOpen => {
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if success {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.close_probes {
                        self.state = BreakerState::Closed;
                        self.reclosed += 1;
                        self.history = 0;
                        self.filled = 0;
                        self.failures = 0;
                    }
                } else {
                    // One failed probe re-opens for a fresh cool-down.
                    self.trip(now_nanos);
                }
            }
            // A completion can land after the breaker opened (it was in
            // flight when the window tripped); it carries no new signal.
            BreakerState::Open => {}
        }
    }

    /// Notes a completed attempt that carries no infrastructure signal
    /// (the target's own pathology — a lame delegation, a configured
    /// SERVFAIL): frees a half-open probe slot without counting as a
    /// probe verdict or touching the failure window.
    pub fn record_neutral(&mut self, now_nanos: u64) {
        if self.state(now_nanos) == BreakerState::HalfOpen {
            self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
        }
    }

    fn push_history(&mut self, success: bool) {
        let window = self.config.window;
        if self.filled == window {
            let evicted = (self.history >> (window - 1)) & 1;
            self.failures -= evicted as u32;
        } else {
            self.filled += 1;
        }
        self.history = (self.history << 1) | u64::from(!success);
        if window < 64 {
            self.history &= (1u64 << window) - 1;
        }
        self.failures += u32::from(!success);
    }

    fn trip(&mut self, now_nanos: u64) {
        self.state = BreakerState::Open;
        self.opened += 1;
        self.open_until_nanos = now_nanos.saturating_add(self.config.open_nanos);
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }

    /// Times the breaker has tripped open.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Times the breaker has entered half-open.
    pub fn half_opened(&self) -> u64 {
        self.half_opened
    }

    /// Times the breaker has recovered to closed.
    pub fn reclosed(&self) -> u64 {
        self.reclosed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(&BreakerConfig::default())
    }

    #[test]
    fn healthy_stream_stays_closed() {
        let mut b = breaker();
        for i in 0..1_000u64 {
            assert_eq!(b.admit(i), BreakerDecision::Allow);
            b.record(i, i % 7 != 0); // ~14% failures: below trip rate
        }
        assert_eq!(b.state(1_000), BreakerState::Closed);
        assert_eq!(b.opened(), 0);
    }

    #[test]
    fn failure_storm_trips_open_then_rejects() {
        let mut b = breaker();
        for i in 0..8u64 {
            b.record(i, false);
        }
        assert_eq!(b.opened(), 1);
        assert_eq!(b.admit(10), BreakerDecision::Reject);
    }

    #[test]
    fn cooldown_probes_then_recloses() {
        let mut b = breaker();
        for i in 0..8u64 {
            b.record(i, false);
        }
        let after = 8 + BreakerConfig::default().open_nanos;
        assert_eq!(b.admit(after), BreakerDecision::Allow, "first probe");
        assert_eq!(b.admit(after), BreakerDecision::Allow, "second probe");
        assert_eq!(b.admit(after), BreakerDecision::Reject, "probe quota");
        b.record(after + 1, true);
        assert_eq!(
            b.admit(after + 1),
            BreakerDecision::Allow,
            "freed probe slot"
        );
        b.record(after + 2, true);
        assert_eq!(b.state(after + 2), BreakerState::Closed);
        assert_eq!(b.reclosed(), 1);
        assert_eq!(b.half_opened(), 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = breaker();
        for i in 0..8u64 {
            b.record(i, false);
        }
        let after = 8 + BreakerConfig::default().open_nanos;
        assert_eq!(b.admit(after), BreakerDecision::Allow);
        b.record(after + 1, false);
        assert_eq!(b.admit(after + 2), BreakerDecision::Reject, "re-opened");
        assert_eq!(b.opened(), 2);
    }

    #[test]
    fn window_slides_old_failures_out() {
        let mut b = breaker();
        for i in 0..7u64 {
            b.record(i, false); // 7 failures: one short of tripping
        }
        for i in 7..23u64 {
            b.record(i, true); // 16 successes push them all out
        }
        assert_eq!(b.state(23), BreakerState::Closed);
        for i in 23..30u64 {
            b.record(i, false); // 7 fresh failures still don't trip
        }
        assert_eq!(b.state(30), BreakerState::Closed);
        assert_eq!(b.opened(), 0);
    }

    #[test]
    fn in_flight_completion_after_trip_is_ignored() {
        let mut b = breaker();
        for i in 0..8u64 {
            b.record(i, false);
        }
        let opened = b.opened();
        b.record(9, false); // landed while open
        assert_eq!(b.opened(), opened, "no double trip");
        assert_eq!(b.admit(10), BreakerDecision::Reject);
    }
}
