//! `idnre-sched`: a deterministic event-driven query scheduler.
//!
//! The paper's crawl pushed millions of DNS and HTTP queries through a
//! fixed measurement window against infrastructure that was sometimes
//! simply drowning — lame delegations, rate-limiting registrars,
//! authorities knocked over by the very abuse being measured. The
//! synchronous fault pipeline (`idnre-fault` + the crawler's retry
//! executors) models per-query behaviour; this crate models the *fleet*:
//! how thousands of in-flight schedules share a bounded window, pace
//! themselves per nameserver, fail fast against dead authorities, and
//! shed load gracefully instead of collapsing when the storm profile
//! saturates capacity.
//!
//! The pieces, bottom-up:
//!
//! * [`TimerWheel`] — a hierarchical timeout wheel over virtual
//!   nanoseconds with a deterministic pop order (ties break on schedule
//!   sequence). Timers never fire early and at most one tick late.
//! * [`TokenBucket`] / [`RateConfig`] — per-nameserver pacing in integer
//!   virtual nanoseconds.
//! * [`CircuitBreaker`] / [`BreakerConfig`] — per-nameserver
//!   closed → open → half-open breakers over a sliding result window.
//! * [`run_schedule`] / [`QueryDriver`] — the event loop composing all
//!   of the above with `idnre-fault`'s [`RetryPolicy`] backoff schedule,
//!   a bounded in-flight window and priority-classed load shedding
//!   (retries outrank fresh arrivals; fresh load is shed first).
//!
//! Everything runs on virtual time, single-threaded per scheduler
//! instance: a fixed `(driver, config)` pair replays byte-identically on
//! every run and at every worker-thread count. The crawler wires these
//! into its survey harness (`idnre-crawler`'s scheduled crawl surveys),
//! mapping [`QueryReport`]s and [`SchedStats`] onto telemetry counters
//! and the run's error budget.

mod breaker;
mod exec;
mod rate;
mod wheel;

pub use breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
pub use exec::{
    run_schedule, QueryDriver, QueryReport, SchedConfig, SchedStats, ScheduleRun, ShedCause,
    StepVerdict, MAX_PHASES,
};
pub use rate::{RateConfig, TokenBucket};
pub use wheel::TimerWheel;

// Re-exported so driver implementations can name the policy type without
// also depending on idnre-fault directly.
pub use idnre_fault::RetryPolicy;
