//! The Shared-Registration-System (SRS) model: would a registrar accept
//! this IDN registration?
//!
//! Section VI-D probes this live ("we sampled 10 homographic IDNs and
//! attempted to register them through GoDaddy. All our requests were
//! approved"); Section VIII recommends registries add resemblance checks,
//! citing the brand-protection system deployed on three TLDs. Both policies
//! are modelled here.

use idnre_unicode::{script_of, skeleton, Script};
use std::collections::HashSet;
use std::error::Error;
use std::fmt;

/// Why a registration request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SrsRejection {
    /// The label fails IDNA validation.
    InvalidLabel(String),
    /// The ACE form is already in the zone.
    AlreadyRegistered,
    /// The brand-protection resemblance check matched a protected name.
    ResemblesProtectedBrand {
        /// The protected brand the label resembles.
        brand: String,
    },
    /// The label uses a script the zone's registration policy excludes
    /// (e.g. Cyrillic under a Han-only iTLD).
    DisallowedScript {
        /// The offending script.
        script: String,
    },
}

impl fmt::Display for SrsRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrsRejection::InvalidLabel(reason) => write!(f, "invalid label: {reason}"),
            SrsRejection::AlreadyRegistered => write!(f, "domain already registered"),
            SrsRejection::ResemblesProtectedBrand { brand } => {
                write!(f, "label resembles protected brand {brand}")
            }
            SrsRejection::DisallowedScript { script } => {
                write!(f, "script {script} not allowed in this zone")
            }
        }
    }
}

impl Error for SrsRejection {}

/// A registry's registration policy for one TLD.
#[derive(Debug, Clone)]
pub struct SrsPolicy {
    /// The TLD this policy serves (ACE form).
    pub tld: String,
    /// ACE SLDs already installed in the zone.
    registered: HashSet<String>,
    /// Protected brand SLDs for the resemblance check (empty = the default
    /// gTLD behaviour, which performs none — matching the GoDaddy probe).
    protected_brands: Vec<String>,
    /// Scripts admitted by the zone's IDN table (`None` = any registrable
    /// script, the gTLD default).
    allowed_scripts: Option<Vec<Script>>,
}

impl SrsPolicy {
    /// A default gTLD policy: IDNA validity and uniqueness only.
    pub fn gtld(tld: &str) -> Self {
        SrsPolicy {
            tld: tld.to_ascii_lowercase(),
            registered: HashSet::new(),
            protected_brands: Vec::new(),
            allowed_scripts: None,
        }
    }

    /// Restricts registrations to labels written purely in `scripts`
    /// (plus script-neutral characters). This models per-zone IDN tables:
    /// the 中国 iTLD, for instance, only admits Han labels.
    pub fn with_script_restriction<I>(mut self, scripts: I) -> Self
    where
        I: IntoIterator<Item = Script>,
    {
        self.allowed_scripts = Some(scripts.into_iter().collect());
        self
    }

    /// Enables the brand-protection resemblance check (the system the paper
    /// found on three TLDs, e.g. `cn`).
    pub fn with_brand_protection<I, S>(mut self, brands: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.protected_brands = brands
            .into_iter()
            .map(|b| {
                b.as_ref()
                    .split('.')
                    .next()
                    .unwrap_or("")
                    .to_ascii_lowercase()
            })
            .collect();
        self
    }

    /// Marks an SLD (ACE form) as already registered.
    pub fn install(&mut self, ace_sld: &str) {
        self.registered.insert(ace_sld.to_ascii_lowercase());
    }

    /// Processes a registration request for a Unicode SLD, returning the
    /// ACE form that would be installed into the zone.
    ///
    /// The pipeline mirrors Verisign's documented flow: convert the request
    /// to ACE, validate, check uniqueness — plus the optional resemblance
    /// check.
    ///
    /// # Errors
    ///
    /// Returns an [`SrsRejection`] naming the failed check.
    pub fn request(&mut self, unicode_sld: &str) -> Result<String, SrsRejection> {
        let ace = idnre_idna::to_ascii(unicode_sld)
            .map_err(|e| SrsRejection::InvalidLabel(e.to_string()))?;
        if ace.contains('.') {
            return Err(SrsRejection::InvalidLabel(
                "sld must be a single label".into(),
            ));
        }
        if self.registered.contains(&ace) {
            return Err(SrsRejection::AlreadyRegistered);
        }
        if let Some(allowed) = &self.allowed_scripts {
            for c in unicode_sld.chars() {
                let script = script_of(c);
                if script != Script::Common && !allowed.contains(&script) {
                    return Err(SrsRejection::DisallowedScript {
                        script: script.to_string(),
                    });
                }
            }
        }
        if !self.protected_brands.is_empty() {
            let folded = skeleton(unicode_sld);
            if let Some(brand) = self
                .protected_brands
                .iter()
                .find(|b| **b == folded && folded != unicode_sld)
            {
                return Err(SrsRejection::ResemblesProtectedBrand {
                    brand: brand.clone(),
                });
            }
        }
        self.registered.insert(ace.clone());
        Ok(ace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gtld_accepts_homographic_registrations() {
        // The paper's GoDaddy probe: all 10 sampled homographic IDNs were
        // approved — a plain gTLD policy performs no resemblance check.
        let mut srs = SrsPolicy::gtld("com");
        for spoof in ["gооgle", "аррӏе", "fаcebook", "éay", "ѕn"] {
            assert!(srs.request(spoof).is_ok(), "{spoof}");
        }
    }

    #[test]
    fn rejects_duplicates() {
        let mut srs = SrsPolicy::gtld("com");
        let ace = srs.request("波色").unwrap();
        assert_eq!(ace, "xn--0wwy37b");
        assert_eq!(srs.request("波色"), Err(SrsRejection::AlreadyRegistered));
    }

    #[test]
    fn rejects_invalid_labels() {
        let mut srs = SrsPolicy::gtld("com");
        assert!(matches!(
            srs.request("-bad"),
            Err(SrsRejection::InvalidLabel(_))
        ));
        assert!(matches!(
            srs.request("a b"),
            Err(SrsRejection::InvalidLabel(_))
        ));
    }

    #[test]
    fn brand_protection_blocks_lookalikes() {
        let mut srs = SrsPolicy::gtld("cn").with_brand_protection(["google.com", "apple.com"]);
        assert_eq!(
            srs.request("gооgle"),
            Err(SrsRejection::ResemblesProtectedBrand {
                brand: "google".into()
            })
        );
        // The genuine brand label itself is not "resembling".
        assert!(srs.request("google").is_ok());
        // Unrelated labels pass.
        assert!(srs.request("新闻").is_ok());
    }

    #[test]
    fn script_restriction_enforced() {
        use idnre_unicode::Script;
        // The 中国 iTLD zone: Han labels only.
        let mut srs =
            SrsPolicy::gtld("xn--fiqs8s").with_script_restriction([Script::Han, Script::Latin]);
        assert!(srs.request("新闻").is_ok());
        assert!(srs.request("news新闻").is_ok()); // Latin allowed here
        assert_eq!(
            srs.request("новости"),
            Err(SrsRejection::DisallowedScript {
                script: "Cyrillic".into()
            })
        );
        // Digits and hyphens are script-neutral.
        assert!(srs.request("新闻123").is_ok());
    }

    #[test]
    fn han_only_zone_blocks_latin() {
        use idnre_unicode::Script;
        let mut srs = SrsPolicy::gtld("xn--fiqs8s").with_script_restriction([Script::Han]);
        assert!(srs.request("商城").is_ok());
        assert!(matches!(
            srs.request("shop商城"),
            Err(SrsRejection::DisallowedScript { .. })
        ));
    }

    #[test]
    fn install_preloads_zone_state() {
        let mut srs = SrsPolicy::gtld("com");
        srs.install("xn--0wwy37b");
        assert_eq!(srs.request("波色"), Err(SrsRejection::AlreadyRegistered));
    }
}
