//! Availability enumeration (Section VI-D, Figure 7): how many homographic
//! IDNs *could* an attacker still register?

use idnre_render::{render_text, ssim};
use idnre_unicode::homoglyphs_of;

/// One generated lookalike candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Unicode form of the candidate SLD, e.g. `gооgle`.
    pub unicode_sld: String,
    /// ACE form of the full domain.
    pub ace: String,
    /// The targeted brand domain.
    pub brand: String,
    /// SSIM index against the brand.
    pub ssim: f64,
}

/// Per-brand availability summary.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityReport {
    /// The brand domain.
    pub brand: String,
    /// Candidates generated (one-character substitutions).
    pub generated: usize,
    /// Candidates clearing the SSIM threshold.
    pub homographic: usize,
}

/// The Section VI-D enumerator: one-character homoglyph substitution over a
/// brand list, SSIM-filtered.
#[derive(Debug, Clone)]
pub struct AvailabilityEnumerator {
    threshold: f64,
}

impl Default for AvailabilityEnumerator {
    fn default() -> Self {
        AvailabilityEnumerator { threshold: 0.95 }
    }
}

impl AvailabilityEnumerator {
    /// Creates an enumerator with the paper's 0.95 threshold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enumerator with a custom SSIM threshold (ablation use).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[-1, 1]`.
    pub fn with_threshold(threshold: f64) -> Self {
        assert!((-1.0..=1.0).contains(&threshold), "threshold out of range");
        AvailabilityEnumerator { threshold }
    }

    /// Generates every one-character substitution of `brand`'s SLD from the
    /// homoglyph table ("to reduce the computation overhead, only one
    /// character was replaced at a time").
    pub fn generate(&self, brand: &str) -> Vec<Candidate> {
        let sld = brand.split('.').next().unwrap_or(brand);
        let tld = brand.split('.').nth(1).unwrap_or("com");
        let brand_image = render_text(sld);
        let chars: Vec<char> = sld.chars().collect();
        let mut out = Vec::new();
        for (pos, &c) in chars.iter().enumerate() {
            for glyph in homoglyphs_of(c) {
                let mut spoofed = chars.clone();
                spoofed[pos] = glyph.ch;
                let unicode_sld: String = spoofed.iter().collect();
                let unicode = format!("{unicode_sld}.{tld}");
                let Ok(ace) = idnre_idna::to_ascii(&unicode) else {
                    continue;
                };
                let image = render_text(&unicode_sld);
                // A substitution that changes the rendered width (e.g. a
                // full-width homoglyph) cannot be a visual match; skip it
                // rather than panic on the dimension mismatch.
                let Ok(score) = ssim(&brand_image, &image) else {
                    continue;
                };
                out.push(Candidate {
                    unicode_sld,
                    ace,
                    brand: brand.to_string(),
                    ssim: score,
                });
            }
        }
        out
    }

    /// Generates *two-character* substitutions — the next rung above the
    /// paper's one-character lower bound ("the number of IDNs we found so
    /// far is just the lower-bound, as only one letter was replaced").
    /// The pair space explodes combinatorially, so `cap` bounds the output
    /// (pairs are enumerated in deterministic position/glyph order).
    pub fn generate_pairs(&self, brand: &str, cap: usize) -> Vec<Candidate> {
        let sld = brand.split('.').next().unwrap_or(brand);
        let tld = brand.split('.').nth(1).unwrap_or("com");
        let brand_image = render_text(sld);
        let chars: Vec<char> = sld.chars().collect();
        let mut out = Vec::new();
        'outer: for i in 0..chars.len() {
            for j in (i + 1)..chars.len() {
                for glyph_i in homoglyphs_of(chars[i]) {
                    for glyph_j in homoglyphs_of(chars[j]) {
                        if out.len() >= cap {
                            break 'outer;
                        }
                        let mut spoofed = chars.clone();
                        spoofed[i] = glyph_i.ch;
                        spoofed[j] = glyph_j.ch;
                        let unicode_sld: String = spoofed.iter().collect();
                        let unicode = format!("{unicode_sld}.{tld}");
                        let Ok(ace) = idnre_idna::to_ascii(&unicode) else {
                            continue;
                        };
                        let image = render_text(&unicode_sld);
                        let Ok(score) = ssim(&brand_image, &image) else {
                            continue;
                        };
                        out.push(Candidate {
                            unicode_sld,
                            ace,
                            brand: brand.to_string(),
                            ssim: score,
                        });
                    }
                }
            }
        }
        out
    }

    /// Candidates of `brand` clearing the threshold.
    pub fn homographic(&self, brand: &str) -> Vec<Candidate> {
        self.generate(brand)
            .into_iter()
            .filter(|c| c.ssim >= self.threshold)
            .collect()
    }

    /// Figure 7's per-brand series over a brand list.
    pub fn survey<'a, I>(&self, brands: I) -> Vec<AvailabilityReport>
    where
        I: IntoIterator<Item = &'a str>,
    {
        brands
            .into_iter()
            .map(|brand| {
                let generated = self.generate(brand);
                let homographic = generated
                    .iter()
                    .filter(|c| c.ssim >= self.threshold)
                    .count();
                AvailabilityReport {
                    brand: brand.to_string(),
                    generated: generated.len(),
                    homographic,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_single_substitutions() {
        let e = AvailabilityEnumerator::new();
        let candidates = e.generate("go.com");
        // Every candidate differs from "go" in exactly one position.
        for c in &candidates {
            let diff = c
                .unicode_sld
                .chars()
                .zip("go".chars())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 1, "{}", c.unicode_sld);
            assert!(c.ace.starts_with("xn--"), "{}", c.ace);
        }
        assert!(candidates.len() > 20, "count {}", candidates.len());
    }

    #[test]
    fn identical_glyphs_always_pass() {
        let e = AvailabilityEnumerator::new();
        let hits = e.homographic("go.com");
        // The Cyrillic о substitution is pixel-identical.
        assert!(hits.iter().any(|c| c.unicode_sld == "gо" && c.ssim == 1.0));
    }

    #[test]
    fn threshold_prunes_low_fidelity() {
        let strict = AvailabilityEnumerator::with_threshold(0.999);
        let loose = AvailabilityEnumerator::with_threshold(0.5);
        let brand = "google.com";
        assert!(strict.homographic(brand).len() < loose.homographic(brand).len());
    }

    #[test]
    fn longer_brands_pass_more_easily() {
        // A diacritic on a long word changes a smaller image fraction, so
        // the pass rate grows with brand length — the paper's Figure 7
        // shows exactly this per-brand variance.
        let e = AvailabilityEnumerator::new();
        let short = e.survey(["go.com"]);
        let long = e.survey(["instagram.com"]);
        let rate = |r: &AvailabilityReport| r.homographic as f64 / r.generated.max(1) as f64;
        assert!(rate(&long[0]) > rate(&short[0]));
    }

    #[test]
    fn pair_generation_differs_in_two_positions() {
        let e = AvailabilityEnumerator::new();
        let pairs = e.generate_pairs("go.com", 100);
        assert!(!pairs.is_empty());
        for c in &pairs {
            let diff = c
                .unicode_sld
                .chars()
                .zip("go".chars())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(diff, 2, "{}", c.unicode_sld);
        }
    }

    #[test]
    fn pair_space_exceeds_single_space() {
        let e = AvailabilityEnumerator::new();
        let singles = e.generate("apple.com").len();
        let pairs = e.generate_pairs("apple.com", 10_000).len();
        assert!(pairs > singles, "pairs {pairs} vs singles {singles}");
    }

    #[test]
    fn pair_cap_is_respected() {
        let e = AvailabilityEnumerator::new();
        assert!(e.generate_pairs("google.com", 25).len() <= 25);
    }

    #[test]
    fn survey_counts_are_consistent() {
        let e = AvailabilityEnumerator::new();
        let reports = e.survey(["google.com", "apple.com"]);
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert!(r.homographic <= r.generated);
            assert!(r.generated > 0);
        }
    }
}
