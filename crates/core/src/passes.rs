//! Detector-backed [`AnalysisPass`] implementations for the sharded
//! streaming scan.
//!
//! Each pass folds the detector's per-domain probe into a concatenated
//! finding list; because the scan merges shard partials in shard order,
//! the merged list is exactly the sequential corpus-order probe result.
//! The legacy batch scanners ([`HomographDetector::scan_recorded`],
//! [`SemanticDetector::scan_type1_parallel`]) remain the reference
//! implementations — the equivalence tests below hold each pass to the
//! same findings and the same counters.

use crate::homograph::{HomographDetector, HomographFinding, HOMOGRAPH_COUNTERS};
use crate::semantic::{SemanticDetector, SemanticFinding, SEMANTIC_COUNTERS};
use idnre_analyze::{AnalysisPass, Observed, Population};
use idnre_telemetry::Recorder;

/// SSIM homograph detection as a streaming pass (IDN population only).
///
/// Observation probes [`HomographDetector::detect_recorded`] per record;
/// `finish` sorts findings by domain, matching the batch scan's output
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct HomographPass<'d> {
    detector: &'d HomographDetector,
}

impl<'d> HomographPass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d HomographDetector) -> Self {
        HomographPass { detector }
    }
}

impl AnalysisPass for HomographPass<'_> {
    type Partial = Vec<HomographFinding>;
    type Output = Vec<HomographFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.homograph"
    }

    fn counters(&self) -> &'static [&'static str] {
        &HOMOGRAPH_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, recorder: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        if let Some(finding) = self.detector.detect_recorded(&rec.reg.domain, recorder) {
            partial.push(finding);
        }
    }

    fn finish(&self, mut partial: Self::Partial) -> Self::Output {
        partial.sort_by(|a, b| a.domain.cmp(&b.domain));
        partial
    }
}

/// Type-1 semantic detection as a streaming pass (IDN population only).
///
/// Findings stay in corpus order — the shard-order merge concatenates
/// per-shard lists, which is the same order
/// [`SemanticDetector::scan_type1_parallel`] produces.
#[derive(Debug, Clone, Copy)]
pub struct Semantic1Pass<'d> {
    detector: &'d SemanticDetector,
}

impl<'d> Semantic1Pass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d SemanticDetector) -> Self {
        Semantic1Pass { detector }
    }
}

impl AnalysisPass for Semantic1Pass<'_> {
    type Partial = Vec<SemanticFinding>;
    type Output = Vec<SemanticFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.semantic1"
    }

    fn counters(&self) -> &'static [&'static str] {
        &SEMANTIC_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, recorder: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        recorder.incr("semantic.candidates");
        let finding = self.detector.detect_type1(&rec.reg.domain);
        recorder.incr(match &finding {
            Some(_) => "semantic.findings",
            None => "semantic.skip.no_brand_match",
        });
        if let Some(finding) = finding {
            partial.push(finding);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// Type-2 (translated-brand) semantic detection as a streaming pass (IDN
/// population only; findings in corpus order). Only the embedded
/// translation dictionary is consulted, so any [`SemanticDetector`] —
/// whatever its brand list — produces identical Type-2 findings.
#[derive(Debug, Clone, Copy)]
pub struct Semantic2Pass<'d> {
    detector: &'d SemanticDetector,
}

impl<'d> Semantic2Pass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d SemanticDetector) -> Self {
        Semantic2Pass { detector }
    }
}

impl AnalysisPass for Semantic2Pass<'_> {
    type Partial = Vec<SemanticFinding>;
    type Output = Vec<SemanticFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.semantic2"
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        if let Some(finding) = self.detector.detect_type2(&rec.reg.domain) {
            partial.push(finding);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_analyze::{ShardedScan, SliceSource};
    use idnre_datagen::{Ecosystem, EcosystemConfig};
    use idnre_telemetry::Registry;

    fn corpus() -> (Ecosystem, Vec<String>) {
        let config = EcosystemConfig {
            scale: 1000,
            attack_scale: 20,
            brand_count: 50,
            ..EcosystemConfig::default()
        };
        let eco = Ecosystem::generate(&config);
        let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
        (eco, brands)
    }

    #[test]
    fn passes_match_legacy_batch_scans() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let idn_domains: Vec<&str> = eco
            .idn_registrations
            .iter()
            .map(|r| r.domain.as_str())
            .collect();

        let legacy_homographs = homograph.scan(idn_domains.iter().copied(), 4);
        let legacy_sem1 = semantic.scan_type1(idn_domains.iter().copied());
        let legacy_sem2 = semantic.scan_type2(idn_domains.iter().copied());
        assert!(!legacy_homographs.is_empty());
        assert!(!legacy_sem1.is_empty());

        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let h = scan.register(HomographPass::new(&homograph));
        let s1 = scan.register(Semantic1Pass::new(&semantic));
        let s2 = scan.register(Semantic2Pass::new(&semantic));
        let registry = Registry::new();
        let mut result = scan.run(&source, 64, 4, &registry);

        assert_eq!(result.take(&h), legacy_homographs);
        assert_eq!(result.take(&s1), legacy_sem1);
        assert_eq!(result.take(&s2), legacy_sem2);
    }

    #[test]
    fn pass_counters_match_legacy_batch_scans() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let idn_domains: Vec<&str> = eco
            .idn_registrations
            .iter()
            .map(|r| r.domain.as_str())
            .collect();

        let legacy = Registry::new();
        let _ = homograph.scan_recorded(idn_domains.iter().copied(), 4, &legacy);
        let _ = semantic.scan_type1_parallel(idn_domains.iter().copied(), 4, &legacy);
        let legacy_counters = legacy.snapshot().counters;

        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let _ = scan.register(HomographPass::new(&homograph));
        let _ = scan.register(Semantic1Pass::new(&semantic));
        let streamed = Registry::new();
        let _ = scan.run(&source, 128, 2, &streamed);

        assert_eq!(streamed.snapshot().counters, legacy_counters);
    }

    #[test]
    fn passes_are_associative() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let _ = scan.register(HomographPass::new(&homograph));
        let _ = scan.register(Semantic1Pass::new(&semantic));
        let _ = scan.register(Semantic2Pass::new(&semantic));
        assert_eq!(
            scan.merge_is_associative(&source, 97, &idnre_telemetry::NoopRecorder),
            Ok(())
        );
    }
}
