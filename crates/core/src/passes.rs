//! Detector-backed [`AnalysisPass`] implementations for the sharded
//! streaming scan.
//!
//! Each pass folds the detector's per-domain probe into a concatenated
//! finding list; because the scan merges shard partials in shard order,
//! the merged list is exactly the sequential corpus-order probe result.
//! The legacy batch scanners ([`HomographDetector::scan_recorded`],
//! [`SemanticDetector::scan_type1_parallel`]) remain the reference
//! implementations — the equivalence tests below hold each pass to the
//! same findings and the same counters.

use crate::homograph::{HomographDetector, HomographFinding, HOMOGRAPH_COUNTERS};
use crate::semantic::{SemanticDetector, SemanticFinding, SEMANTIC_COUNTERS};
use idnre_analyze::{AnalysisPass, Merge, Observed, Population};
use idnre_arena::CorpusColumns;
use idnre_telemetry::Recorder;
use idnre_unicode::skeleton;

/// SSIM homograph detection as a streaming pass (IDN population only).
///
/// Observation probes [`HomographDetector::detect_recorded`] per record;
/// `finish` sorts findings by domain, matching the batch scan's output
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct HomographPass<'d> {
    detector: &'d HomographDetector,
}

impl<'d> HomographPass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d HomographDetector) -> Self {
        HomographPass { detector }
    }
}

impl AnalysisPass for HomographPass<'_> {
    type Partial = Vec<HomographFinding>;
    type Output = Vec<HomographFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.homograph"
    }

    fn counters(&self) -> &'static [&'static str] {
        &HOMOGRAPH_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, recorder: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        if let Some(finding) = self.detector.detect_recorded(&rec.reg.domain, recorder) {
            partial.push(finding);
        }
    }

    fn finish(&self, mut partial: Self::Partial) -> Self::Output {
        partial.sort_by(|a, b| a.domain.cmp(&b.domain));
        partial
    }
}

/// SSIM homograph detection fed from interned [`CorpusColumns`] instead of
/// re-resolving label strings per record.
///
/// The per-record path ([`HomographPass`]) runs `to_unicode` + a full
/// [`skeleton`] fold for every record. The corpus interns each distinct
/// label once, so this pass hoists both out of the hot loop: one skeleton
/// per *distinct* label (parallelized in the constructor), one decoded
/// suffix skeleton per TLD, and per record only a scratch-buffer key
/// assembly plus the index probe. Because [`skeleton`] maps characters
/// independently (ASCII passes through untouched), `skeleton(unicode)` ==
/// `skeleton(sld) + skeleton(".tld")` — the assembled key matches the
/// per-record fold byte for byte, so findings *and* counters are identical
/// to [`HomographPass`] (the equivalence tests below pin both).
///
/// Counters are tallied in the partial and flushed once per shard in
/// `shard_end` (the batched-flush contract from
/// [`AnalysisPass::shard_end`]). `homograph.skip.invalid_idna` is
/// structurally zero here: column rows come from display forms the corpus
/// builder already decoded, so there is nothing left to fail — the counter
/// equivalence test below holds this path to the per-record one anyway.
pub struct ColumnedHomographPass<'d> {
    detector: &'d HomographDetector,
    columns: &'d CorpusColumns,
    /// Per distinct label: `None` when the label is pure ASCII (nothing
    /// to spoof), else its confusable-folded skeleton. Owned for one-shot
    /// scans, borrowed from a [`SkeletonCache`] across epochs.
    label_skeletons: std::borrow::Cow<'d, [Option<String>]>,
    /// Per TLD id: `skeleton(".<decoded tld>")` — the decoded form because
    /// record display forms decode iTLDs too.
    tld_suffixes: std::borrow::Cow<'d, [String]>,
}

/// Precomputed skeleton pieces of [`ColumnedHomographPass`], held outside
/// the pass so an epoch engine can keep them resident while passes are
/// rebuilt every epoch.
///
/// Growth is **append-only**, mirroring the interner it indexes:
/// [`SkeletonCache::extend_to`] computes skeletons only for symbols and
/// TLD ids past the previous high-water mark, so an epoch pays skeleton
/// cost proportional to *new distinct labels*, not corpus size — while a
/// from-scratch constructor would recompute every label, every epoch.
#[derive(Debug, Clone, Default)]
pub struct SkeletonCache {
    labels: Vec<Option<String>>,
    tlds: Vec<String>,
}

fn label_skeletons_from(columns: &CorpusColumns, from: usize, threads: usize) -> Vec<Option<String>> {
    let labels: Vec<&str> = columns.labels().iter().skip(from).collect();
    idnre_par::par_map(&labels, threads, |label| {
        if label.is_ascii() {
            None
        } else {
            Some(skeleton(label))
        }
    })
}

fn tld_suffixes_from(columns: &CorpusColumns, from: usize) -> Vec<String> {
    columns
        .tlds()
        .iter()
        .skip(from)
        .map(|tld| {
            let decoded = idnre_idna::to_unicode(tld).unwrap_or_else(|_| tld.to_string());
            skeleton(&format!(".{decoded}"))
        })
        .collect()
}

impl SkeletonCache {
    /// Precomputes skeletons for every distinct label and TLD currently
    /// interned in `columns`, on `threads` workers.
    pub fn build(columns: &CorpusColumns, threads: usize) -> Self {
        let mut cache = SkeletonCache::default();
        cache.extend_to(columns, threads);
        cache
    }

    /// Appends skeletons for labels and TLDs interned since the last
    /// build/extend. Symbols below the high-water mark are never
    /// recomputed — the interner is append-only, so their strings (and
    /// hence skeletons) are immutable.
    pub fn extend_to(&mut self, columns: &CorpusColumns, threads: usize) {
        self.labels
            .extend(label_skeletons_from(columns, self.labels.len(), threads));
        self.tlds
            .extend(tld_suffixes_from(columns, self.tlds.len()));
    }

    /// Distinct labels covered (the cache's high-water mark).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// TLD ids covered.
    pub fn tld_count(&self) -> usize {
        self.tlds.len()
    }
}

impl<'d> ColumnedHomographPass<'d> {
    /// Precomputes the per-label and per-TLD skeleton pieces on `threads`
    /// workers (owned; for one-shot scans).
    pub fn new(
        detector: &'d HomographDetector,
        columns: &'d CorpusColumns,
        threads: usize,
    ) -> Self {
        ColumnedHomographPass {
            detector,
            columns,
            label_skeletons: std::borrow::Cow::Owned(label_skeletons_from(columns, 0, threads)),
            tld_suffixes: std::borrow::Cow::Owned(tld_suffixes_from(columns, 0)),
        }
    }

    /// Borrows precomputed skeletons from `cache` instead of recomputing
    /// them — the epoch-engine constructor. The cache must cover
    /// `columns` (`SkeletonCache::extend_to` after any column growth).
    ///
    /// # Panics
    ///
    /// Panics if the cache covers fewer labels or TLDs than `columns`
    /// has interned.
    pub fn with_cache(
        detector: &'d HomographDetector,
        columns: &'d CorpusColumns,
        cache: &'d SkeletonCache,
    ) -> Self {
        assert!(
            cache.label_count() >= columns.labels().len()
                && cache.tld_count() >= columns.tlds().len(),
            "SkeletonCache is behind the interner: extend_to was not called \
             after column growth"
        );
        ColumnedHomographPass {
            detector,
            columns,
            label_skeletons: std::borrow::Cow::Borrowed(&cache.labels),
            tld_suffixes: std::borrow::Cow::Borrowed(&cache.tlds),
        }
    }
}

/// Shard partial of [`ColumnedHomographPass`]: concatenated findings plus
/// counter tallies (indexed like [`HOMOGRAPH_COUNTERS`]) and a reusable
/// key-assembly buffer. The buffer is scratch state — excluded from
/// equality, untouched by merge.
#[derive(Debug, Clone, Default)]
pub struct ColumnedHomographPartial {
    findings: Vec<HomographFinding>,
    tallies: [u64; HOMOGRAPH_COUNTERS.len()],
    key_scratch: String,
}

impl PartialEq for ColumnedHomographPartial {
    fn eq(&self, other: &Self) -> bool {
        self.findings == other.findings && self.tallies == other.tallies
    }
}

impl Merge for ColumnedHomographPartial {
    fn merge(mut self, mut later: Self) -> Self {
        self.findings.append(&mut later.findings);
        for (mine, theirs) in self.tallies.iter_mut().zip(later.tallies) {
            *mine += theirs;
        }
        self
    }
}

impl AnalysisPass for ColumnedHomographPass<'_> {
    type Partial = ColumnedHomographPartial;
    type Output = Vec<HomographFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.homograph"
    }

    fn counters(&self) -> &'static [&'static str] {
        &HOMOGRAPH_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        ColumnedHomographPartial::default()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        let row = rec.index as usize;
        partial.tallies[0] += 1; // homograph.candidates
        let sym = self.columns.sld_symbol(row);
        let Some(label_skeleton) = &self.label_skeletons[sym.index()] else {
            partial.tallies[2] += 1; // homograph.skip.ascii_sld
            return;
        };
        let key = &mut partial.key_scratch;
        key.clear();
        key.push_str(label_skeleton);
        key.push_str(&self.tld_suffixes[usize::from(self.columns.tld_id(row))]);
        let Some(bucket) = self.detector.bucket(key) else {
            partial.tallies[3] += 1; // homograph.skip.no_skeleton_match
            return;
        };
        match self
            .detector
            .verify_bucket(&rec.reg.domain, &rec.reg.unicode, bucket)
        {
            Some(finding) => {
                partial.tallies[5] += 1; // homograph.findings
                partial.findings.push(finding);
            }
            None => partial.tallies[4] += 1, // homograph.skip.below_threshold
        }
    }

    fn shard_end(&self, partial: &mut Self::Partial, recorder: &dyn Recorder) {
        for (name, tally) in HOMOGRAPH_COUNTERS.iter().zip(partial.tallies.iter_mut()) {
            if *tally > 0 {
                recorder.add(name, *tally);
                *tally = 0;
            }
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        let mut findings = partial.findings;
        findings.sort_by(|a, b| a.domain.cmp(&b.domain));
        findings
    }
}

/// Type-1 semantic detection as a streaming pass (IDN population only).
///
/// Findings stay in corpus order — the shard-order merge concatenates
/// per-shard lists, which is the same order
/// [`SemanticDetector::scan_type1_parallel`] produces.
#[derive(Debug, Clone, Copy)]
pub struct Semantic1Pass<'d> {
    detector: &'d SemanticDetector,
}

impl<'d> Semantic1Pass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d SemanticDetector) -> Self {
        Semantic1Pass { detector }
    }
}

impl AnalysisPass for Semantic1Pass<'_> {
    type Partial = Vec<SemanticFinding>;
    type Output = Vec<SemanticFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.semantic1"
    }

    fn counters(&self) -> &'static [&'static str] {
        &SEMANTIC_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, recorder: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        recorder.incr("semantic.candidates");
        let finding = self.detector.detect_type1(&rec.reg.domain);
        recorder.incr(match &finding {
            Some(_) => "semantic.findings",
            None => "semantic.skip.no_brand_match",
        });
        if let Some(finding) = finding {
            partial.push(finding);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// Type-2 (translated-brand) semantic detection as a streaming pass (IDN
/// population only; findings in corpus order). Only the embedded
/// translation dictionary is consulted, so any [`SemanticDetector`] —
/// whatever its brand list — produces identical Type-2 findings.
#[derive(Debug, Clone, Copy)]
pub struct Semantic2Pass<'d> {
    detector: &'d SemanticDetector,
}

impl<'d> Semantic2Pass<'d> {
    /// Wraps a configured detector.
    pub fn new(detector: &'d SemanticDetector) -> Self {
        Semantic2Pass { detector }
    }
}

impl AnalysisPass for Semantic2Pass<'_> {
    type Partial = Vec<SemanticFinding>;
    type Output = Vec<SemanticFinding>;

    fn name(&self) -> &'static str {
        "analyze.pass.semantic2"
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        if let Some(finding) = self.detector.detect_type2(&rec.reg.domain) {
            partial.push(finding);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_analyze::{ShardedScan, SliceSource};
    use idnre_datagen::{Ecosystem, EcosystemConfig};
    use idnre_telemetry::Registry;

    fn corpus() -> (Ecosystem, Vec<String>) {
        let config = EcosystemConfig {
            scale: 1000,
            attack_scale: 20,
            brand_count: 50,
            ..EcosystemConfig::default()
        };
        let eco = Ecosystem::generate(&config);
        let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
        (eco, brands)
    }

    #[test]
    fn passes_match_legacy_batch_scans() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let idn_domains: Vec<&str> = eco
            .idn_registrations
            .iter()
            .map(|r| r.domain.as_str())
            .collect();

        let legacy_homographs = homograph.scan(idn_domains.iter().copied(), 4);
        let legacy_sem1 = semantic.scan_type1(idn_domains.iter().copied());
        let legacy_sem2 = semantic.scan_type2(idn_domains.iter().copied());
        assert!(!legacy_homographs.is_empty());
        assert!(!legacy_sem1.is_empty());

        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let h = scan.register(HomographPass::new(&homograph));
        let s1 = scan.register(Semantic1Pass::new(&semantic));
        let s2 = scan.register(Semantic2Pass::new(&semantic));
        let registry = Registry::new();
        let mut result = scan.run(&source, 64, 4, &registry);

        assert_eq!(result.take(&h), legacy_homographs);
        assert_eq!(result.take(&s1), legacy_sem1);
        assert_eq!(result.take(&s2), legacy_sem2);
    }

    #[test]
    fn pass_counters_match_legacy_batch_scans() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let idn_domains: Vec<&str> = eco
            .idn_registrations
            .iter()
            .map(|r| r.domain.as_str())
            .collect();

        let legacy = Registry::new();
        let _ = homograph.scan_recorded(idn_domains.iter().copied(), 4, &legacy);
        let _ = semantic.scan_type1_parallel(idn_domains.iter().copied(), 4, &legacy);
        let legacy_counters = legacy.snapshot().counters;

        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let _ = scan.register(HomographPass::new(&homograph));
        let _ = scan.register(Semantic1Pass::new(&semantic));
        let streamed = Registry::new();
        let _ = scan.run(&source, 128, 2, &streamed);

        assert_eq!(streamed.snapshot().counters, legacy_counters);
    }

    fn columns_of(eco: &Ecosystem) -> idnre_arena::CorpusColumns {
        let mut builder = idnre_arena::ColumnsBuilder::new();
        for reg in &eco.idn_registrations {
            let sld = reg.unicode.split('.').next().unwrap_or("");
            builder.push(
                sld,
                &reg.tld,
                reg.malicious.is_some(),
                false,
                false,
                false,
                false,
            );
        }
        builder.finish(|labels| vec![0; labels.len()])
    }

    #[test]
    fn columned_homograph_matches_per_record_pass() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let columns = columns_of(&eco);
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);

        let per_record_registry = Registry::new();
        let per_record = {
            let mut scan = ShardedScan::new();
            let h = scan.register(HomographPass::new(&homograph));
            let mut result = scan.run(&source, 64, 4, &per_record_registry);
            result.take(&h)
        };
        assert!(!per_record.is_empty());

        let columned_registry = Registry::new();
        let columned = {
            let mut scan = ShardedScan::new();
            let h = scan.register(ColumnedHomographPass::new(&homograph, &columns, 4));
            let mut result = scan.run(&source, 64, 4, &columned_registry);
            result.take(&h)
        };

        assert_eq!(columned, per_record);
        assert_eq!(
            columned_registry.snapshot().counters,
            per_record_registry.snapshot().counters
        );
    }

    #[test]
    fn columned_homograph_is_associative_and_shard_invariant() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let columns = columns_of(&eco);
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        {
            let mut scan = ShardedScan::new();
            let _ = scan.register(ColumnedHomographPass::new(&homograph, &columns, 4));
            assert_eq!(
                scan.merge_is_associative(&source, 97, &idnre_telemetry::NoopRecorder),
                Ok(())
            );
        }
        let mut reference = None;
        for (threads, shard_size) in [(1, 64), (2, 1024), (8, 97)] {
            let mut scan = ShardedScan::new();
            let h = scan.register(ColumnedHomographPass::new(&homograph, &columns, threads));
            let mut result = scan.run(&source, shard_size, threads, &idnre_telemetry::NoopRecorder);
            let findings = result.take(&h);
            match &reference {
                None => reference = Some(findings),
                Some(expected) => assert_eq!(&findings, expected, "threads={threads}"),
            }
        }
    }

    #[test]
    fn cached_skeletons_match_owned_precompute() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let columns = columns_of(&eco);
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let cache = SkeletonCache::build(&columns, 4);
        assert_eq!(cache.label_count(), columns.labels().len());
        assert_eq!(cache.tld_count(), columns.tlds().len());
        // Extending an up-to-date cache is a no-op, not a recompute.
        let mut extended = cache.clone();
        extended.extend_to(&columns, 4);
        assert_eq!(extended.label_count(), cache.label_count());

        let owned = {
            let mut scan = ShardedScan::new();
            let h = scan.register(ColumnedHomographPass::new(&homograph, &columns, 4));
            let mut result = scan.run(&source, 64, 4, &idnre_telemetry::NoopRecorder);
            result.take(&h)
        };
        let cached = {
            let mut scan = ShardedScan::new();
            let h = scan.register(ColumnedHomographPass::with_cache(&homograph, &columns, &cache));
            let mut result = scan.run(&source, 64, 4, &idnre_telemetry::NoopRecorder);
            result.take(&h)
        };
        assert_eq!(cached, owned);
    }

    #[test]
    #[should_panic(expected = "behind the interner")]
    fn stale_skeleton_cache_is_rejected() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let columns = columns_of(&eco);
        let stale = SkeletonCache::default();
        let _ = ColumnedHomographPass::with_cache(&homograph, &columns, &stale);
    }

    #[test]
    fn passes_are_associative() {
        let (eco, brands) = corpus();
        let homograph = HomographDetector::new(&brands, 0.95);
        let semantic = SemanticDetector::new(&brands);
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let mut scan = ShardedScan::new();
        let _ = scan.register(HomographPass::new(&homograph));
        let _ = scan.register(Semantic1Pass::new(&semantic));
        let _ = scan.register(Semantic2Pass::new(&semantic));
        assert_eq!(
            scan.merge_is_associative(&source, 97, &idnre_telemetry::NoopRecorder),
            Ok(())
        );
    }
}
