//! The SSIM-based homograph detector (Section VI-B).

use idnre_render::{render_text, ssim, GrayImage};
use idnre_telemetry::{NoopRecorder, Recorder};
use idnre_unicode::skeleton;
use std::collections::HashMap;

/// One pre-rendered brand target.
#[derive(Debug, Clone)]
struct BrandEntry {
    /// Full brand domain, e.g. `google.com`.
    domain: String,
    /// Pre-rendered image of the full domain (`google.com`), matching the
    /// paper's Table XII presentation.
    image: GrayImage,
}

/// A detected homographic IDN.
#[derive(Debug, Clone, PartialEq)]
pub struct HomographFinding {
    /// The scanned domain (as given, ACE or Unicode).
    pub domain: String,
    /// Its Unicode display form.
    pub unicode: String,
    /// The impersonated brand domain.
    pub brand: String,
    /// The maximum SSIM index (the paper assumes one brand per IDN and
    /// keeps only the maximum).
    pub ssim: f64,
}

/// SSIM-based visual lookalike detector with a precomputed confusable
/// index.
///
/// Brand images are rendered once at construction, and every brand is
/// filed under its *confusable skeleton* — the string with every
/// confusable folded back to the ASCII character it imitates
/// (ShamFinder-style canonical form). [`HomographDetector::detect`] then
/// folds the candidate the same way and does one O(1) hash probe: only
/// the brands in the matching bucket are rendered and SSIM-scored,
/// replacing the paper's 102-hour full cross-product with an index probe
/// plus a handful of scored verifications. Every homoglyph-substitution
/// lookalike has, by construction, the same skeleton as its target, so
/// the index is lossless for the attack class the threshold can catch;
/// [`HomographDetector::detect_exhaustive`] keeps the paper's exact
/// pairwise procedure as the oracle, and the equivalence proptest in
/// `tests/proptest_homograph.rs` holds the two paths to the same verdict
/// on generated attack corpora.
#[derive(Debug, Clone)]
pub struct HomographDetector {
    brands: Vec<BrandEntry>,
    by_skeleton: HashMap<String, Vec<usize>>,
    threshold: f64,
}

/// The counters [`HomographDetector::detect_recorded`] reports, in
/// snapshot order. Parallel scans pre-register these before spawning
/// workers so snapshot order never depends on scheduling.
pub const HOMOGRAPH_COUNTERS: [&str; 6] = [
    "homograph.candidates",
    "homograph.skip.invalid_idna",
    "homograph.skip.ascii_sld",
    "homograph.skip.no_skeleton_match",
    "homograph.skip.below_threshold",
    "homograph.findings",
];

/// Scores one candidate pair of rendered domains: `Some(ssim)` when the
/// renders are width-compatible and SSIM succeeds, `None` otherwise.
///
/// This is the single verification kernel shared by the brand detector
/// (both the indexed and exhaustive paths) and the zone-wide pair miner —
/// "visually confusable" means the same thing everywhere.
#[inline]
pub fn pair_score(a: &GrayImage, b: &GrayImage) -> Option<f64> {
    if a.width() != b.width() {
        return None;
    }
    ssim(a, b).ok()
}

impl HomographDetector {
    /// Builds a detector for `brands` (domains like `google.com`) with an
    /// SSIM `threshold` (the paper uses 0.95), indexing each brand under
    /// its confusable-folded skeleton.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is outside `[-1, 1]`.
    pub fn new<I, S>(brands: I, threshold: f64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        assert!((-1.0..=1.0).contains(&threshold), "threshold out of range");
        let mut entries = Vec::new();
        let mut by_skeleton: HashMap<String, Vec<usize>> = HashMap::new();
        for brand in brands {
            let domain = brand.as_ref().to_ascii_lowercase();
            let image = render_text(&domain);
            by_skeleton
                .entry(skeleton(&domain))
                .or_default()
                .push(entries.len());
            entries.push(BrandEntry { domain, image });
        }
        HomographDetector {
            brands: entries,
            by_skeleton,
            threshold,
        }
    }

    /// The detection threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of brand targets.
    pub fn brand_count(&self) -> usize {
        self.brands.len()
    }

    /// Number of distinct skeleton buckets in the index. Brands whose
    /// skeletons collide (e.g. an IDN brand folding onto an ASCII one)
    /// share a bucket and are all verified on a probe hit.
    pub fn index_buckets(&self) -> usize {
        self.by_skeleton.len()
    }

    /// Tests one domain (ACE or Unicode form). Returns the best match at or
    /// above the threshold.
    pub fn detect(&self, domain: &str) -> Option<HomographFinding> {
        self.detect_recorded(domain, &NoopRecorder)
    }

    /// [`HomographDetector::detect`] with skip-reason and finding counters
    /// reported to `recorder` (`homograph.candidates`, `homograph.skip.*`,
    /// `homograph.findings`).
    pub fn detect_recorded(
        &self,
        domain: &str,
        recorder: &dyn Recorder,
    ) -> Option<HomographFinding> {
        recorder.incr("homograph.candidates");
        let Ok(unicode) = idnre_idna::to_unicode(domain) else {
            recorder.incr("homograph.skip.invalid_idna");
            return None;
        };
        let sld = unicode.split('.').next()?;
        if sld.is_ascii() {
            recorder.incr("homograph.skip.ascii_sld");
            return None; // not an IDN label — nothing to spoof with
        }
        let folded = skeleton(&unicode);
        let Some(candidates) = self.bucket(&folded) else {
            recorder.incr("homograph.skip.no_skeleton_match");
            return None;
        };
        let best = self.verify_bucket(domain, &unicode, candidates);
        if best.is_some() {
            recorder.incr("homograph.findings");
        } else {
            recorder.incr("homograph.skip.below_threshold");
        }
        best
    }

    /// Probes the confusable-skeleton index with an **already folded** key
    /// (the caller ran [`skeleton`] — or assembled the fold from
    /// precomputed per-label pieces). Returns the brand bucket on a hit.
    #[inline]
    pub fn bucket(&self, folded: &str) -> Option<&[usize]> {
        self.by_skeleton.get(folded).map(Vec::as_slice)
    }

    /// Renders `unicode` and SSIM-scores it against the brands in
    /// `bucket` (indices from [`HomographDetector::bucket`]), returning
    /// the best match at or above the threshold. Counter-free: this is
    /// the verification tail shared by [`HomographDetector::detect_recorded`]
    /// and the columned streaming pass.
    pub fn verify_bucket(
        &self,
        domain: &str,
        unicode: &str,
        bucket: &[usize],
    ) -> Option<HomographFinding> {
        let image = render_text(unicode);
        let mut best: Option<HomographFinding> = None;
        for &idx in bucket {
            let brand = &self.brands[idx];
            if brand.domain == unicode {
                continue; // the brand itself
            }
            // Widths are pre-checked by the shared kernel and all renders
            // share one height; a mismatch degrades to a skip, not a panic.
            let Some(score) = pair_score(&brand.image, &image) else {
                continue;
            };
            if score >= self.threshold && best.as_ref().map(|b| score > b.ssim).unwrap_or(true) {
                best = Some(HomographFinding {
                    domain: domain.to_string(),
                    unicode: unicode.to_string(),
                    brand: brand.domain.clone(),
                    ssim: score,
                });
            }
        }
        best
    }

    /// Exhaustive variant: compares against *every* brand of the same
    /// rendered width, skipping the skeleton pre-filter (the paper's exact
    /// procedure; used by the ablation bench).
    pub fn detect_exhaustive(&self, domain: &str) -> Option<HomographFinding> {
        let unicode = idnre_idna::to_unicode(domain).ok()?;
        let sld = unicode.split('.').next()?;
        if sld.is_ascii() {
            return None;
        }
        let image = render_text(&unicode);
        let mut best: Option<HomographFinding> = None;
        for brand in &self.brands {
            if brand.domain == unicode {
                continue;
            }
            let Some(score) = pair_score(&brand.image, &image) else {
                continue;
            };
            if score >= self.threshold && best.as_ref().map(|b| score > b.ssim).unwrap_or(true) {
                best = Some(HomographFinding {
                    domain: domain.to_string(),
                    unicode: unicode.clone(),
                    brand: brand.domain.clone(),
                    ssim: score,
                });
            }
        }
        best
    }

    /// Scans a corpus on `threads` workers pulling chunks from a shared
    /// work queue, returning all findings (corpus order not preserved;
    /// sorted by domain for determinism).
    pub fn scan<'a, I>(&self, domains: I, threads: usize) -> Vec<HomographFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.scan_recorded(domains, threads, &NoopRecorder)
    }

    /// [`HomographDetector::scan`] with per-probe counters and a
    /// `homograph.scan` span reported to `recorder`. Counters accumulate
    /// from all worker threads; [`HOMOGRAPH_COUNTERS`] are pre-registered
    /// so their snapshot order is scheduling-independent.
    pub fn scan_recorded<'a, I>(
        &self,
        domains: I,
        threads: usize,
        recorder: &dyn Recorder,
    ) -> Vec<HomographFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut span = recorder.span("homograph.scan");
        let domains: Vec<&str> = domains.into_iter().collect();
        recorder.preregister(&HOMOGRAPH_COUNTERS);
        let mut findings: Vec<HomographFinding> =
            idnre_par::par_map(&domains, threads, |d| self.detect_recorded(d, recorder))
                .into_iter()
                .flatten()
                .collect();
        findings.sort_by(|a, b| a.domain.cmp(&b.domain));
        span.add_records(findings.len() as u64);
        findings
    }

    /// The oracle scan: [`HomographDetector::detect_exhaustive`] over the
    /// corpus on the same work-queue executor, sorted like
    /// [`HomographDetector::scan`]. Exists for the ablation bench and the
    /// index-equivalence proptests; O(brands) per domain.
    pub fn scan_exhaustive<'a, I>(&self, domains: I, threads: usize) -> Vec<HomographFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let domains: Vec<&str> = domains.into_iter().collect();
        let mut findings: Vec<HomographFinding> =
            idnre_par::par_map(&domains, threads, |d| self.detect_exhaustive(d))
                .into_iter()
                .flatten()
                .collect();
        findings.sort_by(|a, b| a.domain.cmp(&b.domain));
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> HomographDetector {
        HomographDetector::new(
            ["google.com", "apple.com", "facebook.com", "instagram.com"],
            0.95,
        )
    }

    #[test]
    fn detects_paper_table_xii_ladder() {
        let d = detector();
        // ≥ 0.95 → detected.
        for spoof in ["gооgle.com", "googlę.com", "goögle.com", "gõõgle.com"] {
            let hit = d.detect(spoof).unwrap_or_else(|| panic!("{spoof} missed"));
            assert_eq!(hit.brand, "google.com");
            assert!(hit.ssim >= 0.95);
        }
        // Below 0.95 → not homographic by the paper's bar.
        for weak in ["böögle.com", "gåøgle.com"] {
            assert!(d.detect(weak).is_none(), "{weak} should be below 0.95");
        }
    }

    #[test]
    fn detects_ace_input() {
        let d = detector();
        // The 2017 apple.com attack, in its zone-file (ACE) form.
        let hit = d.detect("xn--80ak6aa92e.com").unwrap();
        assert_eq!(hit.brand, "apple.com");
        assert_eq!(hit.ssim, 1.0);
        assert_eq!(hit.unicode, "аррӏе.com");
    }

    #[test]
    fn identical_spoof_scores_one() {
        let d = detector();
        let hit = d.detect("instаgram.com").unwrap(); // Cyrillic а
        assert_eq!(hit.ssim, 1.0);
    }

    #[test]
    fn ignores_ascii_and_unrelated() {
        let d = detector();
        assert!(d.detect("example.com").is_none());
        assert!(d.detect("彩票.com").is_none());
        assert!(d.detect("googles.com").is_none()); // ASCII, not an IDN
    }

    #[test]
    fn brand_itself_is_not_a_finding() {
        let d = detector();
        assert!(d.detect("google.com").is_none());
    }

    #[test]
    fn exhaustive_agrees_with_prefilter_on_attacks() {
        let d = detector();
        for spoof in ["gооgle.com", "fаcebook.com", "googlę.com"] {
            let fast = d.detect(spoof);
            let full = d.detect_exhaustive(spoof);
            assert_eq!(
                fast.as_ref().map(|f| (&f.brand, f.ssim >= 0.95)),
                full.as_ref().map(|f| (&f.brand, f.ssim >= 0.95)),
                "{spoof}"
            );
        }
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let d = detector();
        let corpus = [
            "gооgle.com",
            "example.com",
            "аррӏе.com",
            "fаcebook.com",
            "xn--0wwy37b.com",
        ];
        let parallel = d.scan(corpus.iter().copied(), 4);
        let mut serial: Vec<_> = corpus.iter().filter_map(|s| d.detect(s)).collect();
        serial.sort_by(|a, b| a.domain.cmp(&b.domain));
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 3);
    }

    #[test]
    #[should_panic(expected = "threshold out of range")]
    fn threshold_validated() {
        let _ = HomographDetector::new(["a.com"], 2.0);
    }
}
