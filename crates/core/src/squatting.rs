//! Baseline domain-squatting candidate generators.
//!
//! The paper situates homograph/semantic IDN abuse within the wider
//! domain-squatting literature: typo-squatting (Agten et al., Szurdi et
//! al.), bitsquatting (Nikiforakis et al.) and combosquatting (Kintis et
//! al.). These generators reimplement those baseline attack models so the
//! availability analysis can compare candidate-pool sizes and overlap
//! across squatting classes — the dnstwist-style enumeration, from scratch.

use std::collections::BTreeSet;

/// Which squatting model produced a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum SquattingClass {
    /// Missing one character (`gogle.com`).
    Omission,
    /// One character doubled (`gooogle.com`).
    Repetition,
    /// Two adjacent characters swapped (`googel.com`).
    Transposition,
    /// One character replaced by a QWERTY neighbour (`foogle.com`).
    Replacement,
    /// One character inserted from the QWERTY neighbourhood (`gfoogle.com`).
    Insertion,
    /// A single bit flipped in the ASCII encoding, still a valid LDH label
    /// (`coogle.com`, `g` 0x67 → `c` 0x63).
    Bitsquat,
    /// Brand compounded with an English keyword (`google-login.com`) —
    /// the ASCII sibling of the paper's Type-1 semantic attack.
    Combosquat,
}

impl SquattingClass {
    /// All classes, in report order.
    pub const ALL: [SquattingClass; 7] = [
        SquattingClass::Omission,
        SquattingClass::Repetition,
        SquattingClass::Transposition,
        SquattingClass::Replacement,
        SquattingClass::Insertion,
        SquattingClass::Bitsquat,
        SquattingClass::Combosquat,
    ];
}

impl std::fmt::Display for SquattingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SquattingClass::Omission => "omission",
            SquattingClass::Repetition => "repetition",
            SquattingClass::Transposition => "transposition",
            SquattingClass::Replacement => "replacement",
            SquattingClass::Insertion => "insertion",
            SquattingClass::Bitsquat => "bitsquat",
            SquattingClass::Combosquat => "combosquat",
        };
        f.write_str(s)
    }
}

/// One squatting candidate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SquattingCandidate {
    /// The candidate SLD (always a valid LDH label).
    pub sld: String,
    /// The model that produced it.
    pub class: SquattingClass,
}

/// QWERTY adjacency for replacement/insertion models.
fn qwerty_neighbours(c: char) -> &'static str {
    match c {
        'q' => "wa",
        'w' => "qes",
        'e' => "wrd",
        'r' => "etf",
        't' => "ryg",
        'y' => "tuh",
        'u' => "yij",
        'i' => "uok",
        'o' => "ipl",
        'p' => "o",
        'a' => "qsz",
        's' => "awdz",
        'd' => "sefc",
        'f' => "drgc",
        'g' => "fthv",
        'h' => "gyjb",
        'j' => "hukn",
        'k' => "jilm",
        'l' => "ko",
        'z' => "asx",
        'x' => "zsc",
        'c' => "xdv",
        'v' => "cfb",
        'b' => "vgn",
        'n' => "bhm",
        'm' => "nk",
        '0' => "9",
        '1' => "2",
        '2' => "13",
        '3' => "24",
        '4' => "35",
        '5' => "46",
        '6' => "57",
        '7' => "68",
        '8' => "79",
        '9' => "80",
        _ => "",
    }
}

/// Keywords for the combosquatting model (the English analogue of the
/// Type-1 keyword list).
const COMBO_KEYWORDS: [&str; 12] = [
    "login", "secure", "support", "account", "verify", "online", "payment", "mail", "update",
    "help", "shop", "store",
];

/// Generates all candidates of one class for a brand SLD.
///
/// Candidates equal to the brand itself or failing LDH label validation are
/// dropped; output is sorted and deduplicated within the class.
pub fn generate(brand_sld: &str, class: SquattingClass) -> Vec<SquattingCandidate> {
    let sld = brand_sld.to_ascii_lowercase();
    let chars: Vec<char> = sld.chars().collect();
    let mut out: BTreeSet<String> = BTreeSet::new();
    match class {
        SquattingClass::Omission => {
            for i in 0..chars.len() {
                let mut v = chars.clone();
                v.remove(i);
                out.insert(v.into_iter().collect());
            }
        }
        SquattingClass::Repetition => {
            for i in 0..chars.len() {
                let mut v = chars.clone();
                v.insert(i, chars[i]);
                out.insert(v.into_iter().collect());
            }
        }
        SquattingClass::Transposition => {
            for i in 0..chars.len().saturating_sub(1) {
                let mut v = chars.clone();
                v.swap(i, i + 1);
                out.insert(v.into_iter().collect());
            }
        }
        SquattingClass::Replacement => {
            for i in 0..chars.len() {
                for n in qwerty_neighbours(chars[i]).chars() {
                    let mut v = chars.clone();
                    v[i] = n;
                    out.insert(v.into_iter().collect());
                }
            }
        }
        SquattingClass::Insertion => {
            for i in 0..chars.len() {
                for n in qwerty_neighbours(chars[i]).chars() {
                    let mut v = chars.clone();
                    v.insert(i, n);
                    out.insert(v.into_iter().collect());
                }
            }
        }
        SquattingClass::Bitsquat => {
            for i in 0..chars.len() {
                let byte = chars[i] as u32;
                if byte > 0x7F {
                    continue;
                }
                for bit in 0..8u32 {
                    let flipped = (byte ^ (1 << bit)) as u8;
                    let c = flipped as char;
                    if c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' {
                        let mut v = chars.clone();
                        v[i] = c;
                        out.insert(v.into_iter().collect());
                    }
                }
            }
        }
        SquattingClass::Combosquat => {
            for keyword in COMBO_KEYWORDS {
                out.insert(format!("{sld}-{keyword}"));
                out.insert(format!("{sld}{keyword}"));
                out.insert(format!("{keyword}-{sld}"));
            }
        }
    }
    out.into_iter()
        .filter(|candidate| candidate != &sld)
        .filter(|candidate| idnre_idna::validate_ascii_label(candidate).is_ok())
        .map(|sld| SquattingCandidate { sld, class })
        .collect()
}

/// Generates candidates of every class for a brand SLD.
pub fn generate_all(brand_sld: &str) -> Vec<SquattingCandidate> {
    SquattingClass::ALL
        .into_iter()
        .flat_map(|class| generate(brand_sld, class))
        .collect()
}

/// Candidate-pool sizes per class — the baseline comparison for Figure 7's
/// homograph pool.
pub fn pool_sizes(brand_sld: &str) -> Vec<(SquattingClass, usize)> {
    SquattingClass::ALL
        .into_iter()
        .map(|class| (class, generate(brand_sld, class).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slds(brand: &str, class: SquattingClass) -> Vec<String> {
        generate(brand, class).into_iter().map(|c| c.sld).collect()
    }

    #[test]
    fn omission_drops_each_position() {
        let candidates = slds("google", SquattingClass::Omission);
        assert!(candidates.contains(&"gogle".to_string()));
        assert!(candidates.contains(&"oogle".to_string()));
        assert!(candidates.contains(&"googl".to_string()));
        // "google" minus either 'o' gives the same string — deduplicated.
        assert_eq!(candidates.len(), 5);
    }

    #[test]
    fn repetition_doubles_each_position() {
        let candidates = slds("go", SquattingClass::Repetition);
        assert_eq!(candidates, vec!["ggo", "goo"]);
    }

    #[test]
    fn transposition_swaps_neighbours() {
        let candidates = slds("google", SquattingClass::Transposition);
        assert!(candidates.contains(&"googel".to_string()));
        assert!(candidates.contains(&"ogogle".to_string()));
        assert!(!candidates.contains(&"google".to_string()));
    }

    #[test]
    fn replacement_uses_qwerty_neighbours() {
        let candidates = slds("go", SquattingClass::Replacement);
        // g → f,t,h,v ; o → i,p,l
        assert!(candidates.contains(&"fo".to_string()));
        assert!(candidates.contains(&"gp".to_string()));
        assert_eq!(candidates.len(), 7);
    }

    #[test]
    fn bitsquat_produces_valid_single_bit_flips() {
        let candidates = slds("google", SquattingClass::Bitsquat);
        // g (0x67) ^ 0x04 = c (0x63): the classic bitsquat.
        assert!(candidates.contains(&"coogle".to_string()));
        for candidate in &candidates {
            // Exactly one position differs, by exactly one bit.
            let diffs: Vec<(char, char)> = candidate
                .chars()
                .zip("google".chars())
                .filter(|(a, b)| a != b)
                .collect();
            assert_eq!(diffs.len(), 1, "{candidate}");
            let (a, b) = diffs[0];
            assert_eq!(((a as u32) ^ (b as u32)).count_ones(), 1, "{candidate}");
        }
    }

    #[test]
    fn combosquat_compounds_keywords() {
        let candidates = slds("google", SquattingClass::Combosquat);
        assert!(candidates.contains(&"google-login".to_string()));
        assert!(candidates.contains(&"googlelogin".to_string()));
        assert!(candidates.contains(&"login-google".to_string()));
    }

    #[test]
    fn all_candidates_are_valid_ldh_labels() {
        for candidate in generate_all("bet365") {
            assert!(
                idnre_idna::validate_ascii_label(&candidate.sld).is_ok(),
                "{:?}",
                candidate
            );
            assert_ne!(candidate.sld, "bet365");
        }
    }

    #[test]
    fn pool_sizes_cover_every_class() {
        let pools = pool_sizes("google");
        assert_eq!(pools.len(), SquattingClass::ALL.len());
        for (class, size) in pools {
            assert!(size > 0, "{class} pool empty");
        }
    }

    #[test]
    fn single_char_brand_edge_cases() {
        // Omission of a 1-char brand yields an empty (invalid) label only.
        assert!(slds("a", SquattingClass::Omission).is_empty());
        assert!(!slds("a", SquattingClass::Repetition).is_empty());
        assert!(slds("a", SquattingClass::Transposition).is_empty());
    }

    #[test]
    fn digit_brands_have_digit_neighbours() {
        let candidates = slds("58", SquattingClass::Replacement);
        assert!(candidates.contains(&"48".to_string()));
        assert!(candidates.contains(&"57".to_string()));
    }
}
