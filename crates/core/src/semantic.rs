//! Semantic-attack detection (Section VII): Type-1 (brand + foreign
//! keyword) and Type-2 (translated brand).

use idnre_telemetry::{NoopRecorder, Recorder};
use std::collections::HashMap;

/// Which semantic attack class a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticKind {
    /// Brand name compounded with non-English keywords (apple激活.com).
    Type1,
    /// Brand name translated into another language (格力.net for Gree).
    Type2,
}

/// A detected semantically abusive IDN.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemanticFinding {
    /// The scanned domain (as given).
    pub domain: String,
    /// Unicode display form.
    pub unicode: String,
    /// The impersonated brand domain.
    pub brand: String,
    /// Attack class.
    pub kind: SemanticKind,
}

/// Detector for semantic IDN abuse.
///
/// Type-1 follows the paper exactly: strip the non-ASCII characters from the
/// label; if the remainder is *identical* to a brand SLD (the paper phrases
/// this as "SSIM index equals 1.0" on the rendered ASCII part — identical
/// strings render identically, so string equality is the same test), the
/// IDN is flagged.
///
/// Type-2 uses a translation dictionary mapping native-language brand names
/// to their English brand domains (the paper could not scale this mapping
/// and analyzed Type-2 manually; the dictionary covers its Table X cases
/// and the best-known brand translations).
#[derive(Debug, Clone)]
pub struct SemanticDetector {
    /// Brand SLD → brand domain.
    brands: HashMap<String, String>,
    /// Native translation → brand domain.
    translations: HashMap<String, String>,
}

/// The counters [`SemanticDetector::scan_type1_recorded`] reports, in
/// snapshot order. Parallel scans pre-register these before spawning
/// workers so snapshot order never depends on scheduling.
pub const SEMANTIC_COUNTERS: [&str; 3] = [
    "semantic.candidates",
    "semantic.findings",
    "semantic.skip.no_brand_match",
];

/// Table X's translations plus well-known brand translations.
const TRANSLATIONS: &[(&str, &str)] = &[
    ("格力空调", "gree.com.cn"),
    ("格力", "gree.com.cn"),
    ("北京交通大学", "bjtu.edu.cn"),
    ("奔驰汽车", "mercedes-benz.com"),
    ("奔驰", "mercedes-benz.com"),
    ("谷歌", "google.com"),
    ("苹果", "apple.com"),
    ("亚马逊", "amazon.com"),
    ("脸书", "facebook.com"),
    ("推特", "twitter.com"),
    ("微软", "microsoft.com"),
    ("百度", "baidu.com"),
    ("淘宝", "taobao.com"),
];

impl SemanticDetector {
    /// Builds a detector for `brands` (domains like `58.com`).
    pub fn new<I, S>(brands: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut map = HashMap::new();
        for brand in brands {
            let domain = brand.as_ref().to_ascii_lowercase();
            let sld = domain.split('.').next().unwrap_or(&domain).to_string();
            map.insert(sld, domain);
        }
        SemanticDetector {
            brands: map,
            translations: TRANSLATIONS
                .iter()
                .map(|&(native, brand)| (native.to_string(), brand.to_string()))
                .collect(),
        }
    }

    /// Number of brand targets.
    pub fn brand_count(&self) -> usize {
        self.brands.len()
    }

    /// Tests one domain for Type-1 abuse.
    pub fn detect_type1(&self, domain: &str) -> Option<SemanticFinding> {
        let unicode = idnre_idna::to_unicode(domain).ok()?;
        let sld = unicode.split('.').next()?;
        if sld.is_ascii() {
            return None; // no foreign keyword present
        }
        let ascii_part: String = sld.chars().filter(char::is_ascii).collect();
        if ascii_part.is_empty() {
            return None;
        }
        let brand = self.brands.get(&ascii_part)?;
        Some(SemanticFinding {
            domain: domain.to_string(),
            unicode: unicode.clone(),
            brand: brand.clone(),
            kind: SemanticKind::Type1,
        })
    }

    /// Tests one domain for Type-2 abuse (translated brand name).
    pub fn detect_type2(&self, domain: &str) -> Option<SemanticFinding> {
        let unicode = idnre_idna::to_unicode(domain).ok()?;
        let sld = unicode.split('.').next()?;
        let brand = self.translations.get(sld)?;
        Some(SemanticFinding {
            domain: domain.to_string(),
            unicode: unicode.clone(),
            brand: brand.clone(),
            kind: SemanticKind::Type2,
        })
    }

    /// Tests both classes; Type-1 takes precedence.
    pub fn detect(&self, domain: &str) -> Option<SemanticFinding> {
        self.detect_type1(domain)
            .or_else(|| self.detect_type2(domain))
    }

    /// Scans a corpus for Type-1 findings.
    pub fn scan_type1<'a, I>(&self, domains: I) -> Vec<SemanticFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.scan_type1_recorded(domains, &NoopRecorder)
    }

    /// [`SemanticDetector::scan_type1`] with candidate/finding counters and
    /// a `semantic.scan_type1` span reported to `recorder`, on one thread.
    pub fn scan_type1_recorded<'a, I>(
        &self,
        domains: I,
        recorder: &dyn Recorder,
    ) -> Vec<SemanticFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        self.scan_type1_parallel(domains, 1, recorder)
    }

    /// [`SemanticDetector::scan_type1_recorded`] on `threads` workers
    /// pulling chunks from a shared work queue. Findings keep corpus
    /// order and counter totals are scheduling-independent, so the result
    /// is byte-identical for every thread count; [`SEMANTIC_COUNTERS`]
    /// are pre-registered to pin snapshot order.
    pub fn scan_type1_parallel<'a, I>(
        &self,
        domains: I,
        threads: usize,
        recorder: &dyn Recorder,
    ) -> Vec<SemanticFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut span = recorder.span("semantic.scan_type1");
        recorder.preregister(&SEMANTIC_COUNTERS);
        let domains: Vec<&str> = domains.into_iter().collect();
        let findings: Vec<SemanticFinding> = idnre_par::par_map(&domains, threads, |d| {
            recorder.incr("semantic.candidates");
            let finding = self.detect_type1(d);
            recorder.incr(match &finding {
                Some(_) => "semantic.findings",
                None => "semantic.skip.no_brand_match",
            });
            finding
        })
        .into_iter()
        .flatten()
        .collect();
        span.add_records(findings.len() as u64);
        findings
    }

    /// Scans a corpus for Type-2 (translated-brand) findings.
    pub fn scan_type2<'a, I>(&self, domains: I) -> Vec<SemanticFinding>
    where
        I: IntoIterator<Item = &'a str>,
    {
        domains
            .into_iter()
            .filter_map(|d| self.detect_type2(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> SemanticDetector {
        SemanticDetector::new(["apple.com", "icloud.com", "58.com", "bet365.com", "qq.com"])
    }

    #[test]
    fn detects_paper_table_ix_cases() {
        let d = detector();
        for (spoof, brand) in [
            ("icloud登录.com", "icloud.com"),
            ("icloud登陆.com", "icloud.com"),
            ("apple邮箱.com", "apple.com"),
            ("apple激活.com", "apple.com"),
            ("58汽车.com", "58.com"),
        ] {
            let hit = d.detect_type1(spoof).unwrap_or_else(|| panic!("{spoof}"));
            assert_eq!(hit.brand, brand);
            assert_eq!(hit.kind, SemanticKind::Type1);
        }
    }

    #[test]
    fn detects_ace_form() {
        let d = detector();
        let ace = idnre_idna::to_ascii("bet365彩票.com").unwrap();
        let hit = d.detect_type1(&ace).unwrap();
        assert_eq!(hit.brand, "bet365.com");
        assert_eq!(hit.unicode, "bet365彩票.com");
    }

    #[test]
    fn requires_exact_ascii_match() {
        let d = detector();
        // "apples激活" strips to "apples" ≠ "apple" → no finding.
        assert!(d.detect_type1("apples激活.com").is_none());
        // Homoglyph substitution breaks the ASCII part — by design the
        // paper treats combined homoglyph+keyword as too conspicuous.
        assert!(d.detect_type1("аpple激活.com").is_none());
    }

    #[test]
    fn ignores_pure_ascii_and_pure_foreign() {
        let d = detector();
        assert!(d.detect_type1("apple.com").is_none());
        assert!(d.detect_type1("彩票.com").is_none());
    }

    #[test]
    fn detects_type2_translations() {
        let d = detector();
        for (spoof, brand) in [
            ("格力空调.net", "gree.com.cn"),
            ("北京交通大学.com", "bjtu.edu.cn"),
            ("奔驰汽车.com", "mercedes-benz.com"),
        ] {
            let hit = d.detect_type2(spoof).unwrap_or_else(|| panic!("{spoof}"));
            assert_eq!(hit.brand, brand);
            assert_eq!(hit.kind, SemanticKind::Type2);
        }
    }

    #[test]
    fn combined_detect_prefers_type1() {
        let d = detector();
        let hit = d.detect("apple激活.com").unwrap();
        assert_eq!(hit.kind, SemanticKind::Type1);
        let hit2 = d.detect("苹果.com").unwrap();
        assert_eq!(hit2.kind, SemanticKind::Type2);
    }

    #[test]
    fn scan_filters_corpus() {
        let d = detector();
        let corpus = ["apple激活.com", "example.com", "58汽车.com", "彩票.com"];
        let findings = d.scan_type1(corpus.iter().copied());
        assert_eq!(findings.len(), 2);
    }

    #[test]
    fn scan_type2_filters_corpus() {
        let d = detector();
        let corpus = ["谷歌.com", "example.com", "苹果.net", "彩票.com"];
        let findings = d.scan_type2(corpus.iter().copied());
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.kind == SemanticKind::Type2));
    }
}
