//! Abuse analysis: folds detector findings, WHOIS and blacklists into the
//! per-brand tables of Sections VI-C and VII-B (Tables XIII and XIV).

use crate::homograph::HomographFinding;
use crate::semantic::SemanticFinding;
use idnre_blacklist::BlacklistSet;
use idnre_whois::WhoisRecord;
use std::collections::HashMap;

/// One row of a Table XIII/XIV-style report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BrandAbuseRow {
    /// The targeted brand domain.
    pub brand: String,
    /// Number of abusive IDNs targeting it.
    pub idns: u64,
    /// How many were registered by the brand owner (protective).
    pub protective: u64,
}

/// Aggregated abuse analysis over a finding set.
#[derive(Debug, Clone)]
pub struct AbuseAnalysis {
    per_brand: HashMap<String, BrandAbuseRow>,
    total: u64,
    blacklisted: u64,
    protective: u64,
    personal_email: u64,
    with_whois: u64,
}

impl AbuseAnalysis {
    /// Analyzes homograph findings.
    pub fn from_homographs(
        findings: &[HomographFinding],
        whois: &[WhoisRecord],
        blacklist: &BlacklistSet,
    ) -> Self {
        Self::build(
            findings
                .iter()
                .map(|f| (f.domain.as_str(), f.brand.as_str())),
            whois,
            blacklist,
        )
    }

    /// Analyzes semantic findings.
    pub fn from_semantic(
        findings: &[SemanticFinding],
        whois: &[WhoisRecord],
        blacklist: &BlacklistSet,
    ) -> Self {
        Self::build(
            findings
                .iter()
                .map(|f| (f.domain.as_str(), f.brand.as_str())),
            whois,
            blacklist,
        )
    }

    fn build<'a, I>(findings: I, whois: &[WhoisRecord], blacklist: &BlacklistSet) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let whois_by_domain: HashMap<&str, &WhoisRecord> =
            whois.iter().map(|r| (r.domain.as_str(), r)).collect();
        let mut per_brand: HashMap<String, BrandAbuseRow> = HashMap::new();
        let (mut total, mut blacklisted, mut protective_total) = (0u64, 0u64, 0u64);
        let (mut personal, mut with_whois) = (0u64, 0u64);
        for (domain, brand) in findings {
            total += 1;
            if blacklist.is_malicious(domain) {
                blacklisted += 1;
            }
            let record = whois_by_domain.get(domain);
            let protective = record
                .map(|r| Self::is_protective(r, brand))
                .unwrap_or(false);
            if let Some(r) = record {
                with_whois += 1;
                if r.uses_personal_email() {
                    personal += 1;
                }
            }
            if protective {
                protective_total += 1;
            }
            let row = per_brand
                .entry(brand.to_string())
                .or_insert_with(|| BrandAbuseRow {
                    brand: brand.to_string(),
                    idns: 0,
                    protective: 0,
                });
            row.idns += 1;
            if protective {
                row.protective += 1;
            }
        }
        AbuseAnalysis {
            per_brand,
            total,
            blacklisted,
            protective: protective_total,
            personal_email: personal,
            with_whois,
        }
    }

    /// The paper's protective-registration test: the registrant email's
    /// domain is the brand domain (its own SLD).
    fn is_protective(record: &WhoisRecord, brand: &str) -> bool {
        let brand_sld = brand.split('.').next().unwrap_or(brand);
        record
            .registrant_email_domain()
            .map(|d| d.split('.').next().unwrap_or(d) == brand_sld)
            .unwrap_or(false)
    }

    /// Total findings.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Findings already on a blacklist.
    pub fn blacklisted(&self) -> u64 {
        self.blacklisted
    }

    /// Findings registered protectively by brand owners.
    pub fn protective(&self) -> u64 {
        self.protective
    }

    /// Findings whose WHOIS shows a personal (free-mail) registrant.
    pub fn personal_email(&self) -> u64 {
        self.personal_email
    }

    /// Findings with an obtainable WHOIS record.
    pub fn with_whois(&self) -> u64 {
        self.with_whois
    }

    /// Number of distinct targeted brands.
    pub fn targeted_brands(&self) -> usize {
        self.per_brand.len()
    }

    /// Top `k` brands by abusive-IDN count (Table XIII/XIV rows).
    pub fn top_brands(&self, k: usize) -> Vec<BrandAbuseRow> {
        let mut rows: Vec<BrandAbuseRow> = self.per_brand.values().cloned().collect();
        rows.sort_by(|a, b| b.idns.cmp(&a.idns).then_with(|| a.brand.cmp(&b.brand)));
        rows.truncate(k);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_blacklist::Source;
    use idnre_whois::WhoisDialect;

    fn finding(domain: &str, brand: &str) -> HomographFinding {
        HomographFinding {
            domain: domain.to_string(),
            unicode: domain.to_string(),
            brand: brand.to_string(),
            ssim: 0.97,
        }
    }

    fn whois(domain: &str, email: Option<&str>) -> WhoisRecord {
        let mut r = WhoisRecord::new(domain, WhoisDialect::KeyValue);
        r.registrant_email = email.map(str::to_string);
        r
    }

    #[test]
    fn per_brand_rollup_and_protective_detection() {
        let findings = vec![
            finding("xn--a1.com", "google.com"),
            finding("xn--a2.com", "google.com"),
            finding("xn--b1.com", "apple.com"),
        ];
        let whois = vec![
            whois("xn--a1.com", Some("legal@google.com")),
            whois("xn--a2.com", Some("bulk@qq.com")),
        ];
        let mut blacklist = BlacklistSet::new();
        blacklist.insert(Source::VirusTotal, "xn--b1.com");

        let analysis = AbuseAnalysis::from_homographs(&findings, &whois, &blacklist);
        assert_eq!(analysis.total(), 3);
        assert_eq!(analysis.blacklisted(), 1);
        assert_eq!(analysis.protective(), 1);
        assert_eq!(analysis.personal_email(), 1);
        assert_eq!(analysis.with_whois(), 2);
        assert_eq!(analysis.targeted_brands(), 2);

        let top = analysis.top_brands(2);
        assert_eq!(top[0].brand, "google.com");
        assert_eq!(top[0].idns, 2);
        assert_eq!(top[0].protective, 1);
    }

    #[test]
    fn missing_whois_is_not_protective() {
        let findings = vec![finding("xn--x.com", "google.com")];
        let analysis = AbuseAnalysis::from_homographs(&findings, &[], &BlacklistSet::new());
        assert_eq!(analysis.protective(), 0);
        assert_eq!(analysis.with_whois(), 0);
    }

    #[test]
    fn works_for_semantic_findings() {
        use crate::semantic::{SemanticFinding, SemanticKind};
        let findings = vec![SemanticFinding {
            domain: "xn--58-hk2j.com".into(),
            unicode: "58汽车.com".into(),
            brand: "58.com".into(),
            kind: SemanticKind::Type1,
        }];
        let analysis = AbuseAnalysis::from_semantic(&findings, &[], &BlacklistSet::new());
        assert_eq!(analysis.total(), 1);
        assert_eq!(analysis.top_brands(1)[0].brand, "58.com");
    }
}
