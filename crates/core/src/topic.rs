//! Registrant-portfolio topic classification — the third column of
//! Table III ("All are about online gambling", "All are southwest city
//! names in China", …).
//!
//! The paper assigned these labels by manual inspection of each bulk
//! registrant's domains; this module automates the same judgement with
//! keyword dictionaries over the Unicode labels.

use std::collections::HashMap;

/// The portfolio topics the paper's Table III distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Topic {
    /// Online gambling / lottery / casino terms.
    Gambling,
    /// Chinese city and place names.
    CityNames,
    /// Commerce: shopping, malls, payments.
    Shopping,
    /// Short generic words (label length ≤ 2 characters).
    ShortWords,
    /// Brand-impersonation terms (login/activate/support keywords).
    BrandService,
    /// Nothing dominant.
    Mixed,
}

impl std::fmt::Display for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Topic::Gambling => "online gambling",
            Topic::CityNames => "city names",
            Topic::Shopping => "shopping",
            Topic::ShortWords => "short words",
            Topic::BrandService => "brand services",
            Topic::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

const GAMBLING: &[&str] = &[
    "彩票",
    "博彩",
    "赌场",
    "投注",
    "棋牌",
    "六合彩",
    "时时彩",
    "百家乐",
    "开户",
    "娱乐",
    "casino",
    "bet",
    "lottery",
    "หวย",
    "คาสิโน",
    "บาคาร่า",
    "แทงบอล",
];
const CITIES: &[&str] = &[
    "北京", "上海", "广州", "深圳", "重庆", "成都", "武汉", "西安", "南京", "杭州", "昆明", "贵阳",
    "tokyo", "osaka", "seoul", "서울", "부산", "東京", "大阪",
];
const SHOPPING: &[&str] = &[
    "购物",
    "商城",
    "超市",
    "商店",
    "专卖",
    "优惠",
    "쇼핑",
    "ショップ",
    "alışveriş",
    "shop",
    "store",
    "mall",
    "купить",
    "магазин",
];
const BRAND_SERVICE: &[&str] = &[
    "登录", "登陆", "激活", "售后", "客服", "邮箱", "充值", "注册", "官网", "支付", "login",
    "secure", "support", "verify", "account",
];

/// Classifies one label into its most likely topic (or `Mixed`).
pub fn classify_label(unicode_sld: &str) -> Topic {
    let hits = |keywords: &[&str]| keywords.iter().any(|k| unicode_sld.contains(k));
    if hits(GAMBLING) {
        Topic::Gambling
    } else if hits(BRAND_SERVICE) {
        Topic::BrandService
    } else if hits(CITIES) {
        Topic::CityNames
    } else if hits(SHOPPING) {
        Topic::Shopping
    } else if unicode_sld
        .trim_end_matches(|c: char| c.is_ascii_digit())
        .chars()
        .count()
        <= 2
    {
        // Trailing digits are registration-collision suffixes, not meaning.
        Topic::ShortWords
    } else {
        Topic::Mixed
    }
}

/// Classifies a registrant's whole portfolio: the topic covering the
/// majority of labels, or [`Topic::Mixed`].
///
/// # Examples
///
/// ```
/// use idnre_core::topic::{classify_portfolio, Topic};
/// let portfolio = ["重庆彩票", "六合彩投注", "百家乐开户"];
/// assert_eq!(
///     classify_portfolio(portfolio.iter().copied()),
///     Topic::Gambling
/// );
/// ```
pub fn classify_portfolio<'a, I>(labels: I) -> Topic
where
    I: IntoIterator<Item = &'a str>,
{
    let mut counts: HashMap<Topic, usize> = HashMap::new();
    let mut total = 0usize;
    for label in labels {
        *counts.entry(classify_label(label)).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return Topic::Mixed;
    }
    counts
        .into_iter()
        .filter(|&(topic, n)| topic != Topic::Mixed && n * 2 > total)
        .max_by_key(|&(_, n)| n)
        .map(|(topic, _)| topic)
        .unwrap_or(Topic::Mixed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_iii_portfolios() {
        // daidesheng88@gmail.com: "All are about online gambling."
        assert_eq!(
            classify_portfolio(["六合彩", "时时彩投注", "澳门赌场"]),
            Topic::Gambling
        );
        // 776053229@qq.com: "All are southwest city names in China."
        assert_eq!(
            classify_portfolio(["重庆火锅", "成都旅游", "昆明鲜花"]),
            Topic::CityNames
        );
        // tetetw@gmail.com: "All are short words in Chinese."
        assert_eq!(classify_portfolio(["爱", "美", "福"]), Topic::ShortWords);
    }

    #[test]
    fn brand_service_keywords() {
        assert_eq!(classify_label("apple激活"), Topic::BrandService);
        assert_eq!(classify_label("icloud登录"), Topic::BrandService);
    }

    #[test]
    fn majority_rule() {
        // 2 of 3 gambling → gambling.
        assert_eq!(
            classify_portfolio(["彩票网", "投注站", "花店"]),
            Topic::Gambling
        );
        // No majority → mixed.
        assert_eq!(
            classify_portfolio(["彩票网", "重庆门户", "购物中心", "新闻网站"]),
            Topic::Mixed
        );
    }

    #[test]
    fn gambling_beats_city_when_both_present() {
        // 重庆彩票 mentions both a city and gambling; gambling keywords are
        // checked first (they define the business).
        assert_eq!(classify_label("重庆彩票"), Topic::Gambling);
    }

    #[test]
    fn empty_portfolio_is_mixed() {
        assert_eq!(classify_portfolio([]), Topic::Mixed);
    }

    #[test]
    fn multilingual_coverage() {
        assert_eq!(classify_label("คาสิโนออนไลน์"), Topic::Gambling);
        assert_eq!(classify_label("магазинодежды"), Topic::Shopping);
        assert_eq!(classify_label("서울호텔"), Topic::CityNames);
    }
}
