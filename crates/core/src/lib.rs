//! The paper's primary contribution: detection of IDN abuse.
//!
//! Four pieces, mirroring Sections V–VII:
//!
//! * [`HomographDetector`] — renders every IDN and brand domain to an image
//!   and flags pairs whose SSIM index reaches the 0.95 threshold
//!   (Section VI-B, Tables XII/XIII).
//! * [`AvailabilityEnumerator`] — the Section VI-D analysis: substitute one
//!   character at a time from the homoglyph table and count how many
//!   *unregistered* lookalikes clear the same SSIM bar (Figure 7).
//! * [`SemanticDetector`] — Type-1 (brand + foreign keyword) and Type-2
//!   (translated brand) semantic-attack detection (Section VII,
//!   Tables IX/X/XIV).
//! * [`SrsPolicy`] — the Shared-Registration-System model answering "would
//!   a registrar accept this registration?", including the brand-protection
//!   resemblance checks the paper recommends registries deploy.
//!
//! # Examples
//!
//! ```
//! use idnre_core::HomographDetector;
//!
//! let detector = HomographDetector::new(["google.com", "apple.com"], 0.95);
//! let hit = detector.detect("gõõgle.com").unwrap();
//! assert_eq!(hit.brand, "google.com");
//! assert!(hit.ssim >= 0.95);
//! assert!(detector.detect("example.com").is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod availability;
mod homograph;
mod passes;
mod pipeline;
mod registry;
mod semantic;
pub mod squatting;
pub mod topic;

pub use availability::{AvailabilityEnumerator, AvailabilityReport, Candidate};
pub use homograph::{pair_score, HomographDetector, HomographFinding, HOMOGRAPH_COUNTERS};
pub use passes::{ColumnedHomographPass, HomographPass, Semantic1Pass, Semantic2Pass, SkeletonCache};
pub use pipeline::{AbuseAnalysis, BrandAbuseRow};
pub use registry::{SrsPolicy, SrsRejection};
pub use semantic::{SemanticDetector, SemanticFinding, SemanticKind, SEMANTIC_COUNTERS};
pub use squatting::{SquattingCandidate, SquattingClass};
