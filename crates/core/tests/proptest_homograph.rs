//! Property-based equivalence and determinism tests for the indexed
//! homograph detector.
//!
//! The skeleton index is an optimisation, not a behaviour change: on
//! generated attack corpora (confusable substitutions of brand labels,
//! mixed scripts, many attacks folding to one skeleton) the indexed
//! [`HomographDetector::detect`] must return exactly what the exhaustive
//! oracle returns, and the chunked parallel scan must be byte-identical
//! at every thread count.

use idnre_core::{HomographDetector, SemanticDetector};
use idnre_unicode::homoglyphs_of;
use proptest::prelude::*;

/// A pool of brand second-level labels; duplicates collapse, so the
/// detector sees 2–10 distinct brands per case.
fn brand_pool() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{4,10}", 2..10).prop_map(|mut v| {
        v.sort();
        v.dedup();
        v
    })
}

/// Substitution recipe for one attack: which brand to imitate, and for
/// each label position a (do-substitute, homoglyph-choice) pair.
fn attack_recipe() -> impl Strategy<Value = (usize, Vec<(bool, usize)>)> {
    (
        0usize..1024,
        proptest::collection::vec((any::<bool>(), 0usize..1024), 10),
    )
}

/// Applies a recipe to a brand label: substitutes the selected positions
/// with confusable homoglyphs (possibly from several scripts at once) and
/// returns the registrable A-label domain. `None` when the mutation left
/// the label ASCII or it does not survive IDNA.
fn forge(brand_sld: &str, recipe: &(usize, Vec<(bool, usize)>)) -> Option<String> {
    let unicode: String = brand_sld
        .chars()
        .enumerate()
        .map(|(i, ch)| {
            let (substitute, pick) = recipe.1[i % recipe.1.len()];
            if !substitute {
                return ch;
            }
            let glyphs = homoglyphs_of(ch);
            if glyphs.is_empty() {
                ch
            } else {
                glyphs[pick % glyphs.len()].ch
            }
        })
        .collect();
    if unicode.is_ascii() {
        return None;
    }
    idnre_idna::to_ascii(&format!("{unicode}.com")).ok()
}

/// Builds the attack corpus for one case: every recipe applied to a
/// brand chosen from the pool, so several attacks usually fold to the
/// same skeleton (the index-collision case), plus the brands themselves
/// and a non-target domain as negatives.
fn corpus(brands: &[String], recipes: &[(usize, Vec<(bool, usize)>)]) -> Vec<String> {
    let mut corpus: Vec<String> = recipes
        .iter()
        .filter_map(|recipe| forge(&brands[recipe.0 % brands.len()], recipe))
        .collect();
    corpus.extend(brands.iter().map(|b| format!("{b}.com")));
    corpus.push("xn--mnchen-3ya.de".to_string()); // münchen: IDN, not a brand
    corpus.sort();
    corpus.dedup();
    corpus
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed detect agrees with the exhaustive oracle on every forged
    /// attack, every brand, and the non-target control.
    #[test]
    fn indexed_detect_matches_exhaustive_oracle(
        brands in brand_pool(),
        recipes in proptest::collection::vec(attack_recipe(), 1..24),
    ) {
        let brand_domains: Vec<String> = brands.iter().map(|b| format!("{b}.com")).collect();
        let detector = HomographDetector::new(&brand_domains, 0.95);
        for domain in corpus(&brands, &recipes) {
            let indexed = detector.detect(&domain);
            let exhaustive = detector.detect_exhaustive(&domain);
            prop_assert_eq!(indexed, exhaustive, "divergence on {}", domain);
        }
    }

    /// The chunked parallel scan returns identical findings at 1, 2 and 8
    /// threads, and matches the parallel exhaustive scan.
    #[test]
    fn parallel_scan_is_thread_count_invariant(
        brands in brand_pool(),
        recipes in proptest::collection::vec(attack_recipe(), 1..24),
    ) {
        let brand_domains: Vec<String> = brands.iter().map(|b| format!("{b}.com")).collect();
        let detector = HomographDetector::new(&brand_domains, 0.95);
        let corpus = corpus(&brands, &recipes);
        let one = detector.scan(corpus.iter().map(String::as_str), 1);
        for threads in [2, 8] {
            let many = detector.scan(corpus.iter().map(String::as_str), threads);
            prop_assert_eq!(&one, &many, "homograph scan diverged at {} threads", threads);
        }
        let oracle = detector.scan_exhaustive(corpus.iter().map(String::as_str), 8);
        prop_assert_eq!(one, oracle, "indexed scan diverged from exhaustive scan");
    }

    /// The parallel type-1 semantic scan is thread-count invariant on the
    /// same corpora.
    #[test]
    fn semantic_scan_is_thread_count_invariant(
        brands in brand_pool(),
        recipes in proptest::collection::vec(attack_recipe(), 1..24),
    ) {
        let brand_domains: Vec<String> = brands.iter().map(|b| format!("{b}.com")).collect();
        let detector = SemanticDetector::new(&brand_domains);
        let corpus = corpus(&brands, &recipes);
        let one = detector.scan_type1(corpus.iter().map(String::as_str));
        for threads in [2, 8] {
            let many = detector.scan_type1_parallel(
                corpus.iter().map(String::as_str),
                threads,
                &idnre_telemetry::NoopRecorder,
            );
            prop_assert_eq!(&one, &many, "semantic scan diverged at {} threads", threads);
        }
    }
}
