//! Property-based tests for the Punycode codec and IDNA processing.

use idnre_idna::{punycode, to_ascii, to_unicode};
use proptest::prelude::*;

/// Strategy over strings drawn from the character repertoire that actually
/// appears in domain labels: ASCII LDH plus a spread of non-ASCII scripts.
fn label_chars() -> impl Strategy<Value = String> {
    let ch = prop_oneof![
        // ASCII letters/digits
        proptest::char::range('a', 'z'),
        proptest::char::range('0', '9'),
        // Latin-1 letters with diacritics
        proptest::char::range('\u{00E0}', '\u{00FF}'),
        // Cyrillic
        proptest::char::range('\u{0430}', '\u{044F}'),
        // Greek
        proptest::char::range('\u{03B1}', '\u{03C9}'),
        // CJK
        proptest::char::range('\u{4E00}', '\u{4E80}'),
        // Hangul syllables
        proptest::char::range('\u{AC00}', '\u{AC80}'),
    ];
    proptest::collection::vec(ch, 1..16).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// encode ∘ decode is the identity on arbitrary label-like strings.
    #[test]
    fn punycode_roundtrip(s in label_chars()) {
        let encoded = punycode::encode(&s).unwrap();
        prop_assert!(encoded.is_ascii());
        let decoded = punycode::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, s);
    }

    /// Decoding never panics on arbitrary ASCII input (it may error).
    #[test]
    fn punycode_decode_total(s in "[ -~]{0,32}") {
        let _ = punycode::decode(&s);
    }

    /// Decoding never panics on arbitrary unicode input.
    #[test]
    fn punycode_decode_total_unicode(s in "\\PC{0,16}") {
        let _ = punycode::decode(&s);
    }

    /// ToASCII output is always ASCII, and ToUnicode(ToASCII(d)) == fold(d)
    /// for domains whose labels validate.
    #[test]
    fn idna_roundtrip(labels in proptest::collection::vec(label_chars(), 1..4)) {
        let domain = labels.join(".");
        if let Ok(ace) = to_ascii(&domain) {
            prop_assert!(ace.is_ascii());
            let folded: String = domain
                .chars()
                .flat_map(char::to_lowercase)
                .collect();
            let uni = to_unicode(&ace).unwrap();
            prop_assert_eq!(uni, folded);
        }
    }

    /// Encoded form of an all-ASCII string is input + "-".
    #[test]
    fn ascii_passthrough(s in "[a-z0-9]{1,20}") {
        let encoded = punycode::encode(&s).unwrap();
        prop_assert_eq!(encoded, format!("{s}-"));
    }
}
