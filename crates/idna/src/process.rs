//! Whole-domain `ToASCII` / `ToUnicode` processing (the IDNA operations that
//! browsers and registrars run on every IDN before DNS resolution).

use crate::error::IdnaError;
use crate::punycode;
use crate::validate::{validate_ascii_label, validate_unicode_label};
use crate::ACE_PREFIX;

/// Options controlling [`to_ascii`] / [`to_unicode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flags {
    /// Enforce per-label structural validity (hyphen rules, repertoire).
    /// Registries set this; permissive traffic analysis may clear it.
    pub validate_labels: bool,
    /// Enforce the 253-octet total length limit on the ACE form.
    pub enforce_length: bool,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            validate_labels: true,
            enforce_length: true,
        }
    }
}

/// Converts a (possibly Unicode) domain name to its ACE form, label by label.
///
/// ASCII labels are lowercased and passed through; labels containing
/// non-ASCII characters are case-folded, validated, Punycode-encoded and
/// prefixed with `xn--`.
///
/// # Errors
///
/// * [`IdnaError::InvalidLabel`] when a label fails validation.
/// * [`IdnaError::DomainTooLong`] when the ACE form exceeds 253 octets.
/// * [`IdnaError::Overflow`] from the Punycode codec.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), idnre_idna::IdnaError> {
/// assert_eq!(idnre_idna::to_ascii("中国")?, "xn--fiqs8s");
/// assert_eq!(idnre_idna::to_ascii("Example.COM")?, "example.com");
/// # Ok(())
/// # }
/// ```
pub fn to_ascii(domain: &str) -> Result<String, IdnaError> {
    to_ascii_with(domain, Flags::default())
}

/// [`to_ascii`] with explicit [`Flags`].
///
/// # Errors
///
/// See [`to_ascii`].
pub fn to_ascii_with(domain: &str, flags: Flags) -> Result<String, IdnaError> {
    let domain = domain.strip_suffix('.').unwrap_or(domain);
    let mut out = String::with_capacity(domain.len() + 8);
    for (i, label) in domain.split('.').enumerate() {
        if i > 0 {
            out.push('.');
        }
        out.push_str(&label_to_ascii(label, flags)?);
    }
    if flags.enforce_length && out.len() > 253 {
        return Err(IdnaError::DomainTooLong);
    }
    Ok(out)
}

/// Converts one label to ACE form.
fn label_to_ascii(label: &str, flags: Flags) -> Result<String, IdnaError> {
    if label.is_ascii() {
        let lower = label.to_ascii_lowercase();
        if flags.validate_labels {
            validate_ascii_label(&lower)?;
        }
        return Ok(lower);
    }
    // Unicode label: case-fold (simple lowercase suffices for the repertoire
    // used in domain names), validate, then encode.
    let folded: String = label.chars().flat_map(char::to_lowercase).collect();
    if flags.validate_labels {
        validate_unicode_label(&folded)?;
    }
    let encoded = punycode::encode(&folded)?;
    let ace = format!("{ACE_PREFIX}{encoded}");
    if flags.validate_labels && ace.len() > crate::validate::MAX_LABEL_OCTETS {
        return Err(IdnaError::InvalidLabel(
            crate::validate::LabelIssue::TooLong,
        ));
    }
    Ok(ace)
}

/// Converts an ACE domain back to its Unicode display form, label by label.
///
/// Non-ACE labels pass through unchanged (lowercased).
///
/// # Errors
///
/// * [`IdnaError::InvalidPunycode`] / [`IdnaError::Overflow`] when an `xn--`
///   label does not decode.
/// * [`IdnaError::SpuriousAce`] when an `xn--` label decodes to pure ASCII.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), idnre_idna::IdnaError> {
/// assert_eq!(idnre_idna::to_unicode("xn--fiqs8s")?, "中国");
/// assert_eq!(idnre_idna::to_unicode("example.com")?, "example.com");
/// # Ok(())
/// # }
/// ```
pub fn to_unicode(domain: &str) -> Result<String, IdnaError> {
    let domain = domain.strip_suffix('.').unwrap_or(domain);
    let mut out = String::with_capacity(domain.len());
    for (i, label) in domain.split('.').enumerate() {
        if i > 0 {
            out.push('.');
        }
        if crate::is_ace_label(label) {
            let decoded = punycode::decode(&label[4..].to_ascii_lowercase())?;
            if decoded.is_ascii() {
                return Err(IdnaError::SpuriousAce);
            }
            out.push_str(&decoded);
        } else {
            out.push_str(&label.to_ascii_lowercase());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_paper_domains() {
        // Unicode ⇄ ACE pairs quoted in the paper.
        let pairs = [
            ("波色.com", "xn--0wwy37b.com"),
            ("中国", "xn--fiqs8s"),
            ("аррӏе.com", "xn--80ak6aa92e.com"),
        ];
        for (unicode, ace) in pairs {
            assert_eq!(to_ascii(unicode).unwrap(), ace);
            assert_eq!(to_unicode(ace).unwrap(), unicode);
        }
    }

    #[test]
    fn mixed_ascii_and_unicode_labels() {
        let ace = to_ascii("apple激活.com").unwrap();
        assert!(ace.starts_with("xn--apple-"));
        assert!(ace.ends_with(".com"));
        assert_eq!(to_unicode(&ace).unwrap(), "apple激活.com");
    }

    #[test]
    fn uppercase_unicode_is_folded() {
        // Uppercase Cyrillic А folds to lowercase а before encoding.
        let a = to_ascii("Аррӏе.com").unwrap();
        let b = to_ascii("аррӏе.com").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn spurious_ace_is_rejected() {
        // "xn--abc-" would decode to pure ASCII "abc".
        let err = to_unicode("xn--abc-.com").unwrap_err();
        assert_eq!(err, IdnaError::SpuriousAce);
    }

    #[test]
    fn validation_can_be_disabled() {
        let flags = Flags {
            validate_labels: false,
            enforce_length: true,
        };
        // Leading hyphen rejected by default...
        assert!(to_ascii("-x.com").is_err());
        // ...but accepted in permissive traffic-analysis mode.
        assert_eq!(to_ascii_with("-x.com", flags).unwrap(), "-x.com");
    }

    #[test]
    fn length_limits() {
        // 60 ASCII chars plus encoded CJK pushes the ACE label past 63 octets.
        let long = format!("{}日本.com", "a".repeat(60));
        assert!(matches!(
            to_ascii(&long),
            Err(IdnaError::InvalidLabel(
                crate::validate::LabelIssue::TooLong
            ))
        ));
        let many: String = (0..45).map(|_| "abcde.").collect::<String>() + "com";
        assert_eq!(to_ascii(&many).unwrap_err(), IdnaError::DomainTooLong);
    }

    #[test]
    fn trailing_dot_accepted() {
        assert_eq!(to_ascii("example.com.").unwrap(), "example.com");
        assert_eq!(to_unicode("xn--fiqs8s.").unwrap(), "中国");
    }
}
