use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding, or validating IDN labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IdnaError {
    /// Arithmetic overflow inside the Bootstring codec (RFC 3492 §6.4).
    Overflow,
    /// The Punycode input contained a non-ASCII byte, an invalid digit, or a
    /// truncated variable-length integer.
    InvalidPunycode,
    /// A label violated a structural rule (empty, too long, bad hyphens, or a
    /// disallowed code point); the payload names the rule.
    InvalidLabel(crate::validate::LabelIssue),
    /// The full domain name exceeded 253 octets in ACE form.
    DomainTooLong,
    /// An `xn--` label decoded to pure ASCII, which IDNA forbids (the label
    /// should not have been encoded at all).
    SpuriousAce,
}

impl fmt::Display for IdnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdnaError::Overflow => write!(f, "punycode arithmetic overflow"),
            IdnaError::InvalidPunycode => write!(f, "invalid punycode input"),
            IdnaError::InvalidLabel(issue) => write!(f, "invalid label: {issue}"),
            IdnaError::DomainTooLong => write!(f, "domain name exceeds 253 octets"),
            IdnaError::SpuriousAce => write!(f, "ace label decodes to pure ascii"),
        }
    }
}

impl Error for IdnaError {}

impl From<crate::validate::LabelIssue> for IdnaError {
    fn from(issue: crate::validate::LabelIssue) -> Self {
        IdnaError::InvalidLabel(issue)
    }
}
