//! Label-validity rules enforced by registries before installing a name into
//! a zone (the checks the paper's Section VI-D registration probe exercises).

use std::fmt;

/// Maximum length of a single label in octets (ACE form).
pub const MAX_LABEL_OCTETS: usize = 63;

/// A specific way in which a label fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LabelIssue {
    /// The label is empty.
    Empty,
    /// The label exceeds 63 octets in ACE form.
    TooLong,
    /// The label begins with a hyphen.
    LeadingHyphen,
    /// The label ends with a hyphen.
    TrailingHyphen,
    /// The label has hyphens in positions 3 and 4 but is not a valid ACE
    /// label (RFC 5891 §4.2.3.1 forbids such "fake xn--" labels).
    HyphenRestriction,
    /// The label contains a code point outside the letter/digit/hyphen set
    /// (for ASCII labels) or a control/whitespace/separator character (for
    /// Unicode labels).
    DisallowedCodepoint(char),
    /// The label contains an uppercase ASCII letter where the canonical
    /// lowercase form is required by the registry pipeline.
    NotLowercase,
    /// The label violates the RFC 5893 Bidi rule (mixed text direction, or
    /// an RTL label led by a European digit).
    BidiViolation,
}

impl fmt::Display for LabelIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelIssue::Empty => write!(f, "empty label"),
            LabelIssue::TooLong => write!(f, "label longer than 63 octets"),
            LabelIssue::LeadingHyphen => write!(f, "label starts with a hyphen"),
            LabelIssue::TrailingHyphen => write!(f, "label ends with a hyphen"),
            LabelIssue::HyphenRestriction => {
                write!(f, "hyphens in positions 3-4 of a non-ace label")
            }
            LabelIssue::DisallowedCodepoint(c) => {
                write!(f, "disallowed code point {c:?}")
            }
            LabelIssue::NotLowercase => write!(f, "label contains uppercase ascii"),
            LabelIssue::BidiViolation => write!(f, "label violates the bidi rule"),
        }
    }
}

/// Validates an ASCII (LDH or ACE) label as a registry would before zone
/// installation.
///
/// # Errors
///
/// Returns the first [`LabelIssue`] found, checking in order: emptiness,
/// length, hyphen placement, the position-3/4 hyphen restriction, and the
/// letter/digit/hyphen repertoire.
///
/// # Examples
///
/// ```
/// use idnre_idna::validate_ascii_label;
/// assert!(validate_ascii_label("example").is_ok());
/// assert!(validate_ascii_label("xn--fiqs8s").is_ok());
/// assert!(validate_ascii_label("-bad").is_err());
/// assert!(validate_ascii_label("ab--cd").is_err()); // fake xn-- position
/// ```
pub fn validate_ascii_label(label: &str) -> Result<(), LabelIssue> {
    if label.is_empty() {
        return Err(LabelIssue::Empty);
    }
    if label.len() > MAX_LABEL_OCTETS {
        return Err(LabelIssue::TooLong);
    }
    if label.starts_with('-') {
        return Err(LabelIssue::LeadingHyphen);
    }
    if label.ends_with('-') {
        return Err(LabelIssue::TrailingHyphen);
    }
    let bytes = label.as_bytes();
    if bytes.len() >= 4 && bytes[2] == b'-' && bytes[3] == b'-' && !crate::is_ace_label(label) {
        return Err(LabelIssue::HyphenRestriction);
    }
    for c in label.chars() {
        if !(c.is_ascii_lowercase() || c.is_ascii_uppercase() || c.is_ascii_digit() || c == '-') {
            return Err(LabelIssue::DisallowedCodepoint(c));
        }
    }
    Ok(())
}

/// The Bidi rule of RFC 5893, reduced to the checks that matter for domain
/// labels: an RTL (Arabic/Hebrew) label must not mix in LTR letters, and
/// must not begin with a digit; an LTR label must not contain RTL
/// characters.
///
/// # Errors
///
/// Returns [`LabelIssue::BidiViolation`] when the rule is broken.
///
/// # Examples
///
/// ```
/// use idnre_idna::check_bidi;
/// assert!(check_bidi("أخبار").is_ok());         // pure RTL
/// assert!(check_bidi("news").is_ok());           // pure LTR
/// assert!(check_bidi("newsأخبار").is_err());     // direction mix
/// assert!(check_bidi("123أخبار").is_err());      // RTL label led by digit
/// ```
pub fn check_bidi(label: &str) -> Result<(), LabelIssue> {
    let is_rtl = |c: char| {
        matches!(c,
            '\u{0590}'..='\u{05FF}'   // Hebrew
            | '\u{0600}'..='\u{06FF}' // Arabic
            | '\u{0750}'..='\u{077F}' // Arabic Supplement
            | '\u{08A0}'..='\u{08FF}' // Arabic Extended-A
            | '\u{FB1D}'..='\u{FDFF}' // presentation forms
            | '\u{FE70}'..='\u{FEFF}'
        )
    };
    let has_rtl = label.chars().any(is_rtl);
    if !has_rtl {
        return Ok(());
    }
    // RTL label: no LTR strong letters allowed…
    if label.chars().any(|c| c.is_ascii_alphabetic()) {
        return Err(LabelIssue::BidiViolation);
    }
    // …and it must not start with a European digit (RFC 5893 §2 rule 1).
    if label.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Err(LabelIssue::BidiViolation);
    }
    Ok(())
}

/// Validates a Unicode (U-label) prior to Punycode encoding.
///
/// The rules mirror the subset of IDNA2008 a registry's SRS applies to a
/// registration request: non-empty, no leading/trailing hyphen, and no
/// control, whitespace, or separator characters. Full-script policy (which
/// scripts a given TLD admits) is a zone-local decision modelled separately
/// by the registry simulator in `idnre-core`.
///
/// # Errors
///
/// Returns the first [`LabelIssue`] found.
///
/// # Examples
///
/// ```
/// use idnre_idna::validate_unicode_label;
/// assert!(validate_unicode_label("中国").is_ok());
/// assert!(validate_unicode_label("i cloud").is_err()); // whitespace
/// ```
pub fn validate_unicode_label(label: &str) -> Result<(), LabelIssue> {
    if label.is_empty() {
        return Err(LabelIssue::Empty);
    }
    if label.starts_with('-') {
        return Err(LabelIssue::LeadingHyphen);
    }
    if label.ends_with('-') {
        return Err(LabelIssue::TrailingHyphen);
    }
    for c in label.chars() {
        if c.is_control() || c.is_whitespace() {
            return Err(LabelIssue::DisallowedCodepoint(c));
        }
        // General separators and common format characters abused for
        // invisible spoofing (zero-width joiners etc.).
        if matches!(c, '\u{200B}'..='\u{200F}' | '\u{202A}'..='\u{202E}' | '\u{2060}' | '\u{FEFF}')
        {
            return Err(LabelIssue::DisallowedCodepoint(c));
        }
    }
    check_bidi(label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_ordinary_ldh() {
        for l in ["a", "example", "a1-b2", "x2", "0", "com", "58"] {
            assert!(validate_ascii_label(l).is_ok(), "{l}");
        }
    }

    #[test]
    fn accepts_ace_labels() {
        for l in ["xn--fiqs8s", "xn--0wwy37b", "xn--80ak6aa92e"] {
            assert!(validate_ascii_label(l).is_ok(), "{l}");
        }
    }

    #[test]
    fn rejects_structural_violations() {
        assert_eq!(validate_ascii_label(""), Err(LabelIssue::Empty));
        assert_eq!(validate_ascii_label("-a"), Err(LabelIssue::LeadingHyphen));
        assert_eq!(validate_ascii_label("a-"), Err(LabelIssue::TrailingHyphen));
        assert_eq!(
            validate_ascii_label("ab--cd"),
            Err(LabelIssue::HyphenRestriction)
        );
        let long = "a".repeat(64);
        assert_eq!(validate_ascii_label(&long), Err(LabelIssue::TooLong));
        assert_eq!(
            validate_ascii_label("a_b"),
            Err(LabelIssue::DisallowedCodepoint('_'))
        );
    }

    #[test]
    fn boundary_length_is_accepted() {
        let l = "a".repeat(63);
        assert!(validate_ascii_label(&l).is_ok());
    }

    #[test]
    fn bidi_rule() {
        // Pure RTL is fine; so is RTL with trailing digits.
        assert!(check_bidi("أخبار").is_ok());
        assert!(check_bidi("חדשות").is_ok());
        assert!(check_bidi("أخبار24").is_ok());
        // Direction mixing is rejected.
        assert_eq!(check_bidi("newsأخبار"), Err(LabelIssue::BidiViolation));
        assert_eq!(check_bidi("אnews"), Err(LabelIssue::BidiViolation));
        // RTL label led by a European digit.
        assert_eq!(check_bidi("24أخبار"), Err(LabelIssue::BidiViolation));
        // Enforced by the full validator too.
        assert_eq!(
            validate_unicode_label("appleأخبار"),
            Err(LabelIssue::BidiViolation)
        );
    }

    #[test]
    fn unicode_label_rules() {
        assert!(validate_unicode_label("中国").is_ok());
        assert!(validate_unicode_label("apple激活").is_ok());
        assert_eq!(validate_unicode_label(""), Err(LabelIssue::Empty));
        assert_eq!(
            validate_unicode_label("a b"),
            Err(LabelIssue::DisallowedCodepoint(' '))
        );
        assert_eq!(
            validate_unicode_label("a\u{200B}b"),
            Err(LabelIssue::DisallowedCodepoint('\u{200B}'))
        );
        assert_eq!(
            validate_unicode_label("-中"),
            Err(LabelIssue::LeadingHyphen)
        );
    }
}
