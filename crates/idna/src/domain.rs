//! Domain-name model: labels, hierarchy, and the SLD/TLD views the
//! measurement pipeline works with.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::is_ace_label;

/// A single label of a domain name, stored in its zone-file (ASCII/ACE) form,
/// lowercased.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(String);

impl Label {
    /// Creates a label from its zone-file form, lowercasing ASCII.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDomainError`] if the label is empty or longer than 63
    /// octets.
    pub fn new(s: &str) -> Result<Self, ParseDomainError> {
        if s.is_empty() {
            return Err(ParseDomainError::EmptyLabel);
        }
        if s.len() > crate::validate::MAX_LABEL_OCTETS {
            return Err(ParseDomainError::LabelTooLong);
        }
        Ok(Label(s.to_ascii_lowercase()))
    }

    /// The label text in its stored (lowercased) form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this label carries the `xn--` ACE prefix.
    pub fn is_ace(&self) -> bool {
        is_ace_label(&self.0)
    }

    /// Decodes an ACE label to Unicode; returns the label text unchanged if
    /// it is not an ACE label or fails to decode.
    pub fn to_display(&self) -> String {
        if self.is_ace() {
            match crate::punycode::decode(&self.0[4..]) {
                Ok(u) if !u.is_ascii() => u,
                _ => self.0.clone(),
            }
        } else {
            self.0.clone()
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for Label {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A fully-qualified domain name (without trailing dot), e.g.
/// `xn--0wwy37b.com`, stored as ordered labels from leftmost to TLD.
///
/// # Examples
///
/// ```
/// use idnre_idna::DomainName;
///
/// let d: DomainName = "www.xn--0wwy37b.com".parse().unwrap();
/// assert_eq!(d.tld(), "com");
/// assert_eq!(d.sld().unwrap(), "xn--0wwy37b");
/// assert!(d.is_idn());
/// assert_eq!(d.registered_domain().unwrap(), "xn--0wwy37b.com");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    labels: Vec<Label>,
}

impl DomainName {
    /// Parses a domain from dotted text. A single trailing dot (FQDN form) is
    /// accepted and stripped.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDomainError`] if the name is empty, any label is empty
    /// or over-long, or the whole name exceeds 253 octets.
    pub fn parse(s: &str) -> Result<Self, ParseDomainError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(ParseDomainError::Empty);
        }
        if s.len() > 253 {
            return Err(ParseDomainError::TooLong);
        }
        let labels = s
            .split('.')
            .map(Label::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DomainName { labels })
    }

    /// Builds a domain from pre-parsed labels.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDomainError::Empty`] if `labels` is empty.
    pub fn from_labels(labels: Vec<Label>) -> Result<Self, ParseDomainError> {
        if labels.is_empty() {
            return Err(ParseDomainError::Empty);
        }
        Ok(DomainName { labels })
    }

    /// Iterates over labels from leftmost (deepest) to the TLD.
    pub fn labels(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// The top-level domain label (rightmost), in ACE form.
    pub fn tld(&self) -> &str {
        self.labels
            .last()
            .expect("non-empty by construction")
            .as_str()
    }

    /// The second-level label, if the name has at least two labels.
    pub fn sld(&self) -> Option<&str> {
        if self.labels.len() >= 2 {
            Some(self.labels[self.labels.len() - 2].as_str())
        } else {
            None
        }
    }

    /// The registered domain (`sld.tld`), if present — the unit the paper's
    /// zone scan counts (e.g. `example.com` for `www.example.com`).
    pub fn registered_domain(&self) -> Option<String> {
        self.sld().map(|sld| format!("{}.{}", sld, self.tld()))
    }

    /// Whether any label is an ACE (`xn--`) label, i.e. whether this is an
    /// IDN in the paper's sense.
    pub fn is_idn(&self) -> bool {
        self.labels.iter().any(Label::is_ace)
    }

    /// Whether the IDN-ness is at second level or top level — the levels the
    /// paper's zone-file methodology can observe.
    pub fn idn_at_observable_level(&self) -> bool {
        self.labels.last().is_some_and(Label::is_ace)
            || (self.labels.len() >= 2 && self.labels[self.labels.len() - 2].is_ace())
    }

    /// Unicode display form of the whole name (ACE labels decoded).
    pub fn to_display(&self) -> String {
        self.labels
            .iter()
            .map(Label::to_display)
            .collect::<Vec<_>>()
            .join(".")
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for l in &self.labels {
            if !first {
                f.write_str(".")?;
            }
            f.write_str(l.as_str())?;
            first = false;
        }
        Ok(())
    }
}

impl FromStr for DomainName {
    type Err = ParseDomainError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

/// Errors from parsing a [`DomainName`] or [`Label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ParseDomainError {
    /// The input was empty.
    Empty,
    /// A label was empty (two consecutive dots).
    EmptyLabel,
    /// A label exceeded 63 octets.
    LabelTooLong,
    /// The whole name exceeded 253 octets.
    TooLong,
}

impl fmt::Display for ParseDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDomainError::Empty => write!(f, "empty domain name"),
            ParseDomainError::EmptyLabel => write!(f, "empty label in domain name"),
            ParseDomainError::LabelTooLong => write!(f, "label longer than 63 octets"),
            ParseDomainError::TooLong => write!(f, "domain name longer than 253 octets"),
        }
    }
}

impl Error for ParseDomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays() {
        let d = DomainName::parse("WWW.Example.COM").unwrap();
        assert_eq!(d.to_string(), "www.example.com");
        assert_eq!(d.tld(), "com");
        assert_eq!(d.sld(), Some("example"));
        assert_eq!(d.registered_domain().unwrap(), "example.com");
        assert!(!d.is_idn());
    }

    #[test]
    fn fqdn_trailing_dot_is_stripped() {
        let d = DomainName::parse("example.com.").unwrap();
        assert_eq!(d.label_count(), 2);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(DomainName::parse(""), Err(ParseDomainError::Empty));
        assert_eq!(DomainName::parse("a..b"), Err(ParseDomainError::EmptyLabel));
        let long_label = format!("{}.com", "a".repeat(64));
        assert_eq!(
            DomainName::parse(&long_label),
            Err(ParseDomainError::LabelTooLong)
        );
        let long_name = ["ab"; 90].join(".");
        assert_eq!(
            DomainName::parse(&long_name),
            Err(ParseDomainError::TooLong)
        );
    }

    #[test]
    fn idn_detection_levels() {
        let second = DomainName::parse("xn--0wwy37b.com").unwrap();
        assert!(second.is_idn() && second.idn_at_observable_level());

        let top = DomainName::parse("example.xn--fiqs8s").unwrap();
        assert!(top.is_idn() && top.idn_at_observable_level());

        let third = DomainName::parse("xn--fiqs8s.example.com").unwrap();
        assert!(third.is_idn());
        assert!(!third.idn_at_observable_level());
    }

    #[test]
    fn display_decodes_ace() {
        let d = DomainName::parse("xn--0wwy37b.com").unwrap();
        assert_eq!(d.to_display(), "波色.com");
    }

    #[test]
    fn display_preserves_undecodable_ace() {
        // Truncated VLI ("zz" ends mid-integer): falls back to raw label text.
        let d = DomainName::parse("xn--zz.com").unwrap();
        assert_eq!(d.to_display(), "xn--zz.com");
    }

    #[test]
    fn single_label_has_no_sld() {
        let d = DomainName::parse("com").unwrap();
        assert_eq!(d.sld(), None);
        assert_eq!(d.registered_domain(), None);
    }
}
