//! Compatibility mapping — the UTS #46 pre-processing step browsers apply
//! before IDNA conversion.
//!
//! Users type (and attackers craft) domain names containing fullwidth
//! characters (`ｇｏｏｇｌｅ.com`), ideographic full stops (`例。com`) and
//! invisible default-ignorable characters (ZWJ/ZWNJ). Address bars map all
//! of these before Punycode conversion; a pipeline that skips the step
//! mis-counts IDNs and misses spoofs. This module implements the subset of
//! the UTS #46 mapping table that occurs in domain-name traffic:
//!
//! * label-separator variants → `.` (U+3002, U+FF0E, U+FF61)
//! * fullwidth/halfwidth forms → their compatibility equivalents
//! * default-ignorable code points (ZWSP/ZWJ/ZWNJ/word-joiner/BOM) → removed
//! * uppercase → lowercase (delegated to the conversion layer)

/// Maps one character per the UTS #46 subset; `None` removes the character.
fn map_char(c: char) -> Option<MappedChar> {
    match c {
        // Label separators.
        '\u{3002}' | '\u{FF0E}' | '\u{FF61}' => Some(MappedChar::One('.')),
        // Fullwidth ASCII block: letters, digits, hyphen, underscore.
        '\u{FF01}'..='\u{FF5E}' => {
            let ascii = (c as u32 - 0xFF01 + 0x21) as u8 as char;
            Some(MappedChar::One(ascii))
        }
        // Halfwidth Katakana are left as-is (real script usage), but the
        // halfwidth forms of symbols map down.
        '\u{FFE8}' => Some(MappedChar::One('|')),
        // Default-ignorables abused for invisible spoofing.
        '\u{200B}' | '\u{200C}' | '\u{200D}' | '\u{2060}' | '\u{FEFF}' | '\u{00AD}' => None,
        other => Some(MappedChar::One(other)),
    }
}

enum MappedChar {
    One(char),
}

/// Applies the compatibility mapping to a whole domain string.
///
/// # Examples
///
/// ```
/// use idnre_idna::map_compat;
///
/// // Fullwidth spoof of an ASCII brand maps straight back to ASCII.
/// assert_eq!(map_compat("ｇｏｏｇｌｅ.com"), "google.com");
/// // Ideographic full stop is a label separator.
/// assert_eq!(map_compat("例。com"), "例.com");
/// // Zero-width characters vanish.
/// assert_eq!(map_compat("goo\u{200B}gle.com"), "google.com");
/// ```
pub fn map_compat(domain: &str) -> String {
    // Every mapped/removed source character is ≥ U+00AD, so ASCII input is
    // always a fixed point — copy it in one shot.
    if domain.is_ascii() {
        return domain.to_string();
    }
    let mut out = String::with_capacity(domain.len());
    for c in domain.chars() {
        match map_char(c) {
            Some(MappedChar::One(mapped)) => out.push(mapped),
            None => {}
        }
    }
    out
}

/// Whether the string contains characters the mapping would change —
/// the cheap pre-test scanners use.
pub fn needs_mapping(domain: &str) -> bool {
    if domain.is_ascii() {
        return false;
    }
    domain.chars().any(|c| match map_char(c) {
        Some(MappedChar::One(mapped)) => mapped != c,
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fullwidth_block_maps_to_ascii() {
        assert_eq!(map_compat("ｇｏｏｇｌｅ"), "google");
        assert_eq!(map_compat("ＧＯＯＧＬＥ"), "GOOGLE");
        assert_eq!(map_compat("ｂｅｔ３６５"), "bet365");
        assert_eq!(map_compat("ａ－ｂ"), "a-b");
    }

    #[test]
    fn label_separator_variants() {
        assert_eq!(map_compat("例。com"), "例.com");
        assert_eq!(map_compat("例．com"), "例.com");
        assert_eq!(map_compat("例｡com"), "例.com");
    }

    #[test]
    fn invisibles_are_removed() {
        assert_eq!(map_compat("goo\u{200B}gle"), "google");
        assert_eq!(map_compat("goo\u{200D}gle"), "google");
        assert_eq!(map_compat("\u{FEFF}google"), "google");
        assert_eq!(map_compat("go\u{00AD}ogle"), "google"); // soft hyphen
    }

    #[test]
    fn ordinary_text_is_untouched() {
        for s in ["google.com", "中国", "аррӏе.com", "ニュース"] {
            assert_eq!(map_compat(s), s);
            assert!(!needs_mapping(s));
        }
    }

    #[test]
    fn needs_mapping_pretest() {
        assert!(needs_mapping("ｇoogle.com"));
        assert!(needs_mapping("例。com"));
        assert!(needs_mapping("a\u{200B}b"));
        assert!(!needs_mapping("plain.com"));
    }

    #[test]
    fn mapped_fullwidth_spoof_round_trips_through_idna() {
        // The full pipeline: map, then ToASCII — the fullwidth spoof is
        // revealed as the plain brand itself, not an IDN.
        let mapped = map_compat("ｇｏｏｇｌｅ.com");
        let ace = crate::to_ascii(&mapped).unwrap();
        assert_eq!(ace, "google.com");
        assert!(!crate::is_idn(&ace));
    }
}
