//! From-scratch implementation of the Internationalized Domain Names in
//! Applications (IDNA) machinery that the paper's measurement pipeline rests on.
//!
//! The crate provides three layers:
//!
//! * [`punycode`] — the Bootstring codec of RFC 3492 with the Punycode
//!   parameters, exactly as used by the `xn--` ASCII-compatible encoding (ACE).
//! * [`DomainName`] / [`Label`] — parsing, label iteration, SLD/TLD extraction
//!   and the `xn--` IDN test used when scanning zone files.
//! * [`process`] — whole-domain `ToASCII` / `ToUnicode` conversions with the
//!   label-validity checks a registry's Shared Registration System performs.
//!
//! # Examples
//!
//! ```
//! use idnre_idna::{to_ascii, to_unicode};
//!
//! # fn main() -> Result<(), idnre_idna::IdnaError> {
//! // The Cyrillic spoof of apple.com from the paper's introduction.
//! let ace = to_ascii("аррӏе.com")?;
//! assert_eq!(ace, "xn--80ak6aa92e.com");
//! assert_eq!(to_unicode(&ace)?, "аррӏе.com");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod domain;
mod error;
mod mapping;
pub mod process;
pub mod punycode;
mod validate;

pub use domain::{DomainName, Label, ParseDomainError};
pub use error::IdnaError;
pub use mapping::{map_compat, needs_mapping};
pub use process::{to_ascii, to_unicode, Flags};
pub use validate::{check_bidi, validate_ascii_label, validate_unicode_label, LabelIssue};

/// The ASCII-compatible-encoding prefix that marks a Punycode-encoded label.
pub const ACE_PREFIX: &str = "xn--";

/// Returns `true` if `label` carries the `xn--` ACE prefix (case-insensitively).
///
/// This is the test the zone scanner applies to every label when extracting
/// IDNs from TLD zone files.
///
/// # Examples
///
/// ```
/// assert!(idnre_idna::is_ace_label("xn--fiqs8s"));
/// assert!(idnre_idna::is_ace_label("XN--FIQS8S"));
/// assert!(!idnre_idna::is_ace_label("example"));
/// ```
pub fn is_ace_label(label: &str) -> bool {
    // Byte-level comparison: `label` may be non-ASCII, where a string slice
    // of the first four bytes could split a character.
    matches!(label.as_bytes(), [b'x' | b'X', b'n' | b'N', b'-', b'-', ..])
}

/// Returns `true` if any label of `domain` is an ACE (`xn--`) label.
///
/// # Examples
///
/// ```
/// assert!(idnre_idna::is_idn("xn--0wwy37b.com"));
/// assert!(!idnre_idna::is_idn("example.com"));
/// ```
pub fn is_idn(domain: &str) -> bool {
    domain.split('.').any(is_ace_label)
}
