//! The Bootstring codec of RFC 3492, instantiated with the Punycode parameters.
//!
//! Punycode is the ASCII-compatible encoding used for IDN labels: all ASCII
//! code points of the input are copied verbatim, a delimiter (`-`) separates
//! them from a stream of generalized variable-length integers that encode the
//! positions and values of the non-ASCII code points.
//!
//! This is a from-scratch implementation following the pseudo-code of
//! RFC 3492 §6.1–6.3, including the overflow checks of §6.4.

use crate::error::IdnaError;

// Bootstring parameters for Punycode (RFC 3492 §5).
const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 128;
const DELIMITER: char = '-';

/// Maximum code point value (inclusive) representable in the decoder output.
const MAX_CODEPOINT: u32 = 0x10FFFF;

/// Adapts the bias after each delta is encoded or decoded (RFC 3492 §6.1).
fn adapt(mut delta: u32, num_points: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / num_points;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

/// Maps a digit value (0..36) to its basic code point: `a..z`, `0..9`.
fn encode_digit(d: u32) -> char {
    debug_assert!(d < BASE);
    if d < 26 {
        (b'a' + d as u8) as char
    } else {
        (b'0' + (d - 26) as u8) as char
    }
}

/// Digit value for each ASCII byte (`0xFF` = not a Punycode digit). The
/// decoder consults this once per extended-section character, replacing the
/// three-arm range match on the hot path.
const DIGIT_VALUE: [u8; 128] = {
    let mut table = [0xFFu8; 128];
    let mut b = 0usize;
    while b < 128 {
        let c = b as u8;
        table[b] = match c {
            b'a'..=b'z' => c - b'a',
            b'A'..=b'Z' => c - b'A',
            b'0'..=b'9' => c - b'0' + 26,
            _ => 0xFF,
        };
        b += 1;
    }
    table
};

/// Maps a basic code point to its digit value, or `None` if it is not a digit.
///
/// Both upper- and lower-case letters are accepted, per RFC 3492 §5.
fn decode_digit(c: char) -> Option<u32> {
    let cp = c as u32;
    if cp < 128 {
        let v = DIGIT_VALUE[cp as usize];
        if v != 0xFF {
            return Some(u32::from(v));
        }
    }
    None
}

/// Encodes a Unicode string into its Punycode form (without the `xn--` prefix).
///
/// Returns the encoded ASCII string. If the input is entirely ASCII, the
/// result is the input followed by a trailing delimiter, as RFC 3492 requires
/// (`"abc"` → `"abc-"`); the IDNA layer never encodes all-ASCII labels so this
/// case only occurs when calling the codec directly.
///
/// # Errors
///
/// Returns [`IdnaError::Overflow`] if the delta computation exceeds `u32`
/// range (only possible for pathological inputs near the length limit).
///
/// # Examples
///
/// ```
/// let ace = idnre_idna::punycode::encode("bücher").unwrap();
/// assert_eq!(ace, "bcher-kva");
/// ```
pub fn encode(input: &str) -> Result<String, IdnaError> {
    let codepoints: Vec<u32> = input.chars().map(|c| c as u32).collect();
    encode_codepoints(&codepoints)
}

/// Encodes a slice of Unicode scalar values into Punycode.
///
/// See [`encode`] for details; this variant avoids a `&str` round-trip when
/// the caller already holds code points.
///
/// # Errors
///
/// Returns [`IdnaError::Overflow`] on arithmetic overflow.
pub fn encode_codepoints(input: &[u32]) -> Result<String, IdnaError> {
    let mut output = String::with_capacity(input.len() + 8);

    // Copy the basic (ASCII) code points verbatim.
    let mut basic_count: u32 = 0;
    for &cp in input {
        if cp < 0x80 {
            output.push(cp as u8 as char);
            basic_count += 1;
        }
    }
    let mut handled: u32 = basic_count;
    if basic_count > 0 {
        output.push(DELIMITER);
    }

    let mut n: u32 = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias: u32 = INITIAL_BIAS;
    let total = input.len() as u32;

    while handled < total {
        // Find the smallest unhandled code point >= n.
        let m = input
            .iter()
            .copied()
            .filter(|&cp| cp >= n)
            .min()
            .expect("an unhandled code point must exist");

        // Advance delta to account for skipping from n to m.
        let gap = m
            .checked_sub(n)
            .and_then(|d| d.checked_mul(handled + 1))
            .ok_or(IdnaError::Overflow)?;
        delta = delta.checked_add(gap).ok_or(IdnaError::Overflow)?;
        n = m;

        for &cp in input {
            if cp < n {
                delta = delta.checked_add(1).ok_or(IdnaError::Overflow)?;
            }
            if cp == n {
                // Encode delta as a generalized variable-length integer.
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = threshold(k, bias);
                    if q < t {
                        break;
                    }
                    output.push(encode_digit(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(encode_digit(q));
                bias = adapt(delta, handled + 1, handled == basic_count);
                delta = 0;
                handled += 1;
            }
        }
        delta = delta.checked_add(1).ok_or(IdnaError::Overflow)?;
        n = n.checked_add(1).ok_or(IdnaError::Overflow)?;
    }

    Ok(output)
}

/// Clamps the per-digit threshold into `[TMIN, TMAX]` (RFC 3492 §6.2 step).
fn threshold(k: u32, bias: u32) -> u32 {
    if k <= bias + TMIN {
        TMIN
    } else if k >= bias + TMAX {
        TMAX
    } else {
        k - bias
    }
}

/// Decodes a Punycode string (without the `xn--` prefix) back into Unicode.
///
/// # Errors
///
/// * [`IdnaError::InvalidPunycode`] if the input contains a non-ASCII byte,
///   an invalid digit, or a truncated variable-length integer.
/// * [`IdnaError::Overflow`] if a decoded integer exceeds `u32` range or the
///   resulting code point exceeds U+10FFFF or falls in the surrogate range.
///
/// # Examples
///
/// ```
/// let s = idnre_idna::punycode::decode("bcher-kva").unwrap();
/// assert_eq!(s, "bücher");
/// ```
pub fn decode(input: &str) -> Result<String, IdnaError> {
    if !input.is_ascii() {
        return Err(IdnaError::InvalidPunycode);
    }

    // Basic code points are everything before the *last* delimiter.
    let (basic, extended) = match input.rfind(DELIMITER) {
        Some(pos) => (&input[..pos], &input[pos + 1..]),
        None => ("", input),
    };

    let mut output: Vec<u32> = basic.chars().map(|c| c as u32).collect();
    let mut n: u32 = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias: u32 = INITIAL_BIAS;

    let mut chars = extended.chars().peekable();
    while chars.peek().is_some() {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = chars.next().ok_or(IdnaError::InvalidPunycode)?;
            let digit = decode_digit(c).ok_or(IdnaError::InvalidPunycode)?;
            i = digit
                .checked_mul(w)
                .and_then(|dw| i.checked_add(dw))
                .ok_or(IdnaError::Overflow)?;
            let t = threshold(k, bias);
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t).ok_or(IdnaError::Overflow)?;
            k += BASE;
        }
        let out_len = output.len() as u32 + 1;
        bias = adapt(i - old_i, out_len, old_i == 0);
        n = n.checked_add(i / out_len).ok_or(IdnaError::Overflow)?;
        i %= out_len;
        if n > MAX_CODEPOINT || (0xD800..=0xDFFF).contains(&n) {
            return Err(IdnaError::Overflow);
        }
        output.insert(i as usize, n);
        i += 1;
    }

    output
        .into_iter()
        .map(|cp| char::from_u32(cp).ok_or(IdnaError::InvalidPunycode))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips `unicode` and asserts the encoded form equals `ace`.
    fn check(unicode: &str, ace: &str) {
        assert_eq!(encode(unicode).unwrap(), ace, "encode({unicode:?})");
        assert_eq!(decode(ace).unwrap(), unicode, "decode({ace:?})");
    }

    #[test]
    fn rfc3492_sample_arabic() {
        check(
            "\u{644}\u{64A}\u{647}\u{645}\u{627}\u{628}\u{62A}\u{643}\u{644}\u{645}\u{648}\u{634}\u{639}\u{631}\u{628}\u{64A}\u{61F}",
            "egbpdaj6bu4bxfgehfvwxn",
        );
    }

    #[test]
    fn rfc3492_sample_simplified_chinese() {
        check(
            "\u{4ED6}\u{4EEC}\u{4E3A}\u{4EC0}\u{4E48}\u{4E0D}\u{8BF4}\u{4E2D}\u{6587}",
            "ihqwcrb4cv8a8dqg056pqjye",
        );
    }

    #[test]
    fn rfc3492_sample_czech() {
        check(
            "Pro\u{10D}prost\u{11B}nemluv\u{ED}\u{10D}esky",
            "Proprostnemluvesky-uyb24dma41a",
        );
    }

    #[test]
    fn rfc3492_sample_hebrew() {
        check(
            "\u{5DC}\u{5DE}\u{5D4}\u{5D4}\u{5DD}\u{5E4}\u{5E9}\u{5D5}\u{5D8}\u{5DC}\u{5D0}\u{5DE}\u{5D3}\u{5D1}\u{5E8}\u{5D9}\u{5DD}\u{5E2}\u{5D1}\u{5E8}\u{5D9}\u{5EA}",
            "4dbcagdahymbxekheh6e0a7fei0b",
        );
    }

    #[test]
    fn rfc3492_sample_japanese() {
        check(
            "\u{306A}\u{305C}\u{307F}\u{3093}\u{306A}\u{65E5}\u{672C}\u{8A9E}\u{3092}\u{8A71}\u{3057}\u{3066}\u{304F}\u{308C}\u{306A}\u{3044}\u{306E}\u{304B}",
            "n8jok5ay5dzabd5bym9f0cm5685rrjetr6pdxa",
        );
    }

    #[test]
    fn rfc3492_sample_russian() {
        // RFC 3492 lists this sample with an uppercase Π [sic] lowercased.
        check(
            "\u{43F}\u{43E}\u{447}\u{435}\u{43C}\u{443}\u{436}\u{435}\u{43E}\u{43D}\u{438}\u{43D}\u{435}\u{433}\u{43E}\u{432}\u{43E}\u{440}\u{44F}\u{442}\u{43F}\u{43E}\u{440}\u{443}\u{441}\u{441}\u{43A}\u{438}",
            "b1abfaaepdrnnbgefbadotcwatmq2g4l",
        );
    }

    #[test]
    fn rfc3492_sample_vietnamese() {
        check(
            "T\u{1EA1}isaoh\u{1ECD}kh\u{F4}ngth\u{1EC3}ch\u{1EC9}n\u{F3}iti\u{1EBF}ngVi\u{1EC7}t",
            "TisaohkhngthchnitingVit-kjcr8268qyxafd2f1b9g",
        );
    }

    #[test]
    fn rfc3492_sample_mixed_japanese_ascii() {
        check(
            "3\u{5E74}B\u{7D44}\u{91D1}\u{516B}\u{5148}\u{751F}",
            "3B-ww4c5e180e575a65lsy2b",
        );
        check(
            "\u{5B89}\u{5BA4}\u{5948}\u{7F8E}\u{6075}-with-SUPER-MONKEYS",
            "-with-SUPER-MONKEYS-pc58ag80a8qai00g7n9n",
        );
        check(
            "Hello-Another-Way-\u{305D}\u{308C}\u{305E}\u{308C}\u{306E}\u{5834}\u{6240}",
            "Hello-Another-Way--fc4qua05auwb3674vfr0b",
        );
        check(
            "\u{3072}\u{3068}\u{3064}\u{5C4B}\u{6839}\u{306E}\u{4E0B}2",
            "2-u9tlzr9756bt3uc0v",
        );
        check(
            "Maji\u{3067}Koi\u{3059}\u{308B}5\u{79D2}\u{524D}",
            "MajiKoi5-783gue6qz075azm5e",
        );
        check(
            "\u{30D1}\u{30D5}\u{30A3}\u{30FC}de\u{30EB}\u{30F3}\u{30D0}",
            "de-jg4avhby1noc0d",
        );
        check(
            "\u{305D}\u{306E}\u{30B9}\u{30D4}\u{30FC}\u{30C9}\u{3067}",
            "d9juau41awczczp",
        );
    }

    #[test]
    fn rfc3492_all_ascii_sample() {
        // §7.1 (S): pure ASCII gains a trailing delimiter.
        check("-> $1.00 <-", "-> $1.00 <--");
    }

    #[test]
    fn paper_examples() {
        // xn--0wwy37b.com — "the largest among all IDNs" (Section IV-C).
        check("\u{6CE2}\u{8272}", "0wwy37b");
        // 中国 iTLD.
        check("\u{4E2D}\u{56FD}", "fiqs8s");
    }

    #[test]
    fn empty_input() {
        assert_eq!(encode("").unwrap(), "");
        assert_eq!(decode("").unwrap(), "");
    }

    #[test]
    fn decode_rejects_bad_digit() {
        assert!(decode("ab!cd").is_err());
        assert!(decode("\u{FF}abc").is_err());
    }

    #[test]
    fn decode_rejects_truncated_integer() {
        // "zz": both digits stay at or above their thresholds, so the
        // variable-length integer is still open when input ends.
        assert!(decode("zz").is_err());
    }

    #[test]
    fn decode_rejects_overflow() {
        assert!(decode("99999999").is_err());
    }

    #[test]
    fn decode_is_case_insensitive_in_digits() {
        assert_eq!(decode("KVA").unwrap(), decode("kva").unwrap());
    }

    #[test]
    fn delta_reconstruction_positions() {
        // Non-ASCII inserted at front, middle, and back positions round-trip,
        // and position changes alter the encoding.
        let front = encode("\u{E4}bc").unwrap();
        let middle = encode("a\u{E4}c").unwrap();
        let back = encode("ab\u{E4}").unwrap();
        assert_eq!(decode(&front).unwrap(), "\u{E4}bc");
        assert_eq!(decode(&middle).unwrap(), "a\u{E4}c");
        assert_eq!(decode(&back).unwrap(), "ab\u{E4}");
        assert_ne!(front, middle);
        assert_ne!(middle, back);
    }
}
