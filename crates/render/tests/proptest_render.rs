//! Property-based tests for the renderer and similarity metrics.

use idnre_render::{mse, render_text, ssim, ssim_strings};
use proptest::prelude::*;

fn domainish() -> impl Strategy<Value = String> {
    let ch = prop_oneof![
        proptest::char::range('a', 'z'),
        proptest::char::range('0', '9'),
        proptest::char::range('\u{00E0}', '\u{00FF}'),
        proptest::char::range('\u{0430}', '\u{044F}'),
        proptest::char::range('\u{4E00}', '\u{4E40}'),
    ];
    proptest::collection::vec(ch, 1..14).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// SSIM is reflexive: every string scores exactly 1.0 against itself.
    #[test]
    fn ssim_reflexive(s in domainish()) {
        prop_assert_eq!(ssim_strings(&s, &s), 1.0);
    }

    /// SSIM is symmetric.
    #[test]
    fn ssim_symmetric(a in domainish(), b in domainish()) {
        let ab = ssim_strings(&a, &b);
        let ba = ssim_strings(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&ab));
    }

    /// MSE is zero iff the rendered images are identical.
    #[test]
    fn mse_zero_iff_identical(a in domainish(), b in domainish()) {
        let ia = render_text(&a);
        let ib = render_text(&b);
        if ia.width() == ib.width() {
            let m = mse(&ia, &ib).unwrap();
            prop_assert_eq!(m == 0.0, ia == ib, "{} vs {}", a, b);
            let s = ssim(&ia, &ib).unwrap();
            if m == 0.0 {
                prop_assert_eq!(s, 1.0);
            }
        }
    }

    /// Rendering is deterministic and sized by character count.
    #[test]
    fn render_geometry(s in domainish()) {
        let img = render_text(&s);
        prop_assert_eq!(img.width(), s.chars().count() * idnre_render::CELL_WIDTH);
        prop_assert_eq!(img.height(), idnre_render::CELL_HEIGHT);
        prop_assert_eq!(render_text(&s), img);
    }

    /// Rendering never panics on fully arbitrary Unicode.
    #[test]
    fn render_total(s in "\\PC{0,24}") {
        let _ = render_text(&s);
    }
}
