//! Image similarity metrics: windowed SSIM (Wang et al., 2004) and MSE.

use crate::image::GrayImage;
use std::error::Error;
use std::fmt;

/// Error returned when comparing images of different dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Dimensions of the first image.
    pub a: (usize, usize),
    /// Dimensions of the second image.
    pub b: (usize, usize),
}

impl fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "image dimensions differ: {}x{} vs {}x{}",
            self.a.0, self.a.1, self.b.0, self.b.1
        )
    }
}

impl Error for DimensionMismatch {}

/// SSIM stabilization constants for dynamic range L = 1.0.
const C1: f64 = 0.01 * 0.01;
const C2: f64 = 0.03 * 0.03;
/// Window geometry: 8×8 windows, stride 4 (half-overlap).
const WINDOW: usize = 8;
const STRIDE: usize = 4;

/// Computes the mean SSIM index between two images of identical dimensions.
///
/// The index is the average of per-window SSIM values over 8×8 windows with
/// stride 4, using uniform weighting. The result lies in `[-1, 1]`;
/// 1.0 means pixel-identical.
///
/// # Errors
///
/// Returns [`DimensionMismatch`] when the images differ in size.
///
/// # Examples
///
/// ```
/// use idnre_render::{render_text, ssim};
/// let a = render_text("abc");
/// assert_eq!(ssim(&a, &a).unwrap(), 1.0);
/// ```
pub fn ssim(a: &GrayImage, b: &GrayImage) -> Result<f64, DimensionMismatch> {
    let windows = ssim_windows(a, b)?;
    if windows.is_empty() {
        return Ok(1.0);
    }
    Ok(windows.iter().sum::<f64>() / windows.len() as f64)
}

/// Per-window SSIM values (the intermediate the paper's Table XII threshold
/// analysis needs; exposing it avoids recomputation — C-INTERMEDIATE).
///
/// # Errors
///
/// Returns [`DimensionMismatch`] when the images differ in size.
pub fn ssim_windows(a: &GrayImage, b: &GrayImage) -> Result<Vec<f64>, DimensionMismatch> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(DimensionMismatch {
            a: (a.width(), a.height()),
            b: (b.width(), b.height()),
        });
    }
    let (w, h) = (a.width(), a.height());
    let mut out = Vec::new();
    let mut y = 0;
    loop {
        let y0 = y.min(h.saturating_sub(WINDOW));
        let mut x = 0;
        loop {
            let x0 = x.min(w.saturating_sub(WINDOW));
            out.push(window_ssim(a, b, x0, y0));
            if x0 + WINDOW >= w {
                break;
            }
            x += STRIDE;
        }
        if y0 + WINDOW >= h {
            break;
        }
        y += STRIDE;
    }
    Ok(out)
}

/// SSIM of one 8×8 window anchored at `(x0, y0)`.
fn window_ssim(a: &GrayImage, b: &GrayImage, x0: usize, y0: usize) -> f64 {
    let n = (WINDOW * WINDOW) as f64;
    let (mut sum_a, mut sum_b) = (0.0f64, 0.0f64);
    for dy in 0..WINDOW {
        for dx in 0..WINDOW {
            sum_a += a.get(x0 + dx, y0 + dy) as f64;
            sum_b += b.get(x0 + dx, y0 + dy) as f64;
        }
    }
    let (mu_a, mu_b) = (sum_a / n, sum_b / n);
    let (mut var_a, mut var_b, mut cov) = (0.0f64, 0.0f64, 0.0f64);
    for dy in 0..WINDOW {
        for dx in 0..WINDOW {
            let da = a.get(x0 + dx, y0 + dy) as f64 - mu_a;
            let db = b.get(x0 + dx, y0 + dy) as f64 - mu_b;
            var_a += da * da;
            var_b += db * db;
            cov += da * db;
        }
    }
    var_a /= n;
    var_b /= n;
    cov /= n;
    ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
        / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2))
}

/// Mean squared error between two images — the baseline metric the paper
/// contrasts SSIM against (Wang & Bovik, 2009).
///
/// # Errors
///
/// Returns [`DimensionMismatch`] when the images differ in size.
pub fn mse(a: &GrayImage, b: &GrayImage) -> Result<f64, DimensionMismatch> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(DimensionMismatch {
            a: (a.width(), a.height()),
            b: (b.width(), b.height()),
        });
    }
    let sum: f64 = a
        .pixels()
        .iter()
        .zip(b.pixels())
        .map(|(&pa, &pb)| {
            let d = pa as f64 - pb as f64;
            d * d
        })
        .sum();
    Ok(sum / a.pixels().len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render_text;

    #[test]
    fn identical_images_score_one() {
        let img = render_text("google.com");
        assert_eq!(ssim(&img, &img).unwrap(), 1.0);
        assert_eq!(mse(&img, &img).unwrap(), 0.0);
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = render_text("ab");
        let b = render_text("abc");
        assert!(ssim(&a, &b).is_err());
        assert!(mse(&a, &b).is_err());
        let err = ssim(&a, &b).unwrap_err();
        assert!(err.to_string().contains("differ"));
    }

    #[test]
    fn ssim_is_symmetric() {
        let a = render_text("google");
        let b = render_text("gõõgle");
        let ab = ssim(&a, &b).unwrap();
        let ba = ssim(&b, &a).unwrap();
        assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn ssim_orders_by_visual_distance() {
        let base = render_text("google");
        let one_mark = render_text("goōgle");
        let two_marks = render_text("gõõgle");
        let other = render_text("yahoo!");
        let s1 = ssim(&base, &one_mark).unwrap();
        let s2 = ssim(&base, &two_marks).unwrap();
        let s3 = ssim(&base, &other).unwrap();
        assert!(s1 > s2, "one mark ({s1}) should beat two ({s2})");
        assert!(s2 > s3, "homoglyphs ({s2}) should beat unrelated ({s3})");
        assert!(s1 < 1.0);
    }

    #[test]
    fn blank_images_score_one() {
        let a = GrayImage::new(16, 16);
        let b = GrayImage::new(16, 16);
        assert_eq!(ssim(&a, &b).unwrap(), 1.0);
    }

    #[test]
    fn small_images_are_handled() {
        // Smaller than the window: single clamped window.
        let a = GrayImage::new(4, 4);
        let mut b = GrayImage::new(4, 4);
        b.ink(1, 1);
        let s = ssim(&a, &b).unwrap();
        assert!(s < 1.0);
    }

    #[test]
    fn mse_increases_with_difference() {
        let base = render_text("google");
        let near = render_text("goōgle");
        let far = render_text("zzzzzz");
        let m1 = mse(&base, &near).unwrap();
        let m2 = mse(&base, &far).unwrap();
        assert!(m1 < m2);
        assert!(m1 > 0.0);
    }
}
