//! Text rasterization and image-similarity metrics for homograph detection.
//!
//! The paper renders every IDN and every brand domain to an image and
//! compares them pairwise with the Structural Similarity (SSIM) index
//! (Wang et al., 2004). This crate reimplements that pipeline from scratch:
//!
//! * [`GrayImage`] — a grayscale raster.
//! * [`render_text`] — draws a string on a fixed 8×16 cell grid using an
//!   embedded 5×7 core font for ASCII, compositional rendering (base glyph +
//!   diacritic marks from the `idnre-unicode` confusables table) for Latin/
//!   Cyrillic/Greek lookalikes, and a deterministic dense block pattern for
//!   CJK and other scripts.
//! * [`ssim`] / [`mse`] — windowed SSIM and mean-squared-error metrics.
//!
//! # Examples
//!
//! ```
//! use idnre_render::{render_text, ssim};
//!
//! let brand = render_text("apple.com");
//! let spoof = render_text("аррӏе.com"); // Cyrillic spoof: pixel-identical
//! assert_eq!(ssim(&brand, &spoof).unwrap(), 1.0);
//!
//! let different = render_text("pears.com");
//! assert!(ssim(&brand, &different).unwrap() < 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod font;
mod image;
mod metrics;

pub use font::{CELL_HEIGHT, CELL_WIDTH};
pub use image::GrayImage;
pub use metrics::{mse, ssim, ssim_windows, DimensionMismatch};

use idnre_unicode::confusables;

/// Renders `text` onto a grayscale image, one 8×16 cell per character.
///
/// Rendering is deterministic: the same string always produces the same
/// image. Characters render as:
///
/// 1. ASCII letters/digits/`-`/`.` — the embedded core font.
/// 2. Known confusables — the ASCII target's glyph plus diacritic marks.
/// 3. Everything else — a dense pseudo-random pattern seeded by the code
///    point (visually "foreign" and stable across runs).
pub fn render_text(text: &str) -> GrayImage {
    let chars: Vec<char> = text.chars().collect();
    let mut img = GrayImage::new(chars.len().max(1) * CELL_WIDTH, CELL_HEIGHT);
    for (i, &c) in chars.iter().enumerate() {
        font::draw_char(&mut img, i * CELL_WIDTH, c);
    }
    img
}

/// Renders two strings into equal-width images (padding the shorter with
/// blank cells) and returns their SSIM index.
///
/// This is the comparison the homograph scanner performs for every
/// (IDN, brand) pair.
///
/// # Examples
///
/// ```
/// let s = idnre_render::ssim_strings("google", "gõõgle");
/// assert!(s > 0.8 && s < 1.0);
/// ```
pub fn ssim_strings(a: &str, b: &str) -> f64 {
    let la = a.chars().count().max(1);
    let lb = b.chars().count().max(1);
    let width = la.max(lb) * CELL_WIDTH;
    let mut ia = render_text(a);
    let mut ib = render_text(b);
    ia.pad_to_width(width);
    ib.pad_to_width(width);
    ssim(&ia, &ib).expect("padded to identical dimensions")
}

/// Strips the marks of known confusables: renders `text` as if every
/// confusable were its ASCII target. Used by the ablation bench to measure
/// how much of the SSIM signal the marks carry.
pub fn render_skeleton(text: &str) -> GrayImage {
    let folded: String = text.chars().map(confusables::skeleton_char).collect();
    render_text(&folded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rendering() {
        let a = render_text("例え.com");
        let b = render_text("例え.com");
        assert_eq!(a, b);
    }

    #[test]
    fn identical_confusable_is_pixel_identical() {
        // Cyrillic о renders exactly as Latin o.
        let a = render_text("o");
        let b = render_text("о");
        assert_eq!(a, b);
    }

    #[test]
    fn marked_confusable_differs_from_base() {
        let a = render_text("o");
        let b = render_text("ö");
        assert_ne!(a, b);
    }

    #[test]
    fn distinct_cjk_chars_render_differently() {
        assert_ne!(render_text("中"), render_text("国"));
    }

    #[test]
    fn ssim_strings_pads_lengths() {
        let s = ssim_strings("google", "google.com");
        assert!(s < 1.0);
        assert!(s > 0.0);
    }

    #[test]
    fn skeleton_render_matches_target_render() {
        assert_eq!(render_skeleton("gõõgle"), render_text("google"));
    }
}
