//! The embedded glyph set: a 5×7 core font for ASCII, compositional marks
//! for confusables, and deterministic block patterns for other scripts.

use crate::image::GrayImage;
use idnre_unicode::confusables::{self, Mark};

/// Width of one character cell in pixels.
pub const CELL_WIDTH: usize = 8;
/// Height of one character cell in pixels.
pub const CELL_HEIGHT: usize = 16;

/// Horizontal offset of the 5×7 glyph core inside the cell.
const GLYPH_X: usize = 1;
/// Vertical offset of the 5×7 glyph core inside the cell. Rows above hold
/// diacritics; rows below hold descender marks.
const GLYPH_Y: usize = 5;

/// 5×7 bitmap for an ASCII character, rows top-to-bottom, `#` = ink.
fn ascii_glyph(c: char) -> Option<[&'static str; 7]> {
    let rows = match c {
        'a' => [
            ".....", ".....", ".###.", "....#", ".####", "#...#", ".####",
        ],
        'b' => [
            "#....", "#....", "####.", "#...#", "#...#", "#...#", "####.",
        ],
        'c' => [
            ".....", ".....", ".####", "#....", "#....", "#....", ".####",
        ],
        'd' => [
            "....#", "....#", ".####", "#...#", "#...#", "#...#", ".####",
        ],
        'e' => [
            ".....", ".....", ".###.", "#...#", "#####", "#....", ".###.",
        ],
        'f' => [
            "..##.", ".#..#", ".#...", "###..", ".#...", ".#...", ".#...",
        ],
        'g' => [
            ".....", ".###.", "#...#", "#...#", ".####", "....#", ".###.",
        ],
        'h' => [
            "#....", "#....", "####.", "#...#", "#...#", "#...#", "#...#",
        ],
        'i' => [
            "..#..", ".....", ".##..", "..#..", "..#..", "..#..", ".###.",
        ],
        'j' => [
            "...#.", ".....", "..##.", "...#.", "...#.", "#..#.", ".##..",
        ],
        'k' => [
            "#....", "#....", "#..#.", "#.#..", "##...", "#.#..", "#..#.",
        ],
        'l' => [
            ".##..", "..#..", "..#..", "..#..", "..#..", "..#..", ".###.",
        ],
        'm' => [
            ".....", ".....", "##.#.", "#.#.#", "#.#.#", "#.#.#", "#.#.#",
        ],
        'n' => [
            ".....", ".....", "####.", "#...#", "#...#", "#...#", "#...#",
        ],
        'o' => [
            ".....", ".....", ".###.", "#...#", "#...#", "#...#", ".###.",
        ],
        'p' => [
            ".....", ".....", "####.", "#...#", "####.", "#....", "#....",
        ],
        'q' => [
            ".....", ".....", ".####", "#...#", ".####", "....#", "....#",
        ],
        'r' => [
            ".....", ".....", "#.##.", "##..#", "#....", "#....", "#....",
        ],
        's' => [
            ".....", ".....", ".####", "#....", ".###.", "....#", "####.",
        ],
        't' => [
            ".#...", ".#...", "####.", ".#...", ".#...", ".#..#", "..##.",
        ],
        'u' => [
            ".....", ".....", "#...#", "#...#", "#...#", "#...#", ".####",
        ],
        'v' => [
            ".....", ".....", "#...#", "#...#", "#...#", ".#.#.", "..#..",
        ],
        'w' => [
            ".....", ".....", "#...#", "#.#.#", "#.#.#", "#.#.#", ".#.#.",
        ],
        'x' => [
            ".....", ".....", "#...#", ".#.#.", "..#..", ".#.#.", "#...#",
        ],
        'y' => [
            ".....", ".....", "#...#", "#...#", ".####", "....#", ".###.",
        ],
        'z' => [
            ".....", ".....", "#####", "...#.", "..#..", ".#...", "#####",
        ],
        '0' => [
            ".###.", "#...#", "#..##", "#.#.#", "##..#", "#...#", ".###.",
        ],
        '1' => [
            "..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###.",
        ],
        '2' => [
            ".###.", "#...#", "....#", "...#.", "..#..", ".#...", "#####",
        ],
        '3' => [
            "#####", "...#.", "..#..", "...#.", "....#", "#...#", ".###.",
        ],
        '4' => [
            "...#.", "..##.", ".#.#.", "#..#.", "#####", "...#.", "...#.",
        ],
        '5' => [
            "#####", "#....", "####.", "....#", "....#", "#...#", ".###.",
        ],
        '6' => [
            "..##.", ".#...", "#....", "####.", "#...#", "#...#", ".###.",
        ],
        '7' => [
            "#####", "....#", "...#.", "..#..", "..#..", "..#..", "..#..",
        ],
        '8' => [
            ".###.", "#...#", "#...#", ".###.", "#...#", "#...#", ".###.",
        ],
        '9' => [
            ".###.", "#...#", "#...#", ".####", "....#", "...#.", ".##..",
        ],
        '-' => [
            ".....", ".....", ".....", "#####", ".....", ".....", ".....",
        ],
        '.' => [
            ".....", ".....", ".....", ".....", ".....", ".##..", ".##..",
        ],
        '_' => [
            ".....", ".....", ".....", ".....", ".....", ".....", "#####",
        ],
        ' ' => [
            ".....", ".....", ".....", ".....", ".....", ".....", ".....",
        ],
        _ => return None,
    };
    Some(rows)
}

/// Draws the 5×7 core glyph of an ASCII character at cell origin `x0`.
fn draw_ascii(img: &mut GrayImage, x0: usize, c: char) {
    let Some(rows) = ascii_glyph(c) else {
        draw_block_pattern(img, x0, c);
        return;
    };
    for (dy, row) in rows.iter().enumerate() {
        for (dx, ink) in row.chars().enumerate() {
            if ink == '#' {
                img.ink(x0 + GLYPH_X + dx, GLYPH_Y + dy);
            }
        }
    }
}

/// Draws one diacritic mark over the glyph at cell origin `x0`. `index`
/// shifts repeated marks (e.g. the double acute of `ő`) sideways.
fn draw_mark(img: &mut GrayImage, x0: usize, mark: Mark, index: usize, seed: char) {
    let off = index; // repeated marks shift right by one pixel each
    let points: &[(usize, usize)] = match mark {
        Mark::Acute => &[(3, 3), (4, 2)],
        Mark::Grave => &[(2, 2), (3, 3)],
        Mark::Circumflex => &[(2, 3), (3, 2), (4, 2), (5, 3)],
        Mark::Tilde => &[(1, 3), (2, 2), (3, 3), (4, 2), (5, 3)],
        Mark::Diaeresis => &[(2, 3), (5, 3)],
        Mark::RingAbove => &[(3, 1), (2, 2), (4, 2), (3, 3)],
        Mark::Macron => &[(1, 3), (2, 3), (3, 3), (4, 3), (5, 3)],
        Mark::Breve => &[(1, 2), (2, 3), (3, 3), (4, 3), (5, 2)],
        Mark::Caron => &[(2, 2), (3, 3), (4, 2)],
        Mark::DotAbove => &[(3, 2), (3, 3)],
        Mark::HookAbove => &[(3, 1), (4, 2), (3, 3)],
        Mark::Horn => &[(6, 6), (7, 5)],
        Mark::DotBelow => &[(3, 13), (4, 13)],
        Mark::Cedilla => &[(3, 12), (4, 13), (3, 14)],
        Mark::Ogonek => &[(4, 12), (3, 13), (4, 14)],
        Mark::CommaBelow => &[(3, 13), (2, 14)],
        Mark::LineBelow => &[(1, 13), (2, 13), (3, 13), (4, 13), (5, 13)],
        Mark::Stroke => &[(1, 8), (2, 8), (3, 8), (4, 8), (5, 8), (6, 8)],
        Mark::Slash => &[(1, 11), (2, 10), (3, 9), (4, 8), (5, 7)],
        Mark::Tail => &[(4, 12), (5, 13), (5, 14)],
        Mark::Dotless => {
            // Erase the dot rows at the top of the glyph core.
            for y in GLYPH_Y..GLYPH_Y + 2 {
                for dx in 0..5 {
                    img.erase(x0 + GLYPH_X + dx, y);
                }
            }
            return;
        }
        Mark::Minified => {
            // Shrink the glyph to a miniature: downsample the 5×7 body into
            // a 3×4 thumbnail drawn high in the cell — the small-caps /
            // modifier-letter look, clearly smaller at a glance.
            let mut mini = [[false; 3]; 4];
            for (my, row) in mini.iter_mut().enumerate() {
                for (mx, cell) in row.iter_mut().enumerate() {
                    for sy in 0..2 {
                        for sx in 0..2 {
                            let x = x0 + GLYPH_X + (mx * 2 + sx).min(4);
                            let y = GLYPH_Y + (my * 2 + sy).min(6);
                            if img.get(x, y) > 0.5 {
                                *cell = true;
                            }
                        }
                    }
                }
            }
            for y in GLYPH_Y..GLYPH_Y + 7 {
                for dx in 0..6 {
                    img.erase(x0 + GLYPH_X + dx, y);
                }
            }
            for (my, row) in mini.iter().enumerate() {
                for (mx, &on) in row.iter().enumerate() {
                    if on {
                        img.ink(x0 + GLYPH_X + 1 + mx, GLYPH_Y + 3 + my);
                    }
                }
            }
            return;
        }
        Mark::ShapeVariant => {
            // Deterministically flip several body pixels, seeded by the
            // character, so each variant has its own distinct silhouette.
            let mut state = seed as u32;
            for _ in 0..6 {
                state = state.wrapping_mul(1664525).wrapping_add(1013904223);
                let dx = (state >> 8) as usize % 5;
                let dy = (state >> 16) as usize % 5;
                img.toggle(x0 + GLYPH_X + dx, GLYPH_Y + 2 + dy);
            }
            return;
        }
        // `Mark` is non_exhaustive upstream; unknown marks draw nothing.
        _ => &[],
    };
    for &(dx, dy) in points {
        img.ink(x0 + dx + off, dy);
    }
}

/// Dense deterministic pattern for characters outside the composed set
/// (CJK ideographs, Hangul, Arabic, …). Seeded by the code point so each
/// character is stable and distinct; ~50% fill visually separates it from
/// any Latin glyph.
fn draw_block_pattern(img: &mut GrayImage, x0: usize, c: char) {
    let mut state = c as u32 ^ 0x9E37_79B9;
    for dy in 0..10 {
        for dx in 0..7 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            if (state >> 16) & 1 == 1 {
                img.ink(x0 + dx, 4 + dy);
            }
        }
    }
}

/// Draws one character into its cell at horizontal offset `x0`.
pub fn draw_char(img: &mut GrayImage, x0: usize, c: char) {
    let lower = c.to_lowercase().next().unwrap_or(c);
    if lower.is_ascii() {
        draw_ascii(img, x0, lower);
        return;
    }
    match confusables::lookup(lower) {
        Some(entry) => {
            draw_ascii(img, x0, entry.target);
            for (i, &mark) in entry.marks.iter().enumerate() {
                // Count how many identical marks precede this one so doubled
                // marks (ő) render side by side.
                let dup_index = entry.marks[..i].iter().filter(|&&m| m == mark).count();
                draw_mark(img, x0, mark, dup_index, lower);
            }
        }
        None => draw_block_pattern(img, x0, lower),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_of(c: char) -> GrayImage {
        let mut img = GrayImage::new(CELL_WIDTH, CELL_HEIGHT);
        draw_char(&mut img, 0, c);
        img
    }

    #[test]
    fn all_core_glyphs_have_ink() {
        for c in ('a'..='z').chain('0'..='9').chain(['-', '.']) {
            assert!(cell_of(c).ink_mass() > 0.0, "{c} renders blank");
        }
    }

    #[test]
    fn core_glyphs_are_distinct() {
        let chars: Vec<char> = ('a'..='z').chain('0'..='9').collect();
        for (i, &a) in chars.iter().enumerate() {
            for &b in &chars[i + 1..] {
                assert_ne!(cell_of(a), cell_of(b), "{a} and {b} render identically");
            }
        }
    }

    #[test]
    fn glyph_rows_are_five_wide() {
        for c in ('a'..='z').chain('0'..='9').chain(['-', '.', '_', ' ']) {
            let rows = ascii_glyph(c).unwrap();
            for row in rows {
                assert_eq!(row.len(), 5, "{c} row width");
            }
        }
    }

    #[test]
    fn uppercase_folds_to_lowercase() {
        assert_eq!(cell_of('A'), cell_of('a'));
    }

    #[test]
    fn identical_confusables_render_as_target() {
        for entry in confusables::CONFUSABLES {
            if entry.fidelity == idnre_unicode::Fidelity::Identical {
                assert_eq!(
                    cell_of(entry.ch),
                    cell_of(entry.target),
                    "{:?} should render as {:?}",
                    entry.ch,
                    entry.target
                );
            }
        }
    }

    #[test]
    fn marked_confusables_differ_from_target_but_share_most_ink() {
        for entry in confusables::CONFUSABLES {
            if entry.marks.is_empty() || entry.fidelity == idnre_unicode::Fidelity::Low {
                // Low-tier glyphs are *meant* to share little ink — the
                // separate low_tier test covers them.
                continue;
            }
            let spoof = cell_of(entry.ch);
            let base = cell_of(entry.target);
            assert_ne!(
                spoof, base,
                "{:?} must differ from {:?}",
                entry.ch, entry.target
            );
            // Shared ink: the marked glyph retains the base silhouette.
            let shared: f32 = spoof
                .pixels()
                .iter()
                .zip(base.pixels())
                .map(|(&a, &b)| a.min(b))
                .sum();
            assert!(
                shared / base.ink_mass() > 0.6,
                "{:?} shares too little ink with {:?}",
                entry.ch,
                entry.target
            );
        }
    }

    #[test]
    fn block_pattern_is_deterministic_and_distinct() {
        assert_eq!(cell_of('中'), cell_of('中'));
        assert_ne!(cell_of('中'), cell_of('国'));
        assert_ne!(cell_of('中'), cell_of('a'));
    }

    #[test]
    fn low_tier_glyphs_are_clearly_smaller() {
        for entry in confusables::CONFUSABLES {
            if entry.fidelity != idnre_unicode::Fidelity::Low {
                continue;
            }
            let spoof = cell_of(entry.ch);
            // The miniature sits low in the cell: the top three body rows
            // are empty, unlike any full-height base glyph.
            for y in GLYPH_Y..GLYPH_Y + 3 {
                for x in 0..CELL_WIDTH {
                    assert_eq!(spoof.get(x, y), 0.0, "{:?} has ink at ({x},{y})", entry.ch);
                }
            }
            assert!(spoof.ink_mass() > 0.0, "{:?} renders blank", entry.ch);
        }
    }

    #[test]
    fn double_acute_differs_from_single() {
        assert_ne!(cell_of('ő'), cell_of('ó'));
    }
}
