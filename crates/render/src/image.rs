//! Grayscale raster used by the renderer and similarity metrics.

/// A grayscale image with `f32` pixels in `[0, 1]` (0 = background/white,
/// 1 = ink/black), row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a blank (all-zero) image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`; 0.0 outside bounds (reads never panic — the
    /// windowed metrics clamp at edges).
    pub fn get(&self, x: usize, y: usize) -> f32 {
        if x < self.width && y < self.height {
            self.data[y * self.width + x]
        } else {
            0.0
        }
    }

    /// Sets pixel `(x, y)`, clamping the value to `[0, 1]`; writes outside
    /// bounds are ignored (marks may extend past a cell edge).
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        if x < self.width && y < self.height {
            self.data[y * self.width + x] = v.clamp(0.0, 1.0);
        }
    }

    /// Sets pixel `(x, y)` to full ink.
    pub fn ink(&mut self, x: usize, y: usize) {
        self.set(x, y, 1.0);
    }

    /// Clears pixel `(x, y)` to background.
    pub fn erase(&mut self, x: usize, y: usize) {
        self.set(x, y, 0.0);
    }

    /// Flips a pixel between ink and background (used by shape variants).
    pub fn toggle(&mut self, x: usize, y: usize) {
        let v = self.get(x, y);
        self.set(x, y, if v > 0.5 { 0.0 } else { 1.0 });
    }

    /// Raw pixel slice, row-major.
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Extends the image to `width` pixels, padding new columns with
    /// background. No-op if the image is already at least that wide.
    pub fn pad_to_width(&mut self, width: usize) {
        if width <= self.width {
            return;
        }
        let mut data = vec![0.0; width * self.height];
        for y in 0..self.height {
            let src = y * self.width;
            let dst = y * width;
            data[dst..dst + self.width].copy_from_slice(&self.data[src..src + self.width]);
        }
        self.width = width;
        self.data = data;
    }

    /// Total ink (sum of pixel values) — a cheap pre-filter signal.
    pub fn ink_mass(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Serializes to a binary PGM (P5) image — ink maps to black on a
    /// white background, the way address bars draw text.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.data
                .iter()
                .map(|&v| 255u8.saturating_sub((v * 255.0) as u8)),
        );
        out
    }

    /// Renders to an ASCII-art string for debugging (`#` ink, `.` blank).
    pub fn to_ascii_art(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y) > 0.5 { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut img = GrayImage::new(4, 4);
        img.set(1, 2, 0.7);
        assert_eq!(img.get(1, 2), 0.7);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn out_of_bounds_is_safe() {
        let mut img = GrayImage::new(2, 2);
        img.set(10, 10, 1.0); // ignored
        assert_eq!(img.get(10, 10), 0.0);
    }

    #[test]
    fn values_clamped() {
        let mut img = GrayImage::new(2, 2);
        img.set(0, 0, 5.0);
        assert_eq!(img.get(0, 0), 1.0);
        img.set(0, 0, -1.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn toggle_flips() {
        let mut img = GrayImage::new(1, 1);
        img.toggle(0, 0);
        assert_eq!(img.get(0, 0), 1.0);
        img.toggle(0, 0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn pad_preserves_content() {
        let mut img = GrayImage::new(2, 2);
        img.ink(1, 1);
        img.pad_to_width(4);
        assert_eq!(img.width(), 4);
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(3, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimensions_panic() {
        let _ = GrayImage::new(0, 4);
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let mut img = GrayImage::new(3, 2);
        img.ink(0, 0);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n3 2\n255\n"));
        let payload = &pgm[pgm.len() - 6..];
        assert_eq!(payload[0], 0); // ink = black
        assert_eq!(payload[1], 255); // background = white
    }

    #[test]
    fn ascii_art_shape() {
        let mut img = GrayImage::new(2, 1);
        img.ink(0, 0);
        assert_eq!(img.to_ascii_art(), "#.\n");
    }
}
