//! Crawl-pipeline benchmarks: resolution and usage classification (the
//! Section IV-D front-end, Table V).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_crawler::{AuthBehavior, Crawler, Page, PageKind};
use idnre_datagen::{Ecosystem, EcosystemConfig};

fn build_crawler() -> (Crawler, Vec<String>) {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 500,
        attack_scale: 10,
        ..EcosystemConfig::default()
    });
    let mut crawler = Crawler::new();
    for zone in &eco.zones {
        crawler.add_zone(zone);
    }
    let ip = "203.0.113.1".parse().unwrap();
    for (i, reg) in eco.idn_registrations.iter().enumerate() {
        let (behavior, page) = match i % 4 {
            0 => (AuthBehavior::Refuse, None),
            1 => (
                AuthBehavior::Answer(ip),
                Some(Page::new(200, "Parked", PageKind::Parking)),
            ),
            2 => (
                AuthBehavior::Answer(ip),
                Some(Page::new(200, "Site", PageKind::Content)),
            ),
            _ => (AuthBehavior::Answer(ip), None),
        };
        crawler.set_host(&reg.domain, behavior, page);
    }
    let domains = eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.clone())
        .collect();
    (crawler, domains)
}

fn bench_resolution(c: &mut Criterion) {
    let (crawler, domains) = build_crawler();
    let mut group = c.benchmark_group("crawler_resolve");
    group.bench_function("hit", |b| {
        b.iter(|| black_box(crawler.resolve(black_box(&domains[0]))))
    });
    group.bench_function("nxdomain", |b| {
        b.iter(|| black_box(crawler.resolve(black_box("absent.com"))))
    });
    group.finish();
}

fn bench_crawl_corpus(c: &mut Criterion) {
    let (crawler, domains) = build_crawler();
    let mut group = c.benchmark_group("crawler_classify");
    group.sample_size(20);
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("table5_corpus", |b| {
        b.iter(|| {
            domains
                .iter()
                .map(|d| crawler.crawl(d))
                .filter(|c| *c == idnre_crawler::UsageCategory::NotResolved)
                .count()
        })
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_resolution, bench_crawl_corpus
}
criterion_main!(benches);
