//! Language-identification benchmarks (Table II's classifier) with the
//! script-prior ablation from DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_langid::{Classifier, Language};

fn corpus() -> Vec<String> {
    let mut out = Vec::new();
    for lang in Language::ALL {
        for word in idnre_langid::vocabulary(lang).iter().take(20) {
            out.push(word.to_string());
        }
    }
    out
}

fn bench_classify(c: &mut Criterion) {
    let clf = Classifier::global();
    let corpus = corpus();
    let mut group = c.benchmark_group("langid");
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("classify_corpus", |b| {
        b.iter(|| {
            for label in &corpus {
                black_box(clf.classify(black_box(label)));
            }
        })
    });
    group.finish();
}

fn bench_per_script(c: &mut Criterion) {
    let clf = Classifier::global();
    let mut group = c.benchmark_group("langid_per_script");
    for (name, label) in [
        ("han", "彩票娱乐"),
        ("kana", "ショッピング"),
        ("hangul", "쇼핑몰"),
        ("latin-diacritic", "alışveriş"),
        ("cyrillic", "новости"),
    ] {
        group.bench_function(name, |b| b.iter(|| clf.classify(black_box(label))));
    }
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    c.bench_function("langid_train", |b| b.iter(Classifier::train));
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_classify, bench_per_script, bench_training
}
criterion_main!(benches);
