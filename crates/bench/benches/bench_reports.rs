//! Report-generator benchmarks — `report.table1` was the slowest fragment
//! in the pipeline bench (≈42µs per registration before the TLD aggregate
//! pre-pass), so it gets its own per-record throughput measurement here.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_bench::{reports, ReproContext};
use idnre_datagen::EcosystemConfig;

fn context() -> ReproContext {
    ReproContext::build(&EcosystemConfig {
        scale: 500,
        attack_scale: 10,
        ..EcosystemConfig::default()
    })
}

fn bench_table1(c: &mut Criterion) {
    let ctx = context();
    let records = ctx.eco.idn_registrations.len() as u64;
    let mut group = c.benchmark_group("report_table1");
    group.throughput(Throughput::Elements(records));
    group.bench_function("table1", |b| b.iter(|| reports::table1(black_box(&ctx))));
    group.finish();
}

fn bench_full_report(c: &mut Criterion) {
    let ctx = context();
    c.bench_function("full_report", |b| {
        b.iter(|| {
            let report = ctx.full_report();
            black_box(report.len())
        })
    });
}

/// Fast Criterion profile: matches the rest of the suite so a
/// whole-workspace `cargo bench` stays in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_table1, bench_full_report
}
criterion_main!(benches);
