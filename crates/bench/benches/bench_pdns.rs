//! Passive-DNS benchmarks: traffic sampling and the ECDF/segment analytics
//! behind Figures 2, 3, 4, 5 and 8.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_pdns::{ActivityAnalytics, PdnsStore, PopulationClass, TrafficModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn populated_store(n: usize) -> PdnsStore {
    let mut store = PdnsStore::new();
    let mut rng = StdRng::seed_from_u64(77);
    let model = TrafficModel::for_class(PopulationClass::BenignIdn);
    for i in 0..n {
        if let Some(agg) = model.sample_aggregate(
            &mut rng,
            &format!("xn--domain{i}.com"),
            17_400,
            Some(std::net::Ipv4Addr::new(91, 195, (i % 64) as u8, 7)),
        ) {
            store.insert_aggregate(agg);
        }
    }
    store
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdns_sampling");
    for class in [
        PopulationClass::BenignIdn,
        PopulationClass::NonIdn,
        PopulationClass::MaliciousIdn,
        PopulationClass::Homographic,
    ] {
        let model = TrafficModel::for_class(class);
        group.bench_function(&format!("{class:?}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(model.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_store_ops(c: &mut Criterion) {
    let store = populated_store(10_000);
    let mut group = c.benchmark_group("pdns_store");
    group.bench_function("lookup_hit", |b| {
        b.iter(|| black_box(store.lookup(black_box("xn--domain77.com"))))
    });
    group.bench_function("lookup_miss", |b| {
        b.iter(|| black_box(store.lookup(black_box("absent.com"))))
    });
    let batch: Vec<String> = (0..1000).map(|i| format!("xn--domain{i}.com")).collect();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("lookup_batch_1k", |b| {
        b.iter(|| store.lookup_batch(batch.iter().map(String::as_str)).len())
    });
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let store = populated_store(10_000);
    let mut group = c.benchmark_group("pdns_analytics");
    group.sample_size(20);
    group.bench_function("fig2_ecdf_build", |b| {
        b.iter(|| {
            let mut analytics = ActivityAnalytics::new();
            analytics.extend(store.iter());
            analytics.active_time_ecdf().quantile(0.6)
        })
    });
    group.bench_function("fig4_segment_report", |b| {
        b.iter(|| {
            let mut analytics = ActivityAnalytics::new();
            analytics.extend(store.iter());
            analytics.segment_report().cumulative_fraction(10)
        })
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_sampling, bench_store_ops, bench_analytics
}
criterion_main!(benches);
