//! Zone-file parse + scan benchmarks — the Table I pipeline (Section III
//! scanned 154M records; this measures the per-record cost).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_zonefile::{parse_zone, write_zone, ZoneScanner};

fn generated_zone_text() -> String {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 500,
        attack_scale: 10,
        ..EcosystemConfig::default()
    });
    let com = eco
        .zones
        .iter()
        .find(|z| z.origin.to_string() == "com")
        .expect("com zone generated");
    write_zone(com)
}

fn bench_parse(c: &mut Criterion) {
    let text = generated_zone_text();
    let records = text.lines().count() as u64;
    let mut group = c.benchmark_group("zone_parse");
    group.throughput(Throughput::Elements(records));
    group.bench_function("parse_com_zone", |b| {
        b.iter(|| parse_zone(black_box("com"), black_box(&text)).unwrap())
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let text = generated_zone_text();
    let zone = parse_zone("com", &text).unwrap();
    let scanner = ZoneScanner::new();
    let mut group = c.benchmark_group("zone_scan");
    group.throughput(Throughput::Elements(zone.len() as u64));
    group.bench_function("scan_com_zone", |b| {
        b.iter(|| {
            let stats = scanner.scan(black_box(&zone));
            black_box(stats.idns.len())
        })
    });
    group.finish();
}

/// Lenient (skip-and-count) parse throughput, on the clean corpus and on
/// one with a corrupted line every 50 — the degraded-ingest path `--faults`
/// exercises.
fn bench_parse_lenient(c: &mut Criterion) {
    let text = generated_zone_text();
    let records = text.lines().count() as u64;
    let corrupted: String = text
        .lines()
        .enumerate()
        .map(|(i, line)| {
            if i % 50 == 0 {
                format!("{line} \u{fffd}garbage\n")
            } else {
                format!("{line}\n")
            }
        })
        .collect();
    let mut group = c.benchmark_group("zone_parse_lenient");
    group.throughput(Throughput::Elements(records));
    group.bench_function("clean", |b| {
        b.iter(|| {
            let lenient = idnre_zonefile::parse_zone_lenient(black_box("com"), black_box(&text));
            black_box(lenient.attempted)
        })
    });
    group.bench_function("corrupted_2pct", |b| {
        b.iter(|| {
            let lenient =
                idnre_zonefile::parse_zone_lenient(black_box("com"), black_box(&corrupted));
            black_box(lenient.attempted)
        })
    });
    group.finish();
}

fn bench_roundtrip(c: &mut Criterion) {
    let text = generated_zone_text();
    let zone = parse_zone("com", &text).unwrap();
    c.bench_function("zone_write", |b| b.iter(|| write_zone(black_box(&zone))));
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_parse, bench_scan, bench_parse_lenient, bench_roundtrip
}
criterion_main!(benches);
