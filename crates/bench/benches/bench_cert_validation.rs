//! Certificate validation and sharing-analysis benchmarks (Tables VI/VII).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_certs::{Certificate, SharingAnalysis, Validator};
use idnre_datagen::{Ecosystem, EcosystemConfig};

fn fixture() -> Vec<(String, Certificate)> {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 200,
        attack_scale: 5,
        ..EcosystemConfig::default()
    });
    eco.certificates
}

fn bench_classify(c: &mut Criterion) {
    let certs = fixture();
    let validator = Validator::with_default_roots(17_400);
    let mut group = c.benchmark_group("cert_validation");
    group.throughput(Throughput::Elements(certs.len() as u64));
    group.bench_function("classify_corpus", |b| {
        b.iter(|| {
            certs
                .iter()
                .filter(|(domain, cert)| validator.classify(cert, domain).is_some())
                .count()
        })
    });
    group.finish();
}

fn bench_single_checks(c: &mut Criterion) {
    let validator = Validator::with_default_roots(17_400);
    let good = Certificate::ca_issued(
        "shop.com",
        vec!["www.shop.com".into()],
        "Let's Encrypt R3",
        17_000,
        17_800,
    );
    let wildcard = Certificate::ca_issued("*.cafe24.com", vec![], "Sectigo RSA DV", 17_000, 17_800);
    let mut group = c.benchmark_group("cert_single");
    group.bench_function("clean", |b| {
        b.iter(|| validator.classify(black_box(&good), black_box("shop.com")))
    });
    group.bench_function("wildcard_match", |b| {
        b.iter(|| validator.classify(black_box(&wildcard), black_box("shop.cafe24.com")))
    });
    group.bench_function("cn_mismatch", |b| {
        b.iter(|| validator.classify(black_box(&wildcard), black_box("xn--a.com")))
    });
    group.finish();
}

fn bench_sharing(c: &mut Criterion) {
    let certs = fixture();
    let mut group = c.benchmark_group("cert_sharing");
    group.sample_size(20);
    group.bench_function("table7_rollup", |b| {
        b.iter(|| {
            let mut sharing = SharingAnalysis::new();
            for (domain, cert) in &certs {
                sharing.observe(domain, cert);
            }
            sharing.top_shared(10).len()
        })
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_classify, bench_single_checks, bench_sharing
}
criterion_main!(benches);
