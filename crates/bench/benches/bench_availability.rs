//! Availability-enumeration benchmarks (Figure 7) with the SSIM-threshold
//! sweep ablation from DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idnre_core::AvailabilityEnumerator;
use idnre_datagen::BrandList;

fn bench_generate_per_brand(c: &mut Criterion) {
    let enumerator = AvailabilityEnumerator::new();
    let mut group = c.benchmark_group("availability_generate");
    group.sample_size(20);
    for brand in ["go.com", "apple.com", "instagram.com"] {
        group.bench_function(brand, |b| {
            b.iter(|| black_box(enumerator.generate(black_box(brand))).len())
        });
    }
    group.finish();
}

fn bench_survey_top10(c: &mut Criterion) {
    let enumerator = AvailabilityEnumerator::new();
    let brands = BrandList::alexa_top_1k();
    let top: Vec<String> = brands.top(10).iter().map(|b| b.domain()).collect();
    let mut group = c.benchmark_group("availability_survey");
    group.sample_size(10);
    group.bench_function("top10_brands", |b| {
        b.iter(|| {
            enumerator
                .survey(top.iter().map(String::as_str))
                .iter()
                .map(|r| r.homographic)
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Threshold-sweep ablation: detection counts at 0.90 / 0.95 / 0.99
/// (the paper justifies 0.95 by manual review; the sweep shows the knee).
fn bench_threshold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("availability_threshold");
    group.sample_size(10);
    let mut counts = Vec::new();
    for threshold in [0.90f64, 0.95, 0.99] {
        let enumerator = AvailabilityEnumerator::with_threshold(threshold);
        counts.push((threshold, enumerator.homographic("google.com").len()));
        group.bench_function(&format!("google_at_{threshold:.2}"), |b| {
            b.iter(|| enumerator.homographic(black_box("google.com")).len())
        });
    }
    // Monotone: lower thresholds admit more candidates.
    assert!(
        counts[0].1 >= counts[1].1 && counts[1].1 >= counts[2].1,
        "{counts:?}"
    );
    group.finish();
}

/// Baseline comparison: ASCII squatting generators are orders of magnitude
/// cheaper than SSIM-filtered homograph enumeration.
fn bench_squatting_baselines(c: &mut Criterion) {
    use idnre_core::squatting::{generate_all, pool_sizes};
    let mut group = c.benchmark_group("squatting_baselines");
    group.bench_function("generate_all_google", |b| {
        b.iter(|| black_box(generate_all(black_box("google"))).len())
    });
    group.bench_function("pool_sizes_google", |b| {
        b.iter(|| black_box(pool_sizes(black_box("google"))).len())
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_generate_per_brand, bench_survey_top10, bench_threshold_sweep, bench_squatting_baselines
}
criterion_main!(benches);
