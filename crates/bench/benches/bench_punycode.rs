//! Punycode codec benchmarks — the conversion every IDN zone-scan record
//! passes through (Section III's 154M-record scan).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn inputs() -> Vec<(&'static str, String)> {
    vec![
        ("short-cjk", "波色".to_string()),
        ("cyrillic-spoof", "аррӏе".to_string()),
        ("mixed-brand", "apple激活".to_string()),
        ("long-thai", "ท่องเที่ยวโรงแรมประกัน".to_string()),
        ("long-cjk", "北京上海广州深圳重庆成都彩票".to_string()),
    ]
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("punycode_encode");
    for (name, text) in inputs() {
        group.throughput(Throughput::Bytes(text.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| idnre_idna::punycode::encode(black_box(&text)).unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("punycode_decode");
    for (name, text) in inputs() {
        let encoded = idnre_idna::punycode::encode(&text).unwrap();
        group.throughput(Throughput::Bytes(encoded.len() as u64));
        group.bench_function(name, |b| {
            b.iter(|| idnre_idna::punycode::decode(black_box(&encoded)).unwrap())
        });
    }
    group.finish();
}

fn bench_domain_roundtrip(c: &mut Criterion) {
    c.bench_function("idna_to_ascii_domain", |b| {
        b.iter(|| idnre_idna::to_ascii(black_box("apple激活.com")).unwrap())
    });
    c.bench_function("idna_to_unicode_domain", |b| {
        b.iter(|| idnre_idna::to_unicode(black_box("xn--80ak6aa92e.com")).unwrap())
    });
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_decode, bench_domain_roundtrip
}
criterion_main!(benches);
