//! Browser display-policy benchmarks (Table XI) and the policy-family
//! ablation: Chrome mixed-script vs Firefox single-script vs
//! Punycode-always on the attack corpus.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idnre_browser::{run_survey, PolicyKind, Rendering};

const CORPUS: &[&str] = &[
    "fаcebook.com",
    "аррӏе.com",
    "ѕоѕо.com",
    "faċebook.com",
    "日本のニュース.com",
    "новости.com",
    "example.com",
    "中国",
];

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("browser_policy");
    for kind in [
        PolicyKind::ChromeMixedScript,
        PolicyKind::FirefoxSingleScript,
        PolicyKind::PunycodeAlways,
        PolicyKind::UnicodeAlways,
    ] {
        let policy = kind.policy();
        group.bench_function(&format!("{kind:?}"), |b| {
            b.iter(|| {
                CORPUS
                    .iter()
                    .filter(|d| matches!(policy.display(d), Rendering::Unicode(_)))
                    .count()
            })
        });
    }
    group.finish();
}

/// Ablation: how many spoofs each policy family lets through. Asserted once
/// (Chrome < Firefox < UnicodeAlways), then timed as a batch.
fn bench_policy_ablation(c: &mut Criterion) {
    let spoofs = ["fаcebook.com", "аррӏе.com", "ѕоѕо.com", "faċebook.com"];
    let passes = |kind: PolicyKind| {
        let policy = kind.policy();
        spoofs
            .iter()
            .filter(|d| matches!(policy.display(d), Rendering::Unicode(_)))
            .count()
    };
    let chrome = passes(PolicyKind::ChromeMixedScript);
    let firefox = passes(PolicyKind::FirefoxSingleScript);
    let legacy = passes(PolicyKind::UnicodeAlways);
    assert!(chrome < firefox, "chrome {chrome} vs firefox {firefox}");
    assert!(firefox < legacy, "firefox {firefox} vs legacy {legacy}");
    c.bench_function("policy_ablation_batch", |b| {
        b.iter(|| {
            black_box(passes(PolicyKind::ChromeMixedScript));
            black_box(passes(PolicyKind::FirefoxSingleScript));
            black_box(passes(PolicyKind::UnicodeAlways));
        })
    });
}

fn bench_survey(c: &mut Criterion) {
    c.bench_function("table11_full_survey", |b| b.iter(|| run_survey().len()));
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_policies, bench_policy_ablation, bench_survey
}
criterion_main!(benches);
