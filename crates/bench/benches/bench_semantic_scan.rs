//! Type-1 semantic scan benchmarks (Table XIV's detector).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_core::SemanticDetector;
use idnre_datagen::{Ecosystem, EcosystemConfig};

fn fixture() -> (SemanticDetector, Vec<String>) {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 1000,
        attack_scale: 10,
        ..EcosystemConfig::default()
    });
    let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let corpus: Vec<String> = eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.clone())
        .collect();
    (SemanticDetector::new(&brands), corpus)
}

fn bench_detect_single(c: &mut Criterion) {
    let (detector, _) = fixture();
    let type1 = idnre_idna::to_ascii("apple激活.com").unwrap();
    let mut group = c.benchmark_group("semantic_detect");
    group.bench_function("type1-hit", |b| {
        b.iter(|| black_box(detector.detect_type1(black_box(&type1))))
    });
    group.bench_function("type1-miss", |b| {
        b.iter(|| black_box(detector.detect_type1(black_box("xn--0wwy37b.com"))))
    });
    group.bench_function("type2-hit", |b| {
        let ace = idnre_idna::to_ascii("格力空调.net").unwrap();
        b.iter(|| black_box(detector.detect_type2(black_box(&ace))))
    });
    group.finish();
}

fn bench_scan_corpus(c: &mut Criterion) {
    let (detector, corpus) = fixture();
    let mut group = c.benchmark_group("semantic_scan");
    group.sample_size(20);
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("scan_type1_corpus", |b| {
        b.iter(|| detector.scan_type1(corpus.iter().map(String::as_str)).len())
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_detect_single, bench_scan_corpus
}
criterion_main!(benches);
