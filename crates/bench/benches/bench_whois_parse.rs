//! WHOIS parsing and registration-analytics benchmarks (the Section III
//! crawl processed 739K records through parsers like this).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_whois::analytics::RegistrationAnalytics;
use idnre_whois::parse_whois;

const KEY_VALUE: &str = "\
Domain Name: XN--0WWY37B.COM
Registrar: GMO Internet Inc.
Creation Date: 2017-03-04T09:21:00Z
Registry Expiry Date: 2018-03-04T09:21:00Z
Registrant Email: daidesheng88@gmail.com
Name Server: NS1.PARKING.NET
Name Server: NS2.PARKING.NET
";

const BRACKETED: &str = "\
[Domain Name]                XN--WGV71A119E.COM
[Registrant]                 Example KK
[Name Server]                ns1.example.ne.jp
[Created on]                 2004/11/09
[Email]                      admin@example.ne.jp
";

const PERCENT: &str = "\
% WHOIS server banner
% Rights restricted by copyright.
domain:      xn--tst-qla.net
registrar:   1&1 Internet SE.
created:     21-Sep-2005
e-mail:      hostmaster@provider.de
";

fn bench_dialects(c: &mut Criterion) {
    let mut group = c.benchmark_group("whois_parse");
    for (name, raw) in [
        ("key_value", KEY_VALUE),
        ("bracketed", BRACKETED),
        ("percent_banner", PERCENT),
    ] {
        group.throughput(Throughput::Bytes(raw.len() as u64));
        group.bench_function(name, |b| b.iter(|| parse_whois(black_box(raw)).unwrap()));
    }
    group.bench_function("refused_banner", |b| {
        b.iter(|| parse_whois(black_box("Query rate exceeded.")).unwrap_err())
    });
    group.finish();
}

fn bench_analytics(c: &mut Criterion) {
    let records: Vec<_> = (0..2_000)
        .map(|i| {
            let raw = format!(
                "Domain Name: xn--d{i}.com\nRegistrar: Registrar-{:02} LLC\n\
                 Registrant Email: user{}@qq.com\nCreation Date: 20{:02}-06-01\n",
                i % 40,
                i % 300,
                i % 18
            );
            parse_whois(&raw).unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("whois_analytics");
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("fold_2k_records", |b| {
        b.iter(|| {
            let mut analytics = RegistrationAnalytics::new();
            analytics.extend(records.iter());
            (
                analytics.top_registrars(10).len(),
                analytics.top_registrants(5).len(),
            )
        })
    });
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_dialects, bench_analytics
}
criterion_main!(benches);
