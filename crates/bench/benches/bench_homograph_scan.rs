//! Homograph-scan benchmarks (Table XIII's detector) including the
//! skeleton-prefilter vs exhaustive ablation, the parallel fan-out, and
//! the interned-layout rung that re-measures the indexed-scan speedup
//! claim on the arena representation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use idnre_arena::{Interner, Symbol};
use idnre_core::HomographDetector;
use idnre_datagen::{Ecosystem, EcosystemConfig};

struct Fixture {
    detector: HomographDetector,
    corpus: Vec<String>,
}

fn fixture() -> Fixture {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 1000,
        attack_scale: 10,
        ..EcosystemConfig::default()
    });
    let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let corpus: Vec<String> = eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.clone())
        .collect();
    Fixture {
        detector: HomographDetector::new(&brands, 0.95),
        corpus,
    }
}

fn bench_detect_single(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("homograph_detect");
    for (name, probe) in [
        ("hit-identical", "xn--80ak6aa92e.com"),
        ("hit-diacritic", "xn--ggle-0qaa.com"),
        ("miss-cjk", "xn--0wwy37b.com"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(f.detector.detect(black_box(probe))))
        });
    }
    group.finish();
}

fn bench_scan_corpus(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("homograph_scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(f.corpus.len() as u64));
    for threads in [1usize, 4, 8] {
        group.bench_function(&format!("prefilter_{threads}threads"), |b| {
            b.iter(|| {
                f.detector
                    .scan(f.corpus.iter().map(String::as_str), threads)
                    .len()
            })
        });
    }
    group.finish();
}

/// Ablation: the skeleton pre-filter vs the paper's exhaustive pairwise
/// comparison, on a 100-domain slice (exhaustive is orders slower).
fn bench_prefilter_ablation(c: &mut Criterion) {
    let f = fixture();
    let slice: Vec<&str> = f.corpus.iter().take(100).map(String::as_str).collect();
    let mut group = c.benchmark_group("homograph_ablation_100domains");
    group.sample_size(10);
    group.bench_function("prefilter", |b| {
        b.iter(|| slice.iter().filter_map(|d| f.detector.detect(d)).count())
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            slice
                .iter()
                .filter_map(|d| f.detector.detect_exhaustive(d))
                .count()
        })
    });
    group.finish();
}

/// Indexed vs exhaustive scan across the corpus-size ladder (1k/10k/100k
/// domains, synthesized by cycling the generated corpus). The exhaustive
/// oracle is O(brands) per domain, so its large-size points use a minimal
/// sample count — expect the 100k pair to dominate a `cargo bench` run.
fn bench_index_scaling(c: &mut Criterion) {
    let f = fixture();
    for size in [1_000usize, 10_000, 100_000] {
        let corpus: Vec<&str> = f
            .corpus
            .iter()
            .cycle()
            .take(size)
            .map(String::as_str)
            .collect();
        let mut group = c.benchmark_group(format!("homograph_index_scaling_{size}"));
        group.throughput(Throughput::Elements(size as u64));
        group.sample_size(10);
        group.bench_function("indexed", |b| {
            b.iter(|| f.detector.scan(corpus.iter().copied(), 8).len())
        });
        group.sample_size(2);
        group.bench_function("exhaustive", |b| {
            b.iter(|| f.detector.scan_exhaustive(corpus.iter().copied(), 8).len())
        });
        group.finish();
    }
}

/// The interned-layout rung: 100k records held as `Symbol(u32)` handles
/// into one append-only arena (the paper-scale corpus representation)
/// instead of 100k heap `String`s. The indexed scan resolves each symbol
/// to its arena slice on the fly, so this measures the PR 3 speedup claim
/// on the layout the streamed pipeline actually uses — symbol resolution
/// is a bounds-checked slice lookup, not a hash probe, and must not eat
/// the prefilter's win.
fn bench_interned_layout(c: &mut Criterion) {
    const SIZE: usize = 100_000;
    let f = fixture();
    let mut arena = Interner::with_capacity(f.corpus.len());
    for domain in &f.corpus {
        arena.intern(domain);
    }
    // Cycle the distinct-domain arena up to 100k records of symbol
    // handles — the dense-corpus shape `CorpusColumns` stores.
    let symbols: Vec<Symbol> = (0..SIZE)
        .map(|i| Symbol::from_index(i % arena.len()))
        .collect();
    let mut group = c.benchmark_group(format!("homograph_interned_{SIZE}"));
    group.throughput(Throughput::Elements(SIZE as u64));
    group.sample_size(10);
    for threads in [1usize, 8] {
        group.bench_function(&format!("indexed_{threads}threads"), |b| {
            b.iter(|| {
                f.detector
                    .scan(symbols.iter().map(|&s| arena.resolve(s)), threads)
                    .len()
            })
        });
    }
    group.finish();
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_detect_single, bench_scan_corpus, bench_prefilter_ablation, bench_index_scaling, bench_interned_layout
}
criterion_main!(benches);
