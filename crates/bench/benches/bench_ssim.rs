//! SSIM benchmarks (Table XII's metric) including the SSIM-vs-MSE ablation
//! the paper motivates ("SSIM strikes a good balance between accuracy and
//! runtime performance").

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use idnre_render::{mse, render_text, ssim, ssim_strings};

fn bench_render(c: &mut Criterion) {
    c.bench_function("render_brand_domain", |b| {
        b.iter(|| render_text(black_box("google.com")))
    });
    c.bench_function("render_cjk_domain", |b| {
        b.iter(|| render_text(black_box("北京交通大学.com")))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let brand = render_text("google.com");
    let spoof = render_text("gõõgle.com");
    c.bench_function("ssim_pair_10_chars", |b| {
        b.iter(|| ssim(black_box(&brand), black_box(&spoof)).unwrap())
    });
    c.bench_function("mse_pair_10_chars", |b| {
        b.iter(|| mse(black_box(&brand), black_box(&spoof)).unwrap())
    });
}

/// The Table XII ladder end-to-end (render + compare), per probe class.
fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssim_ladder");
    for (name, spoof) in [
        ("identical", "gооgle.com"),
        ("one-mark", "goögle.com"),
        ("two-marks", "gõõgle.com"),
        ("unrelated", "example.com"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| ssim_strings(black_box("google.com"), black_box(spoof)))
        });
    }
    group.finish();
}

/// Ablation: MSE mis-ranks diacritic variants relative to SSIM — assert the
/// ordering once, then time the comparison batch.
fn bench_metric_ablation(c: &mut Criterion) {
    let brand = render_text("google.com");
    let near = render_text("goögle.com"); // visually near
    let far = render_text("gøøgle.com"); // visually farther
    let ssim_near = ssim(&brand, &near).unwrap();
    let ssim_far = ssim(&brand, &far).unwrap();
    assert!(ssim_near > ssim_far, "ssim must rank near above far");
    c.bench_function("ablation_ssim_batch", |b| {
        b.iter(|| {
            black_box(ssim(&brand, &near).unwrap());
            black_box(ssim(&brand, &far).unwrap());
        })
    });
    c.bench_function("ablation_mse_batch", |b| {
        b.iter(|| {
            black_box(mse(&brand, &near).unwrap());
            black_box(mse(&brand, &far).unwrap());
        })
    });
}

/// Fast Criterion profile: the full suite spans ~80 benchmarks, so each one
/// uses short warmup/measurement windows to keep a whole-workspace
/// `cargo bench` run in the minutes range.
fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(10)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_render, bench_metrics, bench_ladder, bench_metric_ablation
}
criterion_main!(benches);
