//! Structural determinism of the hierarchical trace: the span tree's
//! *shape* — names, nesting, sibling indexes, event counts — must be
//! byte-identical across worker-thread counts, because parenting is
//! explicit (a parent's `SpanCtx` is handed to children) and sibling
//! order is `(name, index)`, never completion order. Only timings may
//! differ between runs.

use idnre_bench::ReproContext;
use idnre_datagen::EcosystemConfig;
use idnre_telemetry::Registry;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

const THREAD_GRID: [usize; 3] = [1, 2, 8];
const SHARD_GRID: [usize; 2] = [64, 1024];

fn config(threads: usize) -> EcosystemConfig {
    EcosystemConfig {
        scale: 2000,
        attack_scale: 25,
        brand_count: 200,
        threads,
        ..EcosystemConfig::default()
    }
}

/// Runs the streamed pipeline under a tracing registry and returns the
/// timing-free trace skeleton plus the `analyze.pass.*` stage names in
/// snapshot (i.e. registration) order.
fn traced_run(threads: usize, shard_size: usize) -> (String, Vec<String>) {
    let registry = Arc::new(Registry::with_trace());
    let _ctx = ReproContext::build_streamed(&config(threads), shard_size, registry.clone());
    let structure = registry
        .trace_snapshot()
        .expect("tracing registry")
        .render_structure();
    let passes: Vec<String> = registry
        .snapshot()
        .stages
        .iter()
        .filter(|s| s.name.starts_with("analyze.pass."))
        .map(|s| s.name.clone())
        .collect();
    (structure, passes)
}

/// Single-threaded reference run per shard size, built once — structure
/// at any thread count must match it exactly.
fn reference(shard_size: usize) -> &'static (String, Vec<String>) {
    static REF_64: OnceLock<(String, Vec<String>)> = OnceLock::new();
    static REF_1024: OnceLock<(String, Vec<String>)> = OnceLock::new();
    let cell = match shard_size {
        64 => &REF_64,
        1024 => &REF_1024,
        other => panic!("no reference for shard size {other}"),
    };
    cell.get_or_init(|| traced_run(1, shard_size))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Scheduling is invisible in the trace: for a fixed shard size, every
    /// thread count yields the same skeleton and the same pass
    /// registration order as the single-threaded reference.
    #[test]
    fn trace_structure_is_invariant_across_threads(
        threads_index in 0usize..THREAD_GRID.len(),
        shard_index in 0usize..SHARD_GRID.len(),
    ) {
        let threads = THREAD_GRID[threads_index];
        let shard_size = SHARD_GRID[shard_index];
        let (structure, passes) = traced_run(threads, shard_size);
        let (ref_structure, ref_passes) = reference(shard_size);
        prop_assert_eq!(&structure, ref_structure,
            "trace skeleton diverged at threads={} shard_size={}", threads, shard_size);
        prop_assert_eq!(&passes, ref_passes,
            "pass registration order diverged at threads={} shard_size={}", threads, shard_size);
    }
}

/// The tree has the documented shape: pipeline phases under the run root,
/// one group per registered pass under `analyze.scan` with one child span
/// per shard, and generation sub-stages under `build.ecosystem`.
#[test]
fn trace_tree_has_the_documented_shape() {
    let registry = Arc::new(Registry::with_trace());
    let ctx = ReproContext::build_streamed(&config(2), 1024, registry.clone());
    // Tracing is observational: the report bytes match an untraced build.
    let untraced =
        ReproContext::build_streamed(&config(2), 1024, Arc::new(idnre_telemetry::NoopRecorder));
    assert_eq!(
        ctx.full_report(),
        untraced.full_report(),
        "tracing perturbed the report"
    );
    let snapshot = registry.trace_snapshot().expect("tracing registry");
    let root = &snapshot.root;
    assert_eq!(root.name, "run");
    for phase in [
        "build.ecosystem",
        "analyze.scan",
        "crawl.survey",
        "whois.survey",
    ] {
        assert!(
            root.child(phase).is_some(),
            "missing top-level span {phase}"
        );
    }
    let build = root.child("build.ecosystem").unwrap();
    assert!(build.child("datagen.stream.plan").is_some());
    assert!(build.child("datagen.stream.artifacts").is_some());

    let scan = root.child("analyze.scan").unwrap();
    // 3 detector passes + 6 report aggregation passes, each a group whose
    // children are the per-shard spans.
    assert_eq!(scan.children.len(), 9, "pass groups under analyze.scan");
    // Shards are carved per population (IDN first, then non-IDN).
    let expected_shards =
        (ctx.outputs.idn_len.div_ceil(1024) + ctx.outputs.non_idn_len.div_ceil(1024)) as usize;
    for group in &scan.children {
        assert!(group.name.starts_with("analyze.pass."), "{}", group.name);
        assert_eq!(
            group.children.len(),
            expected_shards,
            "{} shard spans",
            group.name
        );
    }
    // The registration-order contract: snapshot order lists every pass
    // before any shard could race a first-touch.
    let (_, passes) = (
        snapshot.render_structure(),
        registry
            .snapshot()
            .stages
            .iter()
            .filter(|s| s.name.starts_with("analyze.pass."))
            .map(|s| s.name.clone())
            .collect::<Vec<_>>(),
    );
    assert_eq!(passes.len(), 9);
    assert_eq!(passes[0], "analyze.pass.homograph");
}
