//! The per-pass attribution budget: timing every registered pass must not
//! make the fused scan measurably slower. Instrumentation is batched —
//! one span per (shard, pass), one accumulated merge probe and one finish
//! probe per pass — so the clock is read O(shards × passes) times, never
//! per record. This test holds the instrumented scan to ≤ 1.05× the
//! uninstrumented wall at CI's smoke scale (1:50).

use idnre_analyze::SliceSource;
use idnre_bench::passes;
use idnre_core::{HomographDetector, SemanticDetector};
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_telemetry::{NoopRecorder, Recorder, Registry};
use std::time::Instant;

/// Attempts before the test gives up: the ratio of two wall-clock
/// measurements on a shared machine is noisy, so each attempt interleaves
/// the pair and the best (minimum-noise) attempt is the verdict.
const ATTEMPTS: usize = 3;
const BUDGET: f64 = 1.05;

#[test]
fn instrumented_scan_stays_within_five_percent_of_uninstrumented() {
    let config = EcosystemConfig {
        scale: 50,
        threads: 4,
        ..EcosystemConfig::default()
    };
    let eco = Ecosystem::generate(&config);
    let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
    let brand_domains: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brand_domains, 0.95);
    let semantic_detector = SemanticDetector::new(&brand_domains);
    let columns = passes::build_columns(
        &source,
        &eco.blacklist,
        1024,
        config.threads,
        &NoopRecorder,
        idnre_telemetry::SpanCtx::NONE,
    );
    let scan_once = |recorder: &dyn Recorder| {
        let plan = passes::ScanPlan::new(
            &detector,
            &semantic_detector,
            &columns,
            &eco.pdns,
            passes::table3_wanted(&eco.whois),
            passes::fig6_candidates(eco.brands.top(30)),
            config.threads,
        );
        plan.run(&source, 1024, config.threads, recorder)
    };

    // Warm caches and allocator before anything is timed.
    let _ = scan_once(&NoopRecorder);

    let mut best = f64::INFINITY;
    for attempt in 0..ATTEMPTS {
        let registry = Registry::new();
        let started = Instant::now();
        let _ = scan_once(&registry);
        let instrumented = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let _ = scan_once(&NoopRecorder);
        let uninstrumented = started.elapsed().as_secs_f64();
        let ratio = instrumented / uninstrumented;
        best = best.min(ratio);
        eprintln!(
            "attempt {attempt}: instrumented {instrumented:.3}s / \
             uninstrumented {uninstrumented:.3}s = {ratio:.4}x"
        );
        if best <= BUDGET {
            break;
        }
    }
    assert!(
        best <= BUDGET,
        "instrumented scan is {best:.4}x the uninstrumented wall (budget {BUDGET}x)"
    );
}
