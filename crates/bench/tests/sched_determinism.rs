//! Properties of the event-driven crawl scheduler: a fixed fault spec and
//! scheduler config replay byte-identically across runs *and* across
//! worker-thread counts, no query outlives its deadline by more than one
//! wheel tick, and a storm run degrades (sheds, trips breakers, exits 3)
//! instead of exceeding its budget.

use idnre_bench::robust::{self, FaultSetup, RunHealth};
use idnre_bench::ReproContext;
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_fault::{ErrorBudget, FaultPlan, FaultProfile, RetryPolicy, RunStatus};
use idnre_sched::SchedConfig;
use idnre_telemetry::Registry;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small ecosystem shared across cases: generation dominates the cost
/// and is independent of the scheduler under test.
fn eco() -> &'static Ecosystem {
    static ECO: OnceLock<Ecosystem> = OnceLock::new();
    ECO.get_or_init(|| {
        Ecosystem::generate(&EcosystemConfig {
            scale: 8000,
            attack_scale: 100,
            brand_count: 50,
            ..EcosystemConfig::default()
        })
    })
}

/// The storm-smoke corpus: the scale the CLI exit-code contract is
/// calibrated at (a full slice's worth of crawl domains, so breakers
/// trip early enough in the population to shed the bulk of a storm).
fn smoke_eco() -> &'static Ecosystem {
    static ECO: OnceLock<Ecosystem> = OnceLock::new();
    ECO.get_or_init(|| {
        Ecosystem::generate(&EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            ..EcosystemConfig::default()
        })
    })
}

fn profile(index: u8) -> FaultProfile {
    match index % 3 {
        0 => FaultProfile::none(),
        1 => FaultProfile::flaky(),
        _ => FaultProfile::storm(),
    }
}

/// Runs the scheduled pipeline (lenient zone ingest → WHOIS survey →
/// event-driven crawl survey) and returns everything observable: the
/// health verdict and the deterministic slice of the telemetry snapshot.
fn scheduled_run(seed: u64, profile_index: u8, threads: usize) -> (RunHealth, String) {
    scheduled_run_on(eco(), seed, profile_index, threads)
}

fn scheduled_run_on(
    eco: &Ecosystem,
    seed: u64,
    profile_index: u8,
    threads: usize,
) -> (RunHealth, String) {
    let config = SchedConfig::default();
    let setup = FaultSetup {
        plan: FaultPlan::new(seed, profile(profile_index)),
        policy: RetryPolicy::default(),
        threads,
        sched: Some(config),
    };
    let registry = Registry::new();
    let budget = ErrorBudget::new(setup.plan.profile().budget_per_mille);
    let (zones, zone_stats) =
        robust::ingest_zones_faulted(&eco.zones, &setup.plan, &budget, threads, &registry);
    let whois_stats = robust::whois_survey(eco, Some(&setup.plan), Some(&budget), &registry);
    let (survey, sched) = robust::crawl_survey_scheduled(
        eco,
        &zones,
        &setup.plan,
        &config,
        threads,
        &budget,
        &registry,
    );
    let health = RunHealth::with_sched(
        &setup,
        zone_stats,
        whois_stats,
        survey,
        &budget,
        Some(sched),
    );
    let metrics = registry.snapshot().render_deterministic_json();
    (health, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same fault seed and scheduler config replay byte-identically,
    /// run to run.
    #[test]
    fn scheduled_runs_replay_across_runs(seed in any::<u64>(), profile_index in 0u8..3) {
        let (health_a, metrics_a) = scheduled_run(seed, profile_index, 4);
        let (health_b, metrics_b) = scheduled_run(seed, profile_index, 4);
        prop_assert_eq!(health_a, health_b);
        prop_assert_eq!(metrics_a, metrics_b);
    }

    /// Thread count changes wall time only: every scheduler counter, shed
    /// tally, breaker transition and the deterministic metrics slice are
    /// identical at 1, 2 and 8 workers.
    #[test]
    fn scheduled_runs_replay_across_thread_counts(
        seed in any::<u64>(),
        profile_index in 0u8..3,
    ) {
        let (health_single, metrics_single) = scheduled_run(seed, profile_index, 1);
        for threads in [2usize, 8] {
            let (health_multi, metrics_multi) = scheduled_run(seed, profile_index, threads);
            prop_assert_eq!(health_single.clone(), health_multi, "threads={}", threads);
            prop_assert_eq!(metrics_single.clone(), metrics_multi, "threads={}", threads);
        }
    }

    /// The deadline contract holds under every profile: no query's
    /// end-to-end latency exceeds its deadline by more than one wheel
    /// tick (a timer never fires early, and at most one tick late).
    #[test]
    fn no_query_outlives_its_deadline_by_more_than_one_tick(
        seed in any::<u64>(),
        profile_index in 0u8..3,
    ) {
        let (health, _) = scheduled_run(seed, profile_index, 4);
        let config = SchedConfig::default();
        let sched = health.sched.expect("scheduled run carries sched stats");
        prop_assert!(
            sched.max_latency_nanos <= config.policy.deadline_nanos + config.wheel_tick_nanos,
            "max latency {} exceeds deadline {} + tick {}",
            sched.max_latency_nanos,
            config.policy.deadline_nanos,
            config.wheel_tick_nanos,
        );
    }
}

/// The storm contract end to end: the scheduler run sheds, trips
/// breakers, and lands *degraded* (exit 3) where the synchronous path
/// exceeds its budget (exit 4).
#[test]
fn storm_degrades_where_the_synchronous_path_exceeds() {
    let (health, metrics) = scheduled_run_on(smoke_eco(), 0xBAD_C0DE, 2, 4);
    let sched = health.sched.expect("scheduled run carries sched stats");
    assert!(sched.shed_total() > 0, "storm shed nothing");
    assert!(sched.breaker_opened > 0, "storm tripped no breakers");
    assert_eq!(health.shed, sched.shed_total());
    assert_eq!(
        health.status,
        RunStatus::Degraded,
        "exit code 3 contract: {} ok / {} errors / {} shed, {}‰ observed vs {}‰ allowed",
        health.ok,
        health.errors,
        health.shed,
        health.error_per_mille,
        health.allowed_per_mille,
    );
    assert!(metrics.contains("\"crawler.shed.breaker_open\""));
    assert!(metrics.contains("\"crawler.breaker.open\""));

    // Same corpus, same seed, synchronous survey: errors instead of shed,
    // and the budget blows.
    let (sync_health, _) = sync_run(smoke_eco(), 0xBAD_C0DE, 4);
    assert_eq!(sync_health.shed, 0);
    assert_eq!(sync_health.status, RunStatus::BudgetExceeded);
    assert!(
        sync_health.error_per_mille > health.error_per_mille,
        "shedding did not reduce the observed error rate ({}‰ sync vs {}‰ sched)",
        sync_health.error_per_mille,
        health.error_per_mille,
    );
}

/// A clean (no-fault) population flows through the scheduler without a
/// single shed query or breaker transition: back-pressure machinery is
/// invisible until there is pressure.
#[test]
fn clean_runs_never_shed() {
    let (health, _) = scheduled_run(0xC1EA4, 0, 4);
    let sched = health.sched.expect("scheduled run carries sched stats");
    assert_eq!(sched.shed_total(), 0);
    assert_eq!(sched.breaker_opened, 0);
    assert_eq!(health.shed, 0);
    assert_eq!(health.status, RunStatus::Clean, "exit code 0 contract");
}

/// The full context path: two scheduled `build_faulted` runs with the
/// same spec produce byte-identical `EXPERIMENTS.md` documents, scheduler
/// paragraph included, at any thread count.
#[test]
fn scheduled_reports_replay_byte_identically() {
    // The storm-smoke scale: the scheduler's "**degraded**" verdict is
    // part of the asserted bytes.
    let config = EcosystemConfig {
        scale: 2000,
        attack_scale: 25,
        ..EcosystemConfig::default()
    };
    let setup = FaultSetup::from_plan(FaultPlan::from_spec("storm").unwrap())
        .with_sched(SchedConfig::default());
    let report = |threads| {
        let setup = FaultSetup { threads, ..setup };
        ReproContext::build_faulted(
            &config,
            &setup,
            std::sync::Arc::new(idnre_telemetry::NoopRecorder),
        )
        .full_report()
    };
    let first = report(4);
    assert_eq!(first, report(4), "same spec, same bytes");
    assert_eq!(first, report(1), "thread count leaked into the report");
    assert!(first.contains("## Run health"));
    assert!(first.contains("Crawl scheduler:"));
    assert!(first.contains("**degraded**"));
}

fn sync_run(eco: &Ecosystem, seed: u64, threads: usize) -> (RunHealth, String) {
    let setup = FaultSetup {
        plan: FaultPlan::new(seed, FaultProfile::storm()),
        policy: RetryPolicy::default(),
        threads,
        sched: None,
    };
    let registry = Registry::new();
    let budget = ErrorBudget::new(setup.plan.profile().budget_per_mille);
    let (zones, zone_stats) =
        robust::ingest_zones_faulted(&eco.zones, &setup.plan, &budget, threads, &registry);
    let whois_stats = robust::whois_survey(eco, Some(&setup.plan), Some(&budget), &registry);
    let ctx = idnre_crawler::FaultContext {
        plan: setup.plan,
        policy: setup.policy,
    };
    let survey = robust::crawl_survey_faulted(eco, &zones, &ctx, setup.threads, &budget, &registry);
    let health = RunHealth::new(&setup, zone_stats, whois_stats, survey, &budget);
    let metrics = registry.snapshot().render_deterministic_json();
    (health, metrics)
}
