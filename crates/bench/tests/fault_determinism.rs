//! Properties of the fault-and-recovery layer: a fixed fault spec replays
//! byte-identically across runs *and* across worker-thread counts, and a
//! corrupted corpus still completes in lenient mode with the damage
//! accounted instead of aborting.

use idnre_bench::robust::{self, FaultSetup, RunHealth};
use idnre_bench::ReproContext;
use idnre_crawler::FaultContext;
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_fault::{ErrorBudget, FaultPlan, FaultProfile, RetryPolicy};
use idnre_telemetry::Registry;
use proptest::prelude::*;
use std::sync::OnceLock;

/// One small ecosystem shared across cases: generation dominates the cost
/// and is independent of the fault layer under test.
fn eco() -> &'static Ecosystem {
    static ECO: OnceLock<Ecosystem> = OnceLock::new();
    ECO.get_or_init(|| {
        Ecosystem::generate(&EcosystemConfig {
            scale: 8000,
            attack_scale: 100,
            brand_count: 50,
            ..EcosystemConfig::default()
        })
    })
}

fn profile(index: u8) -> FaultProfile {
    match index % 4 {
        0 => FaultProfile::none(),
        1 => FaultProfile::smoke(),
        2 => FaultProfile::flaky(),
        _ => FaultProfile::storm(),
    }
}

/// Runs the whole faulted pipeline (lenient zone ingest → WHOIS survey →
/// retried crawl survey) and returns everything observable: the health
/// verdict and the deterministic slice of the telemetry snapshot.
fn faulted_run(seed: u64, profile_index: u8, threads: usize) -> (RunHealth, String) {
    let eco = eco();
    let setup = FaultSetup {
        plan: FaultPlan::new(seed, profile(profile_index)),
        policy: RetryPolicy::default(),
        threads,
        sched: None,
    };
    let registry = Registry::new();
    let budget = ErrorBudget::new(setup.plan.profile().budget_per_mille);
    let (zones, zone_stats) =
        robust::ingest_zones_faulted(&eco.zones, &setup.plan, &budget, threads, &registry);
    let whois_stats = robust::whois_survey(eco, Some(&setup.plan), Some(&budget), &registry);
    let ctx = FaultContext {
        plan: setup.plan,
        policy: setup.policy,
    };
    let survey = robust::crawl_survey_faulted(eco, &zones, &ctx, setup.threads, &budget, &registry);
    let health = RunHealth::new(&setup, zone_stats, whois_stats, survey, &budget);
    let metrics = registry.snapshot().render_deterministic_json();
    (health, metrics)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The same fault seed and policy replay byte-identically, run to run.
    #[test]
    fn schedules_replay_across_runs(seed in any::<u64>(), profile_index in 0u8..4) {
        let (health_a, metrics_a) = faulted_run(seed, profile_index, 4);
        let (health_b, metrics_b) = faulted_run(seed, profile_index, 4);
        prop_assert_eq!(health_a, health_b);
        prop_assert_eq!(metrics_a, metrics_b);
    }

    /// Thread count changes wall time only, never a counter or a verdict.
    #[test]
    fn schedules_replay_across_thread_counts(
        seed in any::<u64>(),
        profile_index in 0u8..4,
        threads in 2usize..9,
    ) {
        let (health_single, metrics_single) = faulted_run(seed, profile_index, 1);
        let (health_multi, metrics_multi) = faulted_run(seed, profile_index, threads);
        prop_assert_eq!(health_single, health_multi);
        prop_assert_eq!(metrics_single, metrics_multi);
    }
}

/// A storm-corrupted corpus completes in lenient mode: records are lost
/// and accounted, but the pipeline produces a full report rather than
/// aborting on the first bad line.
#[test]
fn corrupt_corpus_completes_leniently() {
    let (health, _) = faulted_run(0xBAD_C0DE, 3, 4);
    assert!(health.zones.skipped > 0, "storm corrupted no zone lines");
    assert!(
        health.zones.attempted > health.zones.skipped,
        "lenient ingest salvaged nothing"
    );
    assert!(health.whois.parse_failures > 0);
    assert!(
        health.survey.domains > 0,
        "survey did not run to completion"
    );
    assert!(health.errors > 0);
    assert_eq!(health.status, idnre_fault::RunStatus::BudgetExceeded);
}

/// The full context path: two `build_faulted` runs with the same spec
/// produce byte-identical `EXPERIMENTS.md` documents, Run health section
/// included.
#[test]
fn full_reports_replay_byte_identically() {
    let config = EcosystemConfig {
        scale: 8000,
        attack_scale: 100,
        brand_count: 50,
        ..EcosystemConfig::default()
    };
    let setup = FaultSetup::from_plan(FaultPlan::from_spec("smoke").unwrap());
    let report = |threads| {
        let setup = FaultSetup { threads, ..setup };
        ReproContext::build_faulted(
            &config,
            &setup,
            std::sync::Arc::new(idnre_telemetry::NoopRecorder),
        )
        .full_report()
    };
    let first = report(4);
    assert_eq!(first, report(4), "same spec, same bytes");
    assert_eq!(first, report(1), "thread count leaked into the report");
    assert!(first.contains("## Run health"));
    assert!(first.contains("**degraded**"));
}
