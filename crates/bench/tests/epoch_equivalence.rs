//! The epoch engine's proof of equivalence: every epoch's incrementally
//! re-folded report must be byte-identical to a from-scratch batch
//! rebuild over the same effective corpus — across worker counts and
//! shard sizes, for several consecutive epochs.
//!
//! [`idnre_bench::run_epochs`] already shadow-rebuilds and asserts the
//! per-epoch byte-equality *inside* each run; this test adds the cross-
//! configuration axis: the final report must also be identical across
//! every (threads, shard_size) combination, because the simulated deltas
//! are a pure function of (seed, epoch) and the fold order is pinned by
//! shard order, not scheduling.

use idnre_bench::run_epochs;
use idnre_datagen::EcosystemConfig;
use idnre_telemetry::NoopRecorder;
use std::sync::Arc;

const EPOCHS: u64 = 3;
const CHURN_PER_MILLE: u64 = 25;

fn config(threads: usize) -> EcosystemConfig {
    EcosystemConfig {
        scale: 4000,
        threads,
        ..EcosystemConfig::default()
    }
}

#[test]
fn epoch_reports_are_identical_across_threads_and_shard_sizes() {
    let mut baseline: Option<String> = None;
    for shard_size in [64usize, 1024] {
        for threads in [1usize, 2, 8] {
            let run = run_epochs(
                &config(threads),
                shard_size,
                EPOCHS,
                CHURN_PER_MILLE,
                Arc::new(NoopRecorder),
            );
            assert_eq!(run.epochs.len(), EPOCHS as usize);
            match &baseline {
                None => baseline = Some(run.final_report),
                Some(expected) => assert!(
                    *expected == run.final_report,
                    "final report diverged at shard {shard_size}, {threads} threads \
                     (baseline {} bytes, this run {} bytes)",
                    expected.len(),
                    run.final_report.len()
                ),
            }
        }
    }
}

#[test]
fn small_shards_refold_a_strict_subset_per_epoch() {
    // At shard 64 the cohort-clustered day deltas touch a thin slice of
    // the grid; the whole point of resident partials is refolded < total.
    let run = run_epochs(&config(2), 64, EPOCHS, CHURN_PER_MILLE, Arc::new(NoopRecorder));
    for (i, epoch) in run.epochs.iter().enumerate() {
        assert!(
            epoch.stats.refolded < epoch.stats.total_shards,
            "epoch {}: {}/{} shards refolded — nothing was reused",
            i + 1,
            epoch.stats.refolded,
            epoch.stats.total_shards
        );
        assert!(
            epoch.stats.refolded_records <= epoch.stats.refolded * 64,
            "refolded more records than the dirty shards can hold"
        );
        assert_eq!(
            epoch.stats.clean + epoch.stats.refolded,
            epoch.stats.total_shards
        );
    }
    // The cold fold seeds the cache by folding everything exactly once.
    assert_eq!(run.initial.refolded, run.initial.total_shards);
    assert_eq!(run.initial.dirty, 0);
}

#[test]
fn coarse_shards_still_prove_equivalence() {
    // At shard 1024 a scale-4000 corpus is one shard per population, so
    // every epoch re-folds everything — no reuse, but the equivalence
    // contract (asserted inside run_epochs) must still hold, and the
    // accounting must say so honestly.
    let run = run_epochs(&config(2), 1024, EPOCHS, CHURN_PER_MILLE, Arc::new(NoopRecorder));
    for epoch in &run.epochs {
        assert!(epoch.stats.refolded >= 1);
        assert_eq!(
            epoch.stats.clean + epoch.stats.refolded,
            epoch.stats.total_shards
        );
    }
}
