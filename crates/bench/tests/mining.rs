//! Determinism and oracle-equivalence guarantees of the two-pass
//! skeleton-LSH portfolio miner.
//!
//! Mining rides the fused scan, so it inherits the same contracts the
//! report does — and they are checked the same way: byte-identity of the
//! mined report across a thread × shard grid, associativity of both new
//! merges on real corpus partials (chunk size coprime to every shard
//! size), equality against the all-pairs oracle on forged confusable
//! corpora, and a pinned scale-50 regression for the mined counts.

use idnre_analyze::{fold_is_associative, SliceSource};
use idnre_arena::ColumnsBuilder;
use idnre_bench::{mine, passes, ReproContext};
use idnre_core::{HomographDetector, SemanticDetector};
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_telemetry::{NoopRecorder, SpanCtx};
use idnre_unicode::homoglyphs_of;
use proptest::prelude::*;
use std::sync::Arc;

fn config(threads: usize) -> EcosystemConfig {
    EcosystemConfig {
        scale: 2000,
        attack_scale: 25,
        brand_count: 200,
        threads,
        ..EcosystemConfig::default()
    }
}

/// The headline guarantee: the mined report — portfolio section included —
/// is byte-identical across worker counts and streamed shard sizes. The
/// batch build anchors the grid.
#[test]
fn mined_report_is_byte_identical_across_threads_and_shards() {
    let batch = ReproContext::build_mined(&config(4), Arc::new(NoopRecorder)).full_report();
    assert!(
        batch.contains("## Portfolio mining"),
        "mined build lost its report section"
    );
    for threads in [1usize, 2, 8] {
        for shard_size in [64usize, 1024] {
            let streamed = ReproContext::build_streamed_mined(
                &config(threads),
                shard_size,
                Arc::new(NoopRecorder),
            )
            .full_report();
            assert_eq!(
                batch, streamed,
                "mined report diverged at threads={threads} shard_size={shard_size}"
            );
        }
    }
}

/// Both mining merges are associative over real corpus partials: the
/// bucket-index fold on the scan (pass A, via the plan-wide probe) and
/// the pair miner's chunk fold (pass B, via the item-fold probe), at a
/// chunk size coprime to every shard size the grid uses.
#[test]
fn mining_merges_are_associative_at_chunk_97() {
    let eco = Ecosystem::generate(&config(4));
    let brand_domains: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brand_domains, 0.95);
    let semantic_detector = SemanticDetector::new(&brand_domains);
    let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
    let columns = passes::build_columns(
        &source,
        &eco.blacklist,
        1024,
        4,
        &NoopRecorder,
        SpanCtx::NONE,
    );
    let mining_plan = mine::MiningPlan::new(&columns, 4);
    let plan = passes::ScanPlan::new_mined(
        &detector,
        &semantic_detector,
        &columns,
        &eco.pdns,
        passes::table3_wanted(&eco.whois),
        passes::fig6_candidates(eco.brands.top(30)),
        4,
        &mining_plan,
    );
    plan.check_associative(&source, 97, &NoopRecorder)
        .unwrap_or_else(|pass| panic!("pass {pass} has a non-associative merge"));

    // Pass B over the real non-singleton buckets of the same corpus.
    let plan = passes::ScanPlan::new_mined(
        &detector,
        &semantic_detector,
        &columns,
        &eco.pdns,
        passes::table3_wanted(&eco.whois),
        passes::fig6_candidates(eco.brands.top(30)),
        4,
        &mining_plan,
    );
    let (_, _, _, index) = plan.run(&source, 1024, 4, &NoopRecorder);
    let index = index.expect("mined plan returns the bucket index");
    let buckets: Vec<mine::MineBucket> = index
        .iter()
        .filter(|(_, members)| members.len() > 1)
        .map(|(_, members)| mine::MineBucket {
            members: members.to_vec(),
        })
        .collect();
    assert!(!buckets.is_empty(), "corpus produced no collision buckets");
    let pass = mine::PairMinePass::new(&columns, &mining_plan, &eco);
    fold_is_associative(&pass, &buckets, 97, &NoopRecorder)
        .unwrap_or_else(|name| panic!("{name} has a non-associative merge"));
}

/// Mining is additive: the default report is a byte-prefix of the mined
/// one, so `--mine-portfolios` can never perturb a published number.
#[test]
fn mining_only_appends_to_the_report() {
    let plain = ReproContext::build(&config(4)).full_report();
    let mined = ReproContext::build_mined(&config(4), Arc::new(NoopRecorder)).full_report();
    assert!(
        mined.starts_with(&plain),
        "mining altered existing sections"
    );
    assert!(mined.len() > plain.len(), "mining appended nothing");
}

/// Scale-50 regression: the mined counts at CI's smoke scale are pinned
/// exactly. A drift here means the bucket keys, the SSIM verification or
/// the clustering changed behaviour — rerun `repro --mine-portfolios
/// --scale 50 all` and re-pin deliberately if that was intended.
#[test]
fn scale_50_mined_counts_are_pinned() {
    let ctx = ReproContext::build_mined(
        &EcosystemConfig {
            scale: 50,
            threads: 4,
            ..EcosystemConfig::default()
        },
        Arc::new(NoopRecorder),
    );
    let mining = ctx.mining.as_ref().expect("mined build carries outputs");
    assert!(mining.buckets > 0);
    assert!(mining.non_singleton_buckets > 0);
    let pinned = (
        mining.candidate_pairs,
        mining.verified.len(),
        mining.portfolios.len(),
    );
    assert_eq!(
        pinned,
        (18022, 13345, 771),
        "scale-50 mined counts drifted (candidate_pairs, verified, portfolios)"
    );
    // Every portfolio is a genuine cluster with resolvable joins.
    for portfolio in &mining.portfolios {
        assert!(portfolio.members.len() >= 2);
        for member in &portfolio.members {
            assert!(member.domain.is_ascii());
            assert!(!member.unicode.is_empty());
        }
    }
}

/// Builds mining columns from forged unicode SLDs under `.com`.
fn forged_columns(slds: &[String]) -> idnre_arena::CorpusColumns {
    let mut builder = ColumnsBuilder::new();
    for sld in slds {
        builder.push(sld, "com", false, false, false, false, false);
    }
    builder.finish(|labels| vec![0; labels.len()])
}

/// Applies a substitution recipe to a base label: confusable homoglyphs
/// at the selected positions (mirrors the homograph proptest forge).
fn forge(base: &str, recipe: &[(bool, usize)]) -> String {
    base.chars()
        .enumerate()
        .map(|(i, ch)| {
            let (substitute, pick) = recipe[i % recipe.len()];
            if !substitute {
                return ch;
            }
            let glyphs = homoglyphs_of(ch);
            if glyphs.is_empty() {
                ch
            } else {
                glyphs[pick % glyphs.len()].ch
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The LSH path returns exactly the pairs the all-pairs oracle
    /// returns, on corpora engineered for skeleton collisions: confusable
    /// substitutions of a small label pool, so many rows fold to one
    /// bucket, plus the untouched ASCII bases as negatives.
    #[test]
    fn lsh_pairs_match_exhaustive_oracle(
        bases in proptest::collection::vec("[a-z]{4,10}", 2..6),
        recipes in proptest::collection::vec(
            (0usize..1024, proptest::collection::vec((any::<bool>(), 0usize..1024), 10)),
            1..16,
        ),
    ) {
        let mut slds: Vec<String> = recipes
            .iter()
            .map(|(which, recipe)| forge(&bases[which % bases.len()], recipe))
            .collect();
        slds.extend(bases.iter().cloned());
        slds.sort();
        slds.dedup();
        let columns = forged_columns(&slds);
        let plan = mine::MiningPlan::new(&columns, 2);
        let lsh = mine::verified_pairs_lsh(&columns, &plan, columns.len(), 2);
        let oracle = mine::verified_pairs_exhaustive(&columns, &plan, columns.len(), 2);
        prop_assert_eq!(lsh, oracle);
    }
}
