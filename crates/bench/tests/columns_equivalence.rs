//! Determinism of the struct-of-arrays corpus layout: building
//! [`CorpusColumns`] from the same corpus must yield identical symbol
//! ids, TLD ids, language ids and verdict bits for every worker count and
//! shard size — the interner's insertion order (and therefore every
//! `Symbol(u32)`) is part of the deterministic contract, not an artifact
//! of scheduling.

use idnre_analyze::SliceSource;
use idnre_arena::CorpusColumns;
use idnre_bench::passes;
use idnre_datagen::{Ecosystem, EcosystemConfig};
use idnre_telemetry::{NoopRecorder, SpanCtx};

fn build(eco: &Ecosystem, shard_size: usize, threads: usize) -> CorpusColumns {
    let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
    passes::build_columns(
        &source,
        &eco.blacklist,
        shard_size,
        threads,
        &NoopRecorder,
        SpanCtx::NONE,
    )
}

fn assert_identical(a: &CorpusColumns, b: &CorpusColumns, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: record counts differ");
    assert_eq!(
        a.labels().len(),
        b.labels().len(),
        "{what}: distinct label counts differ"
    );
    // Interner determinism: same corpus → same arena, in the same order,
    // so every symbol id means the same string in both builds.
    assert!(
        a.labels().iter().eq(b.labels().iter()),
        "{what}: label arenas diverged"
    );
    assert!(
        a.tlds().iter().eq(b.tlds().iter()),
        "{what}: TLD arenas diverged"
    );
    for i in 0..a.len() {
        assert_eq!(a.sld_symbol(i), b.sld_symbol(i), "{what}: symbol at {i}");
        assert_eq!(a.tld_id(i), b.tld_id(i), "{what}: tld id at {i}");
        assert_eq!(a.lang_id(i), b.lang_id(i), "{what}: lang id at {i}");
        assert_eq!(
            a.is_malicious(i),
            b.is_malicious(i),
            "{what}: malicious bit at {i}"
        );
        assert_eq!(
            a.is_organic(i),
            b.is_organic(i),
            "{what}: organic bit at {i}"
        );
        assert_eq!(
            a.blacklist_bits(i),
            b.blacklist_bits(i),
            "{what}: verdict bits at {i}"
        );
    }
}

/// Same corpus → same columns, for every (threads, shard_size) pair the
/// report-byte grid exercises. The thread count only parallelizes the
/// per-distinct-label language classification; the shard size only bounds
/// how many records are pushed per callback.
#[test]
fn columns_are_identical_across_threads_and_shards() {
    let eco = Ecosystem::generate(&EcosystemConfig {
        scale: 2000,
        attack_scale: 25,
        brand_count: 200,
        threads: 4,
        ..EcosystemConfig::default()
    });
    let reference = build(&eco, 1024, 4);
    assert!(reference.len() > 500, "corpus too small to be meaningful");
    assert!(reference.labels().len() > 50);
    for threads in [1usize, 2, 8] {
        for shard_size in [64usize, 1024] {
            let other = build(&eco, shard_size, threads);
            assert_identical(
                &reference,
                &other,
                &format!("threads={threads} shard_size={shard_size}"),
            );
        }
    }
}
