//! Content-level tests over the regenerated tables and figures: each report
//! must carry the canonical rows/markers the paper's version carries.

use idnre_bench::{reports, ReproContext};
use idnre_datagen::EcosystemConfig;
use std::sync::OnceLock;

fn ctx() -> &'static ReproContext {
    static CTX: OnceLock<ReproContext> = OnceLock::new();
    CTX.get_or_init(|| {
        // Scale 1:100 keeps the Table III bulk clusters larger than the
        // brand-protective registrations injected with the attack sets.
        ReproContext::build(&EcosystemConfig {
            scale: 100,
            attack_scale: 2,
            ..EcosystemConfig::default()
        })
    })
}

#[test]
fn table1_lists_every_tld_row() {
    let report = reports::table1(ctx());
    for tld in ["com", "net", "org", "xn--fiqs8s", "Total"] {
        assert!(report.contains(tld), "missing row {tld}");
    }
}

#[test]
fn table2_leads_with_chinese() {
    let full = reports::table2(ctx());
    let report = &full[full.find("| Language").expect("table header")..];
    let chinese_pos = report.find("Chinese").expect("Chinese row");
    for other in ["Japanese", "Korean", "German"] {
        if let Some(pos) = report.find(other) {
            assert!(chinese_pos < pos, "{other} listed before Chinese");
        }
    }
}

#[test]
fn table3_topics_match_table_iii() {
    let report = reports::table3(ctx());
    assert!(report.contains("online gambling"), "{report}");
    assert!(report.contains("city names"), "{report}");
}

#[test]
fn table4_has_gmo_on_top() {
    let report = reports::table4(ctx());
    // Search the table body only — the paper-anchor prose above it also
    // names the registrars.
    let body = &report[report.find("| Registrar").expect("table header")..];
    let gmo = body.find("GMO Internet Inc.").expect("GMO row");
    let godaddy = body.find("GoDaddy").unwrap_or(usize::MAX);
    assert!(gmo < godaddy, "GMO must outrank GoDaddy:\n{body}");
}

#[test]
fn figures_report_the_traffic_gaps() {
    let fig2 = reports::fig2(ctx());
    assert!(fig2.contains("idn"));
    assert!(fig2.contains("malicious-idn"));
    let fig3 = reports::fig3(ctx());
    assert!(fig3.contains("non-idn"));
}

#[test]
fn fig4_attributes_top_segments() {
    let report = reports::fig4(ctx());
    assert!(
        report.contains("parking") || report.contains("shared hosting"),
        "{report}"
    );
    assert!(report.contains("Gini"));
}

#[test]
fn table5_has_all_seven_categories() {
    let report = reports::table5(ctx());
    for row in [
        "Not resolved",
        "Error",
        "Empty",
        "Parked",
        "For sale",
        "Redirected",
        "Meaningful content",
    ] {
        assert!(report.contains(row), "missing {row}");
    }
}

#[test]
fn table6_and_7_cover_certificate_findings() {
    let t6 = reports::table6(ctx());
    for row in [
        "Expired Certificate",
        "Invalid Authority",
        "Invalid Common Name",
    ] {
        assert!(t6.contains(row), "missing {row}");
    }
    let t7 = reports::table7(ctx());
    assert!(t7.contains("sedoparking.com"), "{t7}");
}

#[test]
fn table11_contains_all_surveyed_browsers() {
    let report = reports::table11(ctx());
    for browser in [
        "Chrome",
        "Firefox",
        "Opera",
        "Safari",
        "IE",
        "QQ",
        "Baidu",
        "Qihoo 360",
        "Sogou",
        "Liebao",
    ] {
        assert!(report.contains(browser), "missing {browser}");
    }
    assert!(report.contains("Vulnerable"));
    assert!(report.contains("about:blank"));
}

#[test]
fn table12_is_sorted_descending() {
    let report = reports::table12(ctx());
    let scores: Vec<f64> = report
        .lines()
        .filter_map(|line| {
            let cell = line.split('|').nth(1)?.trim();
            cell.parse::<f64>().ok()
        })
        .collect();
    assert!(scores.len() >= 8, "ladder too short: {scores:?}");
    assert!(scores.windows(2).all(|w| w[0] >= w[1]), "{scores:?}");
    assert!(scores[0] >= 0.99, "top of ladder {}", scores[0]);
}

#[test]
fn table13_and_14_lead_with_the_paper_brands() {
    let t13 = reports::table13(ctx());
    assert!(t13.contains("google.com"));
    let t14 = reports::table14(ctx());
    assert!(t14.contains("58.com"));
}

#[test]
fn extensions_carry_their_signals() {
    let squatting = reports::by_name("ext_squatting").unwrap()(ctx());
    assert!(squatting.contains("bitsquat"));
    let bypass = reports::by_name("ext_bypass").unwrap()(ctx());
    assert!(bypass.contains("Punycode-always"));
    assert!(
        bypass.contains("0.00%"),
        "punycode-always must expose nothing"
    );
    let multichar = reports::by_name("ext_multichar").unwrap()(ctx());
    assert!(multichar.contains("2-char"));
}

#[test]
fn by_name_resolves_every_registered_generator() {
    for (name, _) in reports::ALL {
        assert!(reports::by_name(name).is_some(), "{name} not resolvable");
    }
    assert!(reports::by_name("nonexistent").is_none());
}
