//! Golden equivalence of the streamed build: the sharded, bounded-memory
//! pipeline must produce the same `EXPERIMENTS.md` bytes as the fully
//! materialized batch build, for every shard size and worker count — and
//! the algebra that makes that true (associative per-pass merges, one
//! fused corpus traversal, a bounded resident-set gauge) is checked
//! directly rather than trusted.

use idnre_analyze::{SliceSource, SCAN_SPAN};
use idnre_bench::{passes, ReproContext};
use idnre_core::{HomographDetector, SemanticDetector};
use idnre_datagen::{Ecosystem, EcosystemConfig, PEAK_RESIDENT_RECORDS};
use idnre_telemetry::{NoopRecorder, Registry};
use std::sync::Arc;

/// Large enough that every pass sees real work (all TLDs, all languages,
/// both attack populations), small enough to afford ten builds.
fn config(threads: usize) -> EcosystemConfig {
    EcosystemConfig {
        scale: 2000,
        attack_scale: 25,
        brand_count: 200,
        threads,
        ..EcosystemConfig::default()
    }
}

/// The headline guarantee: streamed report bytes equal batch report bytes
/// across a grid of shard sizes and thread counts. Shard boundaries and
/// scheduling must be invisible in the output.
#[test]
fn streamed_report_is_byte_identical_to_batch() {
    let batch = ReproContext::build_recorded(&config(4), Arc::new(NoopRecorder)).full_report();
    for threads in [1usize, 2, 8] {
        for shard_size in [64usize, 1024, 8192] {
            let streamed =
                ReproContext::build_streamed(&config(threads), shard_size, Arc::new(NoopRecorder))
                    .full_report();
            assert_eq!(
                batch, streamed,
                "streamed report diverged at threads={threads} shard_size={shard_size}"
            );
        }
    }
}

/// Every registered pass merges associatively — the property the sharded
/// fold's correctness rests on. Checked over real corpus partials, not
/// synthetic ones, with a chunk size coprime to every shard size above.
#[test]
fn every_pass_merge_is_associative() {
    let eco = Ecosystem::generate(&config(4));
    let brand_domains: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brand_domains, 0.95);
    let semantic_detector = SemanticDetector::new(&brand_domains);
    let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
    let columns = passes::build_columns(
        &source,
        &eco.blacklist,
        1024,
        4,
        &NoopRecorder,
        idnre_telemetry::SpanCtx::NONE,
    );
    let plan = passes::ScanPlan::new(
        &detector,
        &semantic_detector,
        &columns,
        &eco.pdns,
        passes::table3_wanted(&eco.whois),
        passes::fig6_candidates(eco.brands.top(30)),
        4,
    );
    plan.check_associative(&source, 97, &NoopRecorder)
        .unwrap_or_else(|pass| panic!("pass {pass} has a non-associative merge"));
}

/// `full_report` performs exactly one corpus traversal: the fused scan
/// span is entered once and attributes every record, and rendering all
/// reports afterwards adds nothing to it.
#[test]
fn full_report_traverses_the_corpus_once() {
    let registry = Arc::new(Registry::new());
    let ctx = ReproContext::build_recorded(&config(4), registry.clone());
    let _ = ctx.full_report();
    let corpus = ctx.outputs.idn_len + ctx.outputs.non_idn_len;
    let scan = registry
        .snapshot()
        .stages
        .into_iter()
        .find(|s| s.name == SCAN_SPAN)
        .expect("fused scan span missing");
    assert_eq!(scan.calls, 1, "corpus was traversed more than once");
    assert_eq!(scan.records, corpus, "scan did not attribute every record");
}

/// The streamed build's resident-set gauge stays proportional to
/// shard_size × workers, never to the corpus: at most one live shard per
/// worker per pipelined stage (generation, scan, surveys), with a 4×
/// allowance for handoff overlap.
#[test]
fn streamed_peak_residency_is_bounded_by_shard_size() {
    let (threads, shard_size) = (4usize, 64usize);
    let registry = Arc::new(Registry::new());
    let ctx = ReproContext::build_streamed(&config(threads), shard_size, registry.clone());
    let peak = registry.gauge_peak(PEAK_RESIDENT_RECORDS);
    assert!(peak > 0, "gauge never recorded");
    // The gauge is first-class in the snapshot: its own section, with the
    // peak alongside the (possibly drained-to-zero) current value.
    let snapshot = registry.snapshot();
    let gauge = snapshot
        .gauges
        .iter()
        .find(|g| g.name == PEAK_RESIDENT_RECORDS)
        .expect("residency gauge missing from snapshot");
    assert_eq!(gauge.peak, peak);
    assert!(
        peak <= (4 * shard_size * threads) as u64,
        "peak residency {peak} exceeds 4 × {shard_size} × {threads}"
    );
    // The bound is meaningful: the corpus is far larger than the cap.
    assert!(ctx.outputs.idn_len + ctx.outputs.non_idn_len > (4 * shard_size * threads) as u64);
}
