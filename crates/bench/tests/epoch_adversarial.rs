//! Adversarial delta streams against the epoch engine, with exact pins
//! on the `epoch.shards.*` counters and the resident-partials gauge:
//!
//! * a removal of a record that never existed must dirty nothing;
//! * an add and its expiry inside the same epoch must leave a stable
//!   index-space hole and re-fold exactly the tail shard;
//! * a double-add of a duplicate bulk domain must share the interned
//!   label symbol (no interner growth) and still fold equivalently;
//! * a lagged blacklist listing must straddle its epoch boundary — drawn
//!   in one epoch, applied in a later one — without ever diverging from
//!   the from-scratch rebuild.

use idnre_analyze::{
    DeltaKind, DeltaStream, EpochSource, EpochState, EpochStats, Population, RecordDelta,
};
use idnre_arena::CorpusColumns;
use idnre_bench::epochs::grow_columns;
use idnre_bench::passes::{self, ScanOutputs, ScanPlan};
use idnre_core::{
    HomographDetector, HomographFinding, SemanticDetector, SemanticFinding, SkeletonCache,
};
use idnre_datagen::{
    DaySimulator, DomainRegistration, EcosystemConfig, Ecosystem, EpochCorpus, EpochDeltaKind,
    KeyedCorpus,
};
use idnre_telemetry::{
    NoopRecorder, Recorder, Registry, SpanCtx, EPOCH_RESIDENT_PARTIALS, EPOCH_SHARD_COUNTERS,
};

const SHARD: usize = 64;
const THREADS: usize = 2;

fn fixture() -> (Ecosystem, KeyedCorpus) {
    let config = EcosystemConfig {
        scale: 8000,
        threads: THREADS,
        ..EcosystemConfig::default()
    };
    idnre_datagen::generate_streamed(&config, SHARD, &NoopRecorder)
}

type Fold = (Vec<HomographFinding>, Vec<SemanticFinding>, ScanOutputs);

/// Detector state shared across every fold of one test — the epoch
/// contract the driver also relies on: passes are rebuilt per epoch, the
/// detectors and skeleton cache are not.
struct Engine<'e> {
    eco: &'e Ecosystem,
    detector: HomographDetector,
    semantic: SemanticDetector,
}

impl<'e> Engine<'e> {
    fn new(eco: &'e Ecosystem) -> Self {
        let brands: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
        Engine {
            eco,
            detector: HomographDetector::new(&brands, 0.95),
            semantic: SemanticDetector::new(&brands),
        }
    }

    fn plan<'p>(&'p self, columns: &'p CorpusColumns, cache: &'p SkeletonCache) -> ScanPlan<'p> {
        ScanPlan::with_homograph_cache(
            &self.detector,
            &self.semantic,
            columns,
            &self.eco.pdns,
            passes::table3_wanted(&self.eco.whois),
            passes::fig6_candidates(self.eco.brands.top(30)),
            cache,
        )
    }

    fn advance(
        &self,
        state: &mut EpochState,
        source: &EpochSource<'_>,
        columns: &CorpusColumns,
        cache: &SkeletonCache,
        deltas: &DeltaStream,
        recorder: &dyn Recorder,
    ) -> (Fold, EpochStats) {
        let (homographs, semantic, outputs, stats) = self.plan(columns, cache).run_epoch(
            state,
            source,
            THREADS,
            deltas,
            recorder,
            SpanCtx::ROOT,
        );
        ((homographs, semantic, outputs), stats)
    }

    fn rebuild(
        &self,
        source: &EpochSource<'_>,
        columns: &CorpusColumns,
        cache: &SkeletonCache,
    ) -> Fold {
        let (homographs, semantic, outputs, _bucket) = self.plan(columns, cache).run_at(
            source,
            SHARD,
            THREADS,
            &NoopRecorder,
            SpanCtx::NONE,
        );
        (homographs, semantic, outputs)
    }
}

fn build_columns(overlay: &EpochCorpus<'_>, eco: &Ecosystem) -> CorpusColumns {
    let source = EpochSource::new(overlay);
    passes::build_columns(
        &source,
        &eco.blacklist,
        SHARD,
        THREADS,
        &NoopRecorder,
        SpanCtx::NONE,
    )
}

/// Regenerates one live base record from the overlay.
fn clone_record(overlay: &EpochCorpus<'_>, index: u64) -> DomainRegistration {
    let mut out = None;
    overlay.with_idn_shard_indexed(index, 1, &mut |records, _| out = Some(records[0].clone()));
    out.expect("index is live")
}

fn counter(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .counters
        .iter()
        .find(|c| c.name == name)
        .map(|c| c.value)
        .unwrap_or(0)
}

fn gauge(registry: &Registry, name: &str) -> u64 {
    registry
        .snapshot()
        .gauges
        .iter()
        .find(|g| g.name == name)
        .map(|g| g.value)
        .unwrap_or(0)
}

#[test]
fn removing_a_nonexistent_record_dirties_nothing() {
    let (eco, corpus) = fixture();
    let overlay = EpochCorpus::new(&corpus);
    let engine = Engine::new(&eco);
    let columns = build_columns(&overlay, &eco);
    let cache = SkeletonCache::build(&columns, THREADS);
    let mut state = EpochState::new(SHARD);

    let source = EpochSource::new(&overlay);
    let (cold, _) = engine.advance(
        &mut state,
        &source,
        &columns,
        &cache,
        &DeltaStream::new(),
        &NoopRecorder,
    );

    let mut deltas = DeltaStream::new();
    deltas.push(RecordDelta {
        population: Population::Idn,
        index: overlay.idn_index_space() + 7,
        kind: DeltaKind::Remove,
    });
    let registry = Registry::new();
    let (warm, stats) = engine.advance(&mut state, &source, &columns, &cache, &deltas, &registry);

    // Exact pins: the out-of-space delta maps to no shard at all.
    assert_eq!(stats.dirty, 0);
    assert_eq!(stats.refolded, 0);
    assert_eq!(stats.refolded_records, 0);
    assert_eq!(stats.clean, stats.total_shards);
    assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[0]), 0);
    assert_eq!(
        counter(&registry, EPOCH_SHARD_COUNTERS[1]),
        stats.total_shards
    );
    assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[2]), 0);
    assert_eq!(
        gauge(&registry, EPOCH_RESIDENT_PARTIALS),
        stats.resident_partials
    );
    // Every output is re-merged purely from resident partials.
    assert!(warm == cold, "a no-op delta stream changed the outputs");
}

#[test]
fn add_then_expire_in_one_epoch_leaves_a_stable_hole() {
    let (eco, corpus) = fixture();
    let mut overlay = EpochCorpus::new(&corpus);
    let engine = Engine::new(&eco);
    let mut columns = build_columns(&overlay, &eco);
    let mut cache = SkeletonCache::build(&columns, THREADS);
    let mut state = EpochState::new(SHARD);

    {
        let source = EpochSource::new(&overlay);
        engine.advance(
            &mut state,
            &source,
            &columns,
            &cache,
            &DeltaStream::new(),
            &NoopRecorder,
        );
    }

    let template = clone_record(&overlay, 0);
    let index = overlay.push_add(template);
    assert!(overlay.remove(index), "the fresh add must be removable");
    assert_eq!(overlay.idn_index_space(), corpus.idn_len() + 1);
    assert_eq!(overlay.live_idn_len(), corpus.idn_len());

    // The columns still grow for the dead add: indices are immutable
    // history, and the hole keeps its row (passes never see it again).
    grow_columns(&mut columns, &overlay, &eco, &[]);
    cache.extend_to(&columns, THREADS);

    let mut deltas = DeltaStream::new();
    for kind in [DeltaKind::Add, DeltaKind::Remove] {
        deltas.push(RecordDelta {
            population: Population::Idn,
            index,
            kind,
        });
    }
    let registry = Registry::new();
    let source = EpochSource::new(&overlay);
    let (warm, stats) = engine.advance(&mut state, &source, &columns, &cache, &deltas, &registry);

    // Both deltas land in the one tail shard; everything else is resident.
    assert_eq!(stats.dirty, 1);
    assert_eq!(stats.refolded, 1);
    assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[2]), 1);
    // The report sees the grown index space, not the live count.
    assert_eq!(warm.2.idn_len, corpus.idn_len() + 1);

    let rebuild = engine.rebuild(&source, &columns, &cache);
    assert!(warm == rebuild, "hole handling diverged from a rebuild");
}

#[test]
fn duplicate_bulk_adds_share_the_interned_label() {
    let (eco, corpus) = fixture();
    let mut overlay = EpochCorpus::new(&corpus);
    let engine = Engine::new(&eco);
    let mut columns = build_columns(&overlay, &eco);
    let mut cache = SkeletonCache::build(&columns, THREADS);
    let mut state = EpochState::new(SHARD);

    {
        let source = EpochSource::new(&overlay);
        engine.advance(
            &mut state,
            &source,
            &columns,
            &cache,
            &DeltaStream::new(),
            &NoopRecorder,
        );
    }

    let template = clone_record(&overlay, 3);
    let labels_before = columns.labels().len();
    let first = overlay.push_add(template.clone());
    let second = overlay.push_add(template);
    grow_columns(&mut columns, &overlay, &eco, &[]);
    cache.extend_to(&columns, THREADS);

    // Bulk-registered duplicates intern to the same label symbol — the
    // arena grows rows, never a second copy of the string.
    assert_eq!(
        columns.sld_symbol(first as usize),
        columns.sld_symbol(second as usize)
    );
    assert_eq!(columns.sld_symbol(first as usize), columns.sld_symbol(3));
    assert_eq!(columns.labels().len(), labels_before);

    let mut deltas = DeltaStream::new();
    for index in [first, second] {
        deltas.push(RecordDelta {
            population: Population::Idn,
            index,
            kind: DeltaKind::Add,
        });
    }
    let registry = Registry::new();
    let source = EpochSource::new(&overlay);
    let (warm, stats) = engine.advance(&mut state, &source, &columns, &cache, &deltas, &registry);

    assert_eq!(stats.dirty, 1, "both adds share the tail shard");
    assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[0]), 1);
    let rebuild = engine.rebuild(&source, &columns, &cache);
    assert!(warm == rebuild, "duplicate adds diverged from a rebuild");
}

#[test]
fn lagged_blacklist_listings_straddle_epoch_boundaries() {
    let (eco, corpus) = fixture();
    let mut overlay = EpochCorpus::new(&corpus);
    let engine = Engine::new(&eco);
    let mut columns = build_columns(&overlay, &eco);
    let mut cache = SkeletonCache::build(&columns, THREADS);
    let mut state = EpochState::new(SHARD);
    // Heavy churn so every epoch schedules at least one lagged listing.
    let mut simulator = DaySimulator::new(100);

    {
        let source = EpochSource::new(&overlay);
        engine.advance(
            &mut state,
            &source,
            &columns,
            &cache,
            &DeltaStream::new(),
            &NoopRecorder,
        );
    }

    let mut saw_listing = false;
    for epoch in 1..=4u64 {
        let raw = simulator.advance(&mut overlay, epoch);
        if epoch == 1 {
            // Listings drawn this epoch are due at epoch+1 at the
            // earliest: none may fire in their own draw epoch.
            assert!(
                raw.iter().all(|d| d.kind != EpochDeltaKind::Blacklist),
                "a listing fired in its draw epoch"
            );
            assert!(
                simulator.pending_blacklist_len() > 0,
                "heavy churn scheduled no lagged listings"
            );
        }
        saw_listing |= raw.iter().any(|d| d.kind == EpochDeltaKind::Blacklist);

        grow_columns(&mut columns, &overlay, &eco, &raw);
        cache.extend_to(&columns, THREADS);
        let deltas = DeltaStream::from_epoch_deltas(&raw);
        let registry = Registry::new();
        let source = EpochSource::new(&overlay);
        let (warm, stats) =
            engine.advance(&mut state, &source, &columns, &cache, &deltas, &registry);

        // The counters mirror the accounting exactly, every epoch.
        assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[0]), stats.dirty);
        assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[1]), stats.clean);
        assert_eq!(counter(&registry, EPOCH_SHARD_COUNTERS[2]), stats.refolded);
        assert_eq!(
            gauge(&registry, EPOCH_RESIDENT_PARTIALS),
            stats.resident_partials
        );
        let rebuild = engine.rebuild(&source, &columns, &cache);
        assert!(warm == rebuild, "epoch {epoch} diverged from a rebuild");
    }
    assert!(
        saw_listing,
        "no lagged listing ever applied across epochs 2..=4"
    );
}
