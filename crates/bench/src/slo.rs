//! Built-in SLO profiles for `repro --slo PROFILE`.
//!
//! A profile is a named [`SloSpec`] evaluated against the run's metrics
//! snapshot after the pipeline finishes; its verdict becomes the process
//! exit code (0 clean / 3 degraded / 4 exceeded — the `idnre-fault`
//! contract). Two profiles ship:
//!
//! * `smoke` — generous bounds on the stages every run records; CI's
//!   trace-smoke job asserts it exits 0 at scale 50.
//! * `tight` — a deliberately unmeetable 1 ns median bound on
//!   `analyze.scan`; CI asserts it exits 3, proving the gate actually
//!   trips.

use idnre_telemetry::{SloRule, SloSpec};

/// Names of the built-in profiles, for `--help` and flag validation.
pub const SLO_PROFILES: [&str; 2] = ["smoke", "tight"];

/// Looks up a built-in profile by name.
pub fn slo_profile(name: &str) -> Option<SloSpec> {
    match name {
        "smoke" => Some(smoke()),
        "tight" => Some(tight()),
        _ => None,
    }
}

/// Generous bounds a healthy run clears with wide margin: the four
/// stages every build mode records must exist and finish inside ten
/// minutes per call, and no pass shard may median above a minute.
fn smoke() -> SloSpec {
    const MINUTE: u64 = 60_000_000_000;
    SloSpec::new("smoke")
        .rule(
            SloRule::stage("build.ecosystem")
                .p50_max_nanos(5 * MINUTE)
                .max_nanos(10 * MINUTE),
        )
        .rule(
            SloRule::stage("analyze.scan")
                .p50_max_nanos(5 * MINUTE)
                .max_nanos(10 * MINUTE),
        )
        .rule(
            SloRule::stage("crawl.survey")
                .p50_max_nanos(5 * MINUTE)
                .max_nanos(10 * MINUTE),
        )
        .rule(
            SloRule::stage("whois.survey")
                .p50_max_nanos(5 * MINUTE)
                .max_nanos(10 * MINUTE),
        )
        .rule(
            SloRule::stage("analyze.pass.*")
                .p50_max_nanos(MINUTE)
                .p99_max_nanos(5 * MINUTE),
        )
}

/// A bound no real run can meet — 1 ns median on the fused scan — so the
/// degraded path (exit 3) is exercisable on demand. Quantile-only on
/// purpose: a hard `max` bound would escalate to exit 4.
fn tight() -> SloSpec {
    SloSpec::new("tight").rule(SloRule::stage("analyze.scan").p50_max_nanos(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_telemetry::{Recorder, Registry, SloStatus};

    fn fast_run_snapshot() -> idnre_telemetry::MetricsSnapshot {
        let registry = Registry::new();
        for stage in [
            "build.ecosystem",
            "analyze.scan",
            "crawl.survey",
            "whois.survey",
        ] {
            registry.record_nanos(stage, 1_000_000);
        }
        registry.record_nanos("analyze.pass.homograph", 50_000);
        registry.snapshot()
    }

    #[test]
    fn profile_lookup_knows_every_listed_name() {
        for name in SLO_PROFILES {
            let spec = slo_profile(name).unwrap_or_else(|| panic!("missing profile {name}"));
            assert_eq!(spec.profile(), name);
            assert!(!spec.is_empty());
        }
        assert!(slo_profile("nope").is_none());
    }

    #[test]
    fn smoke_is_clean_on_a_fast_run() {
        let report = smoke().evaluate(&fast_run_snapshot());
        assert_eq!(report.status, SloStatus::Clean);
        assert_eq!(report.status.exit_code(), 0);
    }

    #[test]
    fn smoke_degrades_when_an_expected_stage_is_missing() {
        let report = smoke().evaluate(&Registry::new().snapshot());
        assert_eq!(report.status, SloStatus::Degraded);
        assert_eq!(report.status.exit_code(), 3);
    }

    #[test]
    fn tight_always_degrades_but_never_exceeds() {
        let report = tight().evaluate(&fast_run_snapshot());
        assert_eq!(report.status, SloStatus::Degraded);
        assert_eq!(report.status.exit_code(), 3);
        assert!(report.violations.iter().all(|v| !v.hard));
    }

    #[test]
    fn zero_max_bound_exceeds_with_exit_4() {
        let spec = SloSpec::new("zero").rule(SloRule::stage("analyze.scan").max_nanos(0));
        let report = spec.evaluate(&fast_run_snapshot());
        assert_eq!(report.status, SloStatus::Exceeded);
        assert_eq!(report.status.exit_code(), 4);
    }
}
