//! The reproduction harness: one generator per table and figure of the
//! paper's evaluation, all driven by a single [`ReproContext`].
//!
//! Each generator returns a markdown fragment containing the paper's
//! anchor numbers next to the values measured on the synthetic ecosystem,
//! so `repro all` regenerates the complete `EXPERIMENTS.md`.
//!
//! # Examples
//!
//! ```
//! use idnre_bench::ReproContext;
//! use idnre_datagen::EcosystemConfig;
//!
//! let ctx = ReproContext::build(&EcosystemConfig {
//!     scale: 5000,
//!     attack_scale: 50,
//!     ..EcosystemConfig::default()
//! });
//! let table = idnre_bench::reports::table2(&ctx);
//! assert!(table.contains("Chinese"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod epochs;
pub mod mine;
pub mod passes;
pub mod pipeline_bench;
pub mod reports;
pub mod robust;
pub mod slo;

pub use cli::{validate_flags, CliFlags, FLAG_CONFLICTS, FLAG_REQUIRES};
pub use epochs::{run_epochs, EpochBenchStats, EpochRun, DEFAULT_CHURN_PER_MILLE};
pub use mine::{MiningOutputs, Portfolio, PortfolioMember};
pub use pipeline_bench::{
    render_bench_json, render_bench_text, run_pipeline_bench, run_pipeline_bench_sharded,
    run_pipeline_sweep, run_pipeline_sweep_sharded, EpochSummary, LedgerRow, PipelineBench,
    RunLedger,
};
pub use robust::{FaultSetup, IngestStats, RunHealth, SurveyStats};
pub use slo::{slo_profile, SLO_PROFILES};

use idnre_analyze::{RecordSource, SliceSource, StreamSource};
use idnre_core::{HomographDetector, HomographFinding, SemanticDetector, SemanticFinding};
use idnre_crawler::{AuthBehavior, Crawler, Page, PageKind, OUTCOME_COUNTERS};
use idnre_datagen::{ContentCategory, DomainRegistration, Ecosystem, EcosystemConfig, KeyedCorpus};
use idnre_fault::ErrorBudget;
use idnre_telemetry::{NoopRecorder, Recorder, SpanCtx};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Default shard size of the fused corpus traversal (and of `--stream`).
pub const DEFAULT_SHARD_SIZE: usize = 1024;

/// Shared state for all report generators: the generated ecosystem plus the
/// one fused analysis scan over it.
pub struct ReproContext {
    /// The synthetic ecosystem (registration vectors are empty when built
    /// with [`ReproContext::build_streamed`]; the artifacts are complete
    /// either way).
    pub eco: Ecosystem,
    /// Homograph-detector findings over the registered IDN corpus.
    pub homographs: Vec<HomographFinding>,
    /// Type-1 semantic findings over the registered IDN corpus.
    pub semantic: Vec<SemanticFinding>,
    /// Every corpus-derived aggregate the report generators read, folded by
    /// the one fused [`idnre_analyze::ShardedScan`] traversal.
    pub outputs: passes::ScanOutputs,
    /// Telemetry sink every pipeline stage and report generator records
    /// into ([`NoopRecorder`] unless built with
    /// [`ReproContext::build_recorded`]).
    pub recorder: Arc<dyn Recorder>,
    /// Fault accounting of the run, present only when built with
    /// [`ReproContext::build_faulted`]. Its verdict becomes the process
    /// exit code, and [`ReproContext::full_report`] appends its section.
    pub health: Option<RunHealth>,
    /// Zone-wide confusable portfolios, present only when built with
    /// [`ReproContext::build_mined`] / [`ReproContext::build_streamed_mined`]
    /// (`--mine-portfolios`). [`ReproContext::full_report`] appends its
    /// section.
    pub mining: Option<MiningOutputs>,
}

impl std::fmt::Debug for ReproContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReproContext")
            .field("eco", &self.eco)
            .field("homographs", &self.homographs)
            .field("semantic", &self.semantic)
            .field("recorder_enabled", &self.recorder.enabled())
            .finish()
    }
}

impl ReproContext {
    /// Generates the ecosystem and runs both detectors.
    pub fn build(config: &EcosystemConfig) -> Self {
        Self::build_recorded(config, Arc::new(NoopRecorder))
    }

    /// [`ReproContext::build`] with every pipeline stage (generation, the
    /// fused analysis scan, the surveys) reported to `recorder`. The built
    /// context — and therefore every report — is byte-identical regardless
    /// of the recorder.
    pub fn build_recorded(config: &EcosystemConfig, recorder: Arc<dyn Recorder>) -> Self {
        Self::build_batch(config, recorder, false)
    }

    /// [`ReproContext::build_recorded`] with the two-pass skeleton-LSH
    /// portfolio miner enabled (`--mine-portfolios`): pass A folds the
    /// bucket index on the fused scan, pass B verifies and clusters the
    /// non-singleton buckets, and the context carries [`MiningOutputs`].
    /// The default report sections are byte-identical to an unmined build.
    pub fn build_mined(config: &EcosystemConfig, recorder: Arc<dyn Recorder>) -> Self {
        Self::build_batch(config, recorder, true)
    }

    fn build_batch(config: &EcosystemConfig, recorder: Arc<dyn Recorder>, mine: bool) -> Self {
        let mut span = recorder.span_at("build.ecosystem", SpanCtx::ROOT, 0);
        let eco = Ecosystem::generate_traced(config, &*recorder, span.ctx());
        span.add_records((eco.idn_registrations.len() + eco.non_idn_registrations.len()) as u64);
        drop(span);

        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let (homographs, semantic, outputs, mining) = run_scan(
            &eco,
            &source,
            DEFAULT_SHARD_SIZE,
            config.threads,
            mine,
            &*recorder,
            SpanCtx::ROOT,
        );
        let view = CorpusView::Batch(&eco);
        crawl_survey(&view, &eco, &*recorder, SpanCtx::ROOT);
        robust::whois_survey_view(&view, &eco, None, None, &*recorder, SpanCtx::ROOT);
        ReproContext {
            eco,
            homographs,
            semantic,
            outputs,
            recorder,
            health: None,
            mining,
        }
    }

    /// [`ReproContext::build_recorded`] without ever materializing the full
    /// registration corpus: the streaming [`KeyedCorpus`] regenerates each
    /// shard on demand, the fused scan and both surveys walk it
    /// `shard_size` records at a time, and the corpus's residency gauge
    /// lands in the `datagen.peak_resident_records` counter. The report is
    /// byte-identical to the batch build at the same config, for every
    /// `shard_size` and thread count.
    pub fn build_streamed(
        config: &EcosystemConfig,
        shard_size: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::build_stream(config, shard_size, recorder, false)
    }

    /// [`ReproContext::build_streamed`] with the portfolio miner enabled:
    /// the bucket index folds over the regenerated shards (packed symbol
    /// handles only — never a second copy of the corpus), so mining
    /// composes with bounded-memory streaming at any scale.
    pub fn build_streamed_mined(
        config: &EcosystemConfig,
        shard_size: usize,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        Self::build_stream(config, shard_size, recorder, true)
    }

    fn build_stream(
        config: &EcosystemConfig,
        shard_size: usize,
        recorder: Arc<dyn Recorder>,
        mine: bool,
    ) -> Self {
        let mut span = recorder.span_at("build.ecosystem", SpanCtx::ROOT, 0);
        let (eco, corpus) =
            idnre_datagen::generate_streamed_traced(config, shard_size, &*recorder, span.ctx());
        span.add_records(corpus.idn_len() + corpus.non_idn_len());
        drop(span);

        let source = StreamSource::new(&corpus);
        let (homographs, semantic, outputs, mining) = run_scan(
            &eco,
            &source,
            shard_size,
            config.threads,
            mine,
            &*recorder,
            SpanCtx::ROOT,
        );
        let view = CorpusView::Streamed {
            corpus: &corpus,
            shard_size,
        };
        crawl_survey(&view, &eco, &*recorder, SpanCtx::ROOT);
        robust::whois_survey_view(&view, &eco, None, None, &*recorder, SpanCtx::ROOT);
        // Recorded last so the gauge covers the surveys' shard walks too.
        recorder.gauge_max(idnre_datagen::PEAK_RESIDENT_RECORDS, corpus.gauge().peak());
        ReproContext {
            eco,
            homographs,
            semantic,
            outputs,
            recorder,
            health: None,
            mining,
        }
    }

    /// [`ReproContext::build_recorded`] under a fault schedule: generation
    /// and the detector scans run as usual, but the zone corpus is
    /// round-tripped through lenient ingest with seeded corruption, the
    /// WHOIS crawl sees corrupted transfers, and the crawl survey runs the
    /// full retry/backoff schedule against injected faults. The damage is
    /// tallied in an [`ErrorBudget`] and the context carries a
    /// [`RunHealth`] whose status is the run's exit-code verdict.
    pub fn build_faulted(
        config: &EcosystemConfig,
        setup: &FaultSetup,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        let mut span = recorder.span_at("build.ecosystem", SpanCtx::ROOT, 0);
        let eco = Ecosystem::generate_traced(config, &*recorder, span.ctx());
        span.add_records((eco.idn_registrations.len() + eco.non_idn_registrations.len()) as u64);
        drop(span);

        let threads = config.threads;
        let source = SliceSource::new(&eco.idn_registrations, &eco.non_idn_registrations);
        let (homographs, semantic, outputs, _) = run_scan(
            &eco,
            &source,
            DEFAULT_SHARD_SIZE,
            threads,
            false,
            &*recorder,
            SpanCtx::ROOT,
        );

        let budget = ErrorBudget::new(setup.plan.profile().budget_per_mille);
        let (zones, zone_stats) = robust::ingest_zones_faulted_at(
            &eco.zones,
            &setup.plan,
            &budget,
            threads,
            &*recorder,
            SpanCtx::ROOT,
        );
        let whois_stats = robust::whois_survey_view(
            &CorpusView::Batch(&eco),
            &eco,
            Some(&setup.plan),
            Some(&budget),
            &*recorder,
            SpanCtx::ROOT,
        );
        let ctx = idnre_crawler::FaultContext {
            plan: setup.plan,
            policy: setup.policy,
        };
        let (survey, sched) = match &setup.sched {
            Some(sched_config) => {
                let (survey, sched_stats) = robust::crawl_survey_scheduled_at(
                    &eco,
                    &zones,
                    &setup.plan,
                    sched_config,
                    setup.threads,
                    &budget,
                    &*recorder,
                    SpanCtx::ROOT,
                );
                (survey, Some(sched_stats))
            }
            None => (
                robust::crawl_survey_faulted_at(
                    &eco,
                    &zones,
                    &ctx,
                    setup.threads,
                    &budget,
                    &*recorder,
                    SpanCtx::ROOT,
                ),
                None,
            ),
        };
        let health = RunHealth::with_sched(setup, zone_stats, whois_stats, survey, &budget, sched);
        ReproContext {
            eco,
            homographs,
            semantic,
            outputs,
            recorder,
            health: Some(health),
            mining: None,
        }
    }

    /// The full `EXPERIMENTS.md` document.
    ///
    /// The report generators are independent pure functions of the built
    /// context, so they run on the work-queue executor and are stitched
    /// together in [`reports::ALL`] order — the document is byte-identical
    /// to a serial run for every thread count. Stage and counter names
    /// the generators record are pre-registered up front so the metrics
    /// snapshot order is scheduling-independent.
    pub fn full_report(&self) -> String {
        let scale = self.eco.config.scale;
        let attack_scale = self.eco.config.attack_scale;
        let mut out = String::new();
        out.push_str(&format!(
            "# EXPERIMENTS — paper vs. measured\n\n\
             Regenerated by `cargo run -p idnre-bench --release --bin repro -- all`.\n\n\
             Ecosystem scale 1:{scale} (attack populations 1:{attack_scale}), seed \
             {:#x}. \"Paper\" numbers are the published values; \"measured\" numbers \
             come from the synthetic ecosystem, so absolute counts scale down by \
             the denominator while *shapes* (rates, rankings, crossovers) are the \
             reproduction target.\n\n\
             Paper-scale invocation: `repro --stream --shard-size 1024 --scale 2750 \
             all` (the denominator the paper's 154M-SLD census maps to) runs in \
             bounded memory — peak resident records stay ≤ 4 × shard_size × \
             threads at any scale, including the full 1:1 corpus. \
             `repro --bench --stream` records the measured peak as \
             `peak_resident_records` in `BENCH_pipeline.json`.\n\n",
            self.eco.config.seed
        ));
        let enabled = self.recorder.enabled();
        if enabled {
            for (name, _) in reports::ALL {
                self.recorder.add_records(&format!("report.{name}"), 0);
            }
        }
        let fragments = idnre_par::par_map(
            reports::ALL,
            self.eco.config.threads,
            |(name, generator)| {
                let mut span = if enabled {
                    self.recorder
                        .span_at(&format!("report.{name}"), SpanCtx::ROOT, 0)
                } else {
                    idnre_telemetry::Span::disabled()
                };
                let fragment = generator(self);
                span.add_records(fragment.len() as u64);
                fragment
            },
        );
        for fragment in fragments {
            out.push_str(&fragment);
            out.push('\n');
        }
        if let Some(mining) = &self.mining {
            out.push_str(&mine::render_mining(mining));
            out.push('\n');
        }
        if let Some(health) = &self.health {
            out.push_str(&health.render());
            out.push('\n');
        }
        out
    }
}

/// How the builders walk the registration corpus: borrow the batch vectors
/// whole, or regenerate bounded shards from a streaming [`KeyedCorpus`].
/// Both walk the populations in the same order (IDN first), so everything
/// fed from a view is byte-identical across the two modes.
pub(crate) enum CorpusView<'a> {
    /// The fully materialized batch corpus.
    Batch(&'a Ecosystem),
    /// A shard-regenerating corpus plan.
    Streamed {
        /// The streaming corpus.
        corpus: &'a KeyedCorpus,
        /// Records materialized per shard.
        shard_size: usize,
    },
}

impl CorpusView<'_> {
    /// Calls `f` with consecutive slices covering the IDN population, in
    /// corpus order (one slice for the batch view).
    pub(crate) fn for_each_idn_shard(&self, f: &mut dyn FnMut(&[DomainRegistration])) {
        match self {
            CorpusView::Batch(eco) => f(&eco.idn_registrations),
            CorpusView::Streamed { corpus, shard_size } => {
                let shard_size = (*shard_size).max(1);
                let total = corpus.idn_len();
                let mut start = 0u64;
                while start < total {
                    let len = (total - start).min(shard_size as u64) as usize;
                    corpus.with_idn_shard(start, len, f);
                    start += len as u64;
                }
            }
        }
    }

    /// [`CorpusView::for_each_idn_shard`] for the non-IDN population.
    pub(crate) fn for_each_non_idn_shard(&self, f: &mut dyn FnMut(&[DomainRegistration])) {
        match self {
            CorpusView::Batch(eco) => f(&eco.non_idn_registrations),
            CorpusView::Streamed { corpus, shard_size } => {
                let shard_size = (*shard_size).max(1);
                let total = corpus.non_idn_len();
                let mut start = 0u64;
                while start < total {
                    let len = (total - start).min(shard_size as u64) as usize;
                    corpus.with_non_idn_shard(start, len, f);
                    start += len as u64;
                }
            }
        }
    }

    /// Calls `f` once per record, IDN population first — the order the
    /// batch pipeline's chained iteration used.
    pub(crate) fn for_each(&self, f: &mut dyn FnMut(&DomainRegistration)) {
        self.for_each_idn_shard(&mut |records| {
            for reg in records {
                f(reg);
            }
        });
        self.for_each_non_idn_shard(&mut |records| {
            for reg in records {
                f(reg);
            }
        });
    }
}

/// Builds both detectors and the full report-aggregator roster, then runs
/// the one fused traversal every corpus-derived number comes from. With
/// `mine` set, the skeleton-LSH bucket index folds on the same traversal
/// (pass A) and the pair miner (pass B) runs over its non-singleton
/// buckets afterwards, under the same parent span.
fn run_scan(
    eco: &Ecosystem,
    source: &dyn RecordSource,
    shard_size: usize,
    threads: usize,
    mine: bool,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> (
    Vec<HomographFinding>,
    Vec<SemanticFinding>,
    passes::ScanOutputs,
    Option<MiningOutputs>,
) {
    let brand_domains: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brand_domains, 0.95);
    let semantic_detector = SemanticDetector::new(&brand_domains);
    let columns = passes::build_columns(
        source,
        &eco.blacklist,
        shard_size,
        threads,
        recorder,
        parent,
    );
    let mining_plan = mine.then(|| mine::MiningPlan::new(&columns, threads));
    let plan = match &mining_plan {
        Some(mining_plan) => passes::ScanPlan::new_mined(
            &detector,
            &semantic_detector,
            &columns,
            &eco.pdns,
            passes::table3_wanted(&eco.whois),
            passes::fig6_candidates(eco.brands.top(30)),
            threads,
            mining_plan,
        ),
        None => passes::ScanPlan::new(
            &detector,
            &semantic_detector,
            &columns,
            &eco.pdns,
            passes::table3_wanted(&eco.whois),
            passes::fig6_candidates(eco.brands.top(30)),
            threads,
        ),
    };
    let (homographs, semantic, outputs, index) =
        plan.run_at(source, shard_size, threads, recorder, parent);
    let mining = match (index, &mining_plan) {
        (Some(index), Some(mining_plan)) => Some(mine::mine_portfolios(
            &index,
            &columns,
            mining_plan,
            eco,
            threads,
            recorder,
            parent,
        )),
        _ => None,
    };
    (homographs, semantic, outputs, mining)
}

/// Replays the paper's Section IV-D measurement front-end over the whole
/// registered population: builds a [`Crawler`] from the generated TLD zones
/// and each registration's content category, then resolves and crawls every
/// domain, reporting per-outcome DNS counters, usage-category counters and
/// resolve/crawl latency histograms to `recorder`. Purely observational —
/// nothing feeds back into report data.
fn crawl_survey(view: &CorpusView<'_>, eco: &Ecosystem, recorder: &dyn Recorder, parent: SpanCtx) {
    let mut span = recorder.span_at("crawl.survey", parent, 0);
    let mut crawler = Crawler::new();
    for zone in &eco.zones {
        crawler.add_zone(zone);
    }
    view.for_each(&mut |reg| {
        let (behavior, page) = host_model(reg);
        if let Some(behavior) = behavior {
            crawler.set_host(&reg.domain, behavior, page);
        }
    });
    // Pin the full outcome-counter set so a snapshot always carries all
    // five, even for outcomes this population never produced.
    recorder.preregister(&OUTCOME_COUNTERS);
    let mut crawled = 0u64;
    view.for_each(&mut |reg| {
        let _ = crawler.crawl_recorded(&reg.domain, recorder);
        crawled += 1;
    });
    span.add_records(crawled);
}

/// Derives a deterministic authoritative-server model from a registration's
/// ground-truth content category. The unresolved population spreads over
/// REFUSED, SERVFAIL, timeouts and explicit lame delegations.
fn host_model(reg: &DomainRegistration) -> (Option<AuthBehavior>, Option<Page>) {
    let hash = fnv1a(reg.domain.as_bytes());
    let ip = Ipv4Addr::new(203, 0, 113, (hash % 254 + 1) as u8);
    match reg.content {
        ContentCategory::NotResolved => {
            // The paper: "all resolution errors come from name servers" —
            // spread the failure modes over the unresolved population.
            let behavior = match hash % 4 {
                0 => Some(AuthBehavior::Refuse),
                1 => Some(AuthBehavior::ServFail),
                2 => Some(AuthBehavior::Timeout),
                _ => Some(AuthBehavior::Lame),
            };
            (behavior, None)
        }
        ContentCategory::Error => (Some(AuthBehavior::Answer(ip)), None),
        ContentCategory::Empty => (
            Some(AuthBehavior::Answer(ip)),
            Some(Page::new(200, "", PageKind::Empty)),
        ),
        ContentCategory::Parked => (
            Some(AuthBehavior::Answer(ip)),
            Some(Page::new(200, "Domain parked", PageKind::Parking)),
        ),
        ContentCategory::ForSale => (
            Some(AuthBehavior::Answer(ip)),
            Some(Page::new(200, "Domain for sale", PageKind::ForSale)),
        ),
        ContentCategory::Redirected => (
            Some(AuthBehavior::Answer(ip)),
            Some(Page::new(
                200,
                "Redirecting",
                PageKind::Redirect("https://destination.example/".to_string()),
            )),
        ),
        _ => (
            Some(AuthBehavior::Answer(ip)),
            Some(Page::new(200, &reg.unicode, PageKind::Content)),
        ),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ReproContext {
        ReproContext::build(&EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            ..EcosystemConfig::default()
        })
    }

    #[test]
    fn context_detects_injected_attacks() {
        let ctx = small();
        // The detector must recover a healthy share of the injected
        // homograph population (Identical/High-fidelity spoofs clear 0.95;
        // Medium ones legitimately fall below).
        let injected = ctx.eco.homograph_attacks.len();
        assert!(injected > 20, "too few injected: {injected}");
        let recovered = ctx.homographs.len();
        assert!(
            recovered * 2 >= injected,
            "recovered {recovered} of {injected}"
        );
        // Semantic detector recovers essentially all Type-1 injections.
        let injected_sem = ctx.eco.semantic_attacks.len();
        let recovered_sem = ctx.semantic.len();
        assert!(
            recovered_sem * 10 >= injected_sem * 9,
            "recovered {recovered_sem} of {injected_sem}"
        );
    }

    #[test]
    fn every_report_generates() {
        let ctx = small();
        for (name, generator) in reports::ALL {
            let text = generator(&ctx);
            assert!(text.contains("Paper"), "{name} lacks a paper anchor");
            assert!(text.len() > 100, "{name} suspiciously short");
        }
    }

    #[test]
    fn telemetry_never_perturbs_the_report() {
        let config = EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            ..EcosystemConfig::default()
        };
        let plain = ReproContext::build(&config).full_report();

        let registry = Arc::new(idnre_telemetry::Registry::new());
        let recorded = ReproContext::build_recorded(&config, registry.clone()).full_report();
        assert_eq!(plain, recorded, "telemetry must not perturb report bytes");

        let snapshot = registry.snapshot();
        let stage_names: Vec<&str> = snapshot.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(
            stage_names.len() >= 8,
            "expected >= 8 stages, got {stage_names:?}"
        );
        for stage in &snapshot.stages {
            assert!(stage.calls > 0, "{} never called", stage.name);
        }
        for name in OUTCOME_COUNTERS {
            assert!(
                snapshot.counters.iter().any(|c| c.name == name),
                "missing pre-registered counter {name}"
            );
        }
        let json = snapshot.render_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{}\"", idnre_telemetry::SCHEMA)));
    }

    #[test]
    fn full_report_assembles() {
        let ctx = small();
        let report = ctx.full_report();
        for heading in ["Table I ", "Table XIV", "Figure 7", "Figure 8"] {
            assert!(report.contains(heading), "missing {heading}");
        }
    }
}
