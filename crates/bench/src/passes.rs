//! Report-side [`AnalysisPass`] implementations and the [`ScanPlan`] that
//! fuses them (plus the detector passes from `idnre-core`) into the one
//! corpus traversal behind [`crate::ReproContext`].
//!
//! Every aggregate a report table used to rescan the corpus for is folded
//! here instead: per-TLD blacklist tallies (Table I), the language mix
//! (Table II), content-category samples (Table V), the three passive-DNS
//! activity populations (Figures 2–4), Type-2 semantic findings (Table X),
//! the top-registrant unicode portfolio (Table III) and the
//! registered-lookalike set (Figure 6). The partials are [`Merge`]-able and
//! merged in shard order, so the outputs are byte-identical across thread
//! counts and shard sizes.

use crate::mine::{BucketIndexPass, MiningPlan};
use idnre_analyze::{
    AnalysisPass, DeltaStream, EpochState, EpochStats, KeyedTally, Merge, Observed, PassHandle,
    Population, RecordSource, ScanResult, ShardedScan,
};
use idnre_arena::{BucketIndex, ColumnsBuilder, CorpusColumns, Symbol};
use idnre_blacklist::{BlacklistSet, Source};
use idnre_core::{
    AvailabilityEnumerator, ColumnedHomographPass, HomographDetector, HomographFinding,
    Semantic1Pass, Semantic2Pass, SemanticDetector, SemanticFinding, SkeletonCache,
};
use idnre_datagen::{Brand, ContentCategory};
use idnre_langid::{Classifier, Language};
use idnre_pdns::{ActivityAnalytics, PdnsStore};
use idnre_telemetry::{Recorder, SpanCtx};
use idnre_whois::analytics::RegistrationAnalytics;
use idnre_whois::WhoisRecord;
use std::collections::{HashMap, HashSet};

/// The passive-DNS lookup counters the activity pass touches from worker
/// threads (pre-registered before the fan-out).
pub const PDNS_LOOKUP_COUNTERS: [&str; 2] = ["pdns.lookup.hit", "pdns.lookup.miss"];

/// Table V samples this many records from the head of each population.
pub const CONTENT_SAMPLE: u64 = 500;

/// Everything the report generators read that used to require rescanning
/// the corpus, produced by one fused traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutputs {
    /// Per-TLD IDN and blacklist tallies (Table I).
    pub tld: TldBreakdown,
    /// Language mix of all/malicious/organic IDNs (Table II).
    pub language: LanguageMix,
    /// Content-category sample counts per population (Table V).
    pub content: ContentCounts,
    /// Passive-DNS activity split into the three report populations
    /// (Figures 2–4).
    pub activity: PopulationActivity,
    /// Type-2 semantic findings in corpus order (Table X).
    pub semantic2: Vec<SemanticFinding>,
    /// `punycode → unicode` for the top-registrant portfolios (Table III).
    pub table3_unicode: HashMap<String, String>,
    /// Enumerated lookalike candidates that are actually registered
    /// (Figure 6).
    pub fig6_registered: HashSet<String>,
    /// Records scanned in the IDN population.
    pub idn_len: u64,
    /// Records scanned in the non-IDN population.
    pub non_idn_len: u64,
}

/// Table I's per-TLD aggregates: IDN volume and per-source blacklist hits.
#[derive(Debug, Clone, PartialEq)]
pub struct TldBreakdown {
    /// IDN registrations per TLD, in corpus first-occurrence order.
    pub idns: KeyedTally<String>,
    /// VirusTotal-blacklisted IDNs per TLD.
    pub vt: KeyedTally<String>,
    /// Qihoo-360-blacklisted IDNs per TLD.
    pub q: KeyedTally<String>,
    /// Baidu-blacklisted IDNs per TLD.
    pub b: KeyedTally<String>,
    /// IDNs blacklisted by any source, per TLD.
    pub union: KeyedTally<String>,
}

impl Merge for TldBreakdown {
    fn merge(self, later: Self) -> Self {
        TldBreakdown {
            idns: self.idns.merge(later.idns),
            vt: self.vt.merge(later.vt),
            q: self.q.merge(later.q),
            b: self.b.merge(later.b),
            union: self.union.merge(later.union),
        }
    }
}

/// [`TldBreakdown`] while the scan is in flight: tallies keyed by the
/// columnar TLD id (a `u16` array index) instead of an owned `String` per
/// increment. [`TldPass::finish`] resolves the ids back to names, so the
/// output — including first-occurrence order, which TLD interning assigns
/// in corpus order — is unchanged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TldPartial {
    idns: KeyedTally<u16>,
    vt: KeyedTally<u16>,
    q: KeyedTally<u16>,
    b: KeyedTally<u16>,
    union: KeyedTally<u16>,
}

impl Merge for TldPartial {
    fn merge(self, later: Self) -> Self {
        TldPartial {
            idns: self.idns.merge(later.idns),
            vt: self.vt.merge(later.vt),
            q: self.q.merge(later.q),
            b: self.b.merge(later.b),
            union: self.union.merge(later.union),
        }
    }
}

/// Folds the Table I aggregates: one precomputed blacklist-bit row per IDN
/// registration, tallied by columnar TLD id.
#[derive(Debug, Clone, Copy)]
pub struct TldPass<'a> {
    columns: &'a CorpusColumns,
}

impl<'a> TldPass<'a> {
    /// Tallies the blacklist-bit columns of `columns`.
    pub fn new(columns: &'a CorpusColumns) -> Self {
        TldPass { columns }
    }

    fn resolve(&self, tally: KeyedTally<u16>) -> KeyedTally<String> {
        let mut out = KeyedTally::new();
        for (&id, n) in tally.iter() {
            out.add(self.columns.tld_name(id).to_string(), n);
        }
        out
    }
}

impl AnalysisPass for TldPass<'_> {
    type Partial = TldPartial;
    type Output = TldBreakdown;

    fn name(&self) -> &'static str {
        "analyze.pass.tld"
    }

    fn empty(&self) -> Self::Partial {
        TldPartial::default()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        let i = rec.index as usize;
        let tld = self.columns.tld_id(i);
        partial.idns.incr(tld);
        let (vt, q, b) = self.columns.blacklist_bits(i);
        if vt {
            partial.vt.incr(tld);
        }
        if q {
            partial.q.incr(tld);
        }
        if b {
            partial.b.incr(tld);
        }
        if vt || q || b {
            partial.union.incr(tld);
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        TldBreakdown {
            idns: self.resolve(partial.idns),
            vt: self.resolve(partial.vt),
            q: self.resolve(partial.q),
            b: self.resolve(partial.b),
            union: self.resolve(partial.union),
        }
    }
}

/// Table II's aggregates: classifier language per IDN label, split into
/// all / blacklisted / organic (non-injected) populations.
#[derive(Debug, Clone, PartialEq)]
pub struct LanguageMix {
    /// Language per IDN, all registrations, first-occurrence order.
    pub all: KeyedTally<Language>,
    /// Language per blacklisted IDN.
    pub bad: KeyedTally<Language>,
    /// Organic (non-injected) registrations classified.
    pub organic_total: u64,
    /// Organic registrations classified east-Asian.
    pub organic_ea: u64,
    /// Organic registrations classified Chinese.
    pub organic_zh: u64,
}

impl LanguageMix {
    fn empty() -> Self {
        LanguageMix {
            all: KeyedTally::new(),
            bad: KeyedTally::new(),
            organic_total: 0,
            organic_ea: 0,
            organic_zh: 0,
        }
    }
}

impl Merge for LanguageMix {
    fn merge(self, later: Self) -> Self {
        LanguageMix {
            all: self.all.merge(later.all),
            bad: self.bad.merge(later.bad),
            organic_total: self.organic_total + later.organic_total,
            organic_ea: self.organic_ea + later.organic_ea,
            organic_zh: self.organic_zh + later.organic_zh,
        }
    }
}

/// Tallies the Table II populations from the precomputed language-id
/// column. Classification ran once per **distinct** SLD label when the
/// columns were built ([`build_columns`]); the per-record observe is a
/// column read plus three bit probes, touching no registration fields.
#[derive(Debug, Clone, Copy)]
pub struct LanguagePass<'a> {
    columns: &'a CorpusColumns,
}

impl<'a> LanguagePass<'a> {
    /// Reads the language-id and population-bit columns of `columns`.
    pub fn new(columns: &'a CorpusColumns) -> Self {
        LanguagePass { columns }
    }
}

impl AnalysisPass for LanguagePass<'_> {
    type Partial = LanguageMix;
    type Output = LanguageMix;

    fn name(&self) -> &'static str {
        "analyze.pass.language"
    }

    fn empty(&self) -> Self::Partial {
        LanguageMix::empty()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        let i = rec.index as usize;
        let lang = Language::from_id(self.columns.lang_id(i));
        partial.all.incr(lang);
        if self.columns.is_malicious(i) {
            partial.bad.incr(lang);
        }
        // The injected attack populations carry no ground-truth language;
        // the organic mix excludes them (Table II's second paragraph).
        if self.columns.is_organic(i) {
            partial.organic_total += 1;
            if lang.is_east_asian() {
                partial.organic_ea += 1;
            }
            if lang == Language::Chinese {
                partial.organic_zh += 1;
            }
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// Table V's sampled content-category counts, one bucket per
/// [`ContentCategory::ALL`] entry and population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentCounts {
    /// IDN sample counts in [`ContentCategory::ALL`] order.
    pub idn: [u64; ContentCategory::ALL.len()],
    /// Non-IDN sample counts in [`ContentCategory::ALL`] order.
    pub non_idn: [u64; ContentCategory::ALL.len()],
}

impl Merge for ContentCounts {
    fn merge(mut self, later: Self) -> Self {
        for (a, b) in self.idn.iter_mut().zip(later.idn) {
            *a += b;
        }
        for (a, b) in self.non_idn.iter_mut().zip(later.non_idn) {
            *a += b;
        }
        self
    }
}

/// Counts content categories over the first [`CONTENT_SAMPLE`] records of
/// each population (the paper samples 500 domains per population).
#[derive(Debug, Clone, Copy)]
pub struct ContentPass;

impl AnalysisPass for ContentPass {
    type Partial = ContentCounts;
    type Output = ContentCounts;

    fn name(&self) -> &'static str {
        "analyze.pass.content"
    }

    fn empty(&self) -> Self::Partial {
        ContentCounts {
            idn: [0; ContentCategory::ALL.len()],
            non_idn: [0; ContentCategory::ALL.len()],
        }
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.index >= CONTENT_SAMPLE {
            return;
        }
        let Some(bucket) = ContentCategory::ALL
            .iter()
            .position(|&c| c == rec.reg.content)
        else {
            return;
        };
        match rec.population {
            Population::Idn => partial.idn[bucket] += 1,
            Population::NonIdn => partial.non_idn[bucket] += 1,
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// The three passive-DNS activity populations Figures 2–4 compare.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PopulationActivity {
    /// Benign (non-blacklisted) IDN registrations.
    pub benign: ActivityAnalytics,
    /// Blacklisted IDN registrations.
    pub malicious: ActivityAnalytics,
    /// The non-IDN comparison population.
    pub non_idn: ActivityAnalytics,
    /// pDNS lookup hits tallied since the last per-shard flush — counter
    /// traffic is batched into one `Recorder::add` per shard so the hot
    /// loop never takes the registry lock per record.
    pub unflushed_hits: u64,
    /// pDNS lookup misses since the last per-shard flush.
    pub unflushed_misses: u64,
}

impl Merge for PopulationActivity {
    fn merge(mut self, later: Self) -> Self {
        self.benign.merge(later.benign);
        self.malicious.merge(later.malicious);
        self.non_idn.merge(later.non_idn);
        self.unflushed_hits += later.unflushed_hits;
        self.unflushed_misses += later.unflushed_misses;
        self
    }
}

/// One passive-DNS lookup per record, folded into the population split the
/// activity figures read (the batch pipeline repeated this traversal once
/// per figure).
#[derive(Debug, Clone, Copy)]
pub struct ActivityPass<'a> {
    pdns: &'a PdnsStore,
}

impl<'a> ActivityPass<'a> {
    /// Looks up against `pdns`.
    pub fn new(pdns: &'a PdnsStore) -> Self {
        ActivityPass { pdns }
    }
}

impl AnalysisPass for ActivityPass<'_> {
    type Partial = PopulationActivity;
    type Output = PopulationActivity;

    fn name(&self) -> &'static str {
        "analyze.pass.activity"
    }

    fn counters(&self) -> &'static [&'static str] {
        &PDNS_LOOKUP_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        PopulationActivity::default()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        match self.pdns.lookup(&rec.reg.domain) {
            Some(aggregate) => {
                partial.unflushed_hits += 1;
                match rec.population {
                    Population::NonIdn => partial.non_idn.add(aggregate),
                    Population::Idn if rec.reg.malicious.is_some() => {
                        partial.malicious.add(aggregate);
                    }
                    Population::Idn => partial.benign.add(aggregate),
                }
            }
            None => partial.unflushed_misses += 1,
        }
    }

    fn shard_end(&self, partial: &mut Self::Partial, recorder: &dyn Recorder) {
        recorder.add("pdns.lookup.hit", partial.unflushed_hits);
        recorder.add("pdns.lookup.miss", partial.unflushed_misses);
        partial.unflushed_hits = 0;
        partial.unflushed_misses = 0;
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial
    }
}

/// Collects `punycode → unicode` for the domains Table III needs: the
/// portfolios of the top WHOIS registrants (the batch pipeline built this
/// map over the whole corpus).
#[derive(Debug, Clone)]
pub struct Table3UnicodePass {
    wanted: HashSet<String>,
}

impl Table3UnicodePass {
    /// Collects only domains in `wanted` (see [`table3_wanted`]).
    pub fn new(wanted: HashSet<String>) -> Self {
        Table3UnicodePass { wanted }
    }
}

impl AnalysisPass for Table3UnicodePass {
    type Partial = Vec<(String, String)>;
    type Output = HashMap<String, String>;

    fn name(&self) -> &'static str {
        "analyze.pass.table3"
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population == Population::Idn && self.wanted.contains(rec.reg.domain.as_str()) {
            partial.push((rec.reg.domain.clone(), rec.reg.unicode.clone()));
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial.into_iter().collect()
    }
}

/// Marks which enumerated homographic candidates are actually registered
/// (Figure 6's registered/unregistered split over the whole IDN corpus).
#[derive(Debug, Clone)]
pub struct Fig6Pass {
    candidates: HashSet<String>,
}

impl Fig6Pass {
    /// Checks membership against `candidates` (see [`fig6_candidates`]).
    pub fn new(candidates: HashSet<String>) -> Self {
        Fig6Pass { candidates }
    }
}

impl AnalysisPass for Fig6Pass {
    type Partial = Vec<String>;
    type Output = HashSet<String>;

    fn name(&self) -> &'static str {
        "analyze.pass.fig6"
    }

    fn empty(&self) -> Self::Partial {
        Vec::new()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population == Population::Idn && self.candidates.contains(rec.reg.domain.as_str()) {
            partial.push(rec.reg.domain.clone());
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial.into_iter().collect()
    }
}

/// The domains whose unicode form Table III renders: every domain held by
/// one of the top-5 registrant emails in the WHOIS corpus.
pub fn table3_wanted(whois: &[WhoisRecord]) -> HashSet<String> {
    let mut analytics = RegistrationAnalytics::new();
    analytics.extend(whois.iter());
    let mut wanted = HashSet::new();
    for (email, _) in analytics.top_registrants(5) {
        wanted.extend(analytics.domains_of(&email).iter().cloned());
    }
    wanted
}

/// Figure 6's candidate pool: every one-character homographic lookalike of
/// the top-30 brand domains.
pub fn fig6_candidates(brands: &[Brand]) -> HashSet<String> {
    let enumerator = AvailabilityEnumerator::new();
    brands
        .iter()
        .flat_map(|b| enumerator.homographic(&b.domain()))
        .map(|c| c.ace)
        .collect()
}

/// Builds the struct-of-arrays corpus columns the report passes read:
/// interned SLD labels, TLD ids, language ids, and the per-record
/// malicious/organic/blacklist bits.
///
/// The IDN population is walked sequentially in corpus order (shard by
/// shard, so a streaming source materializes at most `shard_size` records
/// at a time), which makes every symbol and column deterministic by
/// construction — independent of thread count. Language classification
/// runs once per **distinct** label, parallelized over the interner, and
/// is broadcast to the per-record column; since the classifier is a pure
/// function of the label string, the broadcast ids equal a per-record
/// classification exactly.
pub fn build_columns(
    source: &dyn RecordSource,
    blacklist: &BlacklistSet,
    shard_size: usize,
    threads: usize,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> CorpusColumns {
    let mut span = recorder.span_at("analyze.columns", parent, 0);
    let total = source.population_len(Population::Idn);
    let shard_size = shard_size.max(1);
    let mut builder = ColumnsBuilder::new();
    let mut start = 0u64;
    while start < total {
        let len = (total - start).min(shard_size as u64) as usize;
        source.with_shard(Population::Idn, start, len, &mut |records| {
            // The per-record string work (label split, blacklist verdict)
            // is precomputed on the worker pool; only the intern loop below
            // stays sequential, so symbol assignment remains corpus-ordered
            // and the columns stay byte-identical across thread counts.
            let rows = idnre_par::par_map(records, threads, |reg| {
                let sld_len = reg.unicode.find('.').unwrap_or(reg.unicode.len());
                let verdict = blacklist.verdict(&reg.domain);
                (
                    sld_len,
                    verdict.contains(&Source::VirusTotal),
                    verdict.contains(&Source::Qihoo360),
                    verdict.contains(&Source::Baidu),
                )
            });
            for (reg, (sld_len, vt, q, b)) in records.iter().zip(rows) {
                let sld = &reg.unicode[..sld_len];
                builder.push(
                    sld,
                    &reg.tld,
                    reg.malicious.is_some(),
                    reg.language != Language::Unknown,
                    vt,
                    q,
                    b,
                );
            }
        });
        start += len as u64;
    }
    let columns = builder.finish(|labels| {
        let clf = Classifier::global();
        let indices: Vec<u32> = (0..labels.len() as u32).collect();
        idnre_par::par_map(&indices, threads, |&i| {
            clf.classify(labels.resolve(Symbol::from_index(i as usize)))
                .id()
        })
    });
    span.add_records(total);
    columns
}

/// The full pass roster for one [`crate::ReproContext`] build: both
/// detectors plus every report aggregator, registered on one
/// [`ShardedScan`].
pub struct ScanPlan<'p> {
    scan: ShardedScan<'p>,
    homograph: PassHandle<Vec<HomographFinding>>,
    semantic1: PassHandle<Vec<SemanticFinding>>,
    semantic2: PassHandle<Vec<SemanticFinding>>,
    tld: PassHandle<TldBreakdown>,
    language: PassHandle<LanguageMix>,
    content: PassHandle<ContentCounts>,
    activity: PassHandle<PopulationActivity>,
    table3: PassHandle<HashMap<String, String>>,
    fig6: PassHandle<HashSet<String>>,
    bucket: Option<PassHandle<BucketIndex>>,
}

impl<'p> ScanPlan<'p> {
    /// Registers every pass in a fixed order (the order telemetry spans and
    /// counters are pinned in). `threads` sizes the homograph pass's
    /// skeleton precompute over the interned label columns.
    pub fn new(
        homograph: &'p HomographDetector,
        semantic: &'p SemanticDetector,
        columns: &'p CorpusColumns,
        pdns: &'p PdnsStore,
        table3_wanted: HashSet<String>,
        fig6_candidates: HashSet<String>,
        threads: usize,
    ) -> Self {
        Self::build(
            ColumnedHomographPass::new(homograph, columns, threads),
            semantic,
            columns,
            pdns,
            table3_wanted,
            fig6_candidates,
            None,
        )
    }

    /// [`ScanPlan::new`], borrowing the homograph pass's skeleton
    /// precompute from a resident [`SkeletonCache`] instead of
    /// recomputing it — the epoch-engine constructor. The cache must
    /// cover `columns` ([`SkeletonCache::extend_to`] after growth).
    pub fn with_homograph_cache(
        homograph: &'p HomographDetector,
        semantic: &'p SemanticDetector,
        columns: &'p CorpusColumns,
        pdns: &'p PdnsStore,
        table3_wanted: HashSet<String>,
        fig6_candidates: HashSet<String>,
        cache: &'p SkeletonCache,
    ) -> Self {
        Self::build(
            ColumnedHomographPass::with_cache(homograph, columns, cache),
            semantic,
            columns,
            pdns,
            table3_wanted,
            fig6_candidates,
            None,
        )
    }

    /// [`ScanPlan::new`] plus the portfolio-mining pass A: the
    /// skeleton-LSH [`BucketIndexPass`] is fused onto the same traversal,
    /// registered last so the default nine passes keep their telemetry
    /// positions. The folded index comes back from [`ScanPlan::run_at`].
    #[allow(clippy::too_many_arguments)]
    pub fn new_mined(
        homograph: &'p HomographDetector,
        semantic: &'p SemanticDetector,
        columns: &'p CorpusColumns,
        pdns: &'p PdnsStore,
        table3_wanted: HashSet<String>,
        fig6_candidates: HashSet<String>,
        threads: usize,
        mining: &'p MiningPlan,
    ) -> Self {
        Self::build(
            ColumnedHomographPass::new(homograph, columns, threads),
            semantic,
            columns,
            pdns,
            table3_wanted,
            fig6_candidates,
            Some(mining),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        homograph_pass: ColumnedHomographPass<'p>,
        semantic: &'p SemanticDetector,
        columns: &'p CorpusColumns,
        pdns: &'p PdnsStore,
        table3_wanted: HashSet<String>,
        fig6_candidates: HashSet<String>,
        mining: Option<&'p MiningPlan>,
    ) -> Self {
        let mut scan = ShardedScan::new();
        let homograph = scan.register(homograph_pass);
        let semantic1 = scan.register(Semantic1Pass::new(semantic));
        let semantic2 = scan.register(Semantic2Pass::new(semantic));
        let tld = scan.register(TldPass::new(columns));
        let language = scan.register(LanguagePass::new(columns));
        let content = scan.register(ContentPass);
        let activity = scan.register(ActivityPass::new(pdns));
        let table3 = scan.register(Table3UnicodePass::new(table3_wanted));
        let fig6 = scan.register(Fig6Pass::new(fig6_candidates));
        let bucket = mining.map(|plan| scan.register(BucketIndexPass::new(columns, plan)));
        ScanPlan {
            scan,
            homograph,
            semantic1,
            semantic2,
            tld,
            language,
            content,
            activity,
            table3,
            fig6,
            bucket,
        }
    }

    /// Number of registered passes.
    pub fn pass_count(&self) -> usize {
        self.scan.pass_count()
    }

    /// Probes every registered pass's merge for associativity on this
    /// corpus split (see [`ShardedScan::merge_is_associative`]).
    ///
    /// # Errors
    ///
    /// Returns `Err(pass_name)` for the first non-associative pass.
    pub fn check_associative(
        &self,
        source: &dyn RecordSource,
        chunk_size: usize,
        recorder: &dyn Recorder,
    ) -> Result<(), &'static str> {
        self.scan.merge_is_associative(source, chunk_size, recorder)
    }

    /// Runs the fused traversal and redeems every handle. The fourth
    /// element is the folded skeleton-LSH bucket index — `Some` only on
    /// plans built with [`ScanPlan::new_mined`].
    pub fn run(
        self,
        source: &dyn RecordSource,
        shard_size: usize,
        threads: usize,
        recorder: &dyn Recorder,
    ) -> (
        Vec<HomographFinding>,
        Vec<SemanticFinding>,
        ScanOutputs,
        Option<BucketIndex>,
    ) {
        self.run_at(source, shard_size, threads, recorder, SpanCtx::NONE)
    }

    /// [`ScanPlan::run`], parenting `analyze.scan` (and the per-pass
    /// groups beneath it) at `parent` in the span tree.
    pub fn run_at(
        self,
        source: &dyn RecordSource,
        shard_size: usize,
        threads: usize,
        recorder: &dyn Recorder,
        parent: SpanCtx,
    ) -> (
        Vec<HomographFinding>,
        Vec<SemanticFinding>,
        ScanOutputs,
        Option<BucketIndex>,
    ) {
        let mut result: ScanResult = self
            .scan
            .run_at(source, shard_size, threads, recorder, parent);
        let outputs = ScanOutputs {
            tld: result.take(&self.tld),
            language: result.take(&self.language),
            content: result.take(&self.content),
            activity: result.take(&self.activity),
            semantic2: result.take(&self.semantic2),
            table3_unicode: result.take(&self.table3),
            fig6_registered: result.take(&self.fig6),
            idn_len: result.idn_len(),
            non_idn_len: result.non_idn_len(),
        };
        let bucket = self.bucket.as_ref().map(|handle| result.take(handle));
        (
            result.take(&self.homograph),
            result.take(&self.semantic1),
            outputs,
            bucket,
        )
    }

    /// Advances one epoch through `state` instead of folding every shard:
    /// only shards the delta stream dirtied (plus cache misses) re-fold;
    /// clean shards reuse their resident partials. Outputs are
    /// byte-identical to [`ScanPlan::run_at`] over the same source at
    /// `state`'s shard size. Mining plans are one-shot by design and not
    /// supported here ([`crate::CliFlags`] rejects the combination).
    pub fn run_epoch(
        self,
        state: &mut EpochState,
        source: &dyn RecordSource,
        threads: usize,
        deltas: &DeltaStream,
        recorder: &dyn Recorder,
        parent: SpanCtx,
    ) -> (
        Vec<HomographFinding>,
        Vec<SemanticFinding>,
        ScanOutputs,
        EpochStats,
    ) {
        debug_assert!(
            self.bucket.is_none(),
            "mining pass A is one-shot; epochs exclude --mine-portfolios"
        );
        let (mut result, stats) = state.advance(self.scan, source, threads, deltas, recorder, parent);
        let outputs = ScanOutputs {
            tld: result.take(&self.tld),
            language: result.take(&self.language),
            content: result.take(&self.content),
            activity: result.take(&self.activity),
            semantic2: result.take(&self.semantic2),
            table3_unicode: result.take(&self.table3),
            fig6_registered: result.take(&self.fig6),
            idn_len: result.idn_len(),
            non_idn_len: result.non_idn_len(),
        };
        (
            result.take(&self.homograph),
            result.take(&self.semantic1),
            outputs,
            stats,
        )
    }
}
