//! Centralized `repro` flag-compatibility rules.
//!
//! The repro driver grew its mutually-exclusive modes one at a time —
//! `--stream`, `--bench`, `--faults`, `--trace`, `--slo`, and now
//! `--crawl-sched` — and each arrival scattered another ad-hoc `if` into
//! `main`. This module replaces those with two declarative tables
//! ([`FLAG_CONFLICTS`] and [`FLAG_REQUIRES`]) and one validator
//! ([`validate_flags`]) so every incompatible pair is rejected with the
//! same message shape and is covered by a unit test. The driver maps any
//! `Err` to a usage error (exit code 2).

/// Which repro flags were present on the command line. Only the flags
/// that participate in a compatibility rule appear here; value-carrying
/// flags collapse to "was it given".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliFlags {
    /// `--bench`: timed pipeline run under its own registries.
    pub bench: bool,
    /// `--stream`: bounded-memory streaming build.
    pub stream: bool,
    /// `--faults SPEC`: seeded fault schedule + error-budget exit code.
    pub faults: bool,
    /// `--metrics FORMAT`: stage-timing snapshot on stderr.
    pub metrics: bool,
    /// `--trace PATH`: Chrome trace-event span tree.
    pub trace: bool,
    /// `--slo PROFILE`: latency SLO gate owning the exit code.
    pub slo: bool,
    /// `--thread-sweep N,N,...`: repeat the timed run per worker count.
    pub thread_sweep: bool,
    /// `--dump-dataset PATH`: write the canonical dataset bytes.
    pub dump_dataset: bool,
    /// `--crawl-sched`: route the crawl survey through the event-driven
    /// scheduler (timeout wheel, rate limits, breakers, shedding).
    pub crawl_sched: bool,
    /// `--mine-portfolios`: two-pass skeleton-LSH confusable-portfolio
    /// mining appended to the report.
    pub mine_portfolios: bool,
    /// `--epochs N`: incremental zone-diff epochs over the streamed build.
    pub epochs: bool,
    /// `--churn-per-mille M`: day-simulator event rate for `--epochs`.
    pub churn_per_mille: bool,
}

impl CliFlags {
    fn is_set(&self, flag: &str) -> bool {
        match flag {
            "--bench" => self.bench,
            "--stream" => self.stream,
            "--faults" => self.faults,
            "--metrics" => self.metrics,
            "--trace" => self.trace,
            "--slo" => self.slo,
            "--thread-sweep" => self.thread_sweep,
            "--dump-dataset" => self.dump_dataset,
            "--crawl-sched" => self.crawl_sched,
            "--mine-portfolios" => self.mine_portfolios,
            "--epochs" => self.epochs,
            "--churn-per-mille" => self.churn_per_mille,
            other => unreachable!("flag {other:?} missing from CliFlags::is_set"),
        }
    }
}

/// Pairs that may not appear together. Order within a pair fixes the
/// message ("A cannot be combined with B"), so the flag a user is most
/// likely to have just added goes first.
pub const FLAG_CONFLICTS: &[(&str, &str)] = &[
    ("--stream", "--faults"),
    ("--stream", "--dump-dataset"),
    ("--bench", "--faults"),
    ("--bench", "--metrics"),
    ("--bench", "--trace"),
    ("--bench", "--slo"),
    ("--slo", "--faults"),
    ("--crawl-sched", "--stream"),
    ("--crawl-sched", "--bench"),
    // Mining follows --stream's rule: a faulted run's exit code belongs to
    // its error budget, and its report to the health section — no report
    // extensions on top.
    ("--mine-portfolios", "--faults"),
    // Epochs re-fold resident partials; a fault schedule corrupts the very
    // corpus the partial cache assumes immutable-under-regeneration, and
    // mining's bucket-index pass is one-shot by design (no Merge removal).
    ("--epochs", "--faults"),
    ("--epochs", "--mine-portfolios"),
    // --bench runs under its own registries and carries its own epoch
    // probe pair; an interactive epoch loop on top would be ignored.
    ("--epochs", "--bench"),
];

/// Pairs where the first flag only makes sense alongside the second
/// ("A requires B").
pub const FLAG_REQUIRES: &[(&str, &str)] = &[
    ("--thread-sweep", "--bench"),
    ("--crawl-sched", "--faults"),
    // The epoch engine is built on the streamed KeyedCorpus (on-demand
    // shard regeneration is what makes re-fold-only-dirty possible).
    ("--epochs", "--stream"),
    ("--churn-per-mille", "--epochs"),
];

/// Checks the flag set against both tables. The first violated rule (in
/// table order) is returned as the full user-facing message.
pub fn validate_flags(flags: &CliFlags) -> Result<(), String> {
    for (a, b) in FLAG_CONFLICTS {
        if flags.is_set(a) && flags.is_set(b) {
            return Err(format!("{a} cannot be combined with {b}"));
        }
    }
    for (flag, needs) in FLAG_REQUIRES {
        if flags.is_set(flag) && !flags.is_set(needs) {
            return Err(format!("{flag} requires {needs}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with(set: &[&str]) -> CliFlags {
        let mut flags = CliFlags::default();
        for name in set {
            match *name {
                "--bench" => flags.bench = true,
                "--stream" => flags.stream = true,
                "--faults" => flags.faults = true,
                "--metrics" => flags.metrics = true,
                "--trace" => flags.trace = true,
                "--slo" => flags.slo = true,
                "--thread-sweep" => flags.thread_sweep = true,
                "--dump-dataset" => flags.dump_dataset = true,
                "--crawl-sched" => flags.crawl_sched = true,
                "--mine-portfolios" => flags.mine_portfolios = true,
                "--epochs" => flags.epochs = true,
                "--churn-per-mille" => flags.churn_per_mille = true,
                other => panic!("unknown flag {other:?}"),
            }
        }
        flags
    }

    #[test]
    fn empty_flag_set_is_valid() {
        assert_eq!(validate_flags(&CliFlags::default()), Ok(()));
    }

    #[test]
    fn every_single_flag_is_valid_alone_or_with_its_requirement() {
        for name in [
            "--bench",
            "--stream",
            "--faults",
            "--metrics",
            "--trace",
            "--slo",
            "--dump-dataset",
            "--mine-portfolios",
        ] {
            assert_eq!(validate_flags(&with(&[name])), Ok(()), "{name} alone");
        }
        // Mining composes with the streamed build (bounded-memory mining)
        // and with --bench (which mines both legs anyway).
        assert_eq!(
            validate_flags(&with(&["--mine-portfolios", "--stream"])),
            Ok(())
        );
        assert_eq!(
            validate_flags(&with(&["--mine-portfolios", "--bench"])),
            Ok(())
        );
        assert_eq!(
            validate_flags(&with(&["--thread-sweep", "--bench"])),
            Ok(())
        );
        assert_eq!(
            validate_flags(&with(&["--crawl-sched", "--faults"])),
            Ok(())
        );
        assert_eq!(validate_flags(&with(&["--epochs", "--stream"])), Ok(()));
        assert_eq!(
            validate_flags(&with(&["--churn-per-mille", "--epochs", "--stream"])),
            Ok(())
        );
        // The streamed bench is a supported mode: `--bench --stream` times
        // the bounded-memory build and records its residency peak.
        assert_eq!(validate_flags(&with(&["--stream", "--bench"])), Ok(()));
        assert_eq!(
            validate_flags(&with(&["--stream", "--bench", "--thread-sweep"])),
            Ok(())
        );
    }

    /// One test body per conflict pair, driven off the table itself so a
    /// new entry cannot ship untested.
    #[test]
    fn stream_conflicts_with_faults() {
        assert_conflict("--stream", "--faults");
    }

    #[test]
    fn stream_conflicts_with_dump_dataset() {
        assert_conflict("--stream", "--dump-dataset");
    }

    #[test]
    fn bench_conflicts_with_faults() {
        assert_conflict("--bench", "--faults");
    }

    #[test]
    fn bench_conflicts_with_metrics() {
        assert_conflict("--bench", "--metrics");
    }

    #[test]
    fn bench_conflicts_with_trace() {
        assert_conflict("--bench", "--trace");
    }

    #[test]
    fn bench_conflicts_with_slo() {
        assert_conflict("--bench", "--slo");
    }

    #[test]
    fn slo_conflicts_with_faults() {
        assert_conflict("--slo", "--faults");
    }

    #[test]
    fn crawl_sched_conflicts_with_stream() {
        // --crawl-sched needs --faults to be a valid set at all, so pin
        // it and check the stream conflict still fires first.
        let flags = with(&["--crawl-sched", "--faults", "--stream"]);
        assert_eq!(
            validate_flags(&flags),
            Err("--stream cannot be combined with --faults".into()),
            "conflict table order: stream×faults is listed before crawl-sched×stream"
        );
        assert_conflict("--crawl-sched", "--stream");
    }

    #[test]
    fn crawl_sched_conflicts_with_bench() {
        assert_conflict("--crawl-sched", "--bench");
    }

    #[test]
    fn mine_portfolios_conflicts_with_faults() {
        assert_conflict("--mine-portfolios", "--faults");
        // Conflict-table order: the stream×faults row predates the
        // mine-portfolios×faults row, so with all three set the older
        // message wins.
        assert_eq!(
            validate_flags(&with(&["--mine-portfolios", "--faults", "--stream"])),
            Err("--stream cannot be combined with --faults".into())
        );
    }

    #[test]
    fn epochs_conflicts_with_faults() {
        // --epochs needs --stream to be a valid set at all; pin --stream
        // and observe that the older stream×faults row fires first, then
        // check the bare pair.
        assert_eq!(
            validate_flags(&with(&["--epochs", "--stream", "--faults"])),
            Err("--stream cannot be combined with --faults".into()),
            "conflict table order: stream×faults is listed before epochs×faults"
        );
        assert_conflict("--epochs", "--faults");
    }

    #[test]
    fn epochs_conflicts_with_bench() {
        assert_conflict("--epochs", "--bench");
    }

    #[test]
    fn epochs_conflicts_with_mine_portfolios() {
        let flags = with(&["--epochs", "--mine-portfolios", "--stream"]);
        assert_eq!(
            validate_flags(&flags),
            Err("--epochs cannot be combined with --mine-portfolios".into())
        );
        assert_conflict("--epochs", "--mine-portfolios");
    }

    #[test]
    fn thread_sweep_requires_bench() {
        assert_eq!(
            validate_flags(&with(&["--thread-sweep"])),
            Err("--thread-sweep requires --bench".into())
        );
    }

    #[test]
    fn crawl_sched_requires_faults() {
        assert_eq!(
            validate_flags(&with(&["--crawl-sched"])),
            Err("--crawl-sched requires --faults".into())
        );
    }

    #[test]
    fn epochs_requires_stream() {
        assert_eq!(
            validate_flags(&with(&["--epochs"])),
            Err("--epochs requires --stream".into())
        );
    }

    #[test]
    fn churn_per_mille_requires_epochs() {
        assert_eq!(
            validate_flags(&with(&["--churn-per-mille", "--stream"])),
            Err("--churn-per-mille requires --epochs".into())
        );
    }

    #[test]
    fn every_conflict_pair_is_rejected_symmetrically() {
        for (a, b) in FLAG_CONFLICTS {
            let err = validate_flags(&with(&[a, b])).unwrap_err();
            assert_eq!(err, format!("{a} cannot be combined with {b}"));
        }
    }

    #[test]
    fn tables_only_name_flags_the_struct_knows() {
        // `is_set` panics on unknown names; walking both tables proves
        // every entry resolves.
        let flags = CliFlags::default();
        for (a, b) in FLAG_CONFLICTS.iter().chain(FLAG_REQUIRES) {
            assert!(!flags.is_set(a) && !flags.is_set(b));
        }
    }

    fn assert_conflict(a: &str, b: &str) {
        assert_eq!(
            validate_flags(&with(&[a, b])),
            Err(format!("{a} cannot be combined with {b}"))
        );
    }
}
