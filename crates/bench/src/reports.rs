//! One generator per table/figure of the paper's evaluation.

use crate::ReproContext;
use idnre_certs::{CertProblem, Validator};
use idnre_core::{AbuseAnalysis, AvailabilityEnumerator};
use idnre_datagen::ContentCategory;
use idnre_langid::Language;
use idnre_pdns::{ActivityAnalytics, PopulationClass, TrafficModel};
use idnre_stats::plot::{bar_chart, ecdf_plot, Series};
use idnre_stats::table::{Align, Table};
use idnre_stats::{group_thousands, percent};
use idnre_whois::analytics::RegistrationAnalytics;

/// A table/figure generator.
pub type Generator = fn(&ReproContext) -> String;

/// All generators in paper order: `(experiment id, generator)`.
pub const ALL: &[(&str, Generator)] = &[
    ("table1", table1),
    ("table2", table2),
    ("fig1", fig1),
    ("table3", table3),
    ("table4", table4),
    ("fig2", fig2),
    ("fig3", fig3),
    ("fig4", fig4),
    ("table5", table5),
    ("table6", table6),
    ("table7", table7),
    ("table8", table8),
    ("table9", table9),
    ("table10", table10),
    ("table11", table11),
    ("table12", table12),
    ("table13", table13),
    ("fig5", fig5),
    ("fig6", fig6),
    ("fig7", fig7),
    ("table14", table14),
    ("fig8", fig8),
    ("ext_squatting", ext_squatting),
    ("ext_bypass", ext_bypass),
    ("ext_multichar", ext_multichar),
];

/// Looks up one generator by experiment id.
pub fn by_name(name: &str) -> Option<Generator> {
    ALL.iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, generator)| generator)
}

fn section(title: &str, anchor: &str, body: String) -> String {
    format!("## {title}\n\n*Paper anchor:* {anchor}\n\n{body}\n")
}

/// Table I — datasets collected (per-TLD zone scan, WHOIS, blacklists).
pub fn table1(ctx: &ReproContext) -> String {
    let eco = &ctx.eco;
    let mut table = Table::new(
        vec![
            "TLD",
            "# SLD (declared/scale)",
            "# IDN",
            "WHOIS",
            "VT",
            "360",
            "Baidu",
            "BL total",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    // The per-TLD IDN and blacklist tallies come pre-folded from the fused
    // corpus scan ([`crate::passes::TldPass`]); only the WHOIS split — an
    // artifact table, not the registration corpus — is tallied here. A
    // WHOIS record counts only when its TLD appears in the IDN corpus,
    // matching the batch pre-pass's keying.
    let folded = &ctx.outputs.tld;
    let mut whois_by_tld: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for record in &eco.whois {
        if let Some(tld) = record.domain.rsplit('.').next() {
            *whois_by_tld.entry(tld).or_default() += 1;
        }
    }
    let mut totals = [0u64; 7];
    for spec in &idnre_datagen::TABLE_I {
        let tld = spec.tld;
        let idns = folded.idns.get(tld);
        let whois = if idns > 0 {
            whois_by_tld.get(tld).copied().unwrap_or(0)
        } else {
            0
        };
        let (vt, q, b, union) = (
            folded.vt.get(tld),
            folded.q.get(tld),
            folded.b.get(tld),
            folded.union.get(tld),
        );
        let declared = spec.declared_slds / eco.config.scale;
        table.row(vec![
            tld.to_string(),
            group_thousands(declared),
            group_thousands(idns),
            group_thousands(whois),
            group_thousands(vt),
            group_thousands(q),
            group_thousands(b),
            group_thousands(union),
        ]);
        for (i, v) in [declared, idns, whois, vt, q, b, union]
            .into_iter()
            .enumerate()
        {
            totals[i] += v;
        }
    }
    table.row(vec![
        "Total".into(),
        group_thousands(totals[0]),
        group_thousands(totals[1]),
        group_thousands(totals[2]),
        group_thousands(totals[3]),
        group_thousands(totals[4]),
        group_thousands(totals[5]),
        group_thousands(totals[6]),
    ]);
    let idn_rate = percent(totals[1], totals[0]);
    section(
        "Table I — Datasets collected",
        "154,600,404 SLDs, 1,472,836 IDNs (≈1%), 739,160 WHOIS (50.19%), 6,241 blacklisted (0.42%); VT ≫ 360 ≫ Baidu.",
        format!(
            "{}\nMeasured IDN share of SLDs: {idn_rate}; blacklisted share of IDNs: {}.\n",
            table.render(),
            percent(totals[6], totals[1])
        ),
    )
}

/// Table II — language mix of all vs blacklisted IDNs (via the classifier).
pub fn table2(ctx: &ReproContext) -> String {
    // The classifier ran once per record inside the fused scan
    // ([`crate::passes::LanguagePass`]); the tallies keep corpus
    // first-occurrence order, so the stable sort ties break exactly as the
    // batch fold's did.
    let mix = &ctx.outputs.language;
    let mut all: Vec<(Language, u64)> = mix.all.iter().map(|(&lang, n)| (lang, n)).collect();
    let total = mix.all.total();
    let total_bad = mix.bad.total();
    all.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let mut table = Table::new(
        vec!["Language", "Volume", "Rate", "Blacklisted", "Rate"],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for &(lang, volume) in all.iter().take(15) {
        let bad_volume = mix.bad.get(&lang);
        table.row(vec![
            lang.to_string(),
            group_thousands(volume),
            percent(volume, total),
            group_thousands(bad_volume),
            percent(bad_volume, total_bad.max(1)),
        ]);
    }
    let east_asian: u64 = all
        .iter()
        .filter(|(l, _)| l.is_east_asian())
        .map(|&(_, n)| n)
        .sum();
    // The attack populations are generated at 1:attack_scale while the bulk
    // ecosystem is 1:scale, so Latin-brand attack labels are overweighted
    // relative to the paper's 1.4M corpus. Report the organic mix too.
    let (organic_total, organic_ea, organic_zh) =
        (mix.organic_total, mix.organic_ea, mix.organic_zh);
    section(
        "Table II — Languages of all and malicious IDNs (top 15)",
        "Chinese 52.03% of all / 56.02% of malicious; >75% east-Asian (Finding 1).",
        format!(
            "{}\nEast-Asian share (classifier): {}. Excluding the 1:1-scale \
             injected attack populations (which overweight Latin brand labels \
             relative to the paper's 1.4M corpus): Chinese {}, east-Asian {}.\n",
            table.render(),
            percent(east_asian, total),
            percent(organic_zh, organic_total),
            percent(organic_ea, organic_total)
        ),
    )
}

/// Figure 1 — creation dates of IDNs, malicious shown separately.
pub fn fig1(ctx: &ReproContext) -> String {
    let mut all = idnre_stats::YearHistogram::new();
    let mut malicious = idnre_stats::YearHistogram::new();
    for record in &ctx.eco.whois {
        if let Some(date) = record.creation_date {
            all.record(date.year);
            if ctx.eco.blacklist.is_malicious(&record.domain) {
                malicious.record(date.year);
            }
        }
    }
    let bars_all: Vec<(String, u64)> = all.iter().map(|(y, c)| (y.to_string(), c)).collect();
    let bars_bad: Vec<(String, u64)> = malicious.iter().map(|(y, c)| (y.to_string(), c)).collect();
    let ten_years_ago = ctx.eco.config.snapshot.year - 10;
    let old: u64 = all
        .iter()
        .filter(|&(y, _)| y < ten_years_ago + 1)
        .map(|(_, c)| c)
        .sum();
    section(
        "Figure 1 — IDN creation dates",
        "Registrations rise over time with spikes in 2000 (Verisign testbed) and 2004; malicious spikes in 2015/2017; 6.16% created before 2008 (Finding 2).",
        format!(
            "{}\n{}\nSpikes (all): {:?}; spikes (malicious): {:?}. Created ≥10 years before snapshot: {} ({}).\n",
            bar_chart("All IDN registrations per year", &bars_all, 50),
            bar_chart("Malicious IDN registrations per year", &bars_bad, 50),
            all.spikes(2.0),
            malicious.spikes(2.0),
            group_thousands(old),
            percent(old, all.total())
        ),
    )
}

fn registration_analytics(ctx: &ReproContext) -> RegistrationAnalytics {
    let mut analytics = RegistrationAnalytics::new();
    analytics.extend(ctx.eco.whois.iter());
    analytics
}

/// Table III — top-5 registrant emails (opportunistic clusters) with the
/// portfolio topic the paper assigned manually, here derived by the topic
/// classifier.
pub fn table3(ctx: &ReproContext) -> String {
    let analytics = registration_analytics(ctx);
    // The fused scan collected punycode→unicode for exactly the top
    // registrants' portfolios ([`crate::passes::Table3UnicodePass`]).
    let unicode_of = &ctx.outputs.table3_unicode;
    let mut table = Table::new(
        vec!["Email Account", "# IDN", "IDN Characteristics"],
        vec![Align::Left, Align::Right, Align::Left],
    );
    for (email, count) in analytics.top_registrants(5) {
        let labels: Vec<&str> = analytics
            .domains_of(&email)
            .iter()
            .filter_map(|d| unicode_of.get(d.as_str()))
            .filter_map(|u| u.split('.').next())
            .collect();
        let topic = idnre_core::topic::classify_portfolio(labels.iter().copied());
        table.row(vec![email, group_thousands(count), topic.to_string()]);
    }
    let mass = analytics.opportunistic_mass(10);
    section(
        "Table III — Top 5 IDN registrants",
        "Bulk registrants (776053229@qq.com 1,562; daidesheng88@gmail.com 1,453; …) hold 29,318 (4%) opportunistic IDNs (Finding 3).",
        format!(
            "{}\nDomains held by registrants with ≥10 IDNs: {}.\n",
            table.render(),
            group_thousands(mass)
        ),
    )
}

/// Table IV — top-10 registrars.
pub fn table4(ctx: &ReproContext) -> String {
    let analytics = registration_analytics(ctx);
    let mut table = Table::new(
        vec!["Registrar", "# IDN", "Rate"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let total = analytics.total();
    for (registrar, count) in analytics.top_registrars(10) {
        table.row(vec![
            registrar,
            group_thousands(count),
            percent(count, total),
        ]);
    }
    section(
        "Table IV — Top 10 most active registrars offering IDNs",
        "GMO 22.99%, HiChina 10.86%, GoDaddy only 1.88%; >700 registrars; top-10 hold 55% (Finding 4).",
        format!(
            "{}\nDistinct registrars: {}; top-10 share: {:.1}%.\n",
            table.render(),
            analytics.distinct_registrars(),
            analytics.top_registrar_share(10) * 100.0
        ),
    )
}

fn ecdf_figure(
    title: &str,
    anchor: &str,
    series: Vec<(&str, idnre_stats::Ecdf)>,
    probe: f64,
    unit: &str,
) -> String {
    let plotted: Vec<Series> = series
        .iter()
        .map(|(name, ecdf)| Series::new(*name, ecdf.series(&ecdf.log_positions(40))))
        .collect();
    let mut probes = String::new();
    for (name, ecdf) in &series {
        if ecdf.is_empty() {
            continue;
        }
        probes.push_str(&format!(
            "P({unit} ≤ {probe:.0}) for {name}: {:.1}%; mean {:.0}\n",
            ecdf.fraction_at_or_below(probe) * 100.0,
            ecdf.mean()
        ));
    }
    section(
        title,
        anchor,
        format!("{}\n{probes}", ecdf_plot(title, &plotted, 60, 12)),
    )
}

/// Figure 2 — ECDF of active time (IDN vs non-IDN vs malicious).
pub fn fig2(ctx: &ReproContext) -> String {
    let act = &ctx.outputs.activity;
    ecdf_figure(
        "Figure 2 — ECDF of active time",
        "60% of com IDNs active <100 days vs 40% of non-IDNs; malicious IDNs live longest (Finding 5).",
        vec![
            ("idn", act.benign.active_time_ecdf()),
            ("non-idn", act.non_idn.active_time_ecdf()),
            ("malicious-idn", act.malicious.active_time_ecdf()),
        ],
        100.0,
        "days",
    )
}

/// Figure 3 — ECDF of query volume.
pub fn fig3(ctx: &ReproContext) -> String {
    let act = &ctx.outputs.activity;
    ecdf_figure(
        "Figure 3 — ECDF of query volume",
        "88% of com IDNs queried <100 times vs 74% of non-IDNs; malicious IDNs draw the most traffic (Finding 6).",
        vec![
            ("idn", act.benign.query_volume_ecdf()),
            ("non-idn", act.non_idn.query_volume_ecdf()),
            ("malicious-idn", act.malicious.query_volume_ecdf()),
        ],
        100.0,
        "queries",
    )
}

/// Figure 4 — IDNs over /24 segments.
pub fn fig4(ctx: &ReproContext) -> String {
    // The /24 segment report is order-insensitive, so the whole-IDN view
    // is just the benign and malicious scan partials merged back together.
    let act = &ctx.outputs.activity;
    let mut analytics = act.benign.clone();
    analytics.merge(act.malicious.clone());
    let report = analytics.segment_report();
    let series = Series::new("idns", report.ecdf_series(40));
    let scaled_k = (1000 / ctx.eco.config.scale.max(1)).max(1) as usize;
    // Attribute the top segments to their infrastructure class — the paper
    // found "four parking, four hosting, one Akamai, one private" in its
    // top ten. The generator's address plan makes the classes identifiable
    // by prefix.
    let segment_class = |segment: [u8; 3]| match segment[0] {
        91 => "parking",
        104 => "shared hosting",
        23 => "CDN",
        _ => "self-hosted",
    };
    let top10: Vec<String> = report
        .segments
        .iter()
        .take(10)
        .map(|&(segment, count)| {
            format!(
                "{}.{}.{}.0/24 ({}, {} IDNs)",
                segment[0],
                segment[1],
                segment[2],
                segment_class(segment),
                count
            )
        })
        .collect();
    let masses: Vec<f64> = report.segments.iter().map(|&(_, c)| c as f64).collect();
    section(
        "Figure 4 — ECDF of IDNs over /24 network segments",
        "80% of IDNs hosted in 1,000 /24 segments; top-10 segments hold 24.8%, mostly parking/hosting services (Finding 7).",
        format!(
            "{}\nSegments: {}; top-{} cover {:.1}%; top-10 cover {:.1}% (Gini {:.2}).\nTop segments:\n  {}\n",
            ecdf_plot("Figure 4", &[series], 60, 12),
            group_thousands(report.segment_count() as u64),
            scaled_k,
            report.cumulative_fraction(scaled_k) * 100.0,
            report.cumulative_fraction(10) * 100.0,
            idnre_stats::gini(&masses),
            top10.join("\n  ")
        ),
    )
}

/// Table V — usage of domain names (content categories, 500 samples each).
pub fn table5(ctx: &ReproContext) -> String {
    let sample = crate::passes::CONTENT_SAMPLE;
    let mut table = Table::new(
        vec!["Type", "IDN", "Non-IDN"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let counts = &ctx.outputs.content;
    let idn_total = sample.min(ctx.outputs.idn_len);
    let non_total = sample.min(ctx.outputs.non_idn_len);
    for (i, category) in ContentCategory::ALL.iter().enumerate() {
        let a = counts.idn[i];
        let b = counts.non_idn[i];
        table.row(vec![
            category.label().to_string(),
            format!("{a} ({})", percent(a, idn_total)),
            format!("{b} ({})", percent(b, non_total)),
        ]);
    }
    section(
        "Table V — Usage of domain names",
        "IDN: 45.6% not resolved, 19.8% meaningful. Non-IDN: 15.2% / 33.6% (Finding 8).",
        table.render(),
    )
}

/// Table VI — SSL certificate problems, IDN vs non-IDN.
pub fn table6(ctx: &ReproContext) -> String {
    let validator = Validator::with_default_roots(ctx.eco.config.snapshot.day_number());
    let mut idn = [0u64; 4]; // expired, authority, cn, clean
    let mut non = [0u64; 4];
    for (domain, cert) in &ctx.eco.certificates {
        let bucket = match validator.classify(cert, domain) {
            Some(CertProblem::Expired) => 0,
            Some(CertProblem::InvalidAuthority) => 1,
            Some(CertProblem::InvalidCommonName) => 2,
            None => 3,
        };
        if idnre_idna::is_idn(domain) {
            idn[bucket] += 1;
        } else {
            non[bucket] += 1;
        }
    }
    let idn_total: u64 = idn.iter().sum();
    let non_total: u64 = non.iter().sum();
    let mut table = Table::new(
        vec!["Security Problem", "IDN", "non-IDN"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    for (i, label) in [
        "Expired Certificate",
        "Invalid Authority",
        "Invalid Common Name",
    ]
    .iter()
    .enumerate()
    {
        table.row(vec![
            label.to_string(),
            format!(
                "{} ({})",
                group_thousands(idn[i]),
                percent(idn[i], idn_total)
            ),
            format!(
                "{} ({})",
                group_thousands(non[i]),
                percent(non[i], non_total)
            ),
        ]);
    }
    let idn_bad = idn_total - idn[3];
    let non_bad = non_total - non[3];
    table.row(vec![
        "Total".into(),
        format!(
            "{} ({})",
            group_thousands(idn_bad),
            percent(idn_bad, idn_total)
        ),
        format!(
            "{} ({})",
            group_thousands(non_bad),
            percent(non_bad, non_total)
        ),
    ]);
    section(
        "Table VI — SSL certificate problems",
        "IDN: 12.54% expired, 18.14% invalid authority, 67.28% invalid CN — 97.95% with problems; non-IDN 97.23% with more expiry, less sharing (Finding 9).",
        format!(
            "{}\nNote: the headline shape (CN mismatch dominates; >90% of \
             certificates have a problem) reproduces; the paper's second-order \
             IDN-vs-non-IDN contrast (non-IDNs expiring more, sharing less) \
             would need population-specific certificate-issuance mixes the \
             generator currently keeps uniform.\n",
            table.render()
        ),
    )
}

/// Table VII — top-10 shared certificate common names.
pub fn table7(ctx: &ReproContext) -> String {
    let mut sharing = idnre_certs::SharingAnalysis::new();
    for (domain, cert) in &ctx.eco.certificates {
        if idnre_idna::is_idn(domain) {
            sharing.observe(domain, cert);
        }
    }
    let mut table = Table::new(
        vec!["Common Name (CN)", "Volume"],
        vec![Align::Left, Align::Right],
    );
    for (cn, volume) in sharing.top_shared(10) {
        table.row(vec![cn, group_thousands(volume)]);
    }
    section(
        "Table VII — Top shared certificates among IDNs",
        "sedoparking.com 27,139; cafe24.com 4,024; ovh.net 3,691 — parking/hosting dominate.",
        format!(
            "{}\nIDNs sharing a mismatched certificate: {}.\n",
            table.render(),
            group_thousands(sharing.shared_domain_count() as u64)
        ),
    )
}

/// Table VIII — example homographic IDNs impersonating facebook.com.
pub fn table8(ctx: &ReproContext) -> String {
    let mut table = Table::new(
        vec!["Unicode", "Punycode", "SSIM"],
        vec![Align::Left, Align::Left, Align::Right],
    );
    for attack in ctx
        .eco
        .homograph_attacks
        .iter()
        .filter(|a| a.target == "facebook.com")
        .take(12)
    {
        let score = idnre_render::ssim_strings(&attack.unicode, "facebook.com");
        table.row(vec![
            attack.unicode.clone(),
            attack.domain.clone(),
            format!("{score:.3}"),
        ]);
    }
    section(
        "Table VIII — Examples of malicious homographic IDNs (facebook.com)",
        "12 registered lookalikes replacing 1–3 letters with Vietnamese/Arabic/Icelandic/Yoruba homoglyphs.",
        table.render(),
    )
}

/// Table IX — Type-1 semantic examples.
pub fn table9(ctx: &ReproContext) -> String {
    let mut table = Table::new(
        vec!["Punycode", "Unicode", "Target"],
        vec![Align::Left, Align::Left, Align::Left],
    );
    for finding in ctx.semantic.iter().take(8) {
        table.row(vec![
            finding.domain.clone(),
            finding.unicode.clone(),
            finding.brand.clone(),
        ]);
    }
    section(
        "Table IX — Examples of Type-1 semantic abuse",
        "icloud登录.com, apple邮箱.com, apple激活.com — brand + service keyword.",
        table.render(),
    )
}

/// Table X — Type-2 semantic findings (translation dictionary) scanned
/// over the registered corpus.
pub fn table10(ctx: &ReproContext) -> String {
    // Type-2 detection is brand-independent, so the fused scan's
    // `Semantic2Pass` findings are exactly the dedicated rescan's.
    let findings = &ctx.outputs.semantic2;
    let mut table = Table::new(
        vec!["Punycode", "Unicode", "Brand"],
        vec![Align::Left, Align::Left, Align::Left],
    );
    for finding in findings.iter().take(10) {
        table.row(vec![
            finding.domain.clone(),
            finding.unicode.clone(),
            finding.brand.clone(),
        ]);
    }
    section(
        "Table X — Examples of Type-2 semantic abuse",
        "格力空调.net → Gree; 北京交通大学.com → Beijing Jiaotong University; 奔驰汽车.com → Mercedes-Benz (mapping Type-2 to brands is manual in the paper; here a translation dictionary).",
        format!(
            "{}\nType-2 findings in the registered corpus: {} (injected: {}).\n",
            table.render(),
            findings.len(),
            ctx.eco.semantic2_attacks.len()
        ),
    )
}

/// Table XI — browser survey (derived from the policy models).
pub fn table11(_ctx: &ReproContext) -> String {
    let rows = idnre_browser::run_survey();
    let mut table = Table::new(
        vec![
            "Browser",
            "Platform",
            "Ver.",
            "iTLD IDN",
            "Homograph Attack",
        ],
        vec![
            Align::Left,
            Align::Left,
            Align::Right,
            Align::Left,
            Align::Left,
        ],
    );
    for row in &rows {
        table.row(vec![
            row.browser.to_string(),
            row.platform.to_string(),
            row.version.to_string(),
            row.itld.to_string(),
            row.outcome.to_string(),
        ]);
    }
    section(
        "Table XI — Surveyed browsers under homograph attack",
        "5 PC browsers + 1 Android exposed; 5 iOS + 3 Android show titles; Sogou PC fully vulnerable; QQ Android lands on about:blank.",
        table.render(),
    )
}

/// Table XII — the SSIM ladder against google.com.
pub fn table12(_ctx: &ReproContext) -> String {
    let ladder = [
        "gооgle.com",
        "googlе.com",
        "googlę.com",
        "goögle.com",
        "gõogle.com",
        "góoglě.com",
        "gõõgle.com",
        "gøøgle.com",
        "gåøgle.com",
        "böögle.com",
        "donolé.com",
    ];
    let mut rows: Vec<(String, String, f64)> = ladder
        .iter()
        .map(|spoof| {
            let ace = idnre_idna::to_ascii(spoof).unwrap_or_default();
            let score = idnre_render::ssim_strings(spoof, "google.com");
            (spoof.to_string(), ace, score)
        })
        .collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut table = Table::new(
        vec!["SSIM", "Punycode", "Unicode"],
        vec![Align::Right, Align::Left, Align::Left],
    );
    for (unicode, ace, score) in rows {
        table.row(vec![format!("{score:.2}"), ace, unicode]);
    }
    section(
        "Table XII — SSIM indices of IDNs against google.com",
        "Ladder from 1.00 (identical Cyrillic) through 0.95 (gõõgle) down to 0.90 (donolé); 0.95 chosen as the detection threshold.",
        table.render(),
    )
}

/// Table XIII — top brands by registered homographic IDNs.
pub fn table13(ctx: &ReproContext) -> String {
    let analysis =
        AbuseAnalysis::from_homographs(&ctx.homographs, &ctx.eco.whois, &ctx.eco.blacklist);
    let mut table = Table::new(
        vec!["Domain", "# IDN", "Rate", "Protective"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for row in analysis.top_brands(10) {
        table.row(vec![
            row.brand,
            group_thousands(row.idns),
            percent(row.idns, analysis.total()),
            group_thousands(row.protective),
        ]);
    }
    section(
        "Table XIII — Top 10 brand domains ordered by homographic IDNs",
        "1,516 registered homographic IDNs over 255 brands; google 121/facebook 98/amazon 55; only 4.82% protective; 6.6% blacklisted.",
        format!(
            "{}\nDetected: {}; brands targeted: {}; blacklisted: {} ({}); protective: {} ({}).\n",
            table.render(),
            group_thousands(analysis.total()),
            analysis.targeted_brands(),
            group_thousands(analysis.blacklisted()),
            percent(analysis.blacklisted(), analysis.total()),
            group_thousands(analysis.protective()),
            percent(analysis.protective(), analysis.total())
        ),
    )
}

fn attack_traffic_figure(
    ctx: &ReproContext,
    domains: Vec<&str>,
    title: &str,
    anchor: &str,
) -> String {
    let recorder = &*ctx.recorder;
    let aggregates: Vec<_> = domains
        .into_iter()
        .filter_map(|domain| ctx.eco.pdns.lookup_recorded(domain, recorder))
        .collect();
    let mut analytics = ActivityAnalytics::new();
    analytics.extend_recorded(aggregates, recorder);
    let active = analytics.active_time_ecdf();
    let queries = analytics.query_volume_ecdf();
    let plot_active = Series::new("active-days", active.series(&active.log_positions(40)));
    let plot_queries = Series::new("queries", queries.series(&queries.log_positions(40)));
    let stats = if analytics.is_empty() {
        "No passive-DNS observations.".to_string()
    } else {
        format!(
            "Mean active days: {:.0}; P(active > 600d) = {:.1}%. Mean queries: {:.0}; P(q > 100) = {:.1}%; P(q > 1000) = {:.1}%.",
            active.mean(),
            (1.0 - active.fraction_at_or_below(600.0)) * 100.0,
            queries.mean(),
            (1.0 - queries.fraction_at_or_below(100.0)) * 100.0,
            (1.0 - queries.fraction_at_or_below(1000.0)) * 100.0
        )
    };
    section(
        title,
        anchor,
        format!(
            "{}\n{}\n{stats}\n",
            ecdf_plot("active time (days)", &[plot_active], 60, 10),
            ecdf_plot("query volume", &[plot_queries], 60, 10)
        ),
    )
}

/// Figure 5 — traffic to registered homographic IDNs.
pub fn fig5(ctx: &ReproContext) -> String {
    let domains: Vec<&str> = ctx.homographs.iter().map(|f| f.domain.as_str()).collect();
    attack_traffic_figure(
        ctx,
        domains,
        "Figure 5 — ECDF of active time and query volume of homographic IDNs",
        "789 active days on average, 40% above 600 days; 80% get >100 queries, 10% >1000.",
    )
}

/// Figure 6 — queries to registered vs unregistered homographic IDNs.
pub fn fig6(ctx: &ReproContext) -> String {
    // Unregistered candidates: enumerate for the top brands, drop the ones
    // that are actually registered, and sample their residual traffic.
    let enumerator = AvailabilityEnumerator::new();
    // The fused scan intersected the candidate pool with the registered
    // corpus ([`crate::passes::Fig6Pass`]); only candidates are ever
    // membership-tested, so the intersection decides identically.
    let registered = &ctx.outputs.fig6_registered;
    let top: Vec<String> = ctx.eco.brands.top(30).iter().map(|b| b.domain()).collect();
    let mut unregistered = 0u64;
    let mut observed = 0u64;
    let mut total_queries = 0u64;
    let model = TrafficModel::for_class(PopulationClass::UnregisteredHomographic);
    let mut rng =
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(ctx.eco.config.seed ^ 0xF16);
    for brand in &top {
        for candidate in enumerator.homographic(brand) {
            if registered.contains(candidate.ace.as_str()) {
                continue;
            }
            unregistered += 1;
            let sample = model.sample(&mut rng);
            if sample.query_count > 0 {
                observed += 1;
                total_queries += sample.query_count;
            }
        }
    }
    let registered_homograph_queries: u64 = ctx
        .homographs
        .iter()
        .filter_map(|f| ctx.eco.pdns.lookup(&f.domain))
        .map(|a| a.query_count)
        .sum();
    section(
        "Figure 6 — DNS queries to registered vs unregistered homographic IDNs",
        "Queries to unregistered lookalikes exist but are a very small proportion — cross-language 'typos' are rare.",
        format!(
            "Unregistered candidates (top-30 brands): {}; observed in passive DNS: {} ({}); their total queries: {}.\n\
             Registered homographic IDNs' total queries: {}.\n\
             Unregistered-to-registered query ratio: {:.4}.\n",
            group_thousands(unregistered),
            group_thousands(observed),
            percent(observed, unregistered),
            group_thousands(total_queries),
            group_thousands(registered_homograph_queries),
            total_queries as f64 / registered_homograph_queries.max(1) as f64
        ),
    )
}

/// Figure 7 — homographic candidates per top-100 brand.
pub fn fig7(ctx: &ReproContext) -> String {
    let enumerator = AvailabilityEnumerator::new();
    let brands: Vec<String> = ctx.eco.brands.top(100).iter().map(|b| b.domain()).collect();
    let reports = enumerator.survey(brands.iter().map(String::as_str));
    let generated: usize = reports.iter().map(|r| r.generated).sum();
    let homographic: usize = reports.iter().map(|r| r.homographic).sum();
    let mut bars: Vec<(String, u64)> = reports
        .iter()
        .map(|r| (r.brand.clone(), r.homographic as u64))
        .collect();
    bars.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    bars.truncate(20);
    section(
        "Figure 7 — Available homographic IDNs per brand (top 100)",
        "128,432 one-character candidates generated; 42,671 (33%) clear SSIM ≥ 0.95; most unregistered. (The UC-SimList's pixel-overlap table carries a longer low-fidelity tail than our curated one — ~18 vs ~10 glyphs per character — so our pass rate sits higher; the absolute pool ordering per brand is the reproduced shape.)",
        format!(
            "{}\nCandidates (top-100 brands, one substitution): {}; homographic at 0.95: {} ({}).\n",
            bar_chart("Homographic candidates (top 20 brands)", &bars, 40),
            group_thousands(generated as u64),
            group_thousands(homographic as u64),
            percent(homographic as u64, generated as u64)
        ),
    )
}

/// Table XIV — top brands by Type-1 semantic IDNs.
pub fn table14(ctx: &ReproContext) -> String {
    let analysis = AbuseAnalysis::from_semantic(&ctx.semantic, &ctx.eco.whois, &ctx.eco.blacklist);
    let mut table = Table::new(
        vec!["Domain", "# Type-1 IDN", "Rate", "Protective"],
        vec![Align::Left, Align::Right, Align::Right, Align::Right],
    );
    for row in analysis.top_brands(10) {
        table.row(vec![
            row.brand,
            group_thousands(row.idns),
            percent(row.idns, analysis.total()),
            group_thousands(row.protective),
        ]);
    }
    section(
        "Table XIV — Top 10 brand domains ordered by Type-1 IDNs",
        "1,497 Type-1 IDNs over 102 brands; 58.com 270 (18%), qq.com 139, go.com 114; 45 protective.",
        format!(
            "{}\nDetected: {}; brands targeted: {}; with WHOIS: {}; personal-email registrants: {}.\n",
            table.render(),
            group_thousands(analysis.total()),
            analysis.targeted_brands(),
            group_thousands(analysis.with_whois()),
            group_thousands(analysis.personal_email())
        ),
    )
}

/// Extension — baseline squatting classes vs the homograph pool.
///
/// The paper situates IDN homographs within the squatting literature
/// (typo-, bit-, combo-squatting). This extension compares candidate-pool
/// sizes per class for the top brands, showing where the IDN attack surface
/// sits relative to the ASCII baselines.
pub fn ext_squatting(ctx: &ReproContext) -> String {
    use idnre_core::squatting::{self, SquattingClass};
    let enumerator = AvailabilityEnumerator::new();
    let brands: Vec<&idnre_datagen::Brand> = ctx.eco.brands.top(10).iter().collect();
    let mut table = Table::new(
        vec![
            "Brand",
            "homograph",
            "omission",
            "repetition",
            "transposition",
            "replacement",
            "insertion",
            "bitsquat",
            "combosquat",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    let mut totals = [0usize; 8];
    for brand in &brands {
        let homograph = enumerator.homographic(&brand.domain()).len();
        let pools = squatting::pool_sizes(&brand.sld);
        let mut row = vec![brand.domain(), homograph.to_string()];
        totals[0] += homograph;
        for (i, class) in SquattingClass::ALL.iter().enumerate() {
            let size = pools
                .iter()
                .find(|(c, _)| c == class)
                .map(|&(_, n)| n)
                .unwrap_or(0);
            row.push(size.to_string());
            totals[i + 1] += size;
        }
        table.row(row);
    }
    section(
        "Extension — squatting-class candidate pools (top 10 brands)",
        "Related work (typo-/bit-/combo-squatting) provides the baselines; the homograph pool is the IDN-specific surface the paper adds.",
        format!(
            "{}\nTotals: homograph {}, typo classes {} (omission+repetition+transposition+replacement+insertion), bitsquat {}, combosquat {}.\n",
            table.render(),
            totals[0],
            totals[1] + totals[2] + totals[3] + totals[4] + totals[5],
            totals[6],
            totals[7]
        ),
    )
}

/// Extension — browser exposure of the registered homograph findings.
///
/// Crosses Section VI-B (the detected lookalikes) with Section VI-A (the
/// display policies): of the registered homographic IDNs the detector
/// found, how many does each policy family actually render in Unicode —
/// i.e. how many remain *deployable* against users of that browser?
pub fn ext_bypass(ctx: &ReproContext) -> String {
    use idnre_browser::{PolicyKind, Rendering};
    let policies = [
        ("Chrome mixed-script", PolicyKind::ChromeMixedScript),
        ("Firefox single-script", PolicyKind::FirefoxSingleScript),
        ("Punycode-always", PolicyKind::PunycodeAlways),
        ("Unicode-always (Sogou PC)", PolicyKind::UnicodeAlways),
    ];
    let mut table = Table::new(
        vec!["Policy", "Spoofs shown in Unicode", "Exposure"],
        vec![Align::Left, Align::Right, Align::Right],
    );
    let total = ctx.homographs.len() as u64;
    for (name, kind) in policies {
        let policy = kind.policy();
        let exposed = ctx
            .homographs
            .iter()
            .filter(|f| matches!(policy.display(&f.unicode), Rendering::Unicode(_)))
            .count() as u64;
        table.row(vec![
            name.to_string(),
            group_thousands(exposed),
            percent(exposed, total.max(1)),
        ]);
    }
    section(
        "Extension — browser exposure of registered homographic IDNs",
        "Most browsers responded to the 2017 attack, but single-script policies still render whole-script and diacritic spoofs; Unicode-always renders all of them.",
        format!(
            "{}\nDetected homographic IDNs evaluated: {}.\n",
            table.render(),
            group_thousands(total)
        ),
    )
}

/// Extension — beyond the one-character lower bound.
///
/// The paper notes its 42,671 candidates are "just the lower-bound, as only
/// one letter was replaced". This extension measures the next rung: the
/// two-character substitution pool for the top brands (capped enumeration).
pub fn ext_multichar(ctx: &ReproContext) -> String {
    let enumerator = AvailabilityEnumerator::new();
    let mut table = Table::new(
        vec![
            "Brand",
            "1-char pool",
            "1-char ≥0.95",
            "2-char pool (cap 3k)",
            "2-char ≥0.95",
        ],
        vec![
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for brand in ctx.eco.brands.top(5) {
        let domain = brand.domain();
        let singles = enumerator.generate(&domain);
        let singles_pass = singles.iter().filter(|c| c.ssim >= 0.95).count();
        let pairs = enumerator.generate_pairs(&domain, 3_000);
        let pairs_pass = pairs.iter().filter(|c| c.ssim >= 0.95).count();
        table.row(vec![
            domain,
            singles.len().to_string(),
            singles_pass.to_string(),
            pairs.len().to_string(),
            pairs_pass.to_string(),
        ]);
    }
    section(
        "Extension — multi-character substitution pools",
        "\"The number of IDNs we found so far is just the lower-bound, as only one letter was replaced\" (Section VI-D).",
        table.render(),
    )
}

/// Figure 8 — traffic to Type-1 semantic IDNs.
pub fn fig8(ctx: &ReproContext) -> String {
    let domains: Vec<&str> = ctx.semantic.iter().map(|f| f.domain.as_str()).collect();
    attack_traffic_figure(
        ctx,
        domains,
        "Figure 8 — ECDF of active time and query volume of semantic IDNs",
        "Type-1 IDNs average 735 active days and 1,562 queries — frequently visited, mostly 'sleeping'.",
    )
}
