//! The incremental epoch driver behind `repro --stream --epochs N`.
//!
//! One call to [`run_epochs`] plays the zone-diff loop end to end:
//!
//! 1. Stream-generate the base corpus and fold epoch 0 **cold** through an
//!    [`EpochState`] — every shard misses the partial cache, so the cold
//!    fold is exactly the one-shot scan, but it leaves the per-(shard,
//!    pass) partials resident.
//! 2. Per warm epoch: let the [`DaySimulator`] mutate the
//!    [`EpochCorpus`] overlay, grow the interned columns append-only over
//!    the new tail (the epoch high-water-mark rule — existing symbol ids
//!    never move), extend the resident [`SkeletonCache`] past the same
//!    high-water mark, and re-fold **only the dirty shards**.
//! 3. Shadow every incremental epoch with a from-scratch rebuild over the
//!    same effective corpus, render both reports, and panic unless they
//!    are byte-identical — the proof-of-equivalence contract, enforced on
//!    every run, not just under `cargo test`.
//!
//! Both legs share the grown columns and skeleton cache, so the measured
//! [`EpochRun::speedup`] isolates the fold itself: resident partials
//! versus re-folding every shard.

use crate::passes::{self, ScanPlan};
use crate::ReproContext;
use idnre_analyze::{DeltaStream, EpochSource, EpochState, EpochStats};
use idnre_arena::CorpusColumns;
use idnre_blacklist::Source;
use idnre_core::{HomographDetector, SemanticDetector, SkeletonCache};
use idnre_datagen::{
    DaySimulator, EcosystemConfig, Ecosystem, EpochCorpus, EpochDelta, EpochDeltaKind,
};
use idnre_langid::{Classifier, Language};
use idnre_telemetry::{NoopRecorder, Recorder, SpanCtx};
use std::sync::Arc;
use std::time::Instant;

/// Day-simulator event rate `repro --epochs` defaults to: ~2% of the base
/// corpus churns per epoch, the ballpark of public new-gTLD zone-file
/// day-over-day diffs.
pub const DEFAULT_CHURN_PER_MILLE: u64 = 20;

/// One warm epoch's fold accounting: the engine's shard bookkeeping plus
/// the wall-clock of the incremental fold and of its shadow rebuild.
#[derive(Debug, Clone)]
pub struct EpochBenchStats {
    /// Zone-diff events the day simulator emitted this epoch.
    pub deltas: usize,
    /// Live (non-hole) IDN records after applying the epoch's deltas.
    pub live_idn: u64,
    /// Records the shadow rebuild folded: the full IDN index space
    /// (holes included — the shard grid covers them) plus the non-IDN
    /// population.
    pub index_space: u64,
    /// The engine's dirty/clean/refolded accounting for the epoch.
    pub stats: EpochStats,
    /// Wall-clock of the incremental fold (dirty shards only).
    pub incremental_ns: u64,
    /// Wall-clock of the from-scratch shadow rebuild over the same corpus.
    pub rebuild_ns: u64,
}

/// The result of [`run_epochs`]: per-epoch accounting, the cold epoch-0
/// fold, and the final epoch's rendered report.
#[derive(Debug)]
pub struct EpochRun {
    /// Shard size every fold (incremental and shadow) ran at.
    pub shard_size: usize,
    /// Epoch 0: the cold fold that seeds the partial cache. Every shard
    /// is a cache miss, so `refolded == total_shards`.
    pub initial: EpochStats,
    /// Warm epochs `1..=N`, in order.
    pub epochs: Vec<EpochBenchStats>,
    /// The final epoch's full report (byte-identical to a from-scratch
    /// rebuild over the same effective corpus — asserted per epoch).
    pub final_report: String,
}

impl EpochRun {
    /// Shards in the final epoch's grid.
    pub fn total_shards(&self) -> u64 {
        self.epochs
            .last()
            .map(|e| e.stats.total_shards)
            .unwrap_or(self.initial.total_shards)
    }

    /// Shards re-folded across all warm epochs.
    pub fn total_refolded(&self) -> u64 {
        self.epochs.iter().map(|e| e.stats.refolded).sum()
    }

    /// Records the incremental legs actually observed across warm epochs.
    pub fn refolded_records(&self) -> u64 {
        self.epochs.iter().map(|e| e.stats.refolded_records).sum()
    }

    /// Records the shadow rebuilds folded across warm epochs.
    pub fn rebuild_records(&self) -> u64 {
        self.epochs.iter().map(|e| e.index_space).sum()
    }

    /// Summed incremental fold wall-clock across warm epochs.
    pub fn incremental_ns(&self) -> u64 {
        self.epochs.iter().map(|e| e.incremental_ns).sum()
    }

    /// Summed shadow-rebuild wall-clock across warm epochs.
    pub fn rebuild_ns(&self) -> u64 {
        self.epochs.iter().map(|e| e.rebuild_ns).sum()
    }

    /// Rebuild wall over incremental wall, summed across warm epochs.
    pub fn speedup(&self) -> f64 {
        let incremental = self.incremental_ns().max(1);
        self.rebuild_ns() as f64 / incremental as f64
    }
}

/// Appends this epoch's new registrations to the interned columns and
/// flips the malicious bit for lagged blacklist listings, exactly
/// mirroring what [`passes::build_columns`] would have derived for the
/// same records: same label split, same blacklist verdict bits, same
/// per-label language classification. Columns only ever grow — the
/// [`idnre_arena::ColumnsMark`] taken before the epoch must report
/// monotonic growth after it. Public so adversarial delta-stream tests
/// can drive the engine with hand-built overlays.
pub fn grow_columns(
    columns: &mut CorpusColumns,
    overlay: &EpochCorpus<'_>,
    eco: &Ecosystem,
    deltas: &[EpochDelta],
) {
    let base = overlay.base_idn_len() as usize;
    let have = columns.mark().rows;
    debug_assert!(have >= base, "columns shorter than the base corpus");
    for reg in &overlay.appended()[have - base..] {
        let sld_len = reg.unicode.find('.').unwrap_or(reg.unicode.len());
        let sld = &reg.unicode[..sld_len];
        let verdict = eco.blacklist.verdict(&reg.domain);
        columns.push_row(
            sld,
            &reg.tld,
            reg.malicious.is_some(),
            reg.language != Language::Unknown,
            verdict.contains(&Source::VirusTotal),
            verdict.contains(&Source::Qihoo360),
            verdict.contains(&Source::Baidu),
            |label| Classifier::global().classify(label).id(),
        );
    }
    for delta in deltas {
        if delta.kind == EpochDeltaKind::Blacklist {
            columns.set_malicious(delta.index as usize, true);
        }
    }
}

/// Panics with a compact diff location unless the incremental and shadow
/// reports are byte-identical. The reports are multi-kilobyte; quoting
/// them whole would bury the divergence, so only the first differing
/// offset and its context lines are shown.
fn assert_reports_match(epoch: u64, incremental: &str, rebuild: &str) {
    if incremental == rebuild {
        return;
    }
    let a = incremental.as_bytes();
    let b = rebuild.as_bytes();
    let at = a
        .iter()
        .zip(b.iter())
        .position(|(x, y)| x != y)
        .unwrap_or(a.len().min(b.len()));
    let context = |s: &str| {
        let lo = s[..at.min(s.len())].rfind('\n').map_or(0, |i| i + 1);
        let hi = s[lo..].find('\n').map_or(s.len(), |i| lo + i);
        s[lo..hi].to_string()
    };
    panic!(
        "epoch {epoch}: incremental report diverges from rebuild at byte {at} \
         (incremental {} bytes, rebuild {} bytes)\n  incremental: {:?}\n  rebuild:     {:?}",
        a.len(),
        b.len(),
        context(incremental),
        context(rebuild),
    );
}

/// Runs the full incremental-epoch loop: a cold epoch-0 fold, then
/// `epochs` simulated zone-diff days at `churn_per_mille` (events per
/// thousand base records per epoch), re-folding only dirty shards and
/// shadow-rebuilding every epoch to prove byte-equivalence.
///
/// Engine telemetry (the `analyze.epoch` spans, `epoch.shards.*`
/// counters, resident-partials gauge) goes to `recorder`; the shadow
/// rebuilds and report renders run against a [`NoopRecorder`] so the
/// session trace reflects only the incremental leg.
pub fn run_epochs(
    config: &EcosystemConfig,
    shard_size: usize,
    epochs: u64,
    churn_per_mille: u64,
    recorder: Arc<dyn Recorder>,
) -> EpochRun {
    let threads = config.threads;
    let mut span = recorder.span_at("build.ecosystem", SpanCtx::ROOT, 0);
    let (eco, corpus) =
        idnre_datagen::generate_streamed_traced(config, shard_size, &*recorder, span.ctx());
    span.add_records(corpus.idn_len() + corpus.non_idn_len());
    drop(span);

    let mut overlay = EpochCorpus::new(&corpus);
    let mut simulator = DaySimulator::new(churn_per_mille);
    let mut state = EpochState::new(shard_size);

    let brand_domains: Vec<String> = eco.brands.iter().map(|b| b.domain()).collect();
    let detector = HomographDetector::new(&brand_domains, 0.95);
    let semantic_detector = SemanticDetector::new(&brand_domains);
    let table3_wanted = passes::table3_wanted(&eco.whois);
    let fig6_candidates = passes::fig6_candidates(eco.brands.top(30));

    // Columns and skeletons are built once over the base corpus and then
    // only ever extended past their high-water marks; both the
    // incremental and the shadow legs borrow the same instances, so the
    // speedup below measures the fold, not detector precompute.
    let mut columns = {
        let source = EpochSource::new(&overlay);
        passes::build_columns(
            &source,
            &eco.blacklist,
            shard_size,
            threads,
            &*recorder,
            SpanCtx::ROOT,
        )
    };
    let mut skeletons = SkeletonCache::build(&columns, threads);

    // Epoch 0: cold fold. Every shard misses the cache; the fold is the
    // ordinary one-shot scan that happens to leave its partials resident.
    let (homographs, semantic, outputs, initial) = {
        let source = EpochSource::new(&overlay);
        let plan = ScanPlan::with_homograph_cache(
            &detector,
            &semantic_detector,
            &columns,
            &eco.pdns,
            table3_wanted.clone(),
            fig6_candidates.clone(),
            &skeletons,
        );
        plan.run_epoch(
            &mut state,
            &source,
            threads,
            &DeltaStream::new(),
            &*recorder,
            SpanCtx::ROOT,
        )
    };
    recorder.gauge_max(idnre_datagen::PEAK_RESIDENT_RECORDS, corpus.gauge().peak());

    let mut ctx = ReproContext {
        eco,
        homographs,
        semantic,
        outputs,
        recorder: Arc::new(NoopRecorder),
        health: None,
        mining: None,
    };
    let mut final_report = ctx.full_report();
    let mut per_epoch = Vec::with_capacity(epochs as usize);

    for epoch in 1..=epochs {
        let raw_deltas = simulator.advance(&mut overlay, epoch);
        let mark = columns.mark();
        grow_columns(&mut columns, &overlay, &ctx.eco, &raw_deltas);
        assert!(
            mark.grew_monotonically_to(&columns.mark()),
            "epoch {epoch}: columns shrank — the append-only contract broke"
        );
        skeletons.extend_to(&columns, threads);
        let deltas = DeltaStream::from_epoch_deltas(&raw_deltas);
        let source = EpochSource::new(&overlay);

        // Incremental leg: re-fold only the shards the deltas dirtied.
        let plan = ScanPlan::with_homograph_cache(
            &detector,
            &semantic_detector,
            &columns,
            &ctx.eco.pdns,
            table3_wanted.clone(),
            fig6_candidates.clone(),
            &skeletons,
        );
        let started = Instant::now();
        let (homographs, semantic, outputs, stats) =
            plan.run_epoch(&mut state, &source, threads, &deltas, &*recorder, SpanCtx::ROOT);
        let incremental_ns = started.elapsed().as_nanos() as u64;
        ctx.homographs = homographs;
        ctx.semantic = semantic;
        ctx.outputs = outputs;
        let incremental_report = ctx.full_report();

        // Shadow leg: fold every shard of the same effective corpus from
        // scratch, exactly as a batch rebuild would.
        let plan = ScanPlan::with_homograph_cache(
            &detector,
            &semantic_detector,
            &columns,
            &ctx.eco.pdns,
            table3_wanted.clone(),
            fig6_candidates.clone(),
            &skeletons,
        );
        let started = Instant::now();
        let (homographs, semantic, outputs, _bucket) =
            plan.run_at(&source, shard_size, threads, &NoopRecorder, SpanCtx::NONE);
        let rebuild_ns = started.elapsed().as_nanos() as u64;
        ctx.homographs = homographs;
        ctx.semantic = semantic;
        ctx.outputs = outputs;
        let rebuild_report = ctx.full_report();

        assert_reports_match(epoch, &incremental_report, &rebuild_report);
        per_epoch.push(EpochBenchStats {
            deltas: raw_deltas.len(),
            live_idn: overlay.live_idn_len(),
            index_space: overlay.idn_index_space() + corpus.non_idn_len(),
            stats,
            incremental_ns,
            rebuild_ns,
        });
        final_report = incremental_report;
    }

    EpochRun {
        shard_size,
        initial,
        epochs: per_epoch,
        final_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_telemetry::NoopRecorder;

    fn config(scale: u64) -> EcosystemConfig {
        EcosystemConfig {
            scale,
            ..EcosystemConfig::default()
        }
    }

    #[test]
    fn cold_epoch_matches_the_streamed_one_shot_build() {
        // Epoch 0 with no deltas is the ordinary streamed pipeline: the
        // epoch engine's report must equal ReproContext::build_streamed's
        // byte for byte.
        let cfg = config(4000);
        let run = run_epochs(&cfg, 64, 0, 20, Arc::new(NoopRecorder));
        let ctx = ReproContext::build_streamed(&cfg, 64, Arc::new(NoopRecorder));
        assert_eq!(run.final_report, ctx.full_report());
        assert_eq!(run.initial.refolded, run.initial.total_shards);
        assert!(run.epochs.is_empty());
    }

    #[test]
    fn warm_epochs_refold_a_strict_subset() {
        let run = run_epochs(&config(4000), 64, 3, 25, Arc::new(NoopRecorder));
        assert_eq!(run.epochs.len(), 3);
        for epoch in &run.epochs {
            assert!(epoch.stats.refolded < epoch.stats.total_shards);
            assert!(epoch.deltas > 0);
        }
        // run_epochs itself asserted per-epoch byte-equivalence; the run
        // completing is the proof. Pin the accounting invariants on top.
        assert!(run.total_refolded() >= run.epochs.len() as u64);
        assert!(run.speedup() > 0.0);
    }
}
