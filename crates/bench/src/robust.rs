//! Degrade-and-continue: fault-injected ingest and survey harnesses, the
//! error budget that grades the run, and the "Run health" report section.
//!
//! The strict pipeline treats every input as pristine and every query as
//! answered; this module is the other half of the reproduction story. A
//! seeded [`FaultPlan`] corrupts a slice of the zone and WHOIS corpora and
//! makes a slice of crawl attempts fail; the lenient parsers and the retry
//! executor absorb what they can; whatever is genuinely lost lands in an
//! [`ErrorBudget`] whose verdict — clean, degraded, budget-exceeded —
//! becomes the process exit code. Everything here is driven by virtual
//! time and stateless hashes, so a fixed fault spec replays byte-for-byte
//! across runs *and* across worker-thread counts.

use idnre_crawler::{
    Crawler, FaultContext, ResolutionOutcome, UsageCategory, ATTEMPTS_HISTOGRAM, FAULT_COUNTERS,
    OUTCOME_COUNTERS, RETRY_COUNTERS, SCHED_COUNTERS, SCHED_LATENCY_HISTOGRAM, USAGE_COUNTERS,
};
use idnre_datagen::Ecosystem;
use idnre_fault::{ErrorBudget, FaultPlan, RetryPolicy, RunStatus, SimClock};
use idnre_sched::{SchedConfig, SchedStats};
use idnre_telemetry::{Recorder, SpanCtx};
use idnre_whois::{CrawlStats, ServerPolicy, WhoisCrawler, CRAWL_COUNTERS};
use idnre_zonefile::{parse_zone_lenient, write_zone, Zone};

/// How a faulted run is configured: the fault schedule, the retry
/// discipline, and how many survey worker threads to use (the results are
/// identical for any thread count; threads only change wall time).
#[derive(Debug, Clone, Copy)]
pub struct FaultSetup {
    /// Which attempts and records fail, and how often.
    pub plan: FaultPlan,
    /// Attempts, backoff and deadline per crawl target.
    pub policy: RetryPolicy,
    /// Survey worker threads (clamped to 1..=64).
    pub threads: usize,
    /// When set, the crawl survey runs through the event-driven
    /// scheduler (bounded window, rate limits, breakers, load shedding)
    /// instead of the per-domain synchronous schedules.
    pub sched: Option<SchedConfig>,
}

impl FaultSetup {
    /// A setup with the default retry policy, on the machine's available
    /// parallelism.
    pub fn from_plan(plan: FaultPlan) -> Self {
        FaultSetup {
            plan,
            policy: RetryPolicy::default(),
            threads: idnre_par::default_threads(),
            sched: None,
        }
    }

    /// Enables the scheduled crawl survey, carrying this setup's retry
    /// policy into the scheduler configuration.
    pub fn with_sched(self, sched: SchedConfig) -> Self {
        FaultSetup {
            sched: Some(SchedConfig {
                policy: self.policy,
                ..sched
            }),
            ..self
        }
    }
}

/// What a lenient ingest stage attempted and lost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records (zone lines) attempted.
    pub attempted: u64,
    /// Records skipped as unparseable.
    pub skipped: u64,
}

impl IngestStats {
    /// Fraction that survived, per mille (1000 when nothing was attempted).
    pub fn coverage_per_mille(&self) -> u64 {
        ((self.attempted - self.skipped.min(self.attempted)) * 1000)
            .checked_div(self.attempted)
            .unwrap_or(1000)
    }
}

/// Deterministic aggregate of a fault-injected crawl survey. Every field
/// is derived from seeded hashes and virtual clocks, so two runs with the
/// same [`FaultSetup`] produce `==` values regardless of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurveyStats {
    /// Domains crawled.
    pub domains: u64,
    /// DNS attempts performed across all schedules.
    pub attempts: u64,
    /// Retries performed (DNS + HTTP).
    pub retries: u64,
    /// Schedules that ended exhausted (no terminal success).
    pub exhausted: u64,
    /// Schedules cut short by the per-target deadline.
    pub deadline_hit: u64,
    /// Faults injected across all attempts.
    pub faults_injected: u64,
    /// Domains whose terminal verdict was manufactured by a fault.
    pub terminal_faulted: u64,
    /// Virtual backoff slept, in nanoseconds.
    pub backoff_nanos: u64,
    /// Virtual time consumed, in nanoseconds.
    pub elapsed_nanos: u64,
    /// Resolution outcomes in [`OUTCOME_COUNTERS`] order.
    pub outcomes: [u64; 5],
    /// Usage categories in [`UsageCategory::ALL`] order.
    pub usage: [u64; 7],
}

impl SurveyStats {
    fn merge(&mut self, other: &SurveyStats) {
        self.domains += other.domains;
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.exhausted += other.exhausted;
        self.deadline_hit += other.deadline_hit;
        self.faults_injected += other.faults_injected;
        self.terminal_faulted += other.terminal_faulted;
        self.backoff_nanos += other.backoff_nanos;
        self.elapsed_nanos += other.elapsed_nanos;
        for i in 0..self.outcomes.len() {
            self.outcomes[i] += other.outcomes[i];
        }
        for i in 0..self.usage.len() {
            self.usage[i] += other.usage[i];
        }
    }
}

fn outcome_index(outcome: ResolutionOutcome) -> usize {
    match outcome {
        ResolutionOutcome::Resolved(_) => 0,
        ResolutionOutcome::NxDomain => 1,
        ResolutionOutcome::Refused => 2,
        ResolutionOutcome::ServFail => 3,
        _ => 4, // Timeout (and any future outcome folds into the slowest bin)
    }
}

fn usage_index(category: UsageCategory) -> usize {
    UsageCategory::ALL
        .iter()
        .position(|&c| c == category)
        .unwrap_or(0)
}

/// The terminal health of one faulted run: what each stage attempted and
/// lost, the error budget's accounting, and the exit-code verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunHealth {
    /// Fault profile name.
    pub profile: &'static str,
    /// Replay seed.
    pub seed: u64,
    /// Retry policy the survey ran under.
    pub policy: RetryPolicy,
    /// Zone-file ingest accounting.
    pub zones: IngestStats,
    /// WHOIS crawl accounting.
    pub whois: CrawlStats,
    /// Crawl survey accounting.
    pub survey: SurveyStats,
    /// Records the budget saw succeed.
    pub ok: u64,
    /// Records the budget saw fail (fault-layer damage only).
    pub errors: u64,
    /// Records the scheduler deliberately shed (counted as lost coverage,
    /// not as errors).
    pub shed: u64,
    /// The budget's allowance, per mille.
    pub allowed_per_mille: u32,
    /// Observed error rate, per mille.
    pub error_per_mille: u64,
    /// Scheduler accounting, when the survey ran through the event-driven
    /// scheduler.
    pub sched: Option<SchedStats>,
    /// The verdict that becomes the process exit code.
    pub status: RunStatus,
}

impl RunHealth {
    /// Folds the per-stage accounting and the budget's verdict into the
    /// run's terminal health.
    pub fn new(
        setup: &FaultSetup,
        zones: IngestStats,
        whois: CrawlStats,
        survey: SurveyStats,
        budget: &ErrorBudget,
    ) -> Self {
        Self::with_sched(setup, zones, whois, survey, budget, None)
    }

    /// [`RunHealth::new`] with the scheduler's accounting attached (the
    /// scheduled-survey path).
    pub fn with_sched(
        setup: &FaultSetup,
        zones: IngestStats,
        whois: CrawlStats,
        survey: SurveyStats,
        budget: &ErrorBudget,
        sched: Option<SchedStats>,
    ) -> Self {
        RunHealth {
            profile: setup.plan.profile().name,
            seed: setup.plan.seed(),
            policy: setup.policy,
            zones,
            whois,
            survey,
            ok: budget.ok(),
            errors: budget.errors(),
            shed: budget.shed(),
            allowed_per_mille: budget.allowed_per_mille(),
            error_per_mille: budget.error_per_mille(),
            sched,
            status: budget.status(),
        }
    }

    /// Renders the "Run health" markdown section appended to faulted
    /// reports. Deterministic for a fixed fault spec: every number comes
    /// from seeded hashes and virtual clocks.
    pub fn render(&self) -> String {
        let whois_attempted = self.whois.parsed
            + self.whois.blocked
            + self.whois.parse_failures
            + self.whois.no_server;
        let whois_per_mille = (self.whois.parsed as u64 * 1000)
            .checked_div(whois_attempted as u64)
            .unwrap_or(1000);
        let mut out = String::new();
        out.push_str("## Run health\n\n");
        out.push_str(&format!(
            "Fault profile `{}`, seed {:#x}; retry policy: {} attempts, \
             {} ms base backoff ×{}, {} s per-target deadline. Partial results \
             below are annotated with coverage instead of being discarded.\n\n",
            self.profile,
            self.seed,
            self.policy.max_attempts,
            self.policy.base_backoff_nanos / 1_000_000,
            self.policy.backoff_multiplier,
            self.policy.deadline_nanos / 1_000_000_000,
        ));
        out.push_str("| Stage | Attempted | Lost | Coverage |\n");
        out.push_str("|---|---:|---:|---:|\n");
        out.push_str(&format!(
            "| Zone ingest (lenient) | {} lines | {} skipped | {} |\n",
            self.zones.attempted,
            self.zones.skipped,
            per_mille_pct(self.zones.coverage_per_mille()),
        ));
        out.push_str(&format!(
            "| WHOIS crawl | {} domains | {} blocked, {} unparsed, {} no server | {} |\n",
            whois_attempted,
            self.whois.blocked,
            self.whois.parse_failures,
            self.whois.no_server,
            per_mille_pct(whois_per_mille),
        ));
        let survey_ok_per_mille = ((self.survey.domains - self.survey.terminal_faulted) * 1000)
            .checked_div(self.survey.domains)
            .unwrap_or(1000);
        out.push_str(&format!(
            "| Crawl survey | {} domains | {} fault-terminal | {} |\n\n",
            self.survey.domains,
            self.survey.terminal_faulted,
            per_mille_pct(survey_ok_per_mille),
        ));
        out.push_str(&format!(
            "Retry schedule: {} DNS attempts over {} domains, {} retries, \
             {} schedules exhausted, {} deadline-cut, {} faults injected, \
             {} ms virtual backoff.\n\n",
            self.survey.attempts,
            self.survey.domains,
            self.survey.retries,
            self.survey.exhausted,
            self.survey.deadline_hit,
            self.survey.faults_injected,
            self.survey.backoff_nanos / 1_000_000,
        ));
        if let Some(sched) = &self.sched {
            out.push_str(&format!(
                "Crawl scheduler: {} arrivals, {} attempts, {} executed / \
                 {} shed ({} admission, {} breaker-open, {} starved), \
                 {} rate-deferred; breakers opened {} / half-open {} / \
                 reclosed {}; peak queue {} / peak in-flight {}; max query \
                 latency {} ms.\n\n",
                sched.arrivals,
                sched.attempts,
                sched.arrivals - sched.shed_total(),
                sched.shed_total(),
                sched.shed_admission,
                sched.shed_breaker,
                sched.shed_starved,
                sched.deferred,
                sched.breaker_opened,
                sched.breaker_half_open,
                sched.breaker_reclosed,
                sched.peak_queue_depth,
                sched.peak_inflight,
                sched.max_latency_nanos / 1_000_000,
            ));
        }
        out.push_str(&format!(
            "Error budget: {} ok / {} errors / {} shed — {}‰ observed \
             against {}‰ allowed → **{}** (exit code {}).\n",
            self.ok,
            self.errors,
            self.shed,
            self.error_per_mille,
            self.allowed_per_mille,
            self.status.label(),
            self.status.exit_code(),
        ));
        out
    }
}

fn per_mille_pct(per_mille: u64) -> String {
    format!("{}.{}%", per_mille / 10, per_mille % 10)
}

/// Round-trips the generated zones through master-file text with seeded
/// line corruption, then re-ingests them leniently: corrupted lines are
/// skipped and accounted (`zone.lenient.skipped`, the error budget), and
/// the salvaged zones feed the crawl survey. Strict parsing would abort
/// on the first corrupt line; this is the degrade-and-continue path.
///
/// Each zone is one shard on the work-queue executor: corruption is a
/// stateless hash of `(origin, line)` and the salvaged zones come back in
/// input order, so the result is byte-identical for every `threads`.
pub fn ingest_zones_faulted(
    zones: &[Zone],
    plan: &FaultPlan,
    budget: &ErrorBudget,
    threads: usize,
    recorder: &dyn Recorder,
) -> (Vec<Zone>, IngestStats) {
    ingest_zones_faulted_at(zones, plan, budget, threads, recorder, SpanCtx::NONE)
}

/// [`ingest_zones_faulted`], parented at `parent` in the span tree.
pub fn ingest_zones_faulted_at(
    zones: &[Zone],
    plan: &FaultPlan,
    budget: &ErrorBudget,
    threads: usize,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> (Vec<Zone>, IngestStats) {
    let mut span = recorder.span_at("zone.ingest.lenient", parent, 0);
    let per_zone = idnre_par::par_map(zones, threads, |zone| {
        let origin = zone.origin.to_string();
        let text: String = write_zone(zone)
            .lines()
            .enumerate()
            .map(|(i, line)| {
                // Directives stay intact: losing `$ORIGIN` would poison
                // every following line, which is not the failure mode a
                // per-record corruption models.
                if !line.starts_with('$') && plan.corrupts("zone", &format!("{origin}:{i}")) {
                    "xn--damaged IN GARBLED ???\n".to_string()
                } else {
                    format!("{line}\n")
                }
            })
            .collect();
        let lenient = parse_zone_lenient(&origin, &text);
        budget.record_ok(lenient.parsed() as u64);
        budget.record_error(lenient.errors.len() as u64);
        let shard_stats = IngestStats {
            attempted: lenient.attempted as u64,
            skipped: lenient.errors.len() as u64,
        };
        (lenient.zone, shard_stats)
    });
    let mut stats = IngestStats::default();
    let mut salvaged = Vec::with_capacity(zones.len());
    for (zone, shard_stats) in per_zone {
        stats.attempted += shard_stats.attempted;
        stats.skipped += shard_stats.skipped;
        salvaged.push(zone);
    }
    recorder.add("zone.lenient.attempted", stats.attempted);
    recorder.add("zone.lenient.skipped", stats.skipped);
    span.add_records(stats.attempted);
    (salvaged, stats)
}

/// Replays the paper's WHOIS collection over the registered IDN corpus so
/// the ≈50% coverage story is *observable*: registrations the generator
/// covered serve well-formed responses; uncovered ones split between
/// registrar blocks and unparseable dialects (the paper's two loss
/// reasons). With a fault plan, a slice of the covered responses arrives
/// corrupted — those parse failures are the fault layer's damage and feed
/// the error budget. Telemetry lands in [`CRAWL_COUNTERS`]
/// (`whois.parse.failed` among them) plus `whois.coverage.per_mille`.
pub fn whois_survey(
    eco: &Ecosystem,
    plan: Option<&FaultPlan>,
    budget: Option<&ErrorBudget>,
    recorder: &dyn Recorder,
) -> CrawlStats {
    whois_survey_view(
        &crate::CorpusView::Batch(eco),
        eco,
        plan,
        budget,
        recorder,
        SpanCtx::NONE,
    )
}

/// [`whois_survey`] over an arbitrary corpus view: the batch view crawls
/// the whole IDN population as one batch; the streamed view crawls one
/// regenerated shard at a time against the same (stateful) crawler, which
/// is exactly additive — the stats, counters and budget are identical to
/// the batch run.
pub(crate) fn whois_survey_view(
    view: &crate::CorpusView<'_>,
    eco: &Ecosystem,
    plan: Option<&FaultPlan>,
    budget: Option<&ErrorBudget>,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> CrawlStats {
    let mut span = recorder.span_at("whois.survey", parent, 0);
    recorder.preregister(&CRAWL_COUNTERS);
    let mut crawler = WhoisCrawler::new();
    crawler.add_server(
        "open-registrar",
        ServerPolicy {
            rate_limit: u32::MAX,
            blocks_crawlers: false,
            // Parse success is decided by response content here, not a
            // second lottery.
            unparseable_per_mille: 0,
        },
    );
    crawler.add_server("blocking-registrar", ServerPolicy::blocking());

    let covered: std::collections::HashSet<&str> =
        eco.whois.iter().map(|r| r.domain.as_str()).collect();
    let mut stats = CrawlStats::default();
    view.for_each_idn_shard(&mut |records| {
        let batch: Vec<(&str, String)> = records
            .iter()
            .map(|reg| {
                let domain = reg.domain.as_str();
                if covered.contains(domain) {
                    let corrupted = plan.is_some_and(|p| p.corrupts("whois", domain));
                    if let Some(budget) = budget {
                        if corrupted {
                            budget.record_error(1);
                        } else {
                            budget.record_ok(1);
                        }
                    }
                    if corrupted {
                        // A mangled transfer: no parseable field survives.
                        (
                            "open-registrar",
                            "@@ %% corrupted transfer %% @@\n".to_string(),
                        )
                    } else {
                        (
                            "open-registrar",
                            format!(
                                "Domain Name: {domain}\nRegistrar: {}\nName Server: ns1.{domain}\n",
                                reg.registrar
                            ),
                        )
                    }
                } else {
                    // The generator withheld WHOIS here; attribute the gap to
                    // the paper's two reasons (blocks dominate).
                    let roll = crate::fnv1a(domain.as_bytes()) % 5;
                    if roll < 3 {
                        ("blocking-registrar", format!("Domain Name: {domain}\n"))
                    } else {
                        ("open-registrar", "≡≡ unsupported dialect ≡≡\n".to_string())
                    }
                }
            })
            .collect();
        let (_, shard_stats) =
            crawler.crawl_batch_recorded(batch.iter().map(|(s, r)| (*s, r.as_str())), recorder);
        stats.parsed += shard_stats.parsed;
        stats.blocked += shard_stats.blocked;
        stats.parse_failures += shard_stats.parse_failures;
        stats.no_server += shard_stats.no_server;
    });
    let attempted = stats.parsed + stats.blocked + stats.parse_failures + stats.no_server;
    if attempted > 0 {
        recorder.add(
            "whois.coverage.per_mille",
            stats.parsed as u64 * 1000 / attempted as u64,
        );
    }
    span.add_records(attempted as u64);
    stats
}

/// The fault-injected counterpart of the plain crawl survey: builds the
/// crawler from the (salvaged) zones, then crawls every registered domain
/// under the retry schedule on `threads` workers. Each domain gets its
/// own virtual clock and a stateless slice of the fault plan, so the
/// aggregate — and every counter — is identical for any thread count.
/// Domains whose terminal verdict was fault-made count against `budget`.
pub fn crawl_survey_faulted(
    eco: &Ecosystem,
    zones: &[Zone],
    ctx: &FaultContext,
    threads: usize,
    budget: &ErrorBudget,
    recorder: &dyn Recorder,
) -> SurveyStats {
    crawl_survey_faulted_at(eco, zones, ctx, threads, budget, recorder, SpanCtx::NONE)
}

/// [`crawl_survey_faulted`], parented at `parent` in the span tree. The
/// population is split into fixed-size slices
/// ([`idnre_crawler::SURVEY_SLICE_RECORDS`] domains each) rather than
/// thread-derived chunks, and every slice runs under its own
/// [`idnre_crawler::survey_slice_span`] — so the survey's subtree has the
/// same shape at any worker count.
pub fn crawl_survey_faulted_at(
    eco: &Ecosystem,
    zones: &[Zone],
    ctx: &FaultContext,
    threads: usize,
    budget: &ErrorBudget,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> SurveyStats {
    let mut span = recorder.span_at("crawl.survey.faulted", parent, 0);
    let mut crawler = Crawler::new();
    for zone in zones {
        crawler.add_zone(zone);
    }
    let population: Vec<&idnre_datagen::DomainRegistration> = eco
        .idn_registrations
        .iter()
        .chain(&eco.non_idn_registrations)
        .collect();
    for reg in &population {
        let (behavior, page) = crate::host_model(reg);
        if let Some(behavior) = behavior {
            crawler.set_host(&reg.domain, behavior, page);
        }
    }
    // Pre-register every counter and the attempts histogram so snapshot
    // ordering cannot depend on which worker thread touches a name first.
    recorder.preregister_groups(&[
        &OUTCOME_COUNTERS[..],
        &RETRY_COUNTERS[..],
        &FAULT_COUNTERS[..],
        &USAGE_COUNTERS[..],
    ]);
    recorder.preregister_stages(&[ATTEMPTS_HISTOGRAM, idnre_crawler::SURVEY_SLICE_SPAN]);

    let crawler = &crawler;
    let survey_ctx = span.ctx();
    let per_chunk = idnre_par::par_chunks(
        &population,
        threads,
        idnre_crawler::SURVEY_SLICE_RECORDS,
        |slice_index, chunk| {
            let mut slice_span =
                idnre_crawler::survey_slice_span(recorder, survey_ctx, slice_index as u64);
            slice_span.add_records(chunk.len() as u64);
            let mut local = SurveyStats::default();
            for reg in chunk {
                let mut clock = SimClock::new();
                let crawl = crawler.crawl_faulted(&reg.domain, ctx, &mut clock, recorder);
                local.domains += 1;
                local.attempts += u64::from(crawl.resolution.attempts);
                local.retries += u64::from(crawl.resolution.retries)
                    + u64::from(crawl.http_attempts.saturating_sub(1));
                local.exhausted += u64::from(crawl.resolution.exhausted);
                local.deadline_hit += u64::from(crawl.resolution.deadline_hit);
                local.faults_injected += u64::from(crawl.faults_injected);
                local.terminal_faulted += u64::from(crawl.terminal_faulted);
                local.backoff_nanos += crawl.resolution.backoff_nanos;
                local.elapsed_nanos += crawl.elapsed_nanos;
                local.outcomes[outcome_index(crawl.resolution.outcome)] += 1;
                local.usage[usage_index(crawl.category)] += 1;
                if crawl.terminal_faulted {
                    budget.record_error(1);
                } else {
                    budget.record_ok(1);
                }
            }
            local
        },
    );
    let mut stats = SurveyStats::default();
    for local in &per_chunk {
        stats.merge(local);
    }
    span.add_records(stats.domains);
    stats
}

/// The event-driven counterpart of [`crawl_survey_faulted`]: the same
/// population, fault plan and host model, but each fixed-size slice runs
/// one deterministic scheduler instance (`idnre-sched`) — shared virtual
/// timeline, bounded in-flight window, per-nameserver rate limits and
/// circuit breakers, and priority-classed load shedding.
///
/// Accounting splits three ways on the error budget: executed domains
/// whose terminal verdict was fault-made are errors, other executed
/// domains are ok, and shed domains are recorded as shed (lost coverage
/// that never counts as error). Slices are fixed-size and each scheduler
/// is single-threaded, so the survey replays byte-identically across
/// worker-thread counts.
pub fn crawl_survey_scheduled(
    eco: &Ecosystem,
    zones: &[Zone],
    plan: &FaultPlan,
    config: &SchedConfig,
    threads: usize,
    budget: &ErrorBudget,
    recorder: &dyn Recorder,
) -> (SurveyStats, SchedStats) {
    crawl_survey_scheduled_at(
        eco,
        zones,
        plan,
        config,
        threads,
        budget,
        recorder,
        SpanCtx::NONE,
    )
}

/// [`crawl_survey_scheduled`], parented at `parent` in the span tree.
#[allow(clippy::too_many_arguments)]
pub fn crawl_survey_scheduled_at(
    eco: &Ecosystem,
    zones: &[Zone],
    plan: &FaultPlan,
    config: &SchedConfig,
    threads: usize,
    budget: &ErrorBudget,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> (SurveyStats, SchedStats) {
    let mut span = recorder.span_at("crawl.survey.sched", parent, 0);
    let mut crawler = Crawler::new();
    for zone in zones {
        crawler.add_zone(zone);
    }
    let population: Vec<&idnre_datagen::DomainRegistration> = eco
        .idn_registrations
        .iter()
        .chain(&eco.non_idn_registrations)
        .collect();
    for reg in &population {
        let (behavior, page) = crate::host_model(reg);
        if let Some(behavior) = behavior {
            crawler.set_host(&reg.domain, behavior, page);
        }
    }
    recorder.preregister_groups(&[
        &OUTCOME_COUNTERS[..],
        &RETRY_COUNTERS[..],
        &FAULT_COUNTERS[..],
        &USAGE_COUNTERS[..],
        &SCHED_COUNTERS[..],
    ]);
    recorder.preregister_stages(&[
        ATTEMPTS_HISTOGRAM,
        SCHED_LATENCY_HISTOGRAM,
        idnre_crawler::SCHED_SLICE_SPAN,
    ]);

    let crawler = &crawler;
    let survey_ctx = span.ctx();
    let per_chunk = idnre_par::par_chunks(
        &population,
        threads,
        idnre_crawler::SURVEY_SLICE_RECORDS,
        |slice_index, chunk| {
            let mut slice_span =
                idnre_crawler::sched_slice_span(recorder, survey_ctx, slice_index as u64);
            slice_span.add_records(chunk.len() as u64);
            let domains: Vec<&str> = chunk.iter().map(|reg| reg.domain.as_str()).collect();
            let out = crawler.crawl_slice_scheduled(&domains, plan, config, recorder);
            let mut local = SurveyStats::default();
            for crawl in &out.crawls {
                local.domains += 1;
                local.attempts += u64::from(crawl.attempts);
                local.retries += u64::from(crawl.retries);
                local.exhausted += u64::from(crawl.exhausted);
                local.deadline_hit += u64::from(crawl.deadline_hit);
                local.faults_injected += u64::from(crawl.faults_injected);
                local.terminal_faulted += u64::from(crawl.terminal_faulted);
                local.backoff_nanos += crawl.backoff_nanos;
                local.elapsed_nanos += crawl.latency_nanos;
                if let Some(outcome) = crawl.dns_outcome {
                    local.outcomes[outcome_index(outcome)] += 1;
                }
                if let Some(category) = crawl.category {
                    local.usage[usage_index(category)] += 1;
                }
                if crawl.shed.is_some() {
                    budget.record_shed(1);
                } else if crawl.terminal_faulted {
                    budget.record_error(1);
                } else {
                    budget.record_ok(1);
                }
            }
            (local, out.stats)
        },
    );
    let mut stats = SurveyStats::default();
    let mut sched = SchedStats::default();
    for (local, slice_sched) in &per_chunk {
        stats.merge(local);
        sched.merge(slice_sched);
    }
    span.add_records(stats.domains);
    (stats, sched)
}
