//! Zone-wide homograph portfolio mining: the two-pass skeleton-LSH plan
//! (ROADMAP item 3).
//!
//! The paper only checks IDNs against a fixed brand list because all-pairs
//! confusable search over the census was compute-bound. This module mines
//! confusable *pairs* among all registered domains instead, ShamFinder
//! style, in two passes over the interned corpus columns:
//!
//! - **Pass A** ([`BucketIndexPass`], an ordinary `AnalysisPass` fused
//!   into the main [`crate::passes::ScanPlan`] traversal) folds a
//!   [`BucketIndex`] keyed by the FNV hash of each domain's
//!   confusable-folded skeleton. The hash is assembled from precomputed
//!   pieces — one partial hash per *distinct* label, one folded suffix per
//!   TLD — so the per-record cost is a few table reads and an 8-byte hash
//!   continuation; the index stores packed [`LabelRef`]s, never strings.
//! - **Pass B** ([`PairMinePass`], an [`ItemPass`] driven by
//!   [`idnre_analyze::fold_items`]) re-scans only the **non-singleton**
//!   buckets: each bucket's members are rendered once, every in-bucket
//!   pair is SSIM-verified with the same [`pair_score`] kernel the brand
//!   detector uses, and verified pairs are clustered into squatter
//!   *portfolios* by a deterministic union-find keyed by symbol order,
//!   joined against WHOIS registrants and pDNS activity.
//!
//! Candidate generation therefore drops from `O(n²)` pairs to
//! `O(Σ bucket²)`; [`verified_pairs_exhaustive`] retains the all-pairs
//! oracle (capped, like `detect_exhaustive`) that pins the indexed result
//! to the exhaustive one and anchors the measured speedup in
//! `BENCH_pipeline.json`.
//!
//! Every structure here follows the fold/merge contract: bucket-index
//! merge is associative (first-occurrence key order, concatenated entry
//! vectors), pair partials concatenate in chunk order, and the union-find
//! root is always the minimum `(sld, tld)` member — so mined output is
//! byte-identical across thread counts and shard sizes.

use idnre_analyze::{fold_items, AnalysisPass, ItemPass, Merge, Observed, Population};
use idnre_arena::{fnv1a, BucketIndex, CorpusColumns, LabelRef};
use idnre_core::pair_score;
use idnre_datagen::Ecosystem;
use idnre_pdns::PdnsStore;
use idnre_render::{render_text, GrayImage};
use idnre_telemetry::{Recorder, SpanCtx};
use idnre_unicode::skeleton;
use std::collections::HashMap;

/// Ledger stage of the bucket-index fold (pass A).
pub const BUCKET_STAGE: &str = "analyze.pass.bucket_index";

/// Ledger stage of the pair-mining fold (pass B).
pub const PAIR_MINE_STAGE: &str = "analyze.pass.pair_mine";

/// Counters the pair miner tallies in its partial and flushes per chunk.
pub const MINE_COUNTERS: [&str; 3] = [
    "mine.pairs.candidates",
    "mine.pairs.skip.ascii",
    "mine.pairs.verified",
];

/// SSIM bar for a verified confusable pair — the paper's 0.95 homograph
/// threshold, unchanged.
pub const MINE_THRESHOLD: f64 = 0.95;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Continues an FNV-1a hash over more bytes (the label part is hashed
/// once per distinct label; the TLD suffix continues it per record).
#[inline]
fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Precomputed key material for one corpus: everything both passes need
/// to turn a column row into a bucket key or a display form without
/// re-deriving strings per record.
pub struct MiningPlan {
    /// Per distinct label: FNV-1a over its confusable-folded skeleton.
    label_hash: Vec<u64>,
    /// Per distinct label: whether it is pure ASCII (an ASCII label can
    /// only pair *with* an IDN, never with another ASCII label).
    label_ascii: Vec<bool>,
    /// Per TLD id: the folded `.tld` suffix bytes (decoded form, because
    /// display forms decode iTLDs too).
    tld_suffix: Vec<Vec<u8>>,
    /// Per TLD id: the decoded TLD, for reassembling display forms.
    tld_unicode: Vec<String>,
}

impl MiningPlan {
    /// Folds every distinct label's skeleton hash on `threads` workers.
    pub fn new(columns: &CorpusColumns, threads: usize) -> Self {
        let labels: Vec<&str> = columns.labels().iter().collect();
        let hashed = idnre_par::par_map(&labels, threads, |label| {
            if label.is_ascii() {
                // ASCII passes through the skeleton untouched.
                (fnv1a(label.as_bytes()), true)
            } else {
                (fnv1a(skeleton(label).as_bytes()), false)
            }
        });
        let (label_hash, label_ascii) = hashed.into_iter().unzip();
        let mut tld_suffix = Vec::new();
        let mut tld_unicode = Vec::new();
        for tld in columns.tlds().iter() {
            let decoded = idnre_idna::to_unicode(tld).unwrap_or_else(|_| tld.to_string());
            tld_suffix.push(skeleton(&format!(".{decoded}")).into_bytes());
            tld_unicode.push(decoded);
        }
        MiningPlan {
            label_hash,
            label_ascii,
            tld_suffix,
            tld_unicode,
        }
    }

    /// The bucket key of one column row: the FNV-1a hash of the full
    /// folded display form, assembled from the precomputed pieces.
    #[inline]
    fn key(&self, sld: idnre_arena::Symbol, tld: u16) -> u64 {
        fnv1a_extend(
            self.label_hash[sld.index()],
            &self.tld_suffix[usize::from(tld)],
        )
    }

    /// The display form behind a [`LabelRef`].
    fn unicode_of(&self, columns: &CorpusColumns, member: LabelRef) -> String {
        format!(
            "{}.{}",
            columns.labels().resolve(member.sld),
            self.tld_unicode[usize::from(member.tld)]
        )
    }
}

/// Pass A: folds the skeleton-LSH bucket index during the main corpus
/// traversal (IDN population only — the columns hold one row per IDN).
pub struct BucketIndexPass<'a> {
    columns: &'a CorpusColumns,
    plan: &'a MiningPlan,
}

impl<'a> BucketIndexPass<'a> {
    /// Buckets rows of `columns` under keys from `plan`.
    pub fn new(columns: &'a CorpusColumns, plan: &'a MiningPlan) -> Self {
        BucketIndexPass { columns, plan }
    }
}

/// Newtype partial so the arena's [`BucketIndex`] can carry the analyze
/// crate's [`Merge`] contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketPartial(pub BucketIndex);

impl Merge for BucketPartial {
    fn merge(mut self, later: Self) -> Self {
        self.0.merge(later.0);
        self
    }
}

impl AnalysisPass for BucketIndexPass<'_> {
    type Partial = BucketPartial;
    type Output = BucketIndex;

    fn name(&self) -> &'static str {
        BUCKET_STAGE
    }

    fn empty(&self) -> Self::Partial {
        BucketPartial::default()
    }

    fn observe(&self, partial: &mut Self::Partial, rec: &Observed<'_>, _: &dyn Recorder) {
        if rec.population != Population::Idn {
            return;
        }
        let row = rec.index as usize;
        let sld = self.columns.sld_symbol(row);
        let tld = self.columns.tld_id(row);
        partial
            .0
            .insert(self.plan.key(sld, tld), LabelRef { sld, tld });
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        partial.0
    }
}

/// One SSIM-verified confusable pair, in packed form. `a` precedes `b`
/// in bucket (corpus) order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifiedPair {
    /// Earlier member.
    pub a: LabelRef,
    /// Later member.
    pub b: LabelRef,
    /// Their SSIM score (≥ [`MINE_THRESHOLD`]).
    pub ssim: f64,
}

/// One non-singleton bucket handed to pass B.
#[derive(Debug, Clone)]
pub struct MineBucket {
    /// The bucket's members, in corpus first-occurrence order.
    pub members: Vec<LabelRef>,
}

/// Renders each member of a bucket once and SSIM-scores every in-bucket
/// pair; the shared verification kernel of pass B and the LSH probe.
/// Returns `(candidate_pairs, ascii_skipped, verified)`.
fn bucket_pairs(
    members: &[LabelRef],
    columns: &CorpusColumns,
    plan: &MiningPlan,
    threshold: f64,
) -> (u64, u64, Vec<VerifiedPair>) {
    // Duplicate registrations of one domain share a `LabelRef`; pairing
    // them with themselves (or re-verifying the same pair through each
    // copy) is wasted SSIM work, so the bucket collapses to its distinct
    // members first.
    let mut members = members.to_vec();
    members.sort_unstable();
    members.dedup();
    let rendered: Vec<(bool, GrayImage)> = members
        .iter()
        .map(|&m| {
            let ascii = plan.label_ascii[m.sld.index()];
            let image = render_text(&plan.unicode_of(columns, m));
            (ascii, image)
        })
        .collect();
    let mut candidates = 0u64;
    let mut ascii_skipped = 0u64;
    let mut verified = Vec::new();
    for i in 0..members.len() {
        for j in i + 1..members.len() {
            candidates += 1;
            if rendered[i].0 && rendered[j].0 {
                ascii_skipped += 1; // two ASCII labels cannot homograph
                continue;
            }
            let Some(score) = pair_score(&rendered[i].1, &rendered[j].1) else {
                continue;
            };
            if score >= threshold {
                verified.push(VerifiedPair {
                    a: members[i],
                    b: members[j],
                    ssim: score,
                });
            }
        }
    }
    (candidates, ascii_skipped, verified)
}

/// Pass B partial: totals merged across chunks, plus unflushed counter
/// tallies batched into one `Recorder::add` per chunk.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PairPartial {
    candidate_pairs: u64,
    ascii_skipped: u64,
    verified: Vec<VerifiedPair>,
    unflushed: [u64; 3],
}

impl Merge for PairPartial {
    fn merge(mut self, mut later: Self) -> Self {
        self.candidate_pairs += later.candidate_pairs;
        self.ascii_skipped += later.ascii_skipped;
        self.verified.append(&mut later.verified);
        for (mine, theirs) in self.unflushed.iter_mut().zip(later.unflushed) {
            *mine += theirs;
        }
        self
    }
}

/// What pass B finishes into: the verified pair list plus the clustered,
/// WHOIS/pDNS-joined portfolios.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMineOutputs {
    /// In-bucket pairs generated.
    pub candidate_pairs: u64,
    /// Pairs skipped because both labels were ASCII.
    pub ascii_skipped: u64,
    /// Verified pairs, resolved to display forms.
    pub verified: Vec<VerifiedPairOut>,
    /// Clustered squatter portfolios.
    pub portfolios: Vec<Portfolio>,
}

/// A verified pair in resolved (display-form) terms.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedPairOut {
    /// Earlier member's display form.
    pub a: String,
    /// Later member's display form.
    pub b: String,
    /// SSIM score.
    pub ssim: f64,
}

/// One confusable cluster with its registrant/activity join.
#[derive(Debug, Clone, PartialEq)]
pub struct Portfolio {
    /// Members sorted by `(sld, tld)` symbol order.
    pub members: Vec<PortfolioMember>,
}

impl Portfolio {
    /// Distinct known registrant emails across the members.
    pub fn registrants(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for member in &self.members {
            if let Some(email) = &member.registrant {
                if !seen.contains(&email.as_str()) {
                    seen.push(email);
                }
            }
        }
        seen
    }

    /// Total pDNS queries across the members.
    pub fn query_count(&self) -> u64 {
        self.members.iter().map(|m| m.query_count).sum()
    }
}

/// One portfolio member with its WHOIS registrant and pDNS activity.
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioMember {
    /// ACE form (the WHOIS/pDNS join key).
    pub domain: String,
    /// Display form.
    pub unicode: String,
    /// WHOIS registrant email, when the record exists and is not
    /// privacy-shielded.
    pub registrant: Option<String>,
    /// pDNS query volume (0 when passive DNS never saw the domain).
    pub query_count: u64,
    /// pDNS active days (0 when never seen).
    pub active_days: i64,
}

/// Pass B: SSIM-verifies every in-bucket pair and clusters the verdicts
/// into portfolios. Chunked over buckets by [`idnre_analyze::fold_items`];
/// the finish step runs the union-find and the WHOIS/pDNS join, so the
/// whole mining tail is attributed to the `analyze.pass.pair_mine` stage.
pub struct PairMinePass<'a> {
    columns: &'a CorpusColumns,
    plan: &'a MiningPlan,
    /// `ACE domain → registrant email` for the portfolio join.
    registrants: HashMap<String, String>,
    pdns: &'a PdnsStore,
    threshold: f64,
}

impl<'a> PairMinePass<'a> {
    /// Builds the pass with its WHOIS join table.
    pub fn new(columns: &'a CorpusColumns, plan: &'a MiningPlan, eco: &'a Ecosystem) -> Self {
        let mut registrants = HashMap::new();
        for record in &eco.whois {
            if let Some(email) = &record.registrant_email {
                registrants.insert(record.domain.clone(), email.clone());
            }
        }
        PairMinePass {
            columns,
            plan,
            registrants,
            pdns: &eco.pdns,
            threshold: MINE_THRESHOLD,
        }
    }

    fn member_of(&self, member: LabelRef) -> PortfolioMember {
        let unicode = self.plan.unicode_of(self.columns, member);
        let domain = idnre_idna::to_ascii(&unicode).unwrap_or_else(|_| unicode.clone());
        let (query_count, active_days) = match self.pdns.lookup(&domain) {
            Some(aggregate) => (aggregate.query_count, aggregate.active_days()),
            None => (0, 0),
        };
        PortfolioMember {
            registrant: self.registrants.get(&domain).cloned(),
            domain,
            unicode,
            query_count,
            active_days,
        }
    }
}

impl ItemPass<MineBucket> for PairMinePass<'_> {
    type Partial = PairPartial;
    type Output = PairMineOutputs;

    fn name(&self) -> &'static str {
        PAIR_MINE_STAGE
    }

    fn counters(&self) -> &'static [&'static str] {
        &MINE_COUNTERS
    }

    fn empty(&self) -> Self::Partial {
        PairPartial::default()
    }

    fn observe(&self, partial: &mut Self::Partial, bucket: &MineBucket, _: u64, _: &dyn Recorder) {
        let (candidates, ascii_skipped, mut verified) =
            bucket_pairs(&bucket.members, self.columns, self.plan, self.threshold);
        partial.candidate_pairs += candidates;
        partial.ascii_skipped += ascii_skipped;
        partial.unflushed[0] += candidates;
        partial.unflushed[1] += ascii_skipped;
        partial.unflushed[2] += verified.len() as u64;
        partial.verified.append(&mut verified);
    }

    fn shard_end(&self, partial: &mut Self::Partial, recorder: &dyn Recorder) {
        for (name, tally) in MINE_COUNTERS.iter().zip(partial.unflushed.iter_mut()) {
            if *tally > 0 {
                recorder.add(name, *tally);
                *tally = 0;
            }
        }
    }

    fn finish(&self, partial: Self::Partial) -> Self::Output {
        let pairs = normalize(partial.verified);
        let portfolios = cluster(&pairs)
            .into_iter()
            .map(|members| Portfolio {
                members: members.into_iter().map(|m| self.member_of(m)).collect(),
            })
            .collect();
        let verified = pairs
            .iter()
            .map(|pair| VerifiedPairOut {
                a: self.plan.unicode_of(self.columns, pair.a),
                b: self.plan.unicode_of(self.columns, pair.b),
                ssim: pair.ssim,
            })
            .collect();
        PairMineOutputs {
            candidate_pairs: partial.candidate_pairs,
            ascii_skipped: partial.ascii_skipped,
            verified,
            portfolios,
        }
    }
}

/// Deterministic union-find over the verified pairs: the representative is
/// always the minimum `(sld, tld)` member, and unions only ever attach the
/// larger root under the smaller, so the final partition — and the order
/// below — depends only on the pair *set*, never on pair order.
/// Returns clusters sorted by root, members sorted within each.
fn cluster(pairs: &[VerifiedPair]) -> Vec<Vec<LabelRef>> {
    fn find(parents: &mut HashMap<LabelRef, LabelRef>, x: LabelRef) -> LabelRef {
        let parent = *parents.get(&x).unwrap_or(&x);
        if parent == x {
            x
        } else {
            let root = find(parents, parent);
            parents.insert(x, root);
            root
        }
    }
    let mut parents: HashMap<LabelRef, LabelRef> = HashMap::new();
    for pair in pairs {
        let ra = find(&mut parents, pair.a);
        let rb = find(&mut parents, pair.b);
        if ra != rb {
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            parents.insert(hi, lo);
        }
    }
    let mut members: Vec<LabelRef> = pairs.iter().flat_map(|p| [p.a, p.b]).collect();
    members.sort_unstable();
    members.dedup();
    let mut clusters: HashMap<LabelRef, Vec<LabelRef>> = HashMap::new();
    for member in members {
        let root = find(&mut parents, member);
        clusters.entry(root).or_default().push(member);
    }
    let mut out: Vec<(LabelRef, Vec<LabelRef>)> = clusters.into_iter().collect();
    out.sort_unstable_by_key(|(root, _)| *root);
    out.into_iter()
        .map(|(_, mut cluster)| {
            cluster.sort_unstable();
            cluster
        })
        .collect()
}

/// Everything `--mine-portfolios` adds to a run: index statistics, the
/// verified pair list and the joined portfolios. Plain strings throughout,
/// so the corpus columns can be dropped after the scan.
#[derive(Debug, Clone, PartialEq)]
pub struct MiningOutputs {
    /// Distinct skeleton buckets over the IDN corpus.
    pub buckets: u64,
    /// Buckets with more than one member (the only ones pass B visits).
    pub non_singleton_buckets: u64,
    /// In-bucket candidate pairs generated.
    pub candidate_pairs: u64,
    /// Pairs skipped because both labels were ASCII.
    pub ascii_skipped: u64,
    /// SSIM-verified confusable pairs.
    pub verified: Vec<VerifiedPairOut>,
    /// Clustered squatter portfolios, WHOIS/pDNS-joined.
    pub portfolios: Vec<Portfolio>,
}

/// Runs pass B over the non-singleton buckets of `index` and assembles
/// the full [`MiningOutputs`]. `chunk_size`/`threads` shape the fold the
/// same way the corpus scan is shaped — output bytes do not depend on
/// either (the fold merge is associative and chunk order is item order).
#[allow(clippy::too_many_arguments)]
pub fn mine_portfolios(
    index: &BucketIndex,
    columns: &CorpusColumns,
    plan: &MiningPlan,
    eco: &Ecosystem,
    threads: usize,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> MiningOutputs {
    let buckets: Vec<MineBucket> = index
        .iter()
        .filter(|(_, members)| members.len() > 1)
        .map(|(_, members)| MineBucket {
            members: members.to_vec(),
        })
        .collect();
    let pass = PairMinePass::new(columns, plan, eco);
    let chunk = idnre_par::chunk_size(buckets.len(), threads);
    let mined = fold_items(&pass, &buckets, chunk, threads, recorder, parent);
    MiningOutputs {
        buckets: index.len() as u64,
        non_singleton_buckets: index.non_singleton_count() as u64,
        candidate_pairs: mined.candidate_pairs,
        ascii_skipped: mined.ascii_skipped,
        verified: mined.verified,
        portfolios: mined.portfolios,
    }
}

/// Normalizes a pair list: each pair's endpoints ordered by `(sld, tld)`,
/// the list sorted the same way, duplicates (the same pair re-observed
/// through duplicate registrations of one domain) collapsed.
fn normalize(mut pairs: Vec<VerifiedPair>) -> Vec<VerifiedPair> {
    for pair in &mut pairs {
        if pair.b < pair.a {
            std::mem::swap(&mut pair.a, &mut pair.b);
        }
    }
    pairs.sort_unstable_by_key(|p| (p.a, p.b));
    pairs.dedup_by_key(|p| (p.a, p.b));
    pairs
}

/// The LSH path over the first `cap` column rows, as a standalone probe:
/// bucket the rows, verify in-bucket pairs. Returns normalized pairs.
pub fn verified_pairs_lsh(
    columns: &CorpusColumns,
    plan: &MiningPlan,
    cap: usize,
    threads: usize,
) -> Vec<VerifiedPair> {
    let rows = columns.len().min(cap);
    let mut index = BucketIndex::new();
    for row in 0..rows {
        let sld = columns.sld_symbol(row);
        let tld = columns.tld_id(row);
        index.insert(plan.key(sld, tld), LabelRef { sld, tld });
    }
    let buckets: Vec<Vec<LabelRef>> = index
        .iter()
        .filter(|(_, members)| members.len() > 1)
        .map(|(_, members)| members.to_vec())
        .collect();
    let verified = idnre_par::par_map(&buckets, threads, |members| {
        bucket_pairs(members, columns, plan, MINE_THRESHOLD).2
    });
    normalize(verified.into_iter().flatten().collect())
}

/// The exhaustive oracle over the first `cap` column rows: every pair of
/// rows (no skeleton pre-filter), width-checked and SSIM-scored with the
/// same kernel, at least one side a genuine IDN label. `O(rows²)` pair
/// generation — the thing the LSH index exists to avoid; retained (and
/// capped, like `detect_exhaustive`) as the equivalence oracle and the
/// speedup baseline.
pub fn verified_pairs_exhaustive(
    columns: &CorpusColumns,
    plan: &MiningPlan,
    cap: usize,
    threads: usize,
) -> Vec<VerifiedPair> {
    let rows: Vec<usize> = (0..columns.len().min(cap)).collect();
    let rendered: Vec<(LabelRef, bool, GrayImage)> = idnre_par::par_map(&rows, threads, |&row| {
        let member = LabelRef {
            sld: columns.sld_symbol(row),
            tld: columns.tld_id(row),
        };
        let ascii = plan.label_ascii[member.sld.index()];
        let image = render_text(&plan.unicode_of(columns, member));
        (member, ascii, image)
    });
    let mut by_width: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, (_, _, image)) in rendered.iter().enumerate() {
        by_width.entry(image.width()).or_default().push(i);
    }
    let verified = idnre_par::par_map(&rows, threads, |&i| {
        let (member_i, ascii_i, image_i) = &rendered[i];
        let group = &by_width[&image_i.width()];
        let position = group.partition_point(|&j| j <= i);
        let mut found = Vec::new();
        for &j in &group[position..] {
            let (member_j, ascii_j, image_j) = &rendered[j];
            if member_i == member_j {
                continue; // duplicate registrations of one domain, not a pair
            }
            if *ascii_i && *ascii_j {
                continue;
            }
            let Some(score) = pair_score(image_i, image_j) else {
                continue;
            };
            if score >= MINE_THRESHOLD {
                found.push(VerifiedPair {
                    a: *member_i,
                    b: *member_j,
                    ssim: score,
                });
            }
        }
        found
    });
    normalize(verified.into_iter().flatten().collect())
}

/// The `## Portfolio mining` report section appended by
/// `--mine-portfolios`.
pub fn render_mining(m: &MiningOutputs) -> String {
    let mut body = String::new();
    body.push_str(&format!(
        "Skeleton-LSH over the registered IDN corpus: {} buckets, {} \
         non-singleton; {} candidate pairs generated in-bucket ({} skipped \
         as ASCII-only), {} verified at SSIM ≥ {:.2}, clustering into {} \
         portfolios.\n\n",
        m.buckets,
        m.non_singleton_buckets,
        m.candidate_pairs,
        m.ascii_skipped,
        m.verified.len(),
        MINE_THRESHOLD,
        m.portfolios.len(),
    ));
    body.push_str("| portfolio | members | registrants | pDNS queries | sample members |\n");
    body.push_str("|---:|---:|---:|---:|---|\n");
    for (rank, portfolio) in m.portfolios.iter().take(10).enumerate() {
        let sample: Vec<&str> = portfolio
            .members
            .iter()
            .take(3)
            .map(|member| member.unicode.as_str())
            .collect();
        let registrants = portfolio.registrants();
        body.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            rank + 1,
            portfolio.members.len(),
            registrants.len(),
            portfolio.query_count(),
            sample.join(", "),
        ));
    }
    if m.portfolios.len() > 10 {
        body.push_str(&format!(
            "\n({} further portfolios elided.)\n",
            m.portfolios.len() - 10
        ));
    }
    format!(
        "## Portfolio mining — zone-wide confusable pairs\n\n\
         *Paper anchor:* the paper stops at the Alexa-1K brand list \
         (Section VI-B); this is the registrant/activity join over \
         all-zone confusable portfolios it left on the table.\n\n{body}\n"
    )
}
