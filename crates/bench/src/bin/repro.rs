//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                      # every table and figure, to stdout
//! repro table13 fig7             # specific experiments
//! repro --scale 50 all           # denser ecosystem (1:50)
//! repro --write EXPERIMENTS.md all
//! ```

use idnre_bench::{reports, ReproContext};
use idnre_datagen::EcosystemConfig;
use std::io::Write as _;

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut config = EcosystemConfig::default();
    let mut write_path: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--attack-scale" => {
                config.attack_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--attack-scale needs a number"));
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--write" => {
                write_path = Some(args.next().unwrap_or_else(|| usage("--write needs a path")));
            }
            "--help" | "-h" => usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage("no experiment named");
    }

    eprintln!(
        "generating ecosystem (scale 1:{}, attacks 1:{}, seed {:#x})...",
        config.scale, config.attack_scale, config.seed
    );
    let start = std::time::Instant::now();
    let ctx = ReproContext::build(&config);
    eprintln!(
        "ecosystem ready in {:.1?}: {} IDNs, {} non-IDNs, {} homograph findings, {} semantic findings",
        start.elapsed(),
        ctx.eco.idn_registrations.len(),
        ctx.eco.non_idn_registrations.len(),
        ctx.homographs.len(),
        ctx.semantic.len()
    );

    let output = if wanted.iter().any(|w| w == "all") {
        ctx.full_report()
    } else {
        let mut out = String::new();
        for name in &wanted {
            match reports::by_name(name) {
                Some(generator) => {
                    out.push_str(&generator(&ctx));
                    out.push('\n');
                }
                None => usage(&format!("unknown experiment {name:?}")),
            }
        }
        out
    };

    match write_path {
        Some(path) => {
            std::fs::write(&path, &output).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(output.as_bytes());
        }
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--attack-scale N] [--seed N] [--write PATH] <experiment...>\n\
         experiments: all {}",
        reports::ALL
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}
