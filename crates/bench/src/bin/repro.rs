//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all                      # every table and figure, to stdout
//! repro table13 fig7             # specific experiments
//! repro --scale 50 all           # denser ecosystem (1:50)
//! repro --threads 4 all          # worker threads (default: all cores)
//! repro --write EXPERIMENTS.md all
//! repro --metrics text all       # stage-timing table on stderr
//! repro --metrics json all       # idnre-metrics/1 JSON on stderr
//! repro --stream all             # bounded-memory streaming build
//! repro --stream --shard-size 64 all       # smaller resident shards
//! repro --faults smoke all       # inject the `smoke` fault schedule
//! repro --faults storm:7 all     # `storm` profile, replay seed 7
//! repro --bench all              # timed run, writes BENCH_pipeline.json
//! repro --bench --stream --shard-size 64 all  # streamed leg at shard 64
//! repro --bench --thread-sweep 1,2,8 all   # one timed run per count
//! repro --bench --dump-dataset D.txt all   # write the idnre-dataset/2 bytes
//! repro --trace trace.json all   # hierarchical span tree, Chrome trace JSON
//! repro --slo smoke all          # evaluate an SLO profile, gate the exit code
//! repro --faults storm --crawl-sched all   # event-driven crawl scheduler
//! repro --faults storm --crawl-sched --inflight 128 --rate 8 all
//! repro --metrics det all        # thread-invariant idnre-metrics/2 JSON
//! repro --mine-portfolios all    # zone-wide confusable portfolio mining
//! repro --mine-portfolios --stream --scale 2750 all  # mining in bounded memory
//! repro --stream --epochs 5 all  # 5 incremental zone-diff epochs
//! repro --stream --epochs 5 --churn-per-mille 20 all  # ~2% churn per epoch
//! ```
//!
//! With `--metrics`, every pipeline stage (generation, detector scans, the
//! crawl survey, each report generator) is timed through
//! [`idnre_telemetry::Registry`] and the snapshot is rendered to stderr, so
//! stdout stays a clean report stream. `--write PATH` combined with
//! `--metrics json` also writes the snapshot to `PATH.metrics.json`.
//!
//! With `--faults`, ingest and the crawl survey run under a seeded fault
//! schedule with retry/backoff, the report gains a "Run health" section,
//! and the exit code follows the error-budget contract: 0 clean, 3
//! degraded (errors within budget), 4 budget exceeded. A fixed spec
//! replays the same schedule byte-for-byte.
//!
//! `--threads N` pins the worker count of every parallel stage; the report
//! bytes are identical at every setting, only wall time changes.
//!
//! With `--stream`, the registration corpus is never materialized whole:
//! the streaming generator regenerates `--shard-size N` records at a time
//! (default 1024) and the fused analysis scan and surveys walk the shards,
//! so peak resident records stay ≈ `shard_size × threads` at any scale
//! (reported as the `datagen.peak_resident_records` counter under
//! `--metrics`). The report bytes are identical to the batch build.
//! `--stream` cannot be combined with `--faults` or `--dump-dataset`;
//! with `--bench` it selects the streamed bench leg's shard size.
//!
//! `--bench` runs the whole pipeline once under timing, prints the stage
//! table and the per-pass cost ledger to stderr, and writes
//! `BENCH_pipeline.json` (`idnre-bench-pipeline/6`) next to the report.
//! It cannot be combined with `--faults` or `--metrics`. Combined with
//! `--stream`, the bench's streamed leg regenerates `--shard-size N`
//! records at a time and the JSON's top-level `peak_resident_records`
//! reports the residency-gauge peak — the paper-scale memory contract
//! (`≤ 4 × shard_size × threads`) read straight from the artifact.
//! `--thread-sweep 1,2,8` repeats the timed run at each worker count,
//! asserts the report and the `idnre-dataset/2` bytes are identical
//! across counts, and concatenates the entries. `--dump-dataset PATH`
//! writes the canonical dataset bytes so CI can `cmp` runs at different
//! thread counts.
//!
//! `--trace PATH` runs the pipeline under a tracing registry and writes
//! the assembled span tree (run → build/scan → pass → shard) as Chrome
//! trace-event JSON (`idnre-trace/1`) to `PATH` — load it in
//! `chrome://tracing` or Perfetto. The tree *structure* (span names,
//! nesting, event counts) is identical across thread counts; only the
//! timings differ. Not combinable with `--bench`, which runs under its
//! own registries.
//!
//! `--slo PROFILE` evaluates a named SLO profile (`smoke` or `tight`)
//! against the run's latency histograms after the report is produced,
//! prints the verdict to stderr, and exits with the run-health contract's
//! code: 0 clean, 3 degraded (a quantile bound or expected stage
//! missing), 4 exceeded (a hard max bound). Not combinable with
//! `--faults`, which owns the same exit codes.
//!
//! `--crawl-sched` (requires `--faults`) routes the crawl survey through
//! the event-driven scheduler in `idnre-sched`: a bounded in-flight
//! window fed from a priority queue (retries before fresh arrivals), a
//! hierarchical timeout wheel for deadlines and backoff timers,
//! per-nameserver token-bucket rate limits and circuit breakers, and
//! graceful load shedding when the queue or breakers say no. Shed
//! queries count against the error budget's denominator, so an overload
//! run degrades (exit 3) instead of silently dropping work. `--inflight
//! N` and `--rate R` tune the window size and per-nameserver
//! queries-per-second. The scheduler runs on virtual time: reports and
//! counters replay byte-identically across `--threads` settings.
//!
//! `--mine-portfolios` runs the two-pass skeleton-LSH portfolio miner:
//! pass A folds a confusable-skeleton bucket index on the same fused
//! corpus traversal (`analyze.pass.bucket_index`), pass B SSIM-verifies
//! every pair inside the non-singleton buckets and clusters the verified
//! pairs into registrant/activity-joined squatter portfolios
//! (`analyze.pass.pair_mine`). The report gains a "Portfolio mining"
//! section; every other section's bytes are unchanged, and the mined
//! output is byte-identical across `--threads` and `--shard-size`
//! settings. Not combinable with `--faults`. Combined with `--stream`,
//! the index folds over regenerated shards — packed symbol handles only —
//! so mining stays inside the streamed memory budget at any scale.
//!
//! `--epochs N` (requires `--stream`) runs the incremental zone-diff
//! loop: the streamed build's fold leaves its per-(shard, pass) partials
//! resident, then a deterministic day simulator applies `N` epochs of
//! churn (new registrations, expiry cohorts, re-registrations, registrar
//! migrations, lagged blacklist listings — `--churn-per-mille M` events
//! per thousand base records per epoch, default 20) and each epoch
//! re-folds **only the shards its deltas dirtied**. Every epoch is
//! shadowed by a from-scratch rebuild over the same effective corpus and
//! the two reports are asserted byte-identical; stdout carries the final
//! epoch's report, stderr a per-epoch summary plus one machine-greppable
//! `epochs=... speedup=...` line. Not combinable with `--faults`,
//! `--mine-portfolios`, or `--bench` (whose JSON carries its own epoch
//! probe pair).
//!
//! Flag compatibility is validated against one table
//! ([`idnre_bench::FLAG_CONFLICTS`] / [`idnre_bench::FLAG_REQUIRES`]);
//! any violation is a usage error (exit 2).
//!
//! `--metrics det` renders the deterministic `idnre-metrics/2` snapshot
//! slice (counters and stage call/record totals, no timings), which is
//! byte-identical across runs and thread counts; with `--write PATH` it
//! also lands in `PATH.metrics.det.json` so CI can `cmp` two runs.

use idnre_bench::{reports, validate_flags, CliFlags, FaultSetup, ReproContext};
use idnre_datagen::EcosystemConfig;
use idnre_fault::FaultPlan;
use idnre_sched::{RateConfig, SchedConfig};
use idnre_telemetry::Registry;
use std::io::Write as _;
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Json,
    /// The thread-invariant `idnre-metrics/2` slice.
    Det,
}

fn main() {
    let mut args = std::env::args().skip(1).peekable();
    let mut config = EcosystemConfig::default();
    let mut write_path: Option<String> = None;
    let mut metrics: Option<MetricsFormat> = None;
    let mut faults: Option<FaultSetup> = None;
    let mut threads: Option<usize> = None;
    let mut bench = false;
    let mut stream = false;
    let mut shard_size = idnre_bench::DEFAULT_SHARD_SIZE;
    let mut thread_sweep: Option<Vec<usize>> = None;
    let mut dump_dataset: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut slo: Option<idnre_telemetry::SloSpec> = None;
    let mut crawl_sched = false;
    let mut mine_portfolios = false;
    let mut epochs: Option<u64> = None;
    let mut churn_per_mille: Option<u64> = None;
    let mut inflight: Option<usize> = None;
    let mut rate: Option<u32> = None;
    let mut wanted: Vec<String> = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                config.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--attack-scale" => {
                config.attack_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--attack-scale needs a number"));
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage("--threads needs a number >= 1"));
                threads = Some(n.min(idnre_par::MAX_THREADS));
            }
            "--bench" => bench = true,
            "--stream" => stream = true,
            "--shard-size" => {
                shard_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage("--shard-size needs a number >= 1"));
            }
            "--thread-sweep" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| usage("--thread-sweep needs a comma-separated list"));
                let counts: Vec<usize> = spec
                    .split(',')
                    .map(|part| {
                        part.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|n| *n >= 1)
                            .map(|n| n.min(idnre_par::MAX_THREADS))
                            .unwrap_or_else(|| {
                                usage("--thread-sweep needs numbers >= 1, e.g. 1,2,8")
                            })
                    })
                    .collect();
                thread_sweep = Some(counts);
            }
            "--dump-dataset" => {
                dump_dataset = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--dump-dataset needs a path")),
                );
            }
            "--seed" => {
                config.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--write" => {
                write_path = Some(args.next().unwrap_or_else(|| usage("--write needs a path")));
            }
            "--metrics" => {
                metrics = Some(match args.next().as_deref() {
                    Some("text") => MetricsFormat::Text,
                    Some("json") => MetricsFormat::Json,
                    Some("det") => MetricsFormat::Det,
                    _ => usage("--metrics needs `text`, `json` or `det`"),
                });
            }
            "--crawl-sched" => crawl_sched = true,
            "--mine-portfolios" => mine_portfolios = true,
            "--epochs" => {
                epochs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--epochs needs a number")),
                );
            }
            "--churn-per-mille" => {
                churn_per_mille = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1 && *n <= 1000)
                        .unwrap_or_else(|| usage("--churn-per-mille needs a number in 1..=1000")),
                );
            }
            "--inflight" => {
                inflight = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| usage("--inflight needs a number >= 1")),
                );
            }
            "--rate" => {
                rate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or_else(|| usage("--rate needs a number >= 1")),
                );
            }
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| usage("--trace needs a path")));
            }
            "--slo" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| usage("--slo needs a profile name"));
                slo = Some(idnre_bench::slo_profile(&name).unwrap_or_else(|| {
                    usage(&format!(
                        "unknown SLO profile {name:?} (known: {})",
                        idnre_bench::SLO_PROFILES.join(" ")
                    ))
                }));
            }
            "--faults" => {
                let spec = args
                    .next()
                    .unwrap_or_else(|| usage("--faults needs a spec"));
                let plan = FaultPlan::from_spec(&spec).unwrap_or_else(|e| usage(&e.to_string()));
                faults = Some(FaultSetup::from_plan(plan));
            }
            "--help" | "-h" => usage(""),
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        usage("no experiment named");
    }
    if let Some(n) = threads {
        config.threads = n;
        if let Some(setup) = &mut faults {
            setup.threads = n;
        }
    }

    let flags = CliFlags {
        bench,
        stream,
        faults: faults.is_some(),
        metrics: metrics.is_some(),
        trace: trace_path.is_some(),
        slo: slo.is_some(),
        thread_sweep: thread_sweep.is_some(),
        dump_dataset: dump_dataset.is_some(),
        crawl_sched,
        mine_portfolios,
        epochs: epochs.is_some(),
        churn_per_mille: churn_per_mille.is_some(),
    };
    if let Err(message) = validate_flags(&flags) {
        usage(&message);
    }
    if crawl_sched {
        let base = SchedConfig::default();
        let sched = SchedConfig {
            max_inflight: inflight.unwrap_or(base.max_inflight),
            rate: RateConfig {
                tokens_per_sec: rate.unwrap_or(base.rate.tokens_per_sec),
                ..base.rate
            },
            ..base
        };
        faults = faults.map(|setup| setup.with_sched(sched));
    } else if inflight.is_some() || rate.is_some() {
        usage("--inflight/--rate only apply with --crawl-sched");
    }
    if bench {
        // `--stream` in bench mode selects the shard size the streamed leg
        // regenerates at (the batch leg always runs for the cross-mode
        // report oracle); without it the default shard applies.
        let bench_shard = if stream {
            shard_size
        } else {
            idnre_bench::DEFAULT_SHARD_SIZE
        };
        run_bench(
            &config,
            bench_shard,
            write_path.as_deref(),
            thread_sweep.as_deref(),
            dump_dataset.as_deref(),
        );
        return;
    }

    let need_registry = metrics.is_some() || trace_path.is_some() || slo.is_some();
    let registry = need_registry.then(|| {
        let registry = if trace_path.is_some() {
            Registry::with_trace()
        } else {
            Registry::new()
        };
        for name in idnre_crawler::OUTCOME_COUNTERS {
            registry.counter(name);
        }
        Arc::new(registry)
    });

    eprintln!(
        "generating ecosystem (scale 1:{}, attacks 1:{}, seed {:#x})...",
        config.scale, config.attack_scale, config.seed
    );
    let recorder: Arc<dyn idnre_telemetry::Recorder> = match &registry {
        Some(registry) => registry.clone(),
        None => Arc::new(idnre_telemetry::NoopRecorder),
    };
    let mut ctx: Option<ReproContext> = None;
    let output = if let Some(count) = epochs {
        // Incremental zone-diff epochs: the one mode whose deliverable is
        // the *final* epoch's report, so only `all` makes sense.
        if !wanted.iter().any(|w| w == "all") {
            usage("--epochs renders the final epoch's full report; name the `all` experiment");
        }
        let churn = churn_per_mille.unwrap_or(idnre_bench::DEFAULT_CHURN_PER_MILLE);
        eprintln!("epoch mode: {count} epochs, churn {churn}\u{2030}, shard {shard_size}");
        let run = idnre_bench::run_epochs(&config, shard_size, count, churn, recorder);
        for (i, epoch) in run.epochs.iter().enumerate() {
            eprintln!(
                "epoch {}: {} deltas, {} live IDNs, {}/{} shards refolded ({} dirty), \
                 incremental {:.2} ms vs rebuild {:.2} ms",
                i + 1,
                epoch.deltas,
                epoch.live_idn,
                epoch.stats.refolded,
                epoch.stats.total_shards,
                epoch.stats.dirty,
                epoch.incremental_ns as f64 / 1e6,
                epoch.rebuild_ns as f64 / 1e6,
            );
        }
        // One machine-greppable line: CI parses these key=value pairs.
        eprintln!(
            "epochs={count} shards={} refolded={} incremental_ns={} rebuild_ns={} speedup={:.2}",
            run.total_shards(),
            run.total_refolded(),
            run.incremental_ns(),
            run.rebuild_ns(),
            run.speedup()
        );
        run.final_report
    } else {
        let built = match &faults {
            Some(setup) => {
                eprintln!(
                    "fault schedule: profile `{}`, seed {:#x}",
                    setup.plan.profile().name,
                    setup.plan.seed()
                );
                ReproContext::build_faulted(&config, setup, recorder)
            }
            None if stream && mine_portfolios => {
                ReproContext::build_streamed_mined(&config, shard_size, recorder)
            }
            None if stream => ReproContext::build_streamed(&config, shard_size, recorder),
            None if mine_portfolios => ReproContext::build_mined(&config, recorder),
            None => ReproContext::build_recorded(&config, recorder),
        };
        eprintln!(
            "ecosystem ready: {} IDNs, {} non-IDNs, {} homograph findings, {} semantic findings",
            built.outputs.idn_len,
            built.outputs.non_idn_len,
            built.homographs.len(),
            built.semantic.len()
        );
        if let Some(mining) = &built.mining {
            eprintln!(
                "portfolio mining: {} buckets ({} non-singleton), {} candidate pairs, {} verified, {} portfolios",
                mining.buckets,
                mining.non_singleton_buckets,
                mining.candidate_pairs,
                mining.verified.len(),
                mining.portfolios.len()
            );
        }

        if let Some(path) = &dump_dataset {
            write_dataset(path, &idnre_datagen::render_dataset(&built.eco));
        }

        let out = if wanted.iter().any(|w| w == "all") {
            built.full_report()
        } else {
            let mut out = String::new();
            for name in &wanted {
                match reports::by_name(name) {
                    Some(generator) => {
                        out.push_str(&generator(&built));
                        out.push('\n');
                    }
                    None => usage(&format!("unknown experiment {name:?}")),
                }
            }
            out
        };
        ctx = Some(built);
        out
    };

    match &write_path {
        Some(path) => {
            std::fs::write(path, &output).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(output.as_bytes());
        }
    }

    if let (Some(format), Some(registry)) = (metrics, &registry) {
        let snapshot = registry.snapshot();
        let rendered = match format {
            MetricsFormat::Text => snapshot.render_text(),
            MetricsFormat::Json => snapshot.render_json(),
            MetricsFormat::Det => snapshot.render_deterministic_json(),
        };
        eprintln!("{rendered}");
        let sidecar = match format {
            MetricsFormat::Json => Some(("metrics.json", snapshot.render_json())),
            MetricsFormat::Det => Some(("metrics.det.json", snapshot.render_deterministic_json())),
            MetricsFormat::Text => None,
        };
        if let (Some((suffix, body)), Some(path)) = (sidecar, &write_path) {
            let metrics_path = format!("{path}.{suffix}");
            std::fs::write(&metrics_path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {metrics_path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {metrics_path}");
        }
    }

    if let (Some(path), Some(registry)) = (&trace_path, &registry) {
        let snapshot = registry
            .trace_snapshot()
            .expect("--trace runs under a tracing registry");
        let mut json = snapshot.render_chrome_json();
        json.push('\n');
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "wrote {path} ({} trace events)",
            snapshot.root.event_count()
        );
    }

    if let (Some(spec), Some(registry)) = (&slo, &registry) {
        let report = spec.evaluate(&registry.snapshot());
        eprint!("{}", report.render_text());
        std::process::exit(report.status.exit_code());
    }

    if let Some(health) = ctx.as_ref().and_then(|ctx| ctx.health.as_ref()) {
        eprintln!(
            "run health: {} — {} ok / {} errors / {} shed ({}‰ observed, {}‰ allowed)",
            health.status.label(),
            health.ok,
            health.errors,
            health.shed,
            health.error_per_mille,
            health.allowed_per_mille,
        );
        if let Some(sched) = &health.sched {
            eprintln!(
                "crawl scheduler: {} arrivals, {} attempts, {} shed ({} admission / {} breaker / {} starved), {} deferred, breakers {} opened / {} reclosed",
                sched.arrivals,
                sched.attempts,
                sched.shed_total(),
                sched.shed_admission,
                sched.shed_breaker,
                sched.shed_starved,
                sched.deferred,
                sched.breaker_opened,
                sched.breaker_reclosed,
            );
        }
        std::process::exit(health.status.exit_code());
    }
}

/// The `--bench` path: one timed end-to-end run (or one per `--thread-sweep`
/// count), stage table on stderr, `BENCH_pipeline.json` on disk, and the
/// report where a plain run would have put it.
fn run_bench(
    config: &EcosystemConfig,
    shard_size: usize,
    write_path: Option<&str>,
    thread_sweep: Option<&[usize]>,
    dump_dataset: Option<&str>,
) {
    let bench = match thread_sweep {
        Some(counts) => {
            eprintln!(
                "benchmarking pipeline (scale 1:{}, attacks 1:{}, seed {:#x}, thread sweep {:?}, shard {shard_size})...",
                config.scale, config.attack_scale, config.seed, counts
            );
            idnre_bench::run_pipeline_sweep_sharded(config, counts, shard_size)
        }
        None => {
            eprintln!(
                "benchmarking pipeline (scale 1:{}, attacks 1:{}, seed {:#x}, {} threads, shard {shard_size})...",
                config.scale, config.attack_scale, config.seed, config.threads
            );
            idnre_bench::run_pipeline_bench_sharded(config, shard_size)
        }
    };
    eprint!("{}", idnre_bench::render_bench_text(&bench));

    if let Some(path) = dump_dataset {
        write_dataset(path, &bench.dataset);
    }

    let bench_path = "BENCH_pipeline.json";
    let mut json = idnre_bench::render_bench_json(&bench);
    json.push('\n');
    std::fs::write(bench_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {bench_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("wrote {bench_path}");

    match write_path {
        Some(path) => {
            std::fs::write(path, &bench.report).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => {
            let mut stdout = std::io::stdout().lock();
            let _ = stdout.write_all(bench.report.as_bytes());
        }
    }
}

/// Writes the canonical `idnre-dataset/2` bytes with the fingerprint noted
/// on stderr (CI compares both across thread counts).
fn write_dataset(path: &str, dataset: &str) {
    std::fs::write(path, dataset).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "wrote {path} ({} bytes, fingerprint {:#018x})",
        dataset.len(),
        idnre_datagen::dataset_fingerprint(dataset)
    );
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: repro [--scale N] [--attack-scale N] [--seed N] [--threads N] [--write PATH] \
         [--metrics text|json|det] [--stream] [--shard-size N] \
         [--faults none|smoke|flaky|storm|SEED|PROFILE:SEED] \
         [--crawl-sched] [--inflight N] [--rate R] [--bench] \
         [--thread-sweep N,N,...] [--dump-dataset PATH] [--trace PATH] \
         [--slo smoke|tight] [--mine-portfolios] \
         [--epochs N] [--churn-per-mille M] <experiment...>\n\
         exit codes with --faults or --slo: 0 clean, 3 degraded, 4 budget/bound exceeded\n\
         experiments: all {}",
        reports::ALL
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}
