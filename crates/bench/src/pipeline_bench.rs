//! The `repro --bench` harness: one timed pass over the end-to-end
//! pipeline, written as `BENCH_pipeline.json` so every PR leaves a
//! perf-trajectory point behind.
//!
//! Two sources feed the entries:
//!
//! 1. **Telemetry spans.** The pipeline runs once under a
//!    [`Registry`]; every stage span it records (generation sub-stages,
//!    the detector scans, the surveys, each report generator) becomes one
//!    entry with its measured wall time and record count.
//! 2. **Explicit probes.** Stages whose cost the spans do not isolate are
//!    re-measured directly: punycode decode over the IDN corpus, lenient
//!    zone ingest over the emitted zones, and the homograph scan in both
//!    its indexed and exhaustive forms over several corpus sizes — the
//!    indexed-vs-exhaustive pair is the regression gate CI holds every
//!    future change to.
//!
//! # Schema (`idnre-bench-pipeline/6`)
//!
//! ```json
//! {
//!   "schema": "idnre-bench-pipeline/6",
//!   "scale": 50, "attack_scale": 1, "threads": 8, "seed": 497885208,
//!   "dataset_fingerprint": "0xffbab908278775d0",
//!   "shard_size": 1024, "peak_resident_records": 12288,
//!   "mining": {"candidate_pairs": 420, "verified_pairs": 37, "portfolios": 9},
//!   "epochs": {"count": 3, "churn_per_mille": 20, "shard_size": 64,
//!              "total_shards": 890, "refolded": 21,
//!              "incremental_wall_ns": 1234, "rebuild_wall_ns": 56789},
//!   "entries": [
//!     {"stage": "build.ecosystem", "pass": "", "mode": "batch", "scale": 50,
//!      "threads": 8, "wall_ns": 1234, "records": 29000, "ns_per_record": 42}
//!   ]
//! }
//! ```
//!
//! Schema 6 adds the incremental-epoch probe: [`crate::run_epochs`] plays
//! [`EPOCH_PROBE_EPOCHS`] simulated zone-diff days at
//! [`EPOCH_PROBE_CHURN_PER_MILLE`] churn over its own shard grid
//! ([`EPOCH_PROBE_SHARD_SIZE`]), re-folding only dirty shards with a
//! from-scratch shadow rebuild per epoch (byte-equality asserted inside
//! the run). The summed walls land as the `analyze.epoch.incremental` /
//! `analyze.epoch.rebuild` entry pair plus the top-level `epochs` block —
//! the re-fold-only-dirty speedup CI gates, next to the other two
//! indexed-vs-exhaustive pairs.
//!
//! Schema 5 runs both legs with the portfolio miner enabled — the two
//! mining stages (`analyze.pass.bucket_index`, `analyze.pass.pair_mine`)
//! join the per-pass ledger, the top-level `mining` block summarizes the
//! mined result, and an LSH-vs-exhaustive probe pair (`mine.pairs.lsh`,
//! `mine.pairs.exhaustive`, equality-asserted on the capped corpus
//! prefix) pins the measured speedup CI gates.
//!
//! Schema 4 adds the two top-level memory-budget keys: `shard_size` (the
//! shard the streamed leg regenerated at, settable via
//! `repro --bench --stream --shard-size N`) and `peak_resident_records`
//! (the streamed build's `datagen.peak_resident_records` gauge peak). The
//! paper-scale contract `peak_resident_records ≤ 4 × shard_size × threads`
//! is readable straight from the JSON, which is how CI's streamed bench
//! proxy gates it.
//!
//! Schema 3 adds a per-entry `pass` key: the short pass name for
//! `analyze.pass.<name>` attribution stages (`"homograph"`, `"tld"`, …)
//! and the empty string for every other stage. It also adds two
//! externally timed probes, `analyze.scan.instrumented` and
//! `analyze.scan.uninstrumented` — the same fused scan re-run under a
//! live [`Registry`] and under the no-op recorder — so the attribution
//! overhead is measurable straight from `BENCH_pipeline.json`.
//!
//! `mode` says which build produced the entry: `batch` (fully materialized
//! corpus) or `streamed` (the bounded-memory shard-regenerating build; its
//! stage spans come from a second timed run whose report the harness
//! asserts byte-identical to the batch one).
//!
//! `records` is the number of domains (or zone lines, report bytes) the
//! stage processed; `ns_per_record` is the per-domain throughput the
//! ISSUE's trajectory tracks. Wall times are measurements, not part of
//! the byte-identical report contract. A thread sweep
//! ([`run_pipeline_sweep`]) concatenates the per-thread-count entries into
//! one result — each entry carries the worker count it ran at — after
//! asserting the report bytes and the `idnre-dataset/2` fingerprint are
//! identical across every count.

use crate::ReproContext;
use idnre_analyze::SliceSource;
use idnre_datagen::EcosystemConfig;
use idnre_telemetry::{NoopRecorder, Registry, SpanCtx};
use std::sync::Arc;
use std::time::Instant;

/// Schema tag of the JSON this module writes.
pub const BENCH_SCHEMA: &str = "idnre-bench-pipeline/6";

/// Warm epochs the schema-6 incremental-epoch probe plays.
pub const EPOCH_PROBE_EPOCHS: u64 = 3;

/// Day-simulator churn (events per thousand base records per epoch) of
/// the epoch probe.
pub const EPOCH_PROBE_CHURN_PER_MILLE: u64 = 20;

/// Shard size of the epoch probe's grid — small enough that a day's
/// cohort-clustered deltas dirty a thin slice of the grid at bench scale.
pub const EPOCH_PROBE_SHARD_SIZE: usize = 64;

/// Prefix of the per-pass attribution stages the fused scan records.
pub const PASS_STAGE_PREFIX: &str = "analyze.pass.";

/// Rounds of the instrumented/uninstrumented probe pair; the entries keep
/// the minimum wall of each, so transient scheduler noise on one round
/// cannot masquerade as instrumentation overhead.
pub const OVERHEAD_PROBE_ROUNDS: usize = 2;

/// Corpus sizes the homograph indexed-vs-exhaustive comparison runs at
/// (intersected with the generated corpus).
pub const HOMOGRAPH_BENCH_SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// The exhaustive oracle is O(brands) per domain, so its probe corpus is
/// capped to keep a bench run in seconds; the indexed path is measured at
/// the same capped size so the pair stays comparable.
pub const EXHAUSTIVE_CAP: usize = 10_000;

/// One timed pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Dotted stage name (`homograph.scan.indexed`, `report.table1`, …).
    pub stage: String,
    /// Which build produced the entry: `batch` or `streamed`.
    pub mode: &'static str,
    /// Worker threads the stage's parallel sections ran on.
    pub threads: usize,
    /// Wall time of the stage, in nanoseconds.
    pub wall_ns: u64,
    /// Records the stage processed (domains, zone lines, report bytes).
    pub records: u64,
}

impl BenchEntry {
    /// Per-record wall time (0 when the stage processed nothing).
    pub fn ns_per_record(&self) -> u64 {
        self.wall_ns.checked_div(self.records).unwrap_or(0)
    }

    /// Short pass name for `analyze.pass.<name>` attribution stages, the
    /// empty string for everything else — the schema-3 `pass` key.
    pub fn pass(&self) -> &str {
        self.stage.strip_prefix(PASS_STAGE_PREFIX).unwrap_or("")
    }
}

/// The schema-5 top-level `mining` summary block: the mined result of the
/// batch leg (byte-identical across legs and thread counts, which the
/// sweep asserts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiningSummary {
    /// In-bucket candidate pairs pass B generated.
    pub candidate_pairs: u64,
    /// SSIM-verified confusable pairs.
    pub verified_pairs: u64,
    /// Clustered squatter portfolios.
    pub portfolios: u64,
}

/// The schema-6 top-level `epochs` summary block: the incremental-epoch
/// probe's shard accounting and summed walls. The walls are measurements;
/// the shard accounting is deterministic and asserted identical across a
/// sweep's thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// Warm epochs the probe played.
    pub epochs: u64,
    /// Day-simulator churn rate the probe ran at.
    pub churn_per_mille: u64,
    /// Shard size of the probe's grid.
    pub shard_size: usize,
    /// Shards in the final epoch's grid.
    pub total_shards: u64,
    /// Shards re-folded across all warm epochs.
    pub refolded: u64,
    /// Summed incremental fold wall across warm epochs.
    pub incremental_wall_ns: u64,
    /// Summed shadow-rebuild wall across warm epochs.
    pub rebuild_wall_ns: u64,
}

/// A full `repro --bench` result.
#[derive(Debug, Clone)]
pub struct PipelineBench {
    /// Ecosystem scale denominator the run used.
    pub scale: u64,
    /// Attack-population scale denominator.
    pub attack_scale: u64,
    /// Worker threads the run was configured with (a sweep reports the
    /// per-entry counts instead).
    pub threads: usize,
    /// RNG seed (the run is reproducible from `scale` + `seed`).
    pub seed: u64,
    /// FNV-1a fingerprint of the rendered `idnre-dataset/2` artifact — the
    /// schedule-independence oracle a sweep asserts across thread counts.
    pub dataset_fingerprint: u64,
    /// Shard size the streamed leg regenerated the corpus at.
    pub shard_size: usize,
    /// Peak of the streamed build's `datagen.peak_resident_records` gauge —
    /// the memory-budget number the paper-scale contract
    /// (`≤ 4 × shard_size × threads`) is checked against. A sweep keeps
    /// the maximum across its per-count runs.
    pub peak_resident_records: u64,
    /// The mined-portfolio summary (a sweep asserts it identical across
    /// counts and keeps the first).
    pub mining: Option<MiningSummary>,
    /// The incremental-epoch probe summary (a sweep asserts the shard
    /// accounting identical across counts and keeps the first).
    pub epochs: Option<EpochSummary>,
    /// Timed stages, in pipeline order.
    pub entries: Vec<BenchEntry>,
    /// The regenerated report (so `--bench` still honours `--write`).
    pub report: String,
    /// The rendered `idnre-dataset/2` artifact (for `--dump-dataset`).
    pub dataset: String,
}

impl PipelineBench {
    /// The entry for `stage` with the largest record count, if any.
    pub fn entry(&self, stage: &str) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .filter(|e| e.stage == stage)
            .max_by_key(|e| e.records)
    }

    /// The entry for `stage` at a specific worker count — the lookup the
    /// CI scaling gate uses on sweep results.
    pub fn entry_at(&self, stage: &str, threads: usize) -> Option<&BenchEntry> {
        self.entries
            .iter()
            .filter(|e| e.stage == stage && e.threads == threads)
            .max_by_key(|e| e.records)
    }

    /// Indexed-over-exhaustive speedup on the capped comparison corpus
    /// (>1 means the index wins). `None` before both probes ran.
    pub fn homograph_speedup(&self) -> Option<f64> {
        let indexed = self.entry("homograph.scan.indexed")?;
        let exhaustive = self.entry("homograph.scan.exhaustive")?;
        if indexed.wall_ns == 0 {
            return None;
        }
        Some(exhaustive.wall_ns as f64 / indexed.wall_ns as f64)
    }

    /// LSH-over-exhaustive speedup of the portfolio pair miner on the
    /// capped comparison prefix (>1 means the bucket index wins). `None`
    /// before both probes ran.
    pub fn mining_speedup(&self) -> Option<f64> {
        let lsh = self.entry("mine.pairs.lsh")?;
        let exhaustive = self.entry("mine.pairs.exhaustive")?;
        if lsh.wall_ns == 0 {
            return None;
        }
        Some(exhaustive.wall_ns as f64 / lsh.wall_ns as f64)
    }

    /// Rebuild-over-incremental speedup of the epoch probe (>1 means
    /// re-folding only dirty shards wins). `None` before both probes ran.
    pub fn epoch_speedup(&self) -> Option<f64> {
        let incremental = self.entry("analyze.epoch.incremental")?;
        let rebuild = self.entry("analyze.epoch.rebuild")?;
        if incremental.wall_ns == 0 {
            return None;
        }
        Some(rebuild.wall_ns as f64 / incremental.wall_ns as f64)
    }

    /// Instrumented-over-uninstrumented wall ratio of the fused scan
    /// (1.03 = 3% attribution overhead). `None` before both probes ran.
    pub fn instrumentation_overhead(&self) -> Option<f64> {
        let on = self.entry("analyze.scan.instrumented")?;
        let off = self.entry("analyze.scan.uninstrumented")?;
        if off.wall_ns == 0 {
            return None;
        }
        Some(on.wall_ns as f64 / off.wall_ns as f64)
    }
}

/// One `analyze.pass.<name>` row of a [`RunLedger`].
#[derive(Debug, Clone)]
pub struct LedgerRow {
    /// Full stage name (`analyze.pass.homograph`).
    pub stage: String,
    /// Short pass name (`homograph`).
    pub pass: String,
    /// Summed wall across the pass's shard spans, merge and finish.
    pub wall_ns: u64,
    /// Records the pass observed.
    pub records: u64,
}

impl LedgerRow {
    /// Per-record attribution cost (0 when nothing was observed).
    pub fn ns_per_record(&self) -> u64 {
        self.wall_ns.checked_div(self.records).unwrap_or(0)
    }
}

/// The per-pass cost ledger of one (mode, threads) pipeline run: every
/// `analyze.pass.<name>` stage's wall and ns/record next to the
/// `analyze.scan` wall they decompose. Rendered on stderr by
/// `repro --bench` — never into the report, whose bytes stay identical
/// with and without instrumentation.
#[derive(Debug, Clone)]
pub struct RunLedger {
    /// Which build produced the rows: `batch` or `streamed`.
    pub mode: &'static str,
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall of the enclosing `analyze.scan` span.
    pub scan_wall_ns: u64,
    /// One row per registered pass, snapshot (registration) order.
    pub rows: Vec<LedgerRow>,
}

impl RunLedger {
    /// Builds one ledger per (mode, threads) group of `bench` that carries
    /// an `analyze.scan` entry, in first-seen entry order.
    pub fn collect(bench: &PipelineBench) -> Vec<RunLedger> {
        let mut ledgers: Vec<RunLedger> = Vec::new();
        for entry in &bench.entries {
            if entry.stage != idnre_analyze::SCAN_SPAN {
                continue;
            }
            if ledgers
                .iter()
                .any(|l| l.mode == entry.mode && l.threads == entry.threads)
            {
                continue;
            }
            let rows = bench
                .entries
                .iter()
                .filter(|e| {
                    e.mode == entry.mode
                        && e.threads == entry.threads
                        && e.stage.starts_with(PASS_STAGE_PREFIX)
                })
                .map(|e| LedgerRow {
                    stage: e.stage.clone(),
                    pass: e.pass().to_string(),
                    wall_ns: e.wall_ns,
                    records: e.records,
                })
                .collect();
            ledgers.push(RunLedger {
                mode: entry.mode,
                threads: entry.threads,
                scan_wall_ns: entry.wall_ns,
                rows,
            });
        }
        ledgers
    }

    /// Summed wall across every pass row.
    pub fn pass_wall_ns(&self) -> u64 {
        self.rows.iter().map(|r| r.wall_ns).sum()
    }

    /// Fraction of the `analyze.scan` wall the pass rows account for.
    /// Can exceed 1.0: shard spans on different workers overlap in time.
    pub fn coverage(&self) -> f64 {
        if self.scan_wall_ns == 0 {
            return 0.0;
        }
        self.pass_wall_ns() as f64 / self.scan_wall_ns as f64
    }

    /// Renders the ledger as the stderr table `repro --bench` prints.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pass ledger — mode {}, {} threads, analyze.scan {:.3} ms\n",
            self.mode,
            self.threads,
            self.scan_wall_ns as f64 / 1e6
        ));
        out.push_str(&format!(
            "  {:<12} {:>12} {:>12} {:>10} {:>8}\n",
            "pass", "wall_ms", "records", "ns/rec", "share"
        ));
        for row in &self.rows {
            let share = if self.scan_wall_ns == 0 {
                0.0
            } else {
                100.0 * row.wall_ns as f64 / self.scan_wall_ns as f64
            };
            out.push_str(&format!(
                "  {:<12} {:>12.3} {:>12} {:>10} {:>7.1}%\n",
                row.pass,
                row.wall_ns as f64 / 1e6,
                row.records,
                row.ns_per_record(),
                share,
            ));
        }
        out.push_str(&format!(
            "  attributed: {:.1}% of analyze.scan\n",
            100.0 * self.coverage()
        ));
        out
    }
}

/// Runs the full pipeline once under telemetry and the explicit probes on
/// top, returning every timed stage. Wall times vary run to run; the
/// report inside is byte-identical to a plain `repro all` at the same
/// config.
pub fn run_pipeline_bench(config: &EcosystemConfig) -> PipelineBench {
    run_pipeline_bench_sharded(config, crate::DEFAULT_SHARD_SIZE)
}

/// [`run_pipeline_bench`] with the streamed leg regenerating `shard_size`
/// records at a time — the `repro --bench --stream --shard-size N` path.
/// A smaller shard tightens the `peak_resident_records` budget the result
/// reports; the report and dataset bytes do not depend on it.
pub fn run_pipeline_bench_sharded(config: &EcosystemConfig, shard_size: usize) -> PipelineBench {
    let registry = Arc::new(Registry::new());
    let ctx = ReproContext::build_mined(config, registry.clone());
    let report = ctx.full_report();
    let mining = ctx.mining.as_ref().map(|m| MiningSummary {
        candidate_pairs: m.candidate_pairs,
        verified_pairs: m.verified.len() as u64,
        portfolios: m.portfolios.len() as u64,
    });

    let threads = config.threads;
    let mut entries: Vec<BenchEntry> = registry
        .snapshot()
        .stages
        .iter()
        .map(|s| BenchEntry {
            stage: s.name.clone(),
            mode: "batch",
            threads,
            wall_ns: s.wall_nanos,
            records: s.records.max(s.calls),
        })
        .collect();
    let domains: Vec<&str> = ctx
        .eco
        .idn_registrations
        .iter()
        .map(|r| r.domain.as_str())
        .collect();

    // Punycode decode throughput over the registered IDN corpus.
    let started = Instant::now();
    let decoded = idnre_par::par_map(&domains, threads, |d| idnre_idna::to_unicode(d).is_ok());
    entries.push(BenchEntry {
        stage: "idna.decode".to_string(),
        mode: "batch",
        threads,
        wall_ns: elapsed_ns(started),
        records: decoded.iter().filter(|ok| **ok).count() as u64,
    });

    // Lenient ingest throughput: the emitted zones round-tripped through
    // master-file text and re-parsed with the skip-and-count parser.
    let started = Instant::now();
    let attempted: u64 = idnre_par::par_map(&ctx.eco.zones, threads, |zone| {
        let text = idnre_zonefile::write_zone(zone);
        idnre_zonefile::parse_zone_lenient(&zone.origin.to_string(), &text).attempted as u64
    })
    .into_iter()
    .sum();
    entries.push(BenchEntry {
        stage: "zone.ingest.lenient".to_string(),
        mode: "batch",
        threads,
        wall_ns: elapsed_ns(started),
        records: attempted,
    });

    // The indexed scan across the size ladder, then the indexed-vs-
    // exhaustive pair at the capped size — the entries CI gates on.
    let brand_domains: Vec<String> = ctx.eco.brands.iter().map(|b| b.domain()).collect();
    let detector = idnre_core::HomographDetector::new(&brand_domains, 0.95);
    for size in HOMOGRAPH_BENCH_SIZES {
        if size > domains.len() {
            break;
        }
        let slice = &domains[..size];
        let started = Instant::now();
        let found = detector.scan(slice.iter().copied(), threads).len();
        entries.push(BenchEntry {
            stage: "homograph.scan.indexed".to_string(),
            mode: "batch",
            threads,
            wall_ns: elapsed_ns(started),
            records: size as u64,
        });
        let _ = found;
    }
    let cap = domains.len().min(EXHAUSTIVE_CAP);
    let slice = &domains[..cap];
    let started = Instant::now();
    let indexed = detector.scan(slice.iter().copied(), threads);
    let indexed_ns = elapsed_ns(started);
    let started = Instant::now();
    let exhaustive = detector.scan_exhaustive(slice.iter().copied(), threads);
    let exhaustive_ns = elapsed_ns(started);
    assert_eq!(
        indexed, exhaustive,
        "indexed scan diverged from the exhaustive oracle"
    );
    entries.push(BenchEntry {
        stage: "homograph.scan.indexed".to_string(),
        mode: "batch",
        threads,
        wall_ns: indexed_ns,
        records: cap as u64,
    });
    entries.push(BenchEntry {
        stage: "homograph.scan.exhaustive".to_string(),
        mode: "batch",
        threads,
        wall_ns: exhaustive_ns,
        records: cap as u64,
    });

    // Render the canonical dataset — the byte artifact `--dump-dataset`
    // writes and the sweep diffs across thread counts.
    let started = Instant::now();
    let dataset = idnre_datagen::render_dataset(&ctx.eco);
    entries.push(BenchEntry {
        stage: "dataset.render".to_string(),
        mode: "batch",
        threads,
        wall_ns: elapsed_ns(started),
        records: dataset.len() as u64,
    });

    // The portfolio-mining pair: skeleton-LSH bucketed pair verification
    // vs the all-pairs oracle over the same capped corpus prefix — the
    // second indexed-vs-exhaustive regression gate CI holds. Containment
    // is asserted, not equality: the oracle also surfaces pairs that clear
    // the SSIM bar without sharing a confusable skeleton (visual
    // near-misses outside the confusables table), which skeleton blocking
    // deliberately does not chase. Equality is the contract on forged
    // confusable corpora, pinned by the proptest oracle-equivalence test.
    let probe_source = SliceSource::new(&ctx.eco.idn_registrations, &ctx.eco.non_idn_registrations);
    let columns = crate::passes::build_columns(
        &probe_source,
        &ctx.eco.blacklist,
        crate::DEFAULT_SHARD_SIZE,
        threads,
        &NoopRecorder,
        SpanCtx::NONE,
    );
    let mining_plan = crate::mine::MiningPlan::new(&columns, threads);
    let mine_cap = columns.len().min(EXHAUSTIVE_CAP);
    let started = Instant::now();
    let lsh_pairs = crate::mine::verified_pairs_lsh(&columns, &mining_plan, mine_cap, threads);
    let lsh_ns = elapsed_ns(started);
    let started = Instant::now();
    let oracle_pairs =
        crate::mine::verified_pairs_exhaustive(&columns, &mining_plan, mine_cap, threads);
    let oracle_ns = elapsed_ns(started);
    let oracle_set: std::collections::HashSet<_> =
        oracle_pairs.iter().map(|p| (p.a, p.b)).collect();
    for pair in &lsh_pairs {
        assert!(
            oracle_set.contains(&(pair.a, pair.b)),
            "LSH mined a pair the exhaustive oracle rejects: {pair:?}"
        );
    }
    for (stage, wall_ns) in [
        ("mine.pairs.lsh", lsh_ns),
        ("mine.pairs.exhaustive", oracle_ns),
    ] {
        entries.push(BenchEntry {
            stage: stage.to_string(),
            mode: "batch",
            threads,
            wall_ns,
            records: mine_cap as u64,
        });
    }

    // Attribution-overhead pair: the same fused scan re-run back to back
    // under a live registry and under the no-op recorder, timed
    // externally. Rounds alternate and each probe keeps its minimum wall,
    // so `instrumented / uninstrumented` read from the JSON is the
    // per-pass-attribution overhead the <5% budget gates.
    let corpus_len = (ctx.eco.idn_registrations.len() + ctx.eco.non_idn_registrations.len()) as u64;
    let mut instrumented_ns = u64::MAX;
    let mut uninstrumented_ns = u64::MAX;
    for _ in 0..OVERHEAD_PROBE_ROUNDS {
        let probe_registry = Registry::new();
        let started = Instant::now();
        let _ = crate::run_scan(
            &ctx.eco,
            &probe_source,
            crate::DEFAULT_SHARD_SIZE,
            threads,
            false,
            &probe_registry,
            SpanCtx::NONE,
        );
        instrumented_ns = instrumented_ns.min(elapsed_ns(started));
        let started = Instant::now();
        let _ = crate::run_scan(
            &ctx.eco,
            &probe_source,
            crate::DEFAULT_SHARD_SIZE,
            threads,
            false,
            &NoopRecorder,
            SpanCtx::NONE,
        );
        uninstrumented_ns = uninstrumented_ns.min(elapsed_ns(started));
    }
    for (stage, wall_ns) in [
        ("analyze.scan.instrumented", instrumented_ns),
        ("analyze.scan.uninstrumented", uninstrumented_ns),
    ] {
        entries.push(BenchEntry {
            stage: stage.to_string(),
            mode: "batch",
            threads,
            wall_ns,
            records: corpus_len,
        });
    }

    // Crawl-survey throughput pair: the same fault-free population walked
    // by the synchronous per-domain path and by the event-driven scheduler
    // (wheel, rate limits, breakers). `crawl.survey.sched` vs
    // `crawl.survey.sync` read from the JSON is the scheduler's overhead
    // on a clean run — the throughput floor CI's storm-smoke job gates.
    let clean_plan = idnre_fault::FaultPlan::new(config.seed, idnre_fault::FaultProfile::none());
    let fault_ctx = idnre_crawler::FaultContext {
        plan: clean_plan,
        policy: idnre_fault::RetryPolicy::default(),
    };
    let survey_domains = corpus_len;
    let started = Instant::now();
    let _ = crate::robust::crawl_survey_faulted(
        &ctx.eco,
        &ctx.eco.zones,
        &fault_ctx,
        threads,
        &idnre_fault::ErrorBudget::new(0),
        &NoopRecorder,
    );
    entries.push(BenchEntry {
        stage: "crawl.survey.sync".to_string(),
        mode: "batch",
        threads,
        wall_ns: elapsed_ns(started),
        records: survey_domains,
    });
    let started = Instant::now();
    let _ = crate::robust::crawl_survey_scheduled(
        &ctx.eco,
        &ctx.eco.zones,
        &clean_plan,
        &idnre_sched::SchedConfig::default(),
        threads,
        &idnre_fault::ErrorBudget::new(0),
        &NoopRecorder,
    );
    entries.push(BenchEntry {
        stage: "crawl.survey.sched".to_string(),
        mode: "batch",
        threads,
        wall_ns: elapsed_ns(started),
        records: survey_domains,
    });

    // The incremental-epoch probe: a short zone-diff loop on its own
    // shard grid. run_epochs shadow-rebuilds every epoch and asserts the
    // reports byte-identical, so the entry pair below is measured over a
    // proven-equivalent pair of folds — the third indexed-vs-exhaustive
    // regression gate.
    let epoch_run = crate::run_epochs(
        config,
        EPOCH_PROBE_SHARD_SIZE,
        EPOCH_PROBE_EPOCHS,
        EPOCH_PROBE_CHURN_PER_MILLE,
        Arc::new(NoopRecorder),
    );
    entries.push(BenchEntry {
        stage: "analyze.epoch.incremental".to_string(),
        mode: "streamed",
        threads,
        wall_ns: epoch_run.incremental_ns(),
        records: epoch_run.refolded_records(),
    });
    entries.push(BenchEntry {
        stage: "analyze.epoch.rebuild".to_string(),
        mode: "streamed",
        threads,
        wall_ns: epoch_run.rebuild_ns(),
        records: epoch_run.rebuild_records(),
    });
    let epochs = Some(EpochSummary {
        epochs: EPOCH_PROBE_EPOCHS,
        churn_per_mille: EPOCH_PROBE_CHURN_PER_MILLE,
        shard_size: EPOCH_PROBE_SHARD_SIZE,
        total_shards: epoch_run.total_shards(),
        refolded: epoch_run.total_refolded(),
        incremental_wall_ns: epoch_run.incremental_ns(),
        rebuild_wall_ns: epoch_run.rebuild_ns(),
    });

    // The streamed counterpart: the bounded-memory build timed under its
    // own registry. Its report is the cross-mode oracle — byte-identical
    // to the batch run or the bench aborts — and its stage spans land as
    // `streamed` entries (including `datagen.peak_resident_records`-backed
    // shard regeneration inside `build.ecosystem`).
    let streamed_registry = Arc::new(Registry::new());
    let streamed_ctx =
        ReproContext::build_streamed_mined(config, shard_size, streamed_registry.clone());
    let streamed_report = streamed_ctx.full_report();
    assert_eq!(
        report, streamed_report,
        "streamed report diverged from batch"
    );
    let peak_resident_records = streamed_registry.gauge_peak(idnre_datagen::PEAK_RESIDENT_RECORDS);
    entries.extend(
        streamed_registry
            .snapshot()
            .stages
            .iter()
            .map(|s| BenchEntry {
                stage: s.name.clone(),
                mode: "streamed",
                threads,
                wall_ns: s.wall_nanos,
                records: s.records.max(s.calls),
            }),
    );

    PipelineBench {
        scale: config.scale,
        attack_scale: config.attack_scale,
        threads,
        seed: config.seed,
        dataset_fingerprint: idnre_datagen::dataset_fingerprint(&dataset),
        shard_size,
        peak_resident_records,
        mining,
        epochs,
        entries,
        report,
        dataset,
    }
}

/// Runs [`run_pipeline_bench`] once per worker count in `thread_counts`
/// and concatenates the timed entries into one result (each entry carries
/// its own `threads`). Panics unless the report bytes and the dataset
/// fingerprint are identical across every count — the sweep is the
/// schedule-independence oracle, not just a timing table.
pub fn run_pipeline_sweep(config: &EcosystemConfig, thread_counts: &[usize]) -> PipelineBench {
    run_pipeline_sweep_sharded(config, thread_counts, crate::DEFAULT_SHARD_SIZE)
}

/// [`run_pipeline_sweep`] at an explicit streamed shard size. The result's
/// `peak_resident_records` is the maximum across the per-count runs, so
/// the budget bound must be read against the largest swept worker count.
pub fn run_pipeline_sweep_sharded(
    config: &EcosystemConfig,
    thread_counts: &[usize],
    shard_size: usize,
) -> PipelineBench {
    assert!(!thread_counts.is_empty(), "sweep needs at least one count");
    let mut sweep: Option<PipelineBench> = None;
    for &threads in thread_counts {
        let run = run_pipeline_bench_sharded(
            &EcosystemConfig {
                threads,
                ..config.clone()
            },
            shard_size,
        );
        match &mut sweep {
            None => sweep = Some(run),
            Some(first) => {
                assert_eq!(
                    first.dataset_fingerprint, run.dataset_fingerprint,
                    "dataset bytes diverged at {threads} threads"
                );
                assert_eq!(
                    first.report, run.report,
                    "report bytes diverged at {threads} threads"
                );
                assert_eq!(
                    first.mining, run.mining,
                    "mined summary diverged at {threads} threads"
                );
                // The epoch walls are measurements, but the shard
                // accounting is a pure function of the corpus and deltas.
                if let (Some(a), Some(b)) = (&first.epochs, &run.epochs) {
                    assert_eq!(
                        (a.total_shards, a.refolded),
                        (b.total_shards, b.refolded),
                        "epoch shard accounting diverged at {threads} threads"
                    );
                }
                first.peak_resident_records =
                    first.peak_resident_records.max(run.peak_resident_records);
                first.entries.extend(run.entries);
            }
        }
    }
    sweep.expect("at least one sweep run")
}

/// Renders a bench result as schema-stable JSON (`idnre-bench-pipeline/6`).
pub fn render_bench_json(bench: &PipelineBench) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{BENCH_SCHEMA}\",\"scale\":{},\"attack_scale\":{},\
         \"threads\":{},\"seed\":{},\"dataset_fingerprint\":\"{:#018x}\",\
         \"shard_size\":{},\"peak_resident_records\":{},",
        bench.scale,
        bench.attack_scale,
        bench.threads,
        bench.seed,
        bench.dataset_fingerprint,
        bench.shard_size,
        bench.peak_resident_records
    ));
    if let Some(mining) = &bench.mining {
        out.push_str(&format!(
            "\"mining\":{{\"candidate_pairs\":{},\"verified_pairs\":{},\
             \"portfolios\":{}}},",
            mining.candidate_pairs, mining.verified_pairs, mining.portfolios
        ));
    }
    if let Some(epochs) = &bench.epochs {
        out.push_str(&format!(
            "\"epochs\":{{\"count\":{},\"churn_per_mille\":{},\"shard_size\":{},\
             \"total_shards\":{},\"refolded\":{},\"incremental_wall_ns\":{},\
             \"rebuild_wall_ns\":{}}},",
            epochs.epochs,
            epochs.churn_per_mille,
            epochs.shard_size,
            epochs.total_shards,
            epochs.refolded,
            epochs.incremental_wall_ns,
            epochs.rebuild_wall_ns
        ));
    }
    out.push_str("\"entries\":[");
    for (i, entry) in bench.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"stage\":\"{}\",\"pass\":\"{}\",\"mode\":\"{}\",\"scale\":{},\"threads\":{},\
             \"wall_ns\":{},\"records\":{},\"ns_per_record\":{}}}",
            entry.stage,
            entry.pass(),
            entry.mode,
            bench.scale,
            entry.threads,
            entry.wall_ns,
            entry.records,
            entry.ns_per_record(),
        ));
    }
    out.push_str("]}");
    out
}

/// Renders the human summary `--bench` prints on stderr.
pub fn render_bench_text(bench: &PipelineBench) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "pipeline bench — scale 1:{}, dataset {:#018x}\n",
        bench.scale, bench.dataset_fingerprint
    ));
    out.push_str(&format!(
        "{:<28} {:>7} {:>12} {:>12} {:>10}\n",
        "stage", "threads", "wall_ms", "records", "ns/rec"
    ));
    for entry in &bench.entries {
        out.push_str(&format!(
            "{:<28} {:>7} {:>12.3} {:>12} {:>10}\n",
            entry.stage,
            entry.threads,
            entry.wall_ns as f64 / 1e6,
            entry.records,
            entry.ns_per_record(),
        ));
    }
    out.push_str(&format!(
        "streamed peak residency: {} records (shard size {})\n",
        bench.peak_resident_records, bench.shard_size
    ));
    if let Some(speedup) = bench.homograph_speedup() {
        out.push_str(&format!(
            "homograph index speedup over exhaustive oracle: {speedup:.1}x\n"
        ));
    }
    if let Some(mining) = &bench.mining {
        out.push_str(&format!(
            "portfolio mining: {} candidate pairs, {} verified, {} portfolios\n",
            mining.candidate_pairs, mining.verified_pairs, mining.portfolios
        ));
    }
    if let Some(speedup) = bench.mining_speedup() {
        out.push_str(&format!(
            "pair-mining LSH speedup over exhaustive oracle: {speedup:.1}x\n"
        ));
    }
    if let (Some(epochs), Some(speedup)) = (&bench.epochs, bench.epoch_speedup()) {
        out.push_str(&format!(
            "incremental epoch speedup over per-epoch rebuild: {speedup:.1}x \
             ({}/{} shards refolded across {} epochs at {}\u{2030} churn)\n",
            epochs.refolded,
            epochs.total_shards * epochs.epochs,
            epochs.epochs,
            epochs.churn_per_mille
        ));
    }
    if let Some(overhead) = bench.instrumentation_overhead() {
        out.push_str(&format!(
            "scan attribution overhead (instrumented/uninstrumented): {overhead:.3}x\n"
        ));
    }
    for ledger in RunLedger::collect(bench) {
        out.push_str(&ledger.render_text());
    }
    out
}

fn elapsed_ns(started: Instant) -> u64 {
    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_is_well_formed_and_gated() {
        let bench = run_pipeline_bench(&EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            ..EcosystemConfig::default()
        });
        // Stage coverage: generation, decode, ingest, both scan paths,
        // reports.
        for stage in [
            "build.ecosystem",
            "idna.decode",
            "zone.ingest.lenient",
            "homograph.scan.indexed",
            "homograph.scan.exhaustive",
            "analyze.pass.semantic1",
            "analyze.pass.bucket_index",
            "analyze.pass.pair_mine",
            "mine.pairs.lsh",
            "mine.pairs.exhaustive",
            "analyze.epoch.incremental",
            "analyze.epoch.rebuild",
            "analyze.scan.instrumented",
            "analyze.scan.uninstrumented",
            "dataset.render",
        ] {
            assert!(bench.entry(stage).is_some(), "missing stage {stage}");
        }
        assert!(bench.entries.iter().any(|e| e.stage.starts_with("report.")));
        assert!(bench.homograph_speedup().is_some());
        assert!(bench.mining_speedup().is_some());
        assert!(bench.epoch_speedup().is_some());
        assert!(bench.instrumentation_overhead().is_some());

        // The schema-6 epoch block: accounting is deterministic at a
        // fixed config; the incremental leg must have skipped shards.
        let epochs = bench.epochs.expect("schema 6 always probes epochs");
        assert_eq!(epochs.epochs, EPOCH_PROBE_EPOCHS);
        assert!(epochs.refolded < epochs.total_shards * epochs.epochs);
        assert!(epochs.refolded >= epochs.epochs);
        assert!(bench.dataset.starts_with(idnre_datagen::DATASET_SCHEMA));
        let mining = bench.mining.expect("schema 5 always mines");
        assert!(mining.candidate_pairs >= mining.verified_pairs);
        assert!(mining.verified_pairs >= mining.portfolios);

        // The streamed leg's residency gauge lands as the schema-4
        // memory-budget pair, within the paper-scale bound.
        assert!(bench.peak_resident_records > 0);
        assert_eq!(bench.shard_size, crate::DEFAULT_SHARD_SIZE);
        assert!(
            bench.peak_resident_records <= (4 * bench.shard_size * bench.threads) as u64,
            "peak {} exceeds 4 × {} × {}",
            bench.peak_resident_records,
            bench.shard_size,
            bench.threads
        );

        let json = render_bench_json(&bench);
        assert!(json.starts_with("{\"schema\":\"idnre-bench-pipeline/6\""));
        assert!(json.contains("\"shard_size\":1024"));
        assert!(json.contains("\"mining\":{\"candidate_pairs\":"));
        assert!(json.contains("\"epochs\":{\"count\":"));
        assert!(json.contains("\"refolded\":"));
        assert!(json.contains("\"stage\":\"analyze.epoch.incremental\""));
        assert!(json.contains("\"verified_pairs\":"));
        assert!(json.contains("\"portfolios\":"));
        assert!(json.contains("\"stage\":\"mine.pairs.lsh\""));
        assert!(json.contains(&format!(
            "\"peak_resident_records\":{}",
            bench.peak_resident_records
        )));
        assert!(json.contains("\"stage\":\"homograph.scan.exhaustive\""));
        assert!(json.contains("\"stage\":\"analyze.pass.homograph\",\"pass\":\"homograph\""));
        assert!(json.contains("\"stage\":\"build.ecosystem\",\"pass\":\"\""));
        assert!(json.contains("\"mode\":\"batch\""));
        assert!(json.contains("\"mode\":\"streamed\""));
        assert!(json.contains("\"dataset_fingerprint\":\"0x"));
        assert!(json.ends_with("]}"));
        // Balanced braces — the render is hand-built.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);

        let text = render_bench_text(&bench);
        assert!(text.contains("pipeline bench"));
        assert!(text.contains("streamed peak residency"));
        assert!(text.contains("homograph index speedup"));
        assert!(text.contains("portfolio mining:"));
        assert!(text.contains("pair-mining LSH speedup"));
        assert!(text.contains("incremental epoch speedup"));
        assert!(text.contains("scan attribution overhead"));
        assert!(text.contains("pass ledger"));
    }

    /// The `--bench --stream --shard-size N` path: a smaller shard
    /// tightens the reported residency budget without touching the report
    /// or dataset bytes.
    #[test]
    fn sharded_bench_tightens_the_residency_budget() {
        let config = EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            threads: 2,
            ..EcosystemConfig::default()
        };
        let small = run_pipeline_bench_sharded(&config, 64);
        assert_eq!(small.shard_size, 64);
        assert!(small.peak_resident_records > 0);
        assert!(
            small.peak_resident_records <= (4 * 64 * config.threads) as u64,
            "peak {} exceeds 4 × 64 × {}",
            small.peak_resident_records,
            config.threads
        );
        let default = run_pipeline_bench(&config);
        assert_eq!(small.report, default.report);
        assert_eq!(small.dataset_fingerprint, default.dataset_fingerprint);
    }

    #[test]
    fn ledger_decomposes_the_scan_wall() {
        let bench = run_pipeline_bench(&EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            ..EcosystemConfig::default()
        });
        let ledgers = RunLedger::collect(&bench);
        // One batch group and one streamed group at this config.
        assert_eq!(ledgers.len(), 2);
        for ledger in &ledgers {
            // Every registered pass shows up: 3 core detectors + 6 report
            // aggregation passes + the two mining stages (pass A fused on
            // the scan, pass B's bucket fold).
            assert_eq!(ledger.rows.len(), 11, "{} ledger rows", ledger.mode);
            assert!(ledger.scan_wall_ns > 0);
            for row in &ledger.rows {
                assert_eq!(row.stage, format!("{PASS_STAGE_PREFIX}{}", row.pass));
                assert!(row.records > 0, "{} observed nothing", row.stage);
            }
            // The pass rows account for the bulk of the scan wall even at
            // this small scale (the CI gate holds >= 90% at scale 50).
            assert!(
                ledger.coverage() > 0.5,
                "{} coverage {:.3}",
                ledger.mode,
                ledger.coverage()
            );
        }
    }

    #[test]
    fn bench_report_matches_plain_run() {
        let config = EcosystemConfig {
            scale: 2000,
            attack_scale: 25,
            brand_count: 200,
            ..EcosystemConfig::default()
        };
        let bench = run_pipeline_bench(&config);
        let plain = crate::ReproContext::build_mined(&config, Arc::new(NoopRecorder)).full_report();
        assert_eq!(bench.report, plain, "--bench must not perturb the report");
        // The unmined report is a byte-prefix of the mined one: mining
        // only ever appends its section.
        let unmined = crate::ReproContext::build(&config).full_report();
        assert!(bench.report.starts_with(&unmined));
    }

    #[test]
    fn sweep_concatenates_and_holds_the_identity_oracle() {
        let config = EcosystemConfig {
            scale: 5000,
            attack_scale: 60,
            brand_count: 100,
            ..EcosystemConfig::default()
        };
        // The sweep itself asserts report + dataset identity per count.
        let sweep = run_pipeline_sweep(&config, &[1, 2]);
        for threads in [1usize, 2] {
            let entry = sweep
                .entry_at("build.ecosystem", threads)
                .unwrap_or_else(|| panic!("no build.ecosystem entry at {threads} threads"));
            assert!(entry.wall_ns > 0);
        }
        // Per-entry thread counts survive the JSON render.
        let json = render_bench_json(&sweep);
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"threads\":2"));
    }
}
