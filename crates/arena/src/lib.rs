//! Deterministic string interning and the struct-of-arrays corpus layout.
//!
//! The analysis passes and the datagen dedup ladders used to fault whole
//! `DomainRegistration` structs (a dozen `String`s each) through cache to
//! read one field, and cloned every candidate domain just to probe a
//! `HashSet<String>`. This crate provides the two representation
//! primitives that remove that churn:
//!
//! - [`Interner`]: an append-only string arena with an FNV-keyed
//!   open-addressing index. Interning a string copies its bytes at most
//!   once; every later probe is a hash + byte-compare against the arena,
//!   no allocation. Symbols are assigned in **insertion order**, so any
//!   two walks that feed the same strings in the same order produce the
//!   same [`Symbol`] ids — interning is as deterministic as the corpus
//!   order itself, regardless of thread count (the builder walks shards
//!   in corpus order; workers never intern).
//! - [`CorpusColumns`]: a struct-of-arrays projection of the registered
//!   IDN corpus — label symbols, TLD ids, classifier language ids and
//!   the per-source blacklist bits — so each analysis pass touches only
//!   the columns it reads. A record costs a few bytes per pass instead
//!   of a struct walk.
//!
//! Neither structure owns any randomness or ordering decisions: both are
//! pure functions of the record stream they are fed, which is why report
//! bytes and dataset fingerprints survive the representation change
//! (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Handle to an interned string: the string's insertion index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The insertion index this symbol denotes.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a symbol from an index returned by [`Symbol::index`].
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Symbol(index as u32)
    }
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a hash of `bytes` — the same function keying the interner's
/// open-addressing index, exported so bucket keys derived from interned
/// strings use one hash family everywhere.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Append-only string arena with an FNV-keyed open-addressing index.
///
/// # Examples
///
/// ```
/// use idnre_arena::Interner;
/// let mut interner = Interner::new();
/// let (a, fresh) = interner.intern_full("xn--fiq228c.com");
/// assert!(fresh);
/// let (b, fresh) = interner.intern_full("xn--fiq228c.com");
/// assert!(!fresh);
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "xn--fiq228c.com");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Concatenated bytes of every interned string.
    arena: String,
    /// Per-symbol `(start, end)` byte offsets into the arena.
    spans: Vec<(u32, u32)>,
    /// Open-addressing buckets holding `symbol index + 1` (0 = empty).
    buckets: Vec<u32>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// An empty interner sized for roughly `n` distinct strings.
    pub fn with_capacity(n: usize) -> Self {
        Interner {
            arena: String::new(),
            spans: Vec::with_capacity(n),
            buckets: vec![0; (n * 2).next_power_of_two().max(16)],
        }
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total arena bytes (the memory the strings themselves occupy).
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// The string behind `symbol`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` did not come from this interner.
    #[inline]
    pub fn resolve(&self, symbol: Symbol) -> &str {
        let (start, end) = self.spans[symbol.index()];
        &self.arena[start as usize..end as usize]
    }

    /// Looks up `s` without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => return None,
                entry => {
                    let sym = Symbol(entry - 1);
                    if self.resolve(sym) == s {
                        return Some(sym);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Interns `s`, copying its bytes only if it is new.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.intern_full(s).0
    }

    /// Interns `s`; the flag is `true` iff the string was not present.
    ///
    /// This is the dedup-ladder probe: a duplicate candidate costs one
    /// hash and one byte-compare, never a clone.
    pub fn intern_full(&mut self, s: &str) -> (Symbol, bool) {
        if self.buckets.len() < (self.spans.len() + 1) * 2 {
            self.grow();
        }
        let mask = self.buckets.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => break,
                entry => {
                    let sym = Symbol(entry - 1);
                    if self.resolve(sym) == s {
                        return (sym, false);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
        let start = self.arena.len() as u32;
        self.arena.push_str(s);
        let end = self.arena.len() as u32;
        let sym = Symbol(self.spans.len() as u32);
        self.spans.push((start, end));
        self.buckets[slot] = sym.0 + 1;
        (sym, true)
    }

    /// Iterates the interned strings in insertion (symbol) order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.spans
            .iter()
            .map(|&(start, end)| &self.arena[start as usize..end as usize])
    }

    fn grow(&mut self) {
        let new_len = (self.buckets.len() * 2).max(16);
        let mut buckets = vec![0u32; new_len];
        let mask = new_len - 1;
        for (i, &(start, end)) in self.spans.iter().enumerate() {
            let s = &self.arena[start as usize..end as usize];
            let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
            while buckets[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = i as u32 + 1;
        }
        self.buckets = buckets;
    }
}

/// A growable bit vector (one bit per corpus record).
#[derive(Debug, Clone, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty bit set.
    pub fn new() -> Self {
        BitSet::default()
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `index` (`false` past the end).
    #[inline]
    pub fn get(&self, index: usize) -> bool {
        index < self.len && (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Overwrites the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` was never pushed — epoch overlays may flip bits
    /// of existing rows but never allocate rows implicitly.
    #[inline]
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(index < self.len, "BitSet::set past the end ({index})");
        let mask = 1u64 << (index % 64);
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of bits pushed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits were pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// One corpus label occurrence, packed for bucket storage: the interned
/// SLD symbol plus the TLD id. Six bytes instead of a domain string.
///
/// Ordering is `(sld, tld)` — symbol insertion order, then TLD id — which
/// is the deterministic "symbol order" the portfolio union-find keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelRef {
    /// The SLD label symbol (from the corpus label interner).
    pub sld: Symbol,
    /// The TLD id (index into the corpus TLD interner).
    pub tld: u16,
}

/// Insertion-ordered multimap from a `u64` bucket key (a skeleton hash)
/// to the [`LabelRef`]s that hashed there.
///
/// The LSH pass folds one of these per shard and merges them pairwise in
/// shard order. Merge semantics — keys keep the order of their first
/// occurrence across the concatenated shard walk, and each key's entry
/// vector is the concatenation of the partials' vectors — make the merge
/// associative (though not commutative), so the fold satisfies the
/// `check_associative` contract and the merged index is byte-for-byte the
/// one a sequential walk would build, regardless of shard boundaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BucketIndex {
    /// Bucket keys in first-occurrence order.
    keys: Vec<u64>,
    /// Parallel to `keys`: the entries that hashed to each key.
    entries: Vec<Vec<LabelRef>>,
    /// Key → position in `keys`.
    index: std::collections::HashMap<u64, usize>,
}

impl BucketIndex {
    /// An empty index.
    pub fn new() -> Self {
        BucketIndex::default()
    }

    /// Number of distinct bucket keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index holds no buckets.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total entries across all buckets.
    pub fn entry_count(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Number of buckets holding more than one entry (the only buckets
    /// the pair-mining pass re-scans).
    pub fn non_singleton_count(&self) -> usize {
        self.entries.iter().filter(|e| e.len() > 1).count()
    }

    /// Appends `entry` under `key`, creating the bucket on first use.
    #[inline]
    pub fn insert(&mut self, key: u64, entry: LabelRef) {
        match self.index.get(&key) {
            Some(&pos) => self.entries[pos].push(entry),
            None => {
                self.index.insert(key, self.keys.len());
                self.keys.push(key);
                self.entries.push(vec![entry]);
            }
        }
    }

    /// The entries under `key`, if any.
    pub fn get(&self, key: u64) -> Option<&[LabelRef]> {
        self.index
            .get(&key)
            .map(|&pos| self.entries[pos].as_slice())
    }

    /// Iterates `(key, entries)` in key first-occurrence order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[LabelRef])> {
        self.keys
            .iter()
            .zip(self.entries.iter())
            .map(|(&k, e)| (k, e.as_slice()))
    }

    /// Folds `later` into `self`: `later`'s keys arrive after `self`'s
    /// (new keys in `later`'s order), and shared keys concatenate their
    /// entry vectors. This is the associative shard-merge.
    pub fn merge(&mut self, later: BucketIndex) {
        for (key, mut entries) in later.keys.into_iter().zip(later.entries) {
            match self.index.get(&key) {
                Some(&pos) => self.entries[pos].append(&mut entries),
                None => {
                    self.index.insert(key, self.keys.len());
                    self.keys.push(key);
                    self.entries.push(entries);
                }
            }
        }
    }
}

/// Struct-of-arrays projection of the registered IDN corpus.
///
/// One row per IDN registration, in corpus order. The label and TLD
/// strings live once in their interners; per-record columns hold only
/// fixed-width ids and bits, so a pass touching one aspect of the corpus
/// streams through a dense array instead of pointer-chasing records.
#[derive(Debug, Clone, Default)]
pub struct CorpusColumns {
    /// Distinct Unicode SLD labels, interned in first-occurrence order.
    labels: Interner,
    /// Distinct TLD names, interned in first-occurrence order.
    tlds: Interner,
    /// Per-record SLD label symbol.
    sld: Vec<Symbol>,
    /// Per-record TLD id (index into `tlds`).
    tld: Vec<u16>,
    /// Per-record classifier language id (one classification per
    /// *distinct* label, broadcast here).
    lang: Vec<u8>,
    /// Per-record "registration carries a malicious flag" bit.
    malicious: BitSet,
    /// Per-record "ground-truth language is known" bit (the organic,
    /// non-injected population).
    organic: BitSet,
    /// Per-record VirusTotal blacklist bit.
    vt: BitSet,
    /// Per-record Qihoo-360 blacklist bit.
    q: BitSet,
    /// Per-record Baidu blacklist bit.
    b: BitSet,
}

impl CorpusColumns {
    /// Number of rows (IDN registrations).
    pub fn len(&self) -> usize {
        self.sld.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.sld.is_empty()
    }

    /// The interned distinct SLD labels.
    pub fn labels(&self) -> &Interner {
        &self.labels
    }

    /// The interned distinct TLD names.
    pub fn tlds(&self) -> &Interner {
        &self.tlds
    }

    /// Record `i`'s SLD label symbol.
    #[inline]
    pub fn sld_symbol(&self, i: usize) -> Symbol {
        self.sld[i]
    }

    /// Record `i`'s TLD id.
    #[inline]
    pub fn tld_id(&self, i: usize) -> u16 {
        self.tld[i]
    }

    /// The TLD name behind an id from [`CorpusColumns::tld_id`].
    #[inline]
    pub fn tld_name(&self, id: u16) -> &str {
        self.tlds.resolve(Symbol(u32::from(id)))
    }

    /// Record `i`'s classifier language id.
    #[inline]
    pub fn lang_id(&self, i: usize) -> u8 {
        self.lang[i]
    }

    /// Whether record `i` carries a malicious flag.
    #[inline]
    pub fn is_malicious(&self, i: usize) -> bool {
        self.malicious.get(i)
    }

    /// Whether record `i` is organic (ground-truth language known).
    #[inline]
    pub fn is_organic(&self, i: usize) -> bool {
        self.organic.get(i)
    }

    /// Record `i`'s (VirusTotal, Qihoo-360, Baidu) blacklist bits.
    #[inline]
    pub fn blacklist_bits(&self, i: usize) -> (bool, bool, bool) {
        (self.vt.get(i), self.q.get(i), self.b.get(i))
    }

    /// Appends one row after [`ColumnsBuilder::finish`] — the epoch-growth
    /// path. Interners grow append-only, so every symbol and TLD id handed
    /// out before the append still resolves to the same string (the
    /// high-water-mark rule; see [`CorpusColumns::mark`]). `lang_of`
    /// supplies the classifier id for the row's label; it is a pure
    /// function of the label string, so re-invoking it per appended row
    /// broadcasts exactly the ids a batch [`ColumnsBuilder::finish`] would.
    #[allow(clippy::too_many_arguments)]
    pub fn push_row(
        &mut self,
        sld: &str,
        tld: &str,
        malicious: bool,
        organic: bool,
        vt: bool,
        q: bool,
        b: bool,
        lang_of: impl FnOnce(&str) -> u8,
    ) {
        self.sld.push(self.labels.intern(sld));
        let tld_sym = self.tlds.intern(tld);
        self.tld.push(tld_sym.index() as u16);
        self.lang.push(lang_of(sld));
        self.malicious.push(malicious);
        self.organic.push(organic);
        self.vt.push(vt);
        self.q.push(q);
        self.b.push(b);
    }

    /// Overwrites row `i`'s malicious bit — how a blacklist listing that
    /// arrives epochs after the registration (blacklist lag) lands in the
    /// columns without disturbing any other row.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an existing row.
    pub fn set_malicious(&mut self, i: usize, bit: bool) {
        self.malicious.set(i, bit);
    }

    /// The current high-water mark: row and interner lengths at this
    /// instant. Epoch growth is append-only, so for any two marks taken
    /// before and after an epoch, everything below the earlier mark —
    /// every row, symbol and TLD id — is unchanged; resident shard
    /// partials built against the earlier state therefore stay valid.
    pub fn mark(&self) -> ColumnsMark {
        ColumnsMark {
            rows: self.sld.len(),
            labels: self.labels.len(),
            tlds: self.tlds.len(),
        }
    }
}

/// A per-epoch high-water mark of [`CorpusColumns`]: how many rows,
/// distinct labels and distinct TLDs existed when it was taken. Compare
/// marks across epochs to assert append-only growth (`later` must
/// dominate `earlier` component-wise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnsMark {
    /// Rows (IDN registrations) at mark time.
    pub rows: usize,
    /// Distinct interned SLD labels at mark time.
    pub labels: usize,
    /// Distinct interned TLD names at mark time.
    pub tlds: usize,
}

impl ColumnsMark {
    /// Whether `self` (an earlier mark) is dominated by `later` — the
    /// append-only invariant between two epochs.
    pub fn grew_monotonically_to(&self, later: &ColumnsMark) -> bool {
        self.rows <= later.rows && self.labels <= later.labels && self.tlds <= later.tlds
    }
}

/// Row-at-a-time builder for [`CorpusColumns`].
///
/// Rows must be pushed in corpus order (the caller walks shards
/// sequentially); symbol ids then depend only on the corpus, never on
/// scheduling. The language column is filled by [`ColumnsBuilder::finish`]
/// from one classification per distinct label — the caller supplies the
/// classifier (and may parallelize it), keeping this crate dependency-free.
#[derive(Debug, Default)]
pub struct ColumnsBuilder {
    cols: CorpusColumns,
}

impl ColumnsBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ColumnsBuilder::default()
    }

    /// Appends one record's row.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        sld: &str,
        tld: &str,
        malicious: bool,
        organic: bool,
        vt: bool,
        q: bool,
        b: bool,
    ) {
        let cols = &mut self.cols;
        cols.sld.push(cols.labels.intern(sld));
        let tld_sym = cols.tlds.intern(tld);
        cols.tld.push(tld_sym.index() as u16);
        cols.malicious.push(malicious);
        cols.organic.push(organic);
        cols.vt.push(vt);
        cols.q.push(q);
        cols.b.push(b);
    }

    /// Finalizes the columns. `classify` receives the distinct labels (in
    /// symbol order) and returns one language id per label; the per-record
    /// language column broadcasts those ids.
    ///
    /// # Panics
    ///
    /// Panics if `classify` returns the wrong number of ids.
    pub fn finish(mut self, classify: impl FnOnce(&Interner) -> Vec<u8>) -> CorpusColumns {
        let per_label = classify(&self.cols.labels);
        assert_eq!(
            per_label.len(),
            self.cols.labels.len(),
            "one language id per distinct label"
        );
        self.cols.lang = self
            .cols
            .sld
            .iter()
            .map(|sym| per_label[sym.index()])
            .collect();
        self.cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_insertion_ordered_and_stable() {
        let mut interner = Interner::new();
        let a = interner.intern("alpha");
        let b = interner.intern("beta");
        let a2 = interner.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(interner.resolve(a), "alpha");
        assert_eq!(interner.resolve(b), "beta");
        assert_eq!(interner.len(), 2);
        let collected: Vec<&str> = interner.iter().collect();
        assert_eq!(collected, vec!["alpha", "beta"]);
    }

    #[test]
    fn get_never_interns() {
        let mut interner = Interner::new();
        assert_eq!(interner.get("missing"), None);
        let sym = interner.intern("present");
        assert_eq!(interner.get("present"), Some(sym));
        assert_eq!(interner.get("missing"), None);
        assert_eq!(interner.len(), 1);
    }

    #[test]
    fn intern_full_reports_freshness() {
        let mut interner = Interner::new();
        assert!(interner.intern_full("x").1);
        assert!(!interner.intern_full("x").1);
    }

    #[test]
    fn survives_growth_past_initial_buckets() {
        let mut interner = Interner::new();
        let syms: Vec<Symbol> = (0..10_000)
            .map(|i| interner.intern(&format!("s{i}")))
            .collect();
        for (i, sym) in syms.iter().enumerate() {
            assert_eq!(interner.resolve(*sym), format!("s{i}"));
            assert_eq!(interner.get(&format!("s{i}")), Some(*sym));
        }
        assert_eq!(interner.len(), 10_000);
    }

    #[test]
    fn empty_string_and_unicode_intern() {
        let mut interner = Interner::new();
        let empty = interner.intern("");
        let han = interner.intern("彩票");
        assert_eq!(interner.resolve(empty), "");
        assert_eq!(interner.resolve(han), "彩票");
        assert_eq!(interner.get(""), Some(empty));
    }

    fn lref(sld: u32, tld: u16) -> LabelRef {
        LabelRef {
            sld: Symbol::from_index(sld as usize),
            tld,
        }
    }

    #[test]
    fn bucket_index_keeps_first_occurrence_order() {
        let mut index = BucketIndex::new();
        index.insert(7, lref(0, 0));
        index.insert(3, lref(1, 0));
        index.insert(7, lref(2, 1));
        assert_eq!(index.len(), 2);
        assert_eq!(index.entry_count(), 3);
        assert_eq!(index.non_singleton_count(), 1);
        assert_eq!(index.get(7), Some(&[lref(0, 0), lref(2, 1)][..]));
        assert_eq!(index.get(3), Some(&[lref(1, 0)][..]));
        assert_eq!(index.get(99), None);
        let keys: Vec<u64> = index.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![7, 3]);
    }

    #[test]
    fn bucket_index_merge_is_associative_not_commutative() {
        let build = |rows: &[(u64, LabelRef)]| {
            let mut index = BucketIndex::new();
            for &(k, e) in rows {
                index.insert(k, e);
            }
            index
        };
        let a = build(&[(1, lref(0, 0)), (2, lref(1, 0))]);
        let b = build(&[(2, lref(2, 0)), (3, lref(3, 0))]);
        let c = build(&[(1, lref(4, 1)), (4, lref(5, 0))]);

        let mut left = a.clone();
        left.merge(b.clone());
        left.merge(c.clone());
        let mut bc = b.clone();
        bc.merge(c.clone());
        let mut right = a.clone();
        right.merge(bc);
        assert_eq!(left, right, "merge must be associative");

        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_ne!(ab, ba, "merge is order-sensitive by design");
    }

    #[test]
    fn bucket_index_merge_matches_sequential_insertion() {
        let rows: Vec<(u64, LabelRef)> = (0..100)
            .map(|i| ((i % 7) as u64, lref(i, (i % 3) as u16)))
            .collect();
        let mut sequential = BucketIndex::new();
        for &(k, e) in &rows {
            sequential.insert(k, e);
        }
        for chunk_size in [1, 3, 32, 97] {
            let mut merged = BucketIndex::new();
            for chunk in rows.chunks(chunk_size) {
                let mut partial = BucketIndex::new();
                for &(k, e) in chunk {
                    partial.insert(k, e);
                }
                merged.merge(partial);
            }
            assert_eq!(merged, sequential, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn bitset_round_trips() {
        let mut bits = BitSet::new();
        for i in 0..200 {
            bits.push(i % 3 == 0);
        }
        assert_eq!(bits.len(), 200);
        for i in 0..200 {
            assert_eq!(bits.get(i), i % 3 == 0, "bit {i}");
        }
        assert!(!bits.get(5000));
        assert_eq!(bits.count_ones(), (0..200).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn columns_builder_broadcasts_label_classes() {
        let mut builder = ColumnsBuilder::new();
        builder.push("彩票", "com", false, true, false, false, false);
        builder.push("news", "net", true, true, true, true, false);
        builder.push("彩票", "com", false, false, false, false, true);
        let cols = builder.finish(|labels| {
            labels
                .iter()
                .map(|label| if label == "彩票" { 7 } else { 1 })
                .collect()
        });
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.labels().len(), 2, "labels deduplicate");
        assert_eq!(cols.tlds().len(), 2);
        assert_eq!(cols.lang_id(0), 7);
        assert_eq!(cols.lang_id(1), 1);
        assert_eq!(cols.lang_id(2), 7);
        assert_eq!(cols.sld_symbol(0), cols.sld_symbol(2));
        assert_eq!(cols.tld_name(cols.tld_id(1)), "net");
        assert!(cols.is_malicious(1) && !cols.is_malicious(0));
        assert!(cols.is_organic(0) && !cols.is_organic(2));
        assert_eq!(cols.blacklist_bits(1), (true, true, false));
        assert_eq!(cols.blacklist_bits(2), (false, false, true));
    }

    #[test]
    fn bitset_set_overwrites_in_place() {
        let mut bits = BitSet::new();
        for _ in 0..70 {
            bits.push(false);
        }
        bits.set(65, true);
        assert!(bits.get(65));
        bits.set(65, false);
        assert!(!bits.get(65));
        assert_eq!(bits.len(), 70);
    }

    #[test]
    #[should_panic(expected = "past the end")]
    fn bitset_set_never_allocates_rows() {
        let mut bits = BitSet::new();
        bits.push(false);
        bits.set(1, true);
    }

    #[test]
    fn push_row_grows_append_only_and_keeps_symbols_stable() {
        let mut builder = ColumnsBuilder::new();
        builder.push("彩票", "com", false, true, false, false, false);
        builder.push("news", "net", false, true, false, false, false);
        let mut cols = builder.finish(|labels| vec![7; labels.len()]);
        let before = cols.mark();
        let sym0 = cols.sld_symbol(0);
        // Appending a duplicate label re-uses its symbol; a fresh one
        // extends the interner past the mark.
        cols.push_row("彩票", "net", true, false, false, true, false, |_| 7);
        cols.push_row("neu", "org", false, false, false, false, false, |_| 3);
        let after = cols.mark();
        assert!(before.grew_monotonically_to(&after));
        assert_eq!(after.rows, 4);
        assert_eq!(after.labels, 3, "one fresh label interned");
        assert_eq!(after.tlds, 3);
        assert_eq!(cols.sld_symbol(2), sym0, "duplicate label shares its symbol");
        assert_eq!(cols.tld_name(cols.tld_id(2)), "net");
        assert_eq!(cols.lang_id(3), 3);
        assert!(cols.is_malicious(2) && !cols.is_malicious(0));
        assert_eq!(cols.blacklist_bits(2), (false, true, false));
        // Everything below the earlier mark is byte-identical.
        assert_eq!(cols.sld_symbol(0), sym0);
        assert_eq!(cols.tld_name(cols.tld_id(1)), "net");
        assert_eq!(cols.lang_id(0), 7);
    }

    #[test]
    fn set_malicious_flips_one_row_only() {
        let mut builder = ColumnsBuilder::new();
        for _ in 0..3 {
            builder.push("标签", "com", false, true, false, false, false);
        }
        let mut cols = builder.finish(|labels| vec![0; labels.len()]);
        cols.set_malicious(1, true);
        assert!(!cols.is_malicious(0));
        assert!(cols.is_malicious(1));
        assert!(!cols.is_malicious(2));
        cols.set_malicious(1, false);
        assert!(!cols.is_malicious(1));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Interning agrees with a reference `HashMap` implementation
            /// on any string sequence: same ids, same resolution.
            #[test]
            fn interner_matches_reference_map(strings in proptest::collection::vec(".{0,12}", 0..200)) {
                let mut interner = Interner::new();
                let mut reference: std::collections::HashMap<String, u32> =
                    std::collections::HashMap::new();
                for s in &strings {
                    let next = reference.len() as u32;
                    let expected = *reference.entry(s.clone()).or_insert(next);
                    let sym = interner.intern(s);
                    prop_assert_eq!(sym.index() as u32, expected);
                    prop_assert_eq!(interner.resolve(sym), s.as_str());
                }
                prop_assert_eq!(interner.len(), reference.len());
            }

            /// Two interners fed the same sequence assign identical symbols
            /// (the determinism the column builder relies on).
            #[test]
            fn interning_is_deterministic(strings in proptest::collection::vec(".{0,8}", 0..100)) {
                let mut a = Interner::new();
                let mut b = Interner::with_capacity(4);
                for s in &strings {
                    prop_assert_eq!(a.intern(s), b.intern(s));
                }
            }
        }
    }
}
