//! Deterministic fault injection and recovery for the measurement pipeline.
//!
//! The paper's Section IV-D crawl ran against the real Internet: transient
//! SERVFAILs, lame delegations, slow authoritatives, and a WHOIS corpus
//! where only 50.19% of records parsed. Production measurement toolkits
//! (ZDNS being the canonical example) treat retries, timeouts and per-query
//! error accounting as core design, so this crate gives the reproduction
//! the same discipline — *deterministically*, so a failure schedule can be
//! replayed byte-identically from a seed:
//!
//! * [`FaultPlan`] — a seeded schedule of per-attempt transient and
//!   per-target persistent faults (DNS timeout / SERVFAIL / REFUSED, slow
//!   or truncated HTTP, corrupted ingest records). Every decision is a pure
//!   hash of `(seed, target, channel, attempt)`: no global state, no
//!   ordering sensitivity, identical across runs and thread counts.
//! * [`RetryPolicy`] — max attempts, exponential backoff with deterministic
//!   jitter, and a per-target deadline budget, executed against a
//!   [`SimClock`] so elapsed time and backoff are virtual (and therefore
//!   replayable) rather than wall-clock.
//! * [`ErrorBudget`] — thread-safe ok/error accounting that folds into the
//!   run-level [`RunStatus`] and its exit-code contract: `0` clean, `3`
//!   degraded (errors occurred but within budget), `4` budget exceeded.
//!
//! # Examples
//!
//! ```
//! use idnre_fault::{Attempt, FaultPlan, RetryPolicy, SimClock};
//!
//! let plan = FaultPlan::from_spec("smoke").unwrap();
//! let policy = RetryPolicy::default();
//! let mut clock = SimClock::new();
//! // Succeed on the third attempt; the report carries the whole schedule.
//! let report = policy.execute(plan.seed(), &mut clock, |attempt| {
//!     if attempt < 2 {
//!         (Attempt::Retry("timeout"), policy.attempt_timeout_nanos)
//!     } else {
//!         (Attempt::Done("answer"), policy.attempt_cost_nanos)
//!     }
//! });
//! assert_eq!(report.value, "answer");
//! assert_eq!(report.attempts, 3);
//! assert_eq!(report.retries, 2);
//! assert!(report.backoff_nanos > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod plan;
mod retry;

pub use budget::{ErrorBudget, RunStatus};
pub use plan::{Fault, FaultKind, FaultPlan, FaultProfile, ParseFaultSpecError};
pub use retry::{Attempt, RetryPolicy, RetryReport};

/// A simulated monotonic clock in virtual nanoseconds.
///
/// Retry schedules run against a `SimClock` instead of the wall clock, so
/// per-target elapsed time, backoff and deadline decisions are a pure
/// function of the fault seed — replayable byte-identically. Each target
/// (domain, record, …) gets its own clock starting at zero, which also
/// makes schedules independent of worker-thread interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimClock {
    nanos: u64,
}

impl SimClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds since the clock's creation.
    pub fn now(&self) -> u64 {
        self.nanos
    }

    /// Advances the clock by `nanos` virtual nanoseconds (saturating).
    pub fn advance(&mut self, nanos: u64) {
        self.nanos = self.nanos.saturating_add(nanos);
    }
}

/// SplitMix64 finalizer — the avalanche all fault decisions run through.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string, the stable target-name hash.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_saturates() {
        let mut clock = SimClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(250);
        clock.advance(750);
        assert_eq!(clock.now(), 1_000);
        clock.advance(u64::MAX);
        assert_eq!(clock.now(), u64::MAX);
    }

    #[test]
    fn mix_avalanche_differs_on_nearby_inputs() {
        assert_ne!(mix64(1), mix64(2));
        assert_ne!(mix64(0), 0);
    }
}
