//! The retry executor: attempts, exponential backoff with deterministic
//! jitter, and a per-target deadline budget over a simulated clock.

use crate::{mix64, SimClock};

/// What one attempt produced: a terminal value or a transient failure
/// worth retrying (carrying the would-be terminal value in case the
/// schedule runs out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attempt<T> {
    /// Terminal — stop retrying.
    Done(T),
    /// Transient — retry if attempts and deadline allow; `T` becomes the
    /// terminal value if they don't.
    Retry(T),
}

/// The terminal verdict of a retry schedule, with the whole schedule
/// observable: attempt count, retries, virtual backoff and elapsed time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryReport<T> {
    /// The terminal value (from `Done`, or the last `Retry` when the
    /// schedule was exhausted).
    pub value: T,
    /// Attempts performed (≥ 1).
    pub attempts: u32,
    /// Retries performed (`attempts - 1` unless the deadline cut in).
    pub retries: u32,
    /// Total virtual backoff slept between attempts, in nanoseconds.
    pub backoff_nanos: u64,
    /// Virtual time consumed by the whole schedule, in nanoseconds.
    pub elapsed_nanos: u64,
    /// Whether the per-target deadline budget ended the schedule early.
    pub deadline_hit: bool,
    /// Whether the schedule ended on a transient failure (attempts or
    /// deadline exhausted without a terminal success).
    pub exhausted: bool,
}

/// The retry discipline a pipeline stage executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per target (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, in virtual nanoseconds.
    pub base_backoff_nanos: u64,
    /// Exponential backoff multiplier between retries.
    pub backoff_multiplier: u32,
    /// Jitter amplitude, per mille of the nominal backoff (deterministic:
    /// derived from the jitter seed, not an RNG).
    pub jitter_per_mille: u32,
    /// Virtual cost of an attempt that times out.
    pub attempt_timeout_nanos: u64,
    /// Virtual cost of an attempt that gets an answer.
    pub attempt_cost_nanos: u64,
    /// Per-target deadline: once virtual elapsed time would pass this, the
    /// schedule stops (the paper's crawler gave every domain a bounded
    /// slice of the measurement window).
    pub deadline_nanos: u64,
}

impl Default for RetryPolicy {
    /// ZDNS-flavoured defaults: 3 attempts, 100 ms base backoff doubling
    /// per retry with ±25 % jitter, 2 s attempt timeout, 50 ms answered
    /// attempt, 10 s per-target deadline.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_nanos: 100_000_000,
            backoff_multiplier: 2,
            jitter_per_mille: 250,
            attempt_timeout_nanos: 2_000_000_000,
            attempt_cost_nanos: 50_000_000,
            deadline_nanos: 10_000_000_000,
        }
    }
}

impl RetryPolicy {
    /// A single-attempt policy: no retries, no backoff — the pre-fault
    /// pipeline's behaviour expressed in the new vocabulary.
    pub fn single_attempt() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_nanos: 0,
            ..Self::default()
        }
    }

    /// Nominal backoff before retry number `retry` (0-based), jittered
    /// deterministically by `jitter_seed`.
    pub fn backoff_nanos(&self, jitter_seed: u64, retry: u32) -> u64 {
        let nominal = self
            .base_backoff_nanos
            .saturating_mul(u64::from(self.backoff_multiplier).saturating_pow(retry));
        if self.jitter_per_mille == 0 || nominal == 0 {
            return nominal;
        }
        // factor ∈ [1000 - j, 1000 + j] per mille, from the hash stream.
        let j = u64::from(self.jitter_per_mille.min(1000));
        let roll = mix64(jitter_seed ^ u64::from(retry).wrapping_mul(0x9FB2_1C65_1E98_DF25));
        let factor = 1000 - j + (roll % (2 * j + 1));
        nominal / 1000 * factor
    }

    /// Runs `attempt_fn` under this policy against `clock`.
    ///
    /// `attempt_fn` receives the 0-based attempt index and returns the
    /// attempt's verdict plus its virtual cost in nanoseconds (e.g.
    /// [`RetryPolicy::attempt_timeout_nanos`] for a timeout,
    /// [`RetryPolicy::attempt_cost_nanos`] for an answer). The executor
    /// advances the clock by each attempt's cost and each backoff, stopping
    /// when a verdict is terminal, attempts run out, or the next step would
    /// pass the deadline.
    pub fn execute<T>(
        &self,
        jitter_seed: u64,
        clock: &mut SimClock,
        mut attempt_fn: impl FnMut(u32) -> (Attempt<T>, u64),
    ) -> RetryReport<T> {
        let started = clock.now();
        let max_attempts = self.max_attempts.max(1);
        let mut backoff_total = 0u64;
        let mut attempts = 0u32;
        let mut deadline_hit = false;
        let deadline = started.saturating_add(self.deadline_nanos);

        let mut last;
        loop {
            let (verdict, cost) = attempt_fn(attempts);
            attempts += 1;
            clock.advance(cost);
            match verdict {
                Attempt::Done(value) => {
                    return RetryReport {
                        value,
                        attempts,
                        retries: attempts - 1,
                        backoff_nanos: backoff_total,
                        elapsed_nanos: clock.now() - started,
                        deadline_hit: false,
                        exhausted: false,
                    };
                }
                Attempt::Retry(value) => last = value,
            }
            if attempts >= max_attempts {
                break;
            }
            let backoff = self.backoff_nanos(jitter_seed, attempts - 1);
            // `>=`, not `>`: a backoff landing exactly on the deadline
            // leaves zero budget for the next attempt — sleeping and then
            // launching it would start an attempt at the deadline itself.
            if clock.now().saturating_add(backoff) >= deadline {
                deadline_hit = true;
                break;
            }
            clock.advance(backoff);
            backoff_total += backoff;
        }
        RetryReport {
            value: last,
            attempts,
            retries: attempts - 1,
            backoff_nanos: backoff_total,
            elapsed_nanos: clock.now() - started,
            deadline_hit,
            exhausted: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_needs_no_retry() {
        let policy = RetryPolicy::default();
        let mut clock = SimClock::new();
        let report = policy.execute(1, &mut clock, |_| {
            (Attempt::Done("ok"), policy.attempt_cost_nanos)
        });
        assert_eq!(report.value, "ok");
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries, 0);
        assert_eq!(report.backoff_nanos, 0);
        assert!(!report.exhausted);
        assert_eq!(clock.now(), policy.attempt_cost_nanos);
    }

    #[test]
    fn exhaustion_returns_last_transient_value() {
        let policy = RetryPolicy::default();
        let mut clock = SimClock::new();
        let report = policy.execute(2, &mut clock, |i| {
            (Attempt::Retry(i), policy.attempt_timeout_nanos)
        });
        assert_eq!(report.attempts, 3);
        assert_eq!(report.value, 2, "carries the last attempt's value");
        assert!(report.exhausted);
        assert!(!report.deadline_hit);
        assert!(report.backoff_nanos > 0);
    }

    #[test]
    fn backoff_grows_exponentially_with_bounded_jitter() {
        let policy = RetryPolicy {
            jitter_per_mille: 250,
            ..RetryPolicy::default()
        };
        for seed in [0u64, 1, 99, u64::MAX] {
            let b0 = policy.backoff_nanos(seed, 0);
            let b1 = policy.backoff_nanos(seed, 1);
            let b2 = policy.backoff_nanos(seed, 2);
            let base = policy.base_backoff_nanos as f64;
            assert!((0.75..=1.2501).contains(&(b0 as f64 / base)), "{b0}");
            assert!(
                (0.75..=1.2501).contains(&(b1 as f64 / (2.0 * base))),
                "{b1}"
            );
            assert!(
                (0.75..=1.2501).contains(&(b2 as f64 / (4.0 * base))),
                "{b2}"
            );
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_nanos(5, 1), policy.backoff_nanos(5, 1));
        let differs = (0..64).any(|s| policy.backoff_nanos(s, 0) != policy.backoff_nanos(s + 1, 0));
        assert!(differs, "jitter ignores the seed");
    }

    #[test]
    fn deadline_cuts_the_schedule_short() {
        let policy = RetryPolicy {
            max_attempts: 10,
            deadline_nanos: 5_000_000_000, // two 2s timeouts + backoff fit; not ten
            ..RetryPolicy::default()
        };
        let mut clock = SimClock::new();
        let report = policy.execute(3, &mut clock, |_| {
            (Attempt::Retry(()), policy.attempt_timeout_nanos)
        });
        assert!(report.deadline_hit);
        assert!(report.exhausted);
        assert!(report.attempts < 10, "attempts {}", report.attempts);
        assert!(report.elapsed_nanos <= policy.deadline_nanos + policy.attempt_timeout_nanos);
    }

    #[test]
    fn deadline_exactly_on_backoff_boundary_ends_the_schedule() {
        // With jitter off: attempt costs 1 ms, backoff is 9 ms, deadline
        // is exactly 1 ms + 9 ms. After the first attempt the next
        // backoff lands *exactly* on the deadline — the schedule must end
        // there, not sleep a full backoff and launch an attempt starting
        // at the deadline (the off-by-one a timeout wheel's tick rounding
        // would then amplify).
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff_nanos: 9_000_000,
            backoff_multiplier: 1,
            jitter_per_mille: 0,
            attempt_timeout_nanos: 1_000_000,
            attempt_cost_nanos: 1_000_000,
            deadline_nanos: 10_000_000,
        };
        let mut clock = SimClock::new();
        let report = policy.execute(0, &mut clock, |_| {
            (Attempt::Retry(()), policy.attempt_timeout_nanos)
        });
        assert_eq!(report.attempts, 1, "no attempt may start at the deadline");
        assert!(report.deadline_hit);
        assert!(report.exhausted);
        assert_eq!(
            report.backoff_nanos, 0,
            "the boundary backoff is never slept"
        );
        assert_eq!(clock.now(), policy.attempt_timeout_nanos);
    }

    #[test]
    fn zero_backoff_policy_still_respects_the_deadline() {
        // A degenerate zero-backoff policy used to be able to schedule a
        // zero-duration sleep at exactly the deadline; `>=` forbids it.
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff_nanos: 0,
            backoff_multiplier: 1,
            jitter_per_mille: 0,
            attempt_timeout_nanos: 2_000_000,
            attempt_cost_nanos: 2_000_000,
            deadline_nanos: 10_000_000,
        };
        let mut clock = SimClock::new();
        let report = policy.execute(0, &mut clock, |_| {
            (Attempt::Retry(()), policy.attempt_timeout_nanos)
        });
        // Attempts at 0, 2, 4, 6, 8 ms; the one that would start at 10 ms
        // (== deadline) must not run.
        assert_eq!(report.attempts, 5);
        assert!(report.deadline_hit);
        assert_eq!(clock.now(), policy.deadline_nanos);
    }

    #[test]
    fn single_attempt_policy_never_retries() {
        let policy = RetryPolicy::single_attempt();
        let mut clock = SimClock::new();
        let report = policy.execute(0, &mut clock, |_| {
            (Attempt::Retry("failed"), policy.attempt_timeout_nanos)
        });
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries, 0);
        assert!(report.exhausted);
    }

    #[test]
    fn schedules_are_replayable() {
        let policy = RetryPolicy::default();
        let run = || {
            let mut clock = SimClock::new();
            let report = policy.execute(77, &mut clock, |i| {
                if i < 2 {
                    (Attempt::Retry(i), policy.attempt_timeout_nanos)
                } else {
                    (Attempt::Done(i), policy.attempt_cost_nanos)
                }
            });
            (report, clock.now())
        };
        assert_eq!(run(), run());
    }
}
