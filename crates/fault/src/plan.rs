//! The seeded fault schedule: which attempt against which target fails how.

use crate::{fnv1a, mix64};
use std::error::Error;
use std::fmt;

/// The failure modes the plan can inject, mirroring what the paper's crawl
/// met in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// The authoritative server never answers this query.
    DnsTimeout,
    /// The authoritative server answers SERVFAIL.
    DnsServFail,
    /// The query is refused (the misconfiguration the paper highlights).
    DnsRefused,
    /// The web server responds, but only after a long stall.
    HttpSlow,
    /// The HTTP response is cut off mid-body.
    HttpTruncated,
}

impl FaultKind {
    /// Telemetry counter name for this fault kind (`crawler.fault.*`).
    pub fn counter(self) -> &'static str {
        match self {
            FaultKind::DnsTimeout => "crawler.fault.dns_timeout",
            FaultKind::DnsServFail => "crawler.fault.dns_servfail",
            FaultKind::DnsRefused => "crawler.fault.dns_refused",
            FaultKind::HttpSlow => "crawler.fault.http_slow",
            FaultKind::HttpTruncated => "crawler.fault.http_truncated",
        }
    }
}

/// One injected fault: what goes wrong and whether it keeps going wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The failure mode.
    pub kind: FaultKind,
    /// Persistent faults recur on every attempt against the target;
    /// transient ones afflict only the attempt they were rolled for.
    pub persistent: bool,
}

/// Per-channel fault rates (per mille) plus the run's error allowance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultProfile {
    /// Display name (`none`, `smoke`, `flaky`, `storm`).
    pub name: &'static str,
    /// Transient DNS fault rate per attempt, per mille.
    pub dns_transient_per_mille: u32,
    /// Persistent DNS fault rate per target, per mille.
    pub dns_persistent_per_mille: u32,
    /// Transient HTTP fault rate per attempt, per mille.
    pub http_transient_per_mille: u32,
    /// Persistent HTTP fault rate per target, per mille.
    pub http_persistent_per_mille: u32,
    /// Zone-file line corruption rate, per mille.
    pub zone_corrupt_per_mille: u32,
    /// WHOIS response corruption rate, per mille.
    pub whois_corrupt_per_mille: u32,
    /// Error-budget allowance: the run stays *degraded* (rather than
    /// *budget-exceeded*) while errors/total ≤ this, per mille.
    pub budget_per_mille: u32,
}

impl FaultProfile {
    /// No injected faults at all; the identity harness.
    pub fn none() -> Self {
        FaultProfile {
            name: "none",
            dns_transient_per_mille: 0,
            dns_persistent_per_mille: 0,
            http_transient_per_mille: 0,
            http_persistent_per_mille: 0,
            zone_corrupt_per_mille: 0,
            whois_corrupt_per_mille: 0,
            budget_per_mille: 0,
        }
    }

    /// Light faulting: a few percent of attempts hiccup, well inside the
    /// error budget. The canonical *degraded* run (exit code 3).
    pub fn smoke() -> Self {
        FaultProfile {
            name: "smoke",
            dns_transient_per_mille: 60,
            dns_persistent_per_mille: 8,
            http_transient_per_mille: 40,
            http_persistent_per_mille: 5,
            zone_corrupt_per_mille: 15,
            whois_corrupt_per_mille: 20,
            budget_per_mille: 120,
        }
    }

    /// Transient-heavy faulting: retries do real work, most targets still
    /// land. Stays within budget.
    pub fn flaky() -> Self {
        FaultProfile {
            name: "flaky",
            dns_transient_per_mille: 150,
            dns_persistent_per_mille: 10,
            http_transient_per_mille: 120,
            http_persistent_per_mille: 8,
            zone_corrupt_per_mille: 25,
            whois_corrupt_per_mille: 30,
            budget_per_mille: 150,
        }
    }

    /// Heavy, persistent-leaning faulting that blows through the budget.
    /// The canonical *budget-exceeded* run (exit code 4) — unless the
    /// crawl sheds instead of failing.
    ///
    /// The budget is calibrated against the run's fixed corruption
    /// floor: zone (200‰) and WHOIS (250‰) corruption land ~120‰ of the
    /// run's total work units in the error column before a single query
    /// is attempted, so any budget at or below that floor makes
    /// *degraded* unreachable no matter how the crawl behaves. At 170‰
    /// there is headroom exactly one strategy can reach: the synchronous
    /// crawl's unshed failures push the observed rate to ~250‰ (exit 4),
    /// while the event-driven scheduler's breakers shed the doomed
    /// queries — shed work dilutes the rate without adding errors — and
    /// the run lands degraded (exit 3).
    pub fn storm() -> Self {
        FaultProfile {
            name: "storm",
            dns_transient_per_mille: 300,
            dns_persistent_per_mille: 150,
            http_transient_per_mille: 250,
            http_persistent_per_mille: 100,
            zone_corrupt_per_mille: 200,
            whois_corrupt_per_mille: 250,
            budget_per_mille: 170,
        }
    }

    fn by_name(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "smoke" => Some(Self::smoke()),
            "flaky" => Some(Self::flaky()),
            "storm" => Some(Self::storm()),
            _ => None,
        }
    }
}

/// A malformed `--faults` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFaultSpecError {
    /// The offending spec text.
    pub spec: String,
}

impl fmt::Display for ParseFaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec {:?}: expected none|smoke|flaky|storm, a numeric seed, \
             or profile:seed",
            self.spec
        )
    }
}

impl Error for ParseFaultSpecError {}

// Decision channels keep the hash streams for different fault families
// independent of each other.
const CH_DNS_TRANSIENT: u64 = 0x01;
const CH_DNS_PERSISTENT: u64 = 0x02;
const CH_HTTP_TRANSIENT: u64 = 0x03;
const CH_HTTP_PERSISTENT: u64 = 0x04;
const CH_CORRUPT: u64 = 0x05;

/// The seeded, stateless fault schedule.
///
/// Every query is a pure function of `(seed, target, channel, attempt)`;
/// the plan holds no mutable state, so it can be shared freely across
/// worker threads and replays identically for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
}

impl FaultPlan {
    /// Builds a plan from an explicit seed and profile.
    pub fn new(seed: u64, profile: FaultProfile) -> Self {
        FaultPlan { seed, profile }
    }

    /// Parses a `--faults` spec: a profile name (`none`, `smoke`, `flaky`,
    /// `storm`), a bare numeric seed (decimal or `0x` hex, implying the
    /// `flaky` profile), or `profile:seed`.
    ///
    /// A profile without an explicit seed gets one derived from the profile
    /// name, so `--faults smoke` is itself fully reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`ParseFaultSpecError`] when the spec is neither a known
    /// profile nor a parseable seed.
    pub fn from_spec(spec: &str) -> Result<Self, ParseFaultSpecError> {
        let bad = || ParseFaultSpecError {
            spec: spec.to_string(),
        };
        if let Some((name, seed_text)) = spec.split_once(':') {
            let profile = FaultProfile::by_name(name).ok_or_else(bad)?;
            let seed = parse_seed(seed_text).ok_or_else(bad)?;
            return Ok(FaultPlan::new(seed, profile));
        }
        if let Some(profile) = FaultProfile::by_name(spec) {
            // Stable per-profile default seed.
            return Ok(FaultPlan::new(fnv1a(spec.as_bytes()), profile));
        }
        let seed = parse_seed(spec).ok_or_else(bad)?;
        Ok(FaultPlan::new(seed, FaultProfile::flaky()))
    }

    /// The replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The active rate profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        let p = &self.profile;
        p.dns_transient_per_mille
            + p.dns_persistent_per_mille
            + p.http_transient_per_mille
            + p.http_persistent_per_mille
            + p.zone_corrupt_per_mille
            + p.whois_corrupt_per_mille
            > 0
    }

    fn roll(&self, channel: u64, target: &str, attempt: u32) -> u64 {
        mix64(
            self.seed
                ^ fnv1a(target.as_bytes()).rotate_left(17)
                ^ channel.wrapping_mul(0xA076_1D64_78BD_642F)
                ^ u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB),
        )
    }

    fn hits(roll: u64, per_mille: u32) -> bool {
        (roll % 1000) < u64::from(per_mille)
    }

    /// The DNS fault (if any) afflicting `attempt` against `target`.
    ///
    /// Persistent faults are decided once per target and recur on every
    /// attempt; transient ones are rolled per attempt.
    pub fn dns_fault(&self, target: &str, attempt: u32) -> Option<Fault> {
        let persistent = self.roll(CH_DNS_PERSISTENT, target, 0);
        if Self::hits(persistent, self.profile.dns_persistent_per_mille) {
            let kind = match (persistent >> 32) % 2 {
                0 => FaultKind::DnsTimeout,
                _ => FaultKind::DnsServFail,
            };
            return Some(Fault {
                kind,
                persistent: true,
            });
        }
        let transient = self.roll(CH_DNS_TRANSIENT, target, attempt);
        if Self::hits(transient, self.profile.dns_transient_per_mille) {
            let kind = match (transient >> 32) % 3 {
                0 => FaultKind::DnsTimeout,
                1 => FaultKind::DnsServFail,
                _ => FaultKind::DnsRefused,
            };
            return Some(Fault {
                kind,
                persistent: false,
            });
        }
        None
    }

    /// The HTTP fault (if any) afflicting `attempt` against `target`.
    pub fn http_fault(&self, target: &str, attempt: u32) -> Option<Fault> {
        let persistent = self.roll(CH_HTTP_PERSISTENT, target, 0);
        if Self::hits(persistent, self.profile.http_persistent_per_mille) {
            return Some(Fault {
                kind: FaultKind::HttpTruncated,
                persistent: true,
            });
        }
        let transient = self.roll(CH_HTTP_TRANSIENT, target, attempt);
        if Self::hits(transient, self.profile.http_transient_per_mille) {
            let kind = match (transient >> 32) % 2 {
                0 => FaultKind::HttpSlow,
                _ => FaultKind::HttpTruncated,
            };
            return Some(Fault {
                kind,
                persistent: false,
            });
        }
        None
    }

    /// A per-target backoff-jitter seed for
    /// [`RetryPolicy::backoff_nanos`](crate::RetryPolicy::backoff_nanos),
    /// derived from the plan seed so schedules replay with the plan.
    pub fn jitter_seed(&self, target: &str) -> u64 {
        mix64(self.seed ^ fnv1a(target.as_bytes()))
    }

    /// Whether the plan corrupts ingest record `key` of `stage`
    /// (`"zone"` and `"whois"` are the rates profiles carry).
    pub fn corrupts(&self, stage: &str, key: &str) -> bool {
        let rate = match stage {
            "zone" => self.profile.zone_corrupt_per_mille,
            "whois" => self.profile.whois_corrupt_per_mille,
            _ => 0,
        };
        if rate == 0 {
            return false;
        }
        let roll = self.roll(CH_CORRUPT ^ fnv1a(stage.as_bytes()), key, 0);
        Self::hits(roll, rate)
    }
}

fn parse_seed(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(42, FaultProfile::storm());
        let b = FaultPlan::new(42, FaultProfile::storm());
        for attempt in 0..8 {
            for domain in ["xn--a.com", "xn--b.net", "c.org"] {
                assert_eq!(a.dns_fault(domain, attempt), b.dns_fault(domain, attempt));
                assert_eq!(a.http_fault(domain, attempt), b.http_fault(domain, attempt));
            }
        }
    }

    #[test]
    fn seeds_change_the_schedule() {
        let a = FaultPlan::new(1, FaultProfile::storm());
        let b = FaultPlan::new(2, FaultProfile::storm());
        let differs = (0..200).any(|i| {
            let d = format!("xn--{i}.com");
            a.dns_fault(&d, 0) != b.dns_fault(&d, 0)
        });
        assert!(differs, "different seeds produced identical schedules");
    }

    #[test]
    fn persistent_faults_recur_across_attempts() {
        let plan = FaultPlan::new(7, FaultProfile::storm());
        let persistent: Vec<String> = (0..500)
            .map(|i| format!("xn--p{i}.com"))
            .filter(|d| plan.dns_fault(d, 0).is_some_and(|f| f.persistent))
            .collect();
        assert!(!persistent.is_empty(), "storm rolled no persistent faults");
        for domain in &persistent {
            for attempt in 1..6 {
                let fault = plan.dns_fault(domain, attempt).expect("fault vanished");
                assert!(fault.persistent);
                assert_eq!(fault, plan.dns_fault(domain, 0).unwrap());
            }
        }
    }

    #[test]
    fn transient_faults_vary_by_attempt() {
        let plan = FaultPlan::new(11, FaultProfile::flaky());
        // Some domain must see a fault on one attempt and none on another.
        let recovered = (0..500).any(|i| {
            let d = format!("xn--t{i}.com");
            let first = plan.dns_fault(&d, 0);
            first.is_some_and(|f| !f.persistent) && plan.dns_fault(&d, 1).is_none()
        });
        assert!(recovered, "no transient fault ever cleared on retry");
    }

    #[test]
    fn rates_land_near_nominal() {
        let plan = FaultPlan::new(99, FaultProfile::storm());
        let n = 4000;
        let faulted = (0..n)
            .filter(|i| plan.dns_fault(&format!("xn--r{i}.com"), 0).is_some())
            .count();
        // storm: 150‰ persistent + 300‰ transient of the remainder ≈ 40.5%.
        let rate = faulted as f64 / n as f64;
        assert!((0.32..0.50).contains(&rate), "rate {rate}");
    }

    #[test]
    fn none_profile_is_inert() {
        let plan = FaultPlan::new(1234, FaultProfile::none());
        assert!(!plan.is_active());
        for i in 0..100 {
            let d = format!("xn--n{i}.com");
            assert_eq!(plan.dns_fault(&d, 0), None);
            assert_eq!(plan.http_fault(&d, 0), None);
            assert!(!plan.corrupts("zone", &d));
        }
    }

    #[test]
    fn spec_parsing_round_trips() {
        let smoke = FaultPlan::from_spec("smoke").unwrap();
        assert_eq!(smoke.profile().name, "smoke");
        assert_eq!(smoke, FaultPlan::from_spec("smoke").unwrap());

        let seeded = FaultPlan::from_spec("12345").unwrap();
        assert_eq!(seeded.seed(), 12345);
        assert_eq!(seeded.profile().name, "flaky");

        let hex = FaultPlan::from_spec("0xBEEF").unwrap();
        assert_eq!(hex.seed(), 0xBEEF);

        let both = FaultPlan::from_spec("storm:7").unwrap();
        assert_eq!(both.seed(), 7);
        assert_eq!(both.profile().name, "storm");

        assert!(FaultPlan::from_spec("tempest").is_err());
        assert!(FaultPlan::from_spec("smoke:xyz").is_err());
    }

    #[test]
    fn corruption_channels_are_independent() {
        let plan = FaultPlan::new(3, FaultProfile::storm());
        let zone: Vec<bool> = (0..200)
            .map(|i| plan.corrupts("zone", &format!("k{i}")))
            .collect();
        let whois: Vec<bool> = (0..200)
            .map(|i| plan.corrupts("whois", &format!("k{i}")))
            .collect();
        assert!(zone.iter().any(|&b| b));
        assert!(whois.iter().any(|&b| b));
        assert_ne!(zone, whois, "channels share a hash stream");
        assert!(!plan.corrupts("unknown-stage", "k0"));
    }
}
