//! Error budgets and the clean/degraded/budget-exceeded run contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// Terminal health of a pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// No errors at all.
    Clean,
    /// Errors occurred but stayed within the budget; results are partial
    /// and annotated with coverage, not aborted.
    Degraded,
    /// Errors exceeded the budget; results are not trustworthy.
    BudgetExceeded,
}

impl RunStatus {
    /// The process exit-code contract: `0` clean, `3` degraded, `4`
    /// budget exceeded (1 and 2 stay reserved for usage/IO errors).
    pub fn exit_code(self) -> i32 {
        match self {
            RunStatus::Clean => 0,
            RunStatus::Degraded => 3,
            RunStatus::BudgetExceeded => 4,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RunStatus::Clean => "clean",
            RunStatus::Degraded => "degraded",
            RunStatus::BudgetExceeded => "budget-exceeded",
        }
    }
}

/// Thread-safe ok/error/shed accounting with a per-mille allowance.
///
/// Stages record successes and failures as they go; at the end of the run
/// the aggregate folds into a [`RunStatus`]. Counting is atomic and
/// order-independent, so worker threads can share one budget.
///
/// *Shed* records are deliberate load-shedding decisions (queue overflow,
/// open circuit breakers, rate starvation): they count toward coverage —
/// a shed record was not measured — so any shedding keeps a run from
/// being [`RunStatus::Clean`], but they are not *errors*. A scheduler
/// degrading gracefully under overload exits degraded (3), not
/// budget-exceeded (4): only genuine failures spend the error budget.
#[derive(Debug, Default)]
pub struct ErrorBudget {
    ok: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    allowed_per_mille: u32,
}

impl ErrorBudget {
    /// A budget allowing up to `allowed_per_mille` errors per 1000 records
    /// before the run counts as budget-exceeded.
    pub fn new(allowed_per_mille: u32) -> Self {
        ErrorBudget {
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            allowed_per_mille,
        }
    }

    /// Records `n` successful records.
    pub fn record_ok(&self, n: u64) {
        self.ok.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` failed records.
    pub fn record_error(&self, n: u64) {
        self.errors.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` records deliberately shed by overload control.
    pub fn record_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    /// Successful records so far.
    pub fn ok(&self) -> u64 {
        self.ok.load(Ordering::Relaxed)
    }

    /// Failed records so far.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Shed records so far.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The allowance, per mille.
    pub fn allowed_per_mille(&self) -> u32 {
        self.allowed_per_mille
    }

    /// Observed error rate, per mille (0 when nothing was recorded). Shed
    /// records sit in the denominator — they were offered load — but not
    /// in the numerator: shedding does not spend the error budget.
    pub fn error_per_mille(&self) -> u64 {
        let errors = self.errors();
        (errors * 1000)
            .checked_div(self.ok() + errors + self.shed())
            .unwrap_or(0)
    }

    /// Folds the accounting into the run verdict. Any shedding rules out
    /// `Clean` (coverage is partial) but never `BudgetExceeded` on its
    /// own: a run that sheds with its errors in budget is `Degraded`.
    pub fn status(&self) -> RunStatus {
        let errors = self.errors();
        if errors == 0 && self.shed() == 0 {
            RunStatus::Clean
        } else if errors * 1000
            <= (self.ok() + errors + self.shed()) * u64::from(self.allowed_per_mille)
        {
            RunStatus::Degraded
        } else {
            RunStatus::BudgetExceeded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_errors_is_clean() {
        let budget = ErrorBudget::new(100);
        budget.record_ok(1000);
        assert_eq!(budget.status(), RunStatus::Clean);
        assert_eq!(budget.error_per_mille(), 0);
    }

    #[test]
    fn errors_within_budget_degrade() {
        let budget = ErrorBudget::new(100);
        budget.record_ok(990);
        budget.record_error(10); // 10‰ ≤ 100‰
        assert_eq!(budget.status(), RunStatus::Degraded);
        assert_eq!(budget.error_per_mille(), 10);
    }

    #[test]
    fn errors_past_budget_exceed() {
        let budget = ErrorBudget::new(100);
        budget.record_ok(800);
        budget.record_error(200); // 200‰ > 100‰
        assert_eq!(budget.status(), RunStatus::BudgetExceeded);
    }

    #[test]
    fn empty_budget_is_clean() {
        assert_eq!(ErrorBudget::new(0).status(), RunStatus::Clean);
    }

    #[test]
    fn zero_allowance_makes_any_error_exceed() {
        let budget = ErrorBudget::new(0);
        budget.record_ok(999_999);
        budget.record_error(1);
        assert_eq!(budget.status(), RunStatus::BudgetExceeded);
    }

    #[test]
    fn shedding_alone_degrades_but_never_exceeds() {
        let budget = ErrorBudget::new(0); // zero error allowance
        budget.record_ok(100);
        budget.record_shed(900); // heavy shedding, zero errors
        assert_eq!(budget.status(), RunStatus::Degraded);
        assert_eq!(budget.error_per_mille(), 0);
        assert_eq!(budget.shed(), 900);
    }

    #[test]
    fn shed_load_dilutes_the_error_rate() {
        let budget = ErrorBudget::new(100);
        budget.record_ok(700);
        budget.record_error(101); // 101/801 > 100‰ without shed...
        assert_eq!(
            ErrorBudget::new(100).status(),
            RunStatus::Clean,
            "sanity: fresh budget is clean"
        );
        budget.record_shed(210); // ...but 101/1011 ≤ 100‰ of offered load
        assert_eq!(budget.error_per_mille(), 99);
        assert_eq!(budget.status(), RunStatus::Degraded);
    }

    #[test]
    fn exit_codes_follow_the_contract() {
        assert_eq!(RunStatus::Clean.exit_code(), 0);
        assert_eq!(RunStatus::Degraded.exit_code(), 3);
        assert_eq!(RunStatus::BudgetExceeded.exit_code(), 4);
        assert_eq!(RunStatus::Degraded.label(), "degraded");
    }

    #[test]
    fn budget_is_shareable_across_threads() {
        let budget = ErrorBudget::new(500);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        if i % 10 == 0 {
                            budget.record_error(1);
                        } else {
                            budget.record_ok(1);
                        }
                    }
                });
            }
        });
        assert_eq!(budget.ok() + budget.errors(), 4000);
        assert_eq!(budget.errors(), 400);
        assert_eq!(budget.status(), RunStatus::Degraded);
    }
}
