//! Regression grid at the paper's reference denominator (scale 50): this
//! corpus volume is where bulk registrants first draw duplicate domains,
//! which desynchronizes any code that assumes one arena slot per record.
//! The scale-500 unit tests never hit that case, so this test pins the
//! streamed planner's record/artifact equivalence at the exact config the
//! committed EXPERIMENTS.md and BENCH_pipeline.json are generated from.

use idnre_datagen::{generate_streamed, Ecosystem, EcosystemConfig};
use idnre_telemetry::NoopRecorder;

#[test]
fn streamed_matches_batch_at_reference_scale() {
    for threads in [1usize, idnre_par::default_threads()] {
        check(threads);
    }
}

fn check(threads: usize) {
    let config = EcosystemConfig {
        scale: 50,
        threads,
        ..EcosystemConfig::default()
    };
    let batch = Ecosystem::generate(&config);
    let (eco, corpus) = generate_streamed(&config, 1024, &NoopRecorder);

    assert_eq!(corpus.idn_len(), batch.idn_registrations.len() as u64);
    let mut streamed = Vec::new();
    let mut start = 0u64;
    while start < corpus.idn_len() {
        let len = 1024.min(corpus.idn_len() - start) as usize;
        corpus.with_idn_shard(start, len, &mut |records| {
            streamed.extend_from_slice(records)
        });
        start += len as u64;
    }
    for (i, (s, b)) in streamed.iter().zip(&batch.idn_registrations).enumerate() {
        assert_eq!(s, b, "IDN record {i} diverged");
    }

    assert_eq!(eco.blacklist, batch.blacklist);
    assert_eq!(eco.whois, batch.whois);
    assert_eq!(eco.zones, batch.zones);
}
