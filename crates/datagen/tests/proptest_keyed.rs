//! Property tests for the keyed counter-based generation pipeline
//! (`idnre-dataset/2`): schedule independence and prefix stability.
//!
//! The oracle in both cases is the sequential keyed path (`threads == 1`
//! runs inline, with no worker threads at all), so these tests pin the
//! parallel fan-out to the exact bytes a single-threaded pass produces —
//! not merely to "some deterministic output".

use idnre_datagen::{render_dataset, Ecosystem, EcosystemConfig};
use proptest::prelude::*;

/// A configuration small enough to generate dozens of times per test run
/// while still exercising every stage (bulk, ordinary, attacks, WHOIS,
/// pDNS, certificates, zones).
fn config(seed: u64, threads: usize) -> EcosystemConfig {
    EcosystemConfig {
        seed,
        scale: 3000,
        attack_scale: 60,
        threads,
        ..EcosystemConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) Parallel generation is byte-identical to the sequential keyed
    /// path for any worker count: the rendered dataset — every
    /// registration, attack, WHOIS record, aggregate, certificate and
    /// zone byte — survives `cmp` across thread counts.
    #[test]
    fn dataset_bytes_are_thread_count_invariant(seed in 0u64..1_000_000, threads in 2usize..9) {
        let sequential = render_dataset(&Ecosystem::generate(&config(seed, 1)));
        let parallel = render_dataset(&Ecosystem::generate(&config(seed, threads)));
        prop_assert_eq!(sequential, parallel);
    }

    /// (a, continued) Chunk size is scheduling too: the executor derives
    /// its steal-unit size from the thread count, so sweeping widely
    /// different worker counts over the *candidate streams* (the
    /// finest-grained keyed surface) varies chunk boundaries across every
    /// record. The streams must not notice.
    #[test]
    fn candidate_streams_are_chunk_size_invariant(
        seed in 0u64..1_000_000,
        spec_index in 0usize..4,
        threads in 2usize..33,
    ) {
        let n = 40;
        let one = Ecosystem::ordinary_candidate_stream(&config(seed, 1), spec_index, n);
        let many = Ecosystem::ordinary_candidate_stream(&config(seed, threads), spec_index, n);
        prop_assert_eq!(one, many);
        let one = Ecosystem::non_idn_stream(&config(seed, 1), 0, n);
        let many = Ecosystem::non_idn_stream(&config(seed, threads), 0, n);
        prop_assert_eq!(one, many);
    }

    /// (b) Prefix stability: generating records `0..n` and then `0..m`
    /// (`m < n`) yields the same first `m` records. Each record's
    /// randomness is keyed by `(seed, stage, index)`, never by how many
    /// records precede it or how many draws they consumed.
    #[test]
    fn keyed_streams_are_prefix_stable(
        seed in 0u64..1_000_000,
        spec_index in 0usize..4,
        n in 10u64..60,
        m in 1u64..10,
    ) {
        let cfg = config(seed, 4);
        let full = Ecosystem::ordinary_candidate_stream(&cfg, spec_index, n);
        let prefix = Ecosystem::ordinary_candidate_stream(&cfg, spec_index, m);
        prop_assert_eq!(&full[..m as usize], &prefix[..]);
        let full = Ecosystem::non_idn_stream(&cfg, 0, n);
        let prefix = Ecosystem::non_idn_stream(&cfg, 0, m);
        prop_assert_eq!(&full[..m as usize], &prefix[..]);
    }
}
