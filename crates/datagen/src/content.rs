//! Website content categories (Table V) and their sampling distributions.

use rand::Rng;

/// What a visitor finds behind a domain — the Table V taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ContentCategory {
    /// DNS resolution fails (name-server misconfiguration).
    NotResolved,
    /// Resolution succeeds but HTTP errors out.
    Error,
    /// An empty page.
    Empty,
    /// A parking page with ads.
    Parked,
    /// A "domain for sale" lander.
    ForSale,
    /// Redirects to another domain.
    Redirected,
    /// A real website with meaningful content.
    Meaningful,
}

impl ContentCategory {
    /// All categories in Table V row order.
    pub const ALL: [ContentCategory; 7] = [
        ContentCategory::NotResolved,
        ContentCategory::Error,
        ContentCategory::Empty,
        ContentCategory::Parked,
        ContentCategory::ForSale,
        ContentCategory::Redirected,
        ContentCategory::Meaningful,
    ];

    /// Table V's measured IDN distribution (per mille).
    const IDN_WEIGHTS: [u32; 7] = [456, 130, 32, 112, 16, 56, 198];
    /// Table V's measured non-IDN distribution (per mille).
    const NON_IDN_WEIGHTS: [u32; 7] = [152, 148, 86, 214, 32, 32, 336];

    /// Samples a category for an IDN website.
    pub fn sample_idn<R: Rng + ?Sized>(rng: &mut R) -> Self {
        weighted(rng, &Self::IDN_WEIGHTS)
    }

    /// Samples a category for a non-IDN website.
    pub fn sample_non_idn<R: Rng + ?Sized>(rng: &mut R) -> Self {
        weighted(rng, &Self::NON_IDN_WEIGHTS)
    }

    /// Whether the domain resolves in DNS at all.
    pub fn resolves(self) -> bool {
        self != ContentCategory::NotResolved
    }

    /// Table V row label.
    pub fn label(self) -> &'static str {
        match self {
            ContentCategory::NotResolved => "Not resolved",
            ContentCategory::Error => "Error",
            ContentCategory::Empty => "Empty",
            ContentCategory::Parked => "Parked",
            ContentCategory::ForSale => "For sale",
            ContentCategory::Redirected => "Redirected",
            ContentCategory::Meaningful => "Meaningful content",
        }
    }
}

fn weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[u32; 7]) -> ContentCategory {
    let total: u32 = weights.iter().sum();
    let mut pick = rng.gen_range(0..total);
    for (category, &w) in ContentCategory::ALL.iter().zip(weights) {
        if pick < w {
            return *category;
        }
        pick -= w;
    }
    ContentCategory::Meaningful
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frequencies(sampler: fn(&mut StdRng) -> ContentCategory, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..n {
            let c = sampler(&mut rng);
            let idx = ContentCategory::ALL.iter().position(|&x| x == c).unwrap();
            counts[idx] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    #[test]
    fn idn_distribution_matches_table_v() {
        let freq = frequencies(ContentCategory::sample_idn, 50_000);
        assert!((freq[0] - 0.456).abs() < 0.01, "not-resolved {}", freq[0]);
        assert!((freq[6] - 0.198).abs() < 0.01, "meaningful {}", freq[6]);
    }

    #[test]
    fn non_idn_distribution_matches_table_v() {
        let freq = frequencies(ContentCategory::sample_non_idn, 50_000);
        assert!((freq[0] - 0.152).abs() < 0.01, "not-resolved {}", freq[0]);
        assert!((freq[6] - 0.336).abs() < 0.01, "meaningful {}", freq[6]);
    }

    #[test]
    fn idn_less_meaningful_than_non_idn() {
        // Finding 8's contrast must hold in expectation.
        let idn = frequencies(ContentCategory::sample_idn, 20_000);
        let non = frequencies(ContentCategory::sample_non_idn, 20_000);
        assert!(idn[0] > non[0] * 2.0); // unresolved gap
        assert!(idn[6] < non[6]); // meaningful gap
    }

    #[test]
    fn resolves_logic() {
        assert!(!ContentCategory::NotResolved.resolves());
        assert!(ContentCategory::Parked.resolves());
    }
}
