//! IDN label generation per language, sourced from the shared seed
//! vocabulary so generated labels and the language classifier agree by
//! construction.

use idnre_langid::Language;
use rand::Rng;

/// Table II's language mix, in per-myriad (‱) of all IDNs. The remainder
/// (≈5.5%) is attributed to English-ish Latin labels.
const LANGUAGE_MIX: [(Language, u32); 16] = [
    (Language::Chinese, 5203),
    (Language::Japanese, 1297),
    (Language::Korean, 871),
    (Language::German, 490),
    (Language::Turkish, 293),
    (Language::Thai, 249),
    (Language::Swedish, 219),
    (Language::Spanish, 172),
    (Language::French, 168),
    (Language::Finnish, 120),
    (Language::Russian, 95),
    (Language::Hungarian, 81),
    (Language::Arabic, 84),
    (Language::Danish, 58),
    (Language::Persian, 54),
    (Language::English, 546),
];

/// Samples a language according to the Table II mix.
pub fn sample_language<R: Rng + ?Sized>(rng: &mut R) -> Language {
    let total: u32 = LANGUAGE_MIX.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(lang, w) in &LANGUAGE_MIX {
        if roll < w {
            return lang;
        }
        roll -= w;
    }
    Language::English
}

/// Generates one Unicode label in `lang` by combining one or two vocabulary
/// items (with an occasional numeric prefix, mirroring real registrations
/// like 58汽车).
pub fn generate_label<R: Rng + ?Sized>(rng: &mut R, lang: Language) -> String {
    let vocab = idnre_langid::Language::ALL
        .contains(&lang)
        .then(|| vocabulary(lang))
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vocabulary(Language::English));
    let mut label = String::new();
    if rng.gen_ratio(1, 20) {
        label.push_str(&rng.gen_range(2..100u32).to_string());
    }
    label.push_str(vocab[rng.gen_range(0..vocab.len())]);
    if rng.gen_ratio(2, 5) {
        label.push_str(vocab[rng.gen_range(0..vocab.len())]);
    }
    label
}

fn vocabulary(lang: Language) -> &'static [&'static str] {
    idnre_langid::vocabulary(lang)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn language_mix_approximates_table_ii() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 40_000;
        let mut chinese = 0usize;
        let mut east_asian = 0usize;
        for _ in 0..n {
            let lang = sample_language(&mut rng);
            if lang == Language::Chinese {
                chinese += 1;
            }
            if lang.is_east_asian() {
                east_asian += 1;
            }
        }
        let chinese_rate = chinese as f64 / n as f64;
        let ea_rate = east_asian as f64 / n as f64;
        assert!(
            (chinese_rate - 0.5203).abs() < 0.02,
            "chinese {chinese_rate}"
        );
        // Finding 1: >75% east-Asian.
        assert!(ea_rate > 0.72, "east asian {ea_rate}");
    }

    #[test]
    fn labels_encode_to_ace() {
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..500 {
            let lang = sample_language(&mut rng);
            let label = generate_label(&mut rng, lang);
            let ace = idnre_idna::to_ascii(&label);
            assert!(ace.is_ok(), "label {label:?} failed: {ace:?}");
        }
    }

    #[test]
    fn generated_labels_classify_back_to_their_language() {
        // Consistency between generator and classifier — the property that
        // makes Table II reproducible.
        let clf = idnre_langid::Classifier::global();
        let mut rng = StdRng::seed_from_u64(23);
        let mut correct = 0;
        let total = 1000;
        for _ in 0..total {
            let lang = sample_language(&mut rng);
            let label = generate_label(&mut rng, lang);
            if clf.classify(&label) == lang {
                correct += 1;
            }
        }
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.85, "round-trip accuracy {accuracy}");
    }
}
