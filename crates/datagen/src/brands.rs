//! The brand-domain target list — the stand-in for Alexa Top 1K SLDs.
//!
//! Every brand the paper's tables name is present at (approximately) its
//! published Alexa rank; the remaining ranks are filled with deterministic
//! pronounceable filler so the list has the same size and shape as the
//! original.

/// One brand domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Brand {
    /// Alexa-style rank, 1-based.
    pub rank: usize,
    /// Second-level label, e.g. `google`.
    pub sld: String,
    /// TLD, e.g. `com`.
    pub tld: String,
}

impl Brand {
    /// The registered-domain form, e.g. `google.com`.
    pub fn domain(&self) -> String {
        format!("{}.{}", self.sld, self.tld)
    }
}

/// The Alexa-style top-1K brand list.
#[derive(Debug, Clone)]
pub struct BrandList {
    brands: Vec<Brand>,
}

/// Brands named in the paper's tables, with their published ranks.
const NAMED_BRANDS: &[(usize, &str, &str)] = &[
    (1, "google", "com"),
    (2, "youtube", "com"),
    (3, "facebook", "com"),
    (4, "baidu", "com"),
    (5, "wikipedia", "org"),
    (9, "qq", "com"),
    (11, "amazon", "com"),
    (13, "twitter", "com"),
    (15, "instagram", "com"),
    (20, "weibo", "com"),
    (25, "netflix", "com"),
    (30, "alipay", "com"),
    (40, "microsoft", "com"),
    (55, "apple", "com"),
    (60, "paypal", "com"),
    (96, "soso", "com"),
    (166, "china", "com"),
    (191, "1688", "com"),
    (332, "bet365", "com"),
    (372, "icloud", "com"),
    (391, "go", "com"),
    (537, "sex", "com"),
    (634, "as", "com"),
    (742, "ea", "com"),
    (861, "58", "com"),
];

impl BrandList {
    /// Builds the full 1,000-entry list: named brands at their ranks,
    /// deterministic filler elsewhere.
    pub fn alexa_top_1k() -> Self {
        Self::with_size(1000)
    }

    /// Builds a list of the given size (filler beyond the named brands).
    pub fn with_size(size: usize) -> Self {
        let mut brands = Vec::with_capacity(size);
        for rank in 1..=size {
            if let Some(&(_, sld, tld)) = NAMED_BRANDS.iter().find(|&&(r, _, _)| r == rank) {
                brands.push(Brand {
                    rank,
                    sld: sld.to_string(),
                    tld: tld.to_string(),
                });
            } else {
                brands.push(Brand {
                    rank,
                    sld: filler_name(rank),
                    tld: if rank % 7 == 0 {
                        "org"
                    } else if rank % 5 == 0 {
                        "net"
                    } else {
                        "com"
                    }
                    .to_string(),
                });
            }
        }
        BrandList { brands }
    }

    /// All brands, rank order.
    pub fn iter(&self) -> impl Iterator<Item = &Brand> {
        self.brands.iter()
    }

    /// Number of brands.
    pub fn len(&self) -> usize {
        self.brands.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.brands.is_empty()
    }

    /// Brand at a 1-based rank.
    pub fn by_rank(&self, rank: usize) -> Option<&Brand> {
        self.brands.get(rank.checked_sub(1)?)
    }

    /// Looks a brand up by its SLD.
    pub fn by_sld(&self, sld: &str) -> Option<&Brand> {
        self.brands.iter().find(|b| b.sld == sld)
    }

    /// The top `n` brands.
    pub fn top(&self, n: usize) -> &[Brand] {
        &self.brands[..n.min(self.brands.len())]
    }
}

/// Deterministic pronounceable filler SLD for unnamed ranks.
fn filler_name(rank: usize) -> String {
    const CONSONANTS: &[u8] = b"bcdfglmnprstvz";
    const VOWELS: &[u8] = b"aeiou";
    let mut state = rank as u64 ^ 0xA5A5_5A5A;
    let mut next = |m: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % m as u64) as usize
    };
    let syllables = 2 + next(2);
    let mut name = String::new();
    for _ in 0..syllables {
        name.push(CONSONANTS[next(CONSONANTS.len())] as char);
        name.push(VOWELS[next(VOWELS.len())] as char);
    }
    // The rank suffix guarantees uniqueness across the list.
    name.push_str(&rank.to_string());
    name
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_brands_at_their_ranks() {
        let list = BrandList::alexa_top_1k();
        assert_eq!(list.len(), 1000);
        assert_eq!(list.by_rank(1).unwrap().domain(), "google.com");
        assert_eq!(list.by_rank(3).unwrap().domain(), "facebook.com");
        assert_eq!(list.by_rank(861).unwrap().domain(), "58.com");
        assert_eq!(list.by_sld("apple").unwrap().rank, 55);
    }

    #[test]
    fn filler_is_deterministic_and_distinct() {
        let a = BrandList::alexa_top_1k();
        let b = BrandList::alexa_top_1k();
        let slds_a: Vec<&str> = a.iter().map(|br| br.sld.as_str()).collect();
        let slds_b: Vec<&str> = b.iter().map(|br| br.sld.as_str()).collect();
        assert_eq!(slds_a, slds_b);
        // No duplicate SLDs (the rank suffix plus syllables make collisions
        // vanishingly unlikely; assert to lock it in).
        let set: std::collections::HashSet<_> = slds_a.iter().collect();
        assert_eq!(set.len(), slds_a.len());
    }

    #[test]
    fn filler_names_are_plausible_slds() {
        let list = BrandList::with_size(100);
        for brand in list.iter() {
            assert!(
                idnre_idna::validate_ascii_label(&brand.sld).is_ok(),
                "{}",
                brand.sld
            );
        }
    }

    #[test]
    fn top_slice() {
        let list = BrandList::with_size(50);
        assert_eq!(list.top(10).len(), 10);
        assert_eq!(list.top(100).len(), 50);
    }
}
