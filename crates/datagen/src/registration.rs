//! The per-domain registration record the generator emits, and the
//! registrar/registrant/timeline models behind it.

use crate::content::ContentCategory;
use crate::hosting::HostingProfile;
use idnre_langid::Language;
use idnre_whois::Date;
use rand::Rng;

/// Why a domain ended up on a blacklist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MaliciousKind {
    /// Illegal-business promotion (the gambling cluster of Section IV-A).
    UndergroundBusiness,
    /// Visual lookalike of a brand domain (Section VI).
    Homograph,
    /// Brand + foreign keyword (Type-1 semantic, Section VII).
    SemanticType1,
    /// Translated brand name (Type-2 semantic).
    SemanticType2,
    /// Generic malware/phishing distribution.
    Other,
}

/// One generated domain registration with every attribute the measurement
/// pipeline consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainRegistration {
    /// Registered domain in ACE form, e.g. `xn--0wwy37b.com`.
    pub domain: String,
    /// Unicode display form, e.g. `波色.com`.
    pub unicode: String,
    /// TLD (ACE form).
    pub tld: String,
    /// Ground-truth language of the label.
    pub language: Language,
    /// Creation date.
    pub created: Date,
    /// Sponsoring registrar.
    pub registrar: String,
    /// Registrant email (None under WHOIS privacy).
    pub registrant_email: Option<String>,
    /// Whether WHOIS privacy shields the registrant.
    pub privacy: bool,
    /// Whether (and why) the domain is malicious; None for benign.
    pub malicious: Option<MaliciousKind>,
    /// What its website serves.
    pub content: ContentCategory,
    /// How it is hosted (None when unresolved).
    pub hosting: Option<HostingProfile>,
    /// Whether the host has HTTPS on port 443.
    pub https: bool,
}

/// Table IV's registrar market: top-10 names with their measured shares
/// (per mille), plus a long tail.
const REGISTRARS: [(&str, u32); 10] = [
    ("GMO Internet Inc.", 230),
    ("HiChina Zhicheng Technology Limited.", 109),
    ("Name.com, Inc.", 43),
    ("Gabia, Inc.", 40),
    ("Dynadot, LLC.", 32),
    ("1&1 Internet SE.", 29),
    ("Chengdu West Dimension Digital Technology Co., Ltd.", 28),
    ("eNom, LLC.", 24),
    ("DomainSite, Inc.", 23),
    ("GoDaddy.com, LLC.", 19),
];

/// Number of long-tail registrars (paper: "over 700" total).
pub const TAIL_REGISTRARS: u32 = 720;

/// Samples a registrar name per the Table IV market shares.
pub fn sample_registrar<R: Rng + ?Sized>(rng: &mut R) -> String {
    let named: u32 = REGISTRARS.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..1000u32);
    for &(name, w) in &REGISTRARS {
        if roll < w {
            return name.to_string();
        }
        roll -= w;
    }
    let _ = named;
    // Long tail: Zipf-ish across TAIL_REGISTRARS names.
    let u: f64 = rng.gen_range(0.0..1.0);
    let idx = ((TAIL_REGISTRARS as f64).powf(u) - 1.0) as u32;
    format!("Registrar-{:03} LLC", idx)
}

/// A bulk registrant's portfolio theme (Table III's "IDN Characteristics").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulkTheme {
    /// Online gambling vocabulary.
    Gambling,
    /// Chinese city names.
    CityNames,
    /// Short (1–2 character) words.
    ShortWords,
}

/// Table III's opportunistic bulk registrants: email, approximate holdings
/// (scaled by the ecosystem generator), and portfolio theme.
pub const BULK_REGISTRANTS: [(&str, u32, BulkTheme); 5] = [
    ("776053229@qq.com", 1562, BulkTheme::CityNames),
    ("daidesheng88@gmail.com", 1453, BulkTheme::Gambling),
    ("tetetw@gmail.com", 1391, BulkTheme::ShortWords),
    ("840629127@qq.com", 1316, BulkTheme::CityNames),
    ("776053229@163.com", 1178, BulkTheme::CityNames),
];

/// Generates one label consistent with a bulk registrant's theme.
pub fn themed_label<R: Rng + ?Sized>(rng: &mut R, theme: BulkTheme) -> String {
    const GAMBLING: [&str; 10] = [
        "彩票",
        "博彩",
        "投注",
        "棋牌",
        "六合彩",
        "时时彩",
        "百家乐",
        "赌场",
        "开户",
        "娱乐",
    ];
    const CITIES: [&str; 10] = [
        "重庆", "成都", "昆明", "贵阳", "北京", "上海", "广州", "深圳", "武汉", "西安",
    ];
    const SHORT: [&str; 12] = [
        "爱", "美", "福", "乐", "好", "金", "龙", "花", "海", "山", "云", "星",
    ];
    match theme {
        BulkTheme::Gambling => {
            let a = GAMBLING[rng.gen_range(0..GAMBLING.len())];
            let b = GAMBLING[rng.gen_range(0..GAMBLING.len())];
            format!("{a}{b}")
        }
        BulkTheme::CityNames => {
            let city = CITIES[rng.gen_range(0..CITIES.len())];
            const SUFFIX: [&str; 5] = ["", "门户", "生活", "信息", "之家"];
            format!("{city}{}", SUFFIX[rng.gen_range(0..SUFFIX.len())])
        }
        BulkTheme::ShortWords => {
            let a = SHORT[rng.gen_range(0..SHORT.len())];
            if rng.gen_ratio(1, 2) {
                a.to_string()
            } else {
                format!("{a}{}", SHORT[rng.gen_range(0..SHORT.len())])
            }
        }
    }
}

/// Samples a registrant email for an ordinary (non-bulk) registration.
/// Roughly 40% use free-mail providers, 30% corporate addresses, and the
/// rest sit behind WHOIS privacy (returning `None`).
pub fn sample_registrant<R: Rng + ?Sized>(rng: &mut R, index: u64) -> (Option<String>, bool) {
    match rng.gen_range(0..10) {
        0..=3 => {
            let provider = ["qq.com", "gmail.com", "163.com", "hotmail.com"][rng.gen_range(0..4)];
            (Some(format!("user{index}@{provider}")), false)
        }
        4..=6 => (
            Some(format!("admin@company{}.example", index % 5000)),
            false,
        ),
        _ => (None, true),
    }
}

/// Samples a creation date reproducing Figure 1: volume rising over
/// 1999–2017 with spikes in 2000 (Verisign IDN testbed) and 2004 (German &
/// Latin characters introduced).
pub fn sample_creation_date<R: Rng + ?Sized>(rng: &mut R, snapshot: Date) -> Date {
    // Per-year weights, 1999..=2017: back-loaded growth (only ≈6% of
    // registrations predate 2008 — Finding 2) with the 2000 testbed and
    // 2004 German/Latin spikes still standing out against their neighbours.
    const WEIGHTS: [u32; 19] = [
        2, 15, 3, 3, 4, 14, 5, 6, 7, 30, 36, 44, 54, 66, 82, 102, 128, 160, 240,
    ];
    let total: u32 = WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0..total);
    let mut year = 1999;
    for (i, &w) in WEIGHTS.iter().enumerate() {
        if roll < w {
            year = 1999 + i as i32;
            break;
        }
        roll -= w;
    }
    random_date_in_year(rng, year, snapshot)
}

/// Samples a creation date for a *malicious* registration: same rising
/// baseline plus the 2015/2017 cybersquatting spikes.
pub fn sample_malicious_creation_date<R: Rng + ?Sized>(rng: &mut R, snapshot: Date) -> Date {
    const WEIGHTS: [u32; 19] = [
        2, 6, 3, 3, 4, 8, 5, 6, 7, 8, 10, 12, 14, 17, 20, 24, 90, 40, 130,
    ];
    let total: u32 = WEIGHTS.iter().sum();
    let mut roll = rng.gen_range(0..total);
    let mut year = 1999;
    for (i, &w) in WEIGHTS.iter().enumerate() {
        if roll < w {
            year = 1999 + i as i32;
            break;
        }
        roll -= w;
    }
    random_date_in_year(rng, year, snapshot)
}

fn random_date_in_year<R: Rng + ?Sized>(rng: &mut R, year: i32, snapshot: Date) -> Date {
    loop {
        let month = rng.gen_range(1..=12u8);
        let day = rng.gen_range(1..=28u8);
        let date = Date::new(year, month, day).expect("day <= 28 is always valid");
        if date <= snapshot {
            return date;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn registrar_market_shape() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 30_000;
        let mut gmo = 0usize;
        let mut godaddy = 0usize;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..n {
            let r = sample_registrar(&mut rng);
            if r.starts_with("GMO") {
                gmo += 1;
            }
            if r.starts_with("GoDaddy") {
                godaddy += 1;
            }
            distinct.insert(r);
        }
        let gmo_rate = gmo as f64 / n as f64;
        let godaddy_rate = godaddy as f64 / n as f64;
        // Table IV: GMO ≈ 23%, GoDaddy ≈ 1.88% ("only takes a small share").
        assert!((gmo_rate - 0.23).abs() < 0.02, "gmo {gmo_rate}");
        assert!(
            (godaddy_rate - 0.019).abs() < 0.01,
            "godaddy {godaddy_rate}"
        );
        // "over 700 registrars" — the tail is broad.
        assert!(distinct.len() > 300, "distinct {}", distinct.len());
    }

    #[test]
    fn creation_timeline_has_spikes() {
        let mut rng = StdRng::seed_from_u64(32);
        let snapshot = Date::new(2017, 9, 21).unwrap();
        let mut hist = idnre_stats::YearHistogram::new();
        for _ in 0..20_000 {
            hist.record(sample_creation_date(&mut rng, snapshot).year);
        }
        let spikes = hist.spikes(2.0);
        assert!(spikes.contains(&2000), "2000 spike missing: {spikes:?}");
        assert!(spikes.contains(&2004), "2004 spike missing: {spikes:?}");
        // Rising overall trend.
        assert!(hist.count(2017) > hist.count(2010));
        // Finding 2: ≈6% of registrations predate 2008.
        let before_2008: u64 = (1999..2008).map(|y| hist.count(y)).sum();
        let rate = before_2008 as f64 / hist.total() as f64;
        assert!((0.03..0.10).contains(&rate), "pre-2008 rate {rate}");
    }

    #[test]
    fn malicious_timeline_spikes_2015_2017() {
        let mut rng = StdRng::seed_from_u64(33);
        let snapshot = Date::new(2017, 9, 21).unwrap();
        let mut hist = idnre_stats::YearHistogram::new();
        for _ in 0..10_000 {
            hist.record(sample_malicious_creation_date(&mut rng, snapshot).year);
        }
        assert!(hist.count(2015) > hist.count(2014) * 2);
        assert!(hist.count(2017) > hist.count(2016) * 2);
    }

    #[test]
    fn dates_never_exceed_snapshot() {
        let mut rng = StdRng::seed_from_u64(34);
        let snapshot = Date::new(2017, 9, 21).unwrap();
        for _ in 0..2000 {
            assert!(sample_creation_date(&mut rng, snapshot) <= snapshot);
            assert!(sample_malicious_creation_date(&mut rng, snapshot) <= snapshot);
        }
    }

    #[test]
    fn registrant_mix() {
        let mut rng = StdRng::seed_from_u64(35);
        let mut privacy = 0;
        let n = 10_000;
        for i in 0..n {
            let (email, is_private) = sample_registrant(&mut rng, i);
            assert_eq!(email.is_none(), is_private);
            if is_private {
                privacy += 1;
            }
        }
        let rate = privacy as f64 / n as f64;
        assert!((0.2..0.4).contains(&rate), "privacy rate {rate}");
    }
}
