//! Ecosystem assembly: generates registrations, WHOIS coverage,
//! passive-DNS aggregates, certificates, blacklist feeds, zone files and
//! the injected attack populations.
//!
//! # Keyed generation
//!
//! Every record's randomness is a pure function of
//! `(config.seed, stage, record index)` via the counter-based streams of
//! [`idnre_rng`]: no stage shares a sequential RNG with any other, so
//! every RNG-bearing stage fans out on the work-queue executor and the
//! output is byte-identical for every thread count (the
//! `idnre-dataset/2` schedule-independence contract, DESIGN.md §8).
//! Stages with cross-record state — deduplication, blacklist feeds, the
//! pDNS store — split into a parallel *plan* phase (all randomness, keyed
//! per record) and a cheap sequential *apply* phase (pure data movement).

use crate::attacks::{self, AttackDomain};
use crate::brands::BrandList;
use crate::config::{EcosystemConfig, TABLE_I};
use crate::content::ContentCategory;
use crate::hosting::HostingProfile;
use crate::labels;
use crate::registration::{
    sample_creation_date, sample_malicious_creation_date, sample_registrant, sample_registrar,
    themed_label, BulkTheme, DomainRegistration, MaliciousKind, BULK_REGISTRANTS,
};
use idnre_arena::Interner;
use idnre_blacklist::{BlacklistSet, Source};
use idnre_certs::Certificate;
use idnre_langid::Language;
use idnre_pdns::{DomainAggregate, PdnsStore, PopulationClass, TrafficModel};
use idnre_rng::{Key, KeyedRng, StageId};
use idnre_telemetry::{NoopRecorder, Recorder, SpanCtx};
use idnre_whois::{Date, WhoisDialect, WhoisRecord};
use idnre_zonefile::{RData, ResourceRecord, Zone};
use rand::Rng;

/// How many label-grow retries a colliding ordinary registration gets.
pub(crate) const ORDINARY_ATTEMPTS: u64 = 4;

/// Attack-injection channels in injection order: the blacklisted share per
/// mille for each attack class, shared by the batch and streaming builders.
/// Homograph: paper 100/1516 ≈ 6.6%; Type-1 semantic: a few of 1,497
/// observed malicious; Type-2: the Gree case was an active fraud.
pub(crate) const ATTACK_CHANNELS: [(MaliciousKind, u32); 3] = [
    (MaliciousKind::Homograph, 66),
    (MaliciousKind::SemanticType1, 13),
    (MaliciousKind::SemanticType2, 100),
];

/// A fully generated synthetic ecosystem.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    /// The configuration it was generated from.
    pub config: EcosystemConfig,
    /// The brand target list.
    pub brands: BrandList,
    /// All IDN registrations, including the injected attack populations.
    pub idn_registrations: Vec<DomainRegistration>,
    /// The sampled non-IDN comparison population.
    pub non_idn_registrations: Vec<DomainRegistration>,
    /// Ground truth: injected homographic IDNs.
    pub homograph_attacks: Vec<AttackDomain>,
    /// Ground truth: injected Type-1 semantic IDNs.
    pub semantic_attacks: Vec<AttackDomain>,
    /// Ground truth: injected Type-2 (translated-brand) semantic IDNs.
    pub semantic2_attacks: Vec<AttackDomain>,
    /// WHOIS records (coverage-limited, like the real crawl).
    pub whois: Vec<WhoisRecord>,
    /// Passive-DNS aggregates.
    pub pdns: PdnsStore,
    /// Certificates served by HTTPS-enabled domains.
    pub certificates: Vec<(String, Certificate)>,
    /// The aggregated URL blacklist.
    pub blacklist: BlacklistSet,
    /// Per-TLD zone files.
    pub zones: Vec<Zone>,
}

impl Ecosystem {
    /// Generates the full ecosystem from `config`. Deterministic in
    /// `config.seed`; byte-identical for every `config.threads`.
    pub fn generate(config: &EcosystemConfig) -> Self {
        Self::generate_recorded(config, &NoopRecorder)
    }

    /// Like [`Ecosystem::generate`], reporting per-stage timing and record
    /// counts to `recorder`. The generated ecosystem is identical for any
    /// recorder — telemetry never touches the RNG streams.
    pub fn generate_recorded(config: &EcosystemConfig, recorder: &dyn Recorder) -> Self {
        Self::generate_traced(config, recorder, SpanCtx::NONE)
    }

    /// Like [`Ecosystem::generate_recorded`], parenting the nine
    /// `datagen.*` stage spans under `parent` in the span tree (stage
    /// position as the sibling index).
    pub fn generate_traced(
        config: &EcosystemConfig,
        recorder: &dyn Recorder,
        parent: SpanCtx,
    ) -> Self {
        let root = Key::root(config.seed);
        let threads = config.threads;
        let brands = BrandList::with_size(config.brand_count);
        let snapshot_day = config.snapshot.day_number();

        // --- 1. Bulk (opportunistic) registrations: Table III clusters,
        //        each with a single portfolio theme. ---
        let mut span = recorder.span_at("datagen.bulk_registrations", parent, 0);
        let bulk_key = root.stage(StageId::BulkRegistrations);
        let mut bulk_jobs: Vec<(u64, &str, BulkTheme, u64)> = Vec::new();
        for (registrant, &(email, declared, theme)) in BULK_REGISTRANTS.iter().enumerate() {
            let n = (u64::from(declared) / config.scale).max(1);
            for i in 0..n {
                bulk_jobs.push((registrant as u64, email, theme, i));
            }
        }
        let mut idn_registrations: Vec<DomainRegistration> =
            idnre_par::par_map(&bulk_jobs, threads, |&(registrant, email, theme, i)| {
                let mut rng = bulk_key.derive(registrant).record(i).rng();
                let label = themed_label(&mut rng, theme);
                build_idn(
                    &mut rng,
                    config,
                    &format!("{label}{i}"),
                    Language::Chinese,
                    "com",
                    Some(email.to_string()),
                )
            })
            .into_iter()
            .flatten()
            .collect();
        span.add_records(idn_registrations.len() as u64);
        drop(span);

        // --- 2. Ordinary IDN registrations per TLD (Table I volumes). ---
        // The seed vocabulary is finite, so plain sampling collides. Three
        // phases per TLD: a parallel plan draws each record's meta stream
        // and first-rung domain only; a sequential pass probes the interned
        // dedup set (growing the label through the lazy retry rungs only
        // for records that actually collide); a parallel finish resumes
        // each winner's captured RNG stream for the record body. Every
        // draw lands on the same keyed stream position as the eager-ladder
        // formulation, so the `idnre-dataset/2` bytes are unchanged.
        let mut span = recorder.span_at("datagen.ordinary_registrations", parent, 1);
        let bulk_count = idn_registrations.len();
        let mut seen = Interner::with_capacity(idn_registrations.len() * 2);
        for reg in &idn_registrations {
            seen.intern(&reg.domain);
        }
        for (spec_idx, spec) in TABLE_I.iter().enumerate() {
            let n = config.scaled_idns(spec);
            let spec_key = root
                .stage(StageId::OrdinaryRegistrations)
                .derive(spec_idx as u64);
            let indices: Vec<u64> = (0..n).collect();
            let plans = idnre_par::par_map(&indices, threads, |&i| {
                let record_key = spec_key.record(i);
                let mut meta = record_key.rng();
                let language = labels::sample_language(&mut meta);
                let label = labels::generate_label(&mut meta, language);
                let (email, _) = sample_registrant(&mut meta, i);
                let mut rng = record_key.derive(1).rng();
                let rung0 = draw_idn_domain(&mut rng, &label, spec.tld)
                    .map(|(domain, unicode)| (domain, unicode, rng));
                OrdinaryPlan {
                    language,
                    label,
                    email,
                    rung0,
                }
            });
            let mut winners: Vec<OrdinaryWinner> = Vec::with_capacity(plans.len());
            for (i, plan) in plans.into_iter().enumerate() {
                let OrdinaryPlan {
                    language,
                    mut label,
                    email,
                    rung0,
                } = plan;
                let mut won = match rung0 {
                    Some((domain, unicode, rng)) if seen.intern_full(&domain).1 => {
                        Some((domain, unicode, rng))
                    }
                    _ => None,
                };
                if won.is_none() {
                    // Collision (or failed first rung): walk the remaining
                    // rungs in order. Rung `k` draws from the record key's
                    // child `derive(k + 1)`, its suffix growing the label
                    // the previous rungs left behind — identical streams
                    // and label accumulation to the precomputed ladder.
                    let record_key = spec_key.record(i as u64);
                    for attempt in 1..ORDINARY_ATTEMPTS {
                        let mut rng = record_key.derive(attempt + 1).rng();
                        label.push_str(&rng.gen_range(2..1000u32).to_string());
                        let Some((domain, unicode)) = draw_idn_domain(&mut rng, &label, spec.tld)
                        else {
                            continue;
                        };
                        if seen.intern_full(&domain).1 {
                            won = Some((domain, unicode, rng));
                            break;
                        }
                    }
                }
                if let Some((domain, unicode, rng)) = won {
                    winners.push(OrdinaryWinner {
                        language,
                        email,
                        domain,
                        unicode,
                        rng,
                    });
                }
            }
            idn_registrations.extend(idnre_par::par_map(&winners, threads, |winner| {
                let mut rng = winner.rng.clone();
                finish_idn(
                    &mut rng,
                    config,
                    winner.domain.clone(),
                    winner.unicode.clone(),
                    winner.language,
                    spec.tld,
                    winner.email.clone(),
                )
            }));
        }
        span.add_records((idn_registrations.len() - bulk_count) as u64);
        drop(span);

        // --- 3. Blacklist assignment over the bulk+ordinary population. ---
        let mut span = recorder.span_at("datagen.blacklist", parent, 2);
        let mut blacklist = BlacklistSet::new();
        assign_blacklist(
            root.stage(StageId::Blacklist),
            config,
            threads,
            &mut idn_registrations,
            &mut blacklist,
        );
        span.add_records(blacklist.union_count() as u64);
        drop(span);

        // --- 4. Attack populations (full scale by default). ---
        let mut span = recorder.span_at("datagen.attack_injection", parent, 3);
        let homograph_attacks = attacks::generate_homographs(
            root.stage(StageId::HomographAttacks),
            &brands,
            config.attack_scale,
            threads,
        );
        let semantic_attacks = attacks::generate_semantic_type1(
            root.stage(StageId::SemanticType1Attacks),
            &brands,
            config.attack_scale,
            threads,
        );
        let semantic2_attacks = attacks::generate_semantic_type2(
            root.stage(StageId::SemanticType2Attacks),
            config.attack_scale,
        );
        let inject_key = root.stage(StageId::AttackInjection);
        // The ordinary stage's dedup set already holds every bulk and
        // ordinary domain (the blacklist stage between mutates flags, not
        // domains), so injection threads the same set through instead of
        // rebuilding an identical one from scratch.
        let mut existing = seen;
        for (kind_word, (attacks_list, (kind, per_mille))) in
            [&homograph_attacks, &semantic_attacks, &semantic2_attacks]
                .into_iter()
                .zip(ATTACK_CHANNELS)
                .enumerate()
        {
            inject_attacks(
                inject_key.derive(kind_word as u64),
                config,
                threads,
                attacks_list,
                kind,
                per_mille,
                &mut existing,
                &mut idn_registrations,
                &mut blacklist,
            );
        }
        span.add_records(
            (homograph_attacks.len() + semantic_attacks.len() + semantic2_attacks.len()) as u64,
        );
        drop(span);

        // --- 5. Non-IDN comparison sample. ---
        let mut span = recorder.span_at("datagen.non_idn_sample", parent, 4);
        let non_idn_key = root.stage(StageId::NonIdnSample);
        let mut non_idn_jobs: Vec<(u64, &str, u64)> = Vec::new();
        for (spec_idx, spec) in TABLE_I.iter().enumerate() {
            for i in 0..config.scaled_non_idn_sample(spec) {
                non_idn_jobs.push((spec_idx as u64, spec.tld, i));
            }
        }
        let non_idn_registrations: Vec<DomainRegistration> =
            idnre_par::par_map(&non_idn_jobs, threads, |&(spec_idx, tld, i)| {
                let mut rng = non_idn_key.derive(spec_idx).record(i).rng();
                build_non_idn(&mut rng, config, i, tld)
            });
        span.add_records(non_idn_registrations.len() as u64);
        drop(span);

        // --- 6. WHOIS emission with per-TLD coverage. ---
        let mut span = recorder.span_at("datagen.whois", parent, 5);
        let whois = emit_whois(root.stage(StageId::Whois), threads, &idn_registrations);
        span.add_records(whois.len() as u64);
        drop(span);

        // --- 7. Passive DNS: sample aggregates in parallel, insert in
        //        registration order. ---
        let mut span = recorder.span_at("datagen.pdns_traffic", parent, 6);
        let pdns_key = root.stage(StageId::PdnsTraffic);
        let traffic_jobs: Vec<(u64, &DomainRegistration, PopulationClass)> = idn_registrations
            .iter()
            .map(|reg| {
                let class = match reg.malicious {
                    Some(MaliciousKind::Homograph) => PopulationClass::Homographic,
                    Some(MaliciousKind::SemanticType1 | MaliciousKind::SemanticType2) => {
                        PopulationClass::SemanticType1
                    }
                    Some(_) => PopulationClass::MaliciousIdn,
                    None => PopulationClass::BenignIdn,
                };
                (reg, class)
            })
            .chain(
                non_idn_registrations
                    .iter()
                    .map(|reg| (reg, PopulationClass::NonIdn)),
            )
            .enumerate()
            .map(|(i, (reg, class))| (i as u64, reg, class))
            .collect();
        let aggregates = idnre_par::par_map(&traffic_jobs, threads, |&(i, reg, class)| {
            let mut rng = pdns_key.record(i).rng();
            sample_traffic(&mut rng, reg, class, snapshot_day)
        });
        let mut pdns = PdnsStore::new();
        for aggregate in aggregates.into_iter().flatten() {
            pdns.insert_aggregate(aggregate);
        }
        span.add_records(pdns.len() as u64);
        drop(span);

        // --- 8. Certificates: each HTTPS host draws from its own stream
        //        keyed by chain position, so issuance is independent of
        //        every other record's HTTPS flag. ---
        let mut span = recorder.span_at("datagen.certificates", parent, 7);
        let cert_key = root.stage(StageId::Certificates);
        let cert_jobs: Vec<(u64, &DomainRegistration)> = idn_registrations
            .iter()
            .chain(&non_idn_registrations)
            .enumerate()
            .map(|(i, reg)| (i as u64, reg))
            .collect();
        let certificates: Vec<(String, Certificate)> =
            idnre_par::par_map(&cert_jobs, threads, |&(i, reg)| {
                if !reg.https {
                    return None;
                }
                let hosting = reg.hosting.as_ref()?;
                let mut rng = cert_key.record(i).rng();
                Some((
                    reg.domain.clone(),
                    hosting.issue_certificate(&mut rng, &reg.domain, snapshot_day),
                ))
            })
            .into_iter()
            .flatten()
            .collect();
        span.add_records(certificates.len() as u64);
        drop(span);

        // --- 9. Zone files (RNG-free). ---
        let mut span = recorder.span_at("datagen.zones", parent, 8);
        let (zones, zones_skipped) =
            emit_zones(&idn_registrations, &non_idn_registrations, threads);
        span.add_records(zones.iter().map(|z| z.records.len() as u64).sum());
        drop(span);
        recorder.add("datagen.zones.skipped", zones_skipped);

        Ecosystem {
            config: config.clone(),
            brands,
            idn_registrations,
            non_idn_registrations,
            homograph_attacks,
            semantic_attacks,
            semantic2_attacks,
            whois,
            pdns,
            certificates,
            blacklist,
            zones,
        }
    }

    /// The malicious IDN registrations (any blacklist source).
    pub fn malicious_idns(&self) -> impl Iterator<Item = &DomainRegistration> {
        self.idn_registrations
            .iter()
            .filter(|r| r.malicious.is_some())
    }

    /// Looks up a registration by ACE domain.
    pub fn registration(&self, domain: &str) -> Option<&DomainRegistration> {
        self.idn_registrations
            .iter()
            .chain(&self.non_idn_registrations)
            .find(|r| r.domain == domain)
    }

    /// The keyed candidate stream behind the ordinary-registration stage:
    /// one retry ladder per record index, before cross-record dedup.
    ///
    /// Exposed for the prefix-stability oracle: because every ladder is a
    /// pure function of `(seed, spec_index, record index)`, the first `m`
    /// ladders of a `count = n` stream equal the full `count = m` stream
    /// for any `m <= n`.
    pub fn ordinary_candidate_stream(
        config: &EcosystemConfig,
        spec_index: usize,
        count: u64,
    ) -> Vec<Vec<Option<DomainRegistration>>> {
        let spec = &TABLE_I[spec_index];
        ordinary_candidates(
            Key::root(config.seed),
            config,
            spec_index as u64,
            spec.tld,
            count,
            config.threads,
        )
    }

    /// The keyed non-IDN sample stream for one TLD spec (same prefix
    /// stability as [`Ecosystem::ordinary_candidate_stream`]).
    pub fn non_idn_stream(
        config: &EcosystemConfig,
        spec_index: usize,
        count: u64,
    ) -> Vec<DomainRegistration> {
        let spec = &TABLE_I[spec_index];
        let key = Key::root(config.seed)
            .stage(StageId::NonIdnSample)
            .derive(spec_index as u64);
        let indices: Vec<u64> = (0..count).collect();
        idnre_par::par_map(&indices, config.threads, |&i| {
            let mut rng = key.record(i).rng();
            build_non_idn(&mut rng, config, i, spec.tld)
        })
    }
}

/// One ordinary record's parallel plan: the meta stream's products plus
/// the first rung's domain and mid-stream RNG. The RNG is carried so the
/// finish phase resumes exactly where the domain draw stopped — no
/// replay, no second meta derivation.
struct OrdinaryPlan {
    language: Language,
    label: String,
    email: Option<String>,
    rung0: Option<(String, String, KeyedRng)>,
}

/// A record that cleared dedup: everything [`finish_idn`] needs, with the
/// winning rung's RNG positioned right after its domain draw.
struct OrdinaryWinner {
    language: Language,
    email: Option<String>,
    domain: String,
    unicode: String,
    rng: KeyedRng,
}

/// Precomputes the keyed retry ladders for one TLD's ordinary
/// registrations. Ladder rung `k` draws from the record key's child
/// `derive(k + 1)` (word 0 is the record's own meta stream), so a rung's
/// bytes never depend on which earlier rungs collided.
fn ordinary_candidates(
    root: Key,
    config: &EcosystemConfig,
    spec_idx: u64,
    tld: &str,
    count: u64,
    threads: usize,
) -> Vec<Vec<Option<DomainRegistration>>> {
    let spec_key = root.stage(StageId::OrdinaryRegistrations).derive(spec_idx);
    let indices: Vec<u64> = (0..count).collect();
    idnre_par::par_map(&indices, threads, |&i| {
        let record_key = spec_key.record(i);
        let mut meta = record_key.rng();
        let language = labels::sample_language(&mut meta);
        let mut label = labels::generate_label(&mut meta, language);
        let (email, _) = sample_registrant(&mut meta, i);
        (0..ORDINARY_ATTEMPTS)
            .map(|attempt| {
                let mut rng = record_key.derive(attempt + 1).rng();
                if attempt > 0 {
                    // Digit-bearing IDNs are common in the wild corpus, so
                    // collision retries grow the label rather than resample.
                    label.push_str(&rng.gen_range(2..1000u32).to_string());
                }
                build_idn(&mut rng, config, &label, language, tld, email.clone())
            })
            .collect()
    })
}

/// Builds one IDN registration; returns `None` when the label fails IDNA
/// validation (rare).
fn build_idn<R: Rng + ?Sized>(
    rng: &mut R,
    config: &EcosystemConfig,
    label: &str,
    language: Language,
    tld: &str,
    email: Option<String>,
) -> Option<DomainRegistration> {
    let (domain, unicode) = draw_idn_domain(rng, label, tld)?;
    Some(finish_idn(
        rng, config, domain, unicode, language, tld, email,
    ))
}

/// The domain-construction prefix of [`build_idn`]: the decorative
/// confusable pick (ASCII labels only) and the IDNA round trip. Split out
/// so the streaming planner can decide record survival from exactly the
/// stream positions the batch builder consumes — any draw-order divergence
/// here breaks the `idnre-dataset/2` golden fingerprint.
pub(crate) fn draw_idn_domain<R: Rng + ?Sized>(
    rng: &mut R,
    label: &str,
    tld: &str,
) -> Option<(String, String)> {
    // Labels that come out pure-ASCII (English vocabulary) get a decorative
    // diacritic so the domain is a genuine IDN — mirroring the squatting
    // registrations observed under Latin scripts.
    let mut unicode_sld = label.to_string();
    if unicode_sld.is_ascii() {
        unicode_sld = decorate_ascii(rng, &unicode_sld)?;
    }
    let domain = idnre_idna::to_ascii(&format!("{unicode_sld}.{tld}")).ok()?;
    // Display form decodes every label, including an ACE TLD (iTLDs).
    let unicode = idnre_idna::to_unicode(&domain).ok()?;
    Some((domain, unicode))
}

/// The record-body suffix of [`build_idn`], continuing on the same RNG
/// stream after [`draw_idn_domain`].
pub(crate) fn finish_idn<R: Rng + ?Sized>(
    rng: &mut R,
    config: &EcosystemConfig,
    domain: String,
    unicode: String,
    language: Language,
    tld: &str,
    email: Option<String>,
) -> DomainRegistration {
    let content = ContentCategory::sample_idn(rng);
    let hosting = HostingProfile::sample(rng, content);
    let privacy = email.is_none();
    DomainRegistration {
        domain,
        unicode,
        tld: tld.to_string(),
        language,
        created: sample_creation_date(rng, config.snapshot),
        registrar: sample_registrar(rng),
        registrant_email: email,
        privacy,
        malicious: None,
        content,
        // Paper: certificates retrieved from 4.55% of IDNs.
        https: hosting.is_some() && rng.gen_ratio(91, 1000),
        hosting,
    }
}

/// Replaces one character of a pure-ASCII label with a High-fidelity
/// confusable so it becomes an IDN.
fn decorate_ascii<R: Rng + ?Sized>(rng: &mut R, label: &str) -> Option<String> {
    let chars: Vec<char> = label.chars().collect();
    let candidates: Vec<usize> = (0..chars.len())
        .filter(|&i| !idnre_unicode::homoglyphs_of(chars[i]).is_empty())
        .collect();
    // Fail before drawing: an undecoratable label must not consume stream
    // positions that a decoratable one would spend on the pick itself.
    if candidates.is_empty() {
        return None;
    }
    let pos = candidates[rng.gen_range(0..candidates.len())];
    let glyphs = idnre_unicode::homoglyphs_of(chars[pos]);
    let pick = glyphs[rng.gen_range(0..glyphs.len())];
    let mut out = chars;
    out[pos] = pick.ch;
    Some(out.into_iter().collect())
}

pub(crate) fn build_non_idn<R: Rng + ?Sized>(
    rng: &mut R,
    config: &EcosystemConfig,
    index: u64,
    tld: &str,
) -> DomainRegistration {
    let sld = format!("{}{}", pronounceable(rng), index);
    let (email, privacy) = sample_registrant(rng, index);
    let content = ContentCategory::sample_non_idn(rng);
    let hosting = HostingProfile::sample(rng, content);
    DomainRegistration {
        domain: format!("{sld}.{tld}"),
        unicode: format!("{sld}.{tld}"),
        tld: tld.to_string(),
        language: Language::English,
        created: sample_creation_date(rng, config.snapshot),
        registrar: sample_registrar(rng),
        registrant_email: email,
        privacy,
        malicious: None,
        content,
        // Paper: certificates from 2.92% of non-IDNs.
        https: hosting.is_some() && rng.gen_ratio(58, 1000),
        hosting,
    }
}

fn pronounceable<R: Rng + ?Sized>(rng: &mut R) -> String {
    const CONSONANTS: &[u8] = b"bcdfghklmnprstvwz";
    const VOWELS: &[u8] = b"aeiou";
    let mut out = String::new();
    for _ in 0..rng.gen_range(2..4) {
        out.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        out.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
    }
    out
}

/// One TLD's planned blacklist marks: flag mutations plus per-source feed
/// inserts, computed in parallel and applied in spec order.
struct BlacklistPlan {
    flags: Vec<(usize, MaliciousKind, Date)>,
    inserts: Vec<(Source, usize)>,
}

/// Marks the Table I blacklist proportions on the ordinary population and
/// feeds the per-source sets. Each TLD spec plans against the same
/// immutable population snapshot (their candidate sets are disjoint by
/// TLD), then the plans apply sequentially.
fn assign_blacklist(
    key: Key,
    config: &EcosystemConfig,
    threads: usize,
    registrations: &mut [DomainRegistration],
    blacklist: &mut BlacklistSet,
) {
    let spec_indices: Vec<u64> = (0..TABLE_I.len() as u64).collect();
    let population: &[DomainRegistration] = registrations;
    let plans = idnre_par::par_map(&spec_indices, threads, |&spec_idx| {
        let spec = &TABLE_I[spec_idx as usize];
        let mut rng = key.record(spec_idx).rng();
        let (vt, qihoo, baidu) = spec.declared_blacklisted;
        let scaled = |n: u64| -> usize { (n / config.scale.max(1)).max(u64::from(n > 0)) as usize };
        let mut candidates: Vec<usize> = population
            .iter()
            .enumerate()
            .filter(|(_, r)| r.tld == spec.tld && r.malicious.is_none())
            .map(|(i, _)| i)
            .collect();
        // Union structure: all of VirusTotal's finds, one third of Qihoo's
        // as unique (the rest overlap VT), and Baidu's handful mostly
        // unique — Table I's per-source totals behave this way.
        let n_vt = scaled(vt);
        let n_q = scaled(qihoo);
        let n_q_unique = n_q / 3;
        let n_b_unique = scaled(baidu).min(1) * u64::from(baidu > 0) as usize;
        let union = n_vt + n_q_unique + n_b_unique;
        let mut flags = Vec::new();
        for _ in 0..union.min(candidates.len()) {
            let idx = candidates.swap_remove(rng.gen_range(0..candidates.len()));
            let kind = if rng.gen_ratio(7, 10) {
                MaliciousKind::UndergroundBusiness
            } else {
                MaliciousKind::Other
            };
            let created = sample_malicious_creation_date(&mut rng, config.snapshot);
            flags.push((idx, kind, created));
        }
        // Per-source attribution: every flagged domain gets at least one
        // source, with the overlap block shared between VT and Qihoo.
        let q_overlap = n_q - n_q_unique;
        let mut inserts = Vec::new();
        for (k, &(idx, _, _)) in flags.iter().enumerate() {
            if k < n_vt {
                inserts.push((Source::VirusTotal, idx));
                if k >= n_vt.saturating_sub(q_overlap) {
                    inserts.push((Source::Qihoo360, idx));
                }
            } else if k < n_vt + n_q_unique {
                inserts.push((Source::Qihoo360, idx));
            } else {
                inserts.push((Source::Baidu, idx));
            }
        }
        BlacklistPlan { flags, inserts }
    });
    for plan in plans {
        for (idx, kind, created) in plan.flags {
            registrations[idx].malicious = Some(kind);
            registrations[idx].created = created;
        }
        for (source, idx) in plan.inserts {
            blacklist.insert(source, &registrations[idx].domain);
        }
    }
}

/// Converts attack domains into registrations, blacklisting `per_mille` of
/// them. The per-attack randomness (including the Qihoo-overlap draw) is
/// keyed by attack index and sampled unconditionally, so the prepared
/// record is independent of which attacks the dedup pass skips.
#[allow(clippy::too_many_arguments)]
fn inject_attacks(
    key: Key,
    config: &EcosystemConfig,
    threads: usize,
    attacks: &[AttackDomain],
    kind: MaliciousKind,
    per_mille: u32,
    existing: &mut Interner,
    registrations: &mut Vec<DomainRegistration>,
    blacklist: &mut BlacklistSet,
) {
    let indices: Vec<u64> = (0..attacks.len() as u64).collect();
    let prepared = idnre_par::par_map(&indices, threads, |&i| {
        let mut rng = key.record(i).rng();
        prepare_attack_registration(&mut rng, config, &attacks[i as usize], kind, per_mille)
    });
    for (reg, blacklisted, qihoo_too) in prepared {
        if !existing.intern_full(&reg.domain).1 {
            continue;
        }
        if blacklisted {
            blacklist.insert(Source::VirusTotal, &reg.domain);
            if qihoo_too {
                blacklist.insert(Source::Qihoo360, &reg.domain);
            }
        }
        registrations.push(reg);
    }
}

/// The per-attack record preparation of [`inject_attacks`]: one keyed
/// stream drives the blacklist roll, the Qihoo-overlap roll and the
/// registration body, in that order. Shared by the streaming planner,
/// which replays the same stream to regenerate attack records on demand.
pub(crate) fn prepare_attack_registration<R: Rng + ?Sized>(
    rng: &mut R,
    config: &EcosystemConfig,
    attack: &AttackDomain,
    kind: MaliciousKind,
    per_mille: u32,
) -> (DomainRegistration, bool, bool) {
    let tld = attack
        .domain
        .rsplit('.')
        .next()
        .unwrap_or("com")
        .to_string();
    let blacklisted = rng.gen_ratio(per_mille, 1000);
    let qihoo_too = rng.gen_ratio(1, 3);
    let (email, privacy) = if attack.protective {
        let brand_sld = attack.target.split('.').next().unwrap_or("brand");
        (Some(format!("legal@{brand_sld}.com")), false)
    } else if rng.gen_ratio(1, 6) {
        (
            Some(format!("attacker{}@gmail.com", rng.gen_range(0..500u32))),
            false,
        )
    } else {
        (None, true)
    };
    let content = ContentCategory::sample_idn(rng);
    let hosting = HostingProfile::sample(rng, content);
    let reg = DomainRegistration {
        domain: attack.domain.clone(),
        unicode: attack.unicode.clone(),
        tld,
        language: Language::Unknown,
        created: sample_malicious_creation_date(rng, config.snapshot),
        registrar: sample_registrar(rng),
        registrant_email: email,
        privacy,
        malicious: blacklisted.then_some(kind),
        content,
        https: hosting.is_some() && rng.gen_ratio(91, 1000),
        hosting,
    };
    (reg, blacklisted, qihoo_too)
}

/// Emits WHOIS records honoring the per-TLD coverage of Table I (50.19%
/// overall; 1.1% for iTLDs). Each registration's coverage roll and record
/// body draw from a stream keyed by its position.
fn emit_whois(key: Key, threads: usize, registrations: &[DomainRegistration]) -> Vec<WhoisRecord> {
    let indices: Vec<u64> = (0..registrations.len() as u64).collect();
    idnre_par::par_map(&indices, threads, |&i| {
        whois_record_for(key, i, &registrations[i as usize])
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One registration's WHOIS emission: the coverage roll and (when covered)
/// the record body, on the stream keyed by corpus position `i`. Shared by
/// the batch emitter and the streaming artifact pass.
pub(crate) fn whois_record_for(key: Key, i: u64, reg: &DomainRegistration) -> Option<WhoisRecord> {
    let coverage = TABLE_I
        .iter()
        .find(|spec| spec.tld == reg.tld)
        .map(|spec| spec.declared_whois as f64 / spec.declared_idns as f64)
        .unwrap_or(0.5);
    let mut rng = key.record(i).rng();
    if !rng.gen_bool(coverage.clamp(0.0, 1.0)) {
        return None;
    }
    let mut record = WhoisRecord::new(&reg.domain, WhoisDialect::KeyValue);
    record.registrar = Some(reg.registrar.clone());
    record.registrant_email = reg.registrant_email.clone();
    record.creation_date = Some(reg.created);
    record.expiry_date = Some(reg.created.plus_days(365));
    record.privacy_protected = reg.privacy;
    record.name_servers = vec![format!("ns1.{}", reg.domain)];
    Some(record)
}

pub(crate) fn sample_traffic<R: Rng + ?Sized>(
    rng: &mut R,
    reg: &DomainRegistration,
    class: PopulationClass,
    snapshot_day: i64,
) -> Option<DomainAggregate> {
    if !reg.content.resolves() {
        return None;
    }
    let ip = reg.hosting.as_ref().map(|h| h.assign_ip(rng));
    let model = TrafficModel::for_class(class);
    model.sample_aggregate(rng, &reg.domain, snapshot_day, ip)
}

/// Builds one zone per TLD containing NS (and A, when resolving) records.
///
/// The zones are RNG-free: each TLD is one shard on the work-queue
/// executor, filtering the registration stream independently. Records land
/// in registration order within each zone, so the emitted zones are
/// byte-identical for any `threads`.
///
/// Registrations whose names do not survive the zone's name grammar (e.g.
/// an NS owner pushing past the 253-octet limit) are skipped, not
/// panicked over; the second return value counts them (together with
/// registrations matching no zone) so the caller can surface the loss
/// (`datagen.zones.skipped`).
fn emit_zones(
    idns: &[DomainRegistration],
    non_idns: &[DomainRegistration],
    threads: usize,
) -> (Vec<Zone>, u64) {
    let origins: Vec<_> = TABLE_I
        .iter()
        .filter_map(|spec| spec.tld.parse::<idnre_idna::DomainName>().ok())
        .collect();
    let sharded = idnre_par::par_map(&origins, threads, |origin| {
        let tld = origin.to_string();
        let mut zone = Zone::new(origin.clone());
        let mut parse_skipped = 0u64;
        let mut matched = 0u64;
        for reg in idns.iter().chain(non_idns).filter(|r| r.tld == tld) {
            matched += 1;
            match ns_record_for(reg) {
                Some(record) => zone.records.push(record),
                None => parse_skipped += 1,
            }
        }
        (zone, parse_skipped, matched)
    });
    let total = (idns.len() + non_idns.len()) as u64;
    let matched: u64 = sharded.iter().map(|(_, _, m)| m).sum();
    let parse_skipped: u64 = sharded.iter().map(|(_, s, _)| s).sum();
    let zones = sharded.into_iter().map(|(zone, _, _)| zone).collect();
    (zones, parse_skipped + (total - matched))
}

/// One registration's delegation record (`None` when its name fails the
/// zone grammar). Shared by the batch zone emitter and the streaming
/// artifact pass.
pub(crate) fn ns_record_for(reg: &DomainRegistration) -> Option<ResourceRecord> {
    let owner = reg.domain.parse().ok()?;
    let ns = format!("ns1.{}", reg.domain).parse().ok()?;
    Some(ResourceRecord {
        owner,
        ttl: 86_400,
        rdata: RData::Ns(ns),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> EcosystemConfig {
        EcosystemConfig {
            scale: 500,
            attack_scale: 10,
            ..EcosystemConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = small_config();
        let a = Ecosystem::generate(&config);
        let b = Ecosystem::generate(&config);
        assert_eq!(a.idn_registrations, b.idn_registrations);
        assert_eq!(a.certificates.len(), b.certificates.len());
        assert_eq!(a.blacklist, b.blacklist);
    }

    #[test]
    fn recorded_generation_is_identical_and_observable() {
        let config = small_config();
        let registry = idnre_telemetry::Registry::new();
        let plain = Ecosystem::generate(&config);
        let recorded = Ecosystem::generate_recorded(&config, &registry);
        // Telemetry must not perturb the RNG stream.
        assert_eq!(plain.idn_registrations, recorded.idn_registrations);
        assert_eq!(plain.non_idn_registrations, recorded.non_idn_registrations);
        assert_eq!(plain.blacklist, recorded.blacklist);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.stages.len(), 9, "one span per pipeline stage");
        for stage in &snapshot.stages {
            assert!(stage.name.starts_with("datagen."), "{}", stage.name);
            assert_eq!(stage.calls, 1, "{}", stage.name);
            assert!(stage.records > 0, "{} recorded nothing", stage.name);
        }
    }

    #[test]
    fn generation_is_thread_count_invariant() {
        let one = Ecosystem::generate(&EcosystemConfig {
            threads: 1,
            ..small_config()
        });
        for threads in [2, 8] {
            let many = Ecosystem::generate(&EcosystemConfig {
                threads,
                ..small_config()
            });
            assert_eq!(one.idn_registrations, many.idn_registrations);
            assert_eq!(one.non_idn_registrations, many.non_idn_registrations);
            assert_eq!(one.whois, many.whois);
            assert_eq!(one.blacklist, many.blacklist);
            assert_eq!(one.certificates, many.certificates);
            assert_eq!(one.zones, many.zones, "zones diverged at {threads} threads");
            assert_eq!(
                one.zones
                    .iter()
                    .map(idnre_zonefile::write_zone)
                    .collect::<String>(),
                many.zones
                    .iter()
                    .map(idnre_zonefile::write_zone)
                    .collect::<String>(),
                "rendered zone bytes diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Ecosystem::generate(&small_config());
        let b = Ecosystem::generate(&EcosystemConfig {
            seed: 999,
            ..small_config()
        });
        assert_ne!(a.idn_registrations, b.idn_registrations);
    }

    #[test]
    fn idn_population_is_all_idn() {
        let eco = Ecosystem::generate(&small_config());
        for reg in &eco.idn_registrations {
            assert!(idnre_idna::is_idn(&reg.domain), "{}", reg.domain);
        }
        for reg in &eco.non_idn_registrations {
            assert!(!idnre_idna::is_idn(&reg.domain), "{}", reg.domain);
        }
    }

    #[test]
    fn no_duplicate_domains() {
        let eco = Ecosystem::generate(&small_config());
        let mut seen = std::collections::HashSet::new();
        for reg in &eco.idn_registrations {
            assert!(seen.insert(&reg.domain), "duplicate {}", reg.domain);
        }
    }

    #[test]
    fn blacklist_and_malicious_flags_agree() {
        let eco = Ecosystem::generate(&small_config());
        for reg in &eco.idn_registrations {
            if reg.malicious.is_some() {
                assert!(
                    eco.blacklist.is_malicious(&reg.domain),
                    "{} flagged but not blacklisted",
                    reg.domain
                );
            }
        }
        assert!(eco.blacklist.union_count() > 0);
    }

    #[test]
    fn attack_ground_truth_is_registered() {
        let eco = Ecosystem::generate(&small_config());
        for attack in eco.homograph_attacks.iter().take(20) {
            assert!(
                eco.registration(&attack.domain).is_some(),
                "{} not registered",
                attack.domain
            );
        }
    }

    #[test]
    fn whois_coverage_is_partial() {
        let eco = Ecosystem::generate(&small_config());
        let coverage = eco.whois.len() as f64 / eco.idn_registrations.len() as f64;
        assert!(
            (0.25..0.75).contains(&coverage),
            "whois coverage {coverage}"
        );
    }

    #[test]
    fn zones_scan_back_to_the_population() {
        let eco = Ecosystem::generate(&small_config());
        let scanner = idnre_zonefile::ZoneScanner::new();
        let report = scanner.scan_all(eco.zones.iter());
        let scanned_idns = report.total_idns();
        let expected = eco.idn_registrations.len();
        // Zone scan recovers the registered IDN population exactly.
        assert_eq!(scanned_idns, expected);
    }

    #[test]
    fn https_rates_are_low() {
        let eco = Ecosystem::generate(&small_config());
        let https = eco.idn_registrations.iter().filter(|r| r.https).count();
        let rate = https as f64 / eco.idn_registrations.len() as f64;
        assert!((0.01..0.12).contains(&rate), "https rate {rate}");
        assert_eq!(
            eco.certificates.len(),
            eco.idn_registrations
                .iter()
                .chain(&eco.non_idn_registrations)
                .filter(|r| r.https && r.hosting.is_some())
                .count()
        );
    }

    #[test]
    fn pdns_contains_traffic_for_both_populations() {
        let eco = Ecosystem::generate(&small_config());
        assert!(!eco.pdns.is_empty());
        let idn_hits = eco
            .idn_registrations
            .iter()
            .filter(|r| eco.pdns.lookup(&r.domain).is_some())
            .count();
        assert!(idn_hits > eco.idn_registrations.len() / 4);
    }

    #[test]
    fn ordinary_stream_is_prefix_stable() {
        let config = small_config();
        let full = Ecosystem::ordinary_candidate_stream(&config, 0, 50);
        let prefix = Ecosystem::ordinary_candidate_stream(&config, 0, 20);
        assert_eq!(&full[..20], &prefix[..]);
    }
}
