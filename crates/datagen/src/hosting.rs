//! Hosting profiles: where a domain's A record points and what certificate
//! (if any) its server presents. Drives Figure 4's IP concentration and
//! Tables VI/VII's certificate findings.

use crate::content::ContentCategory;
use idnre_certs::Certificate;
use rand::Rng;
use std::net::Ipv4Addr;

/// How a resolving domain is hosted.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HostingProfile {
    /// Parked at a parking service (shared IPs, shared certificate).
    Parked {
        /// Parking provider domain, e.g. `sedoparking.com`.
        provider: &'static str,
    },
    /// Shared web hosting (provider-wide certificate).
    SharedHosting {
        /// Hosting provider domain, e.g. `cafe24.com`.
        provider: &'static str,
    },
    /// CDN-fronted (Akamai-style segment).
    Cdn,
    /// The registrant's own server.
    SelfHosted,
}

/// Parking providers with their Table VII weights.
const PARKING: [(&str, u32); 3] = [
    ("sedoparking.com", 85),
    ("seoboxes.com", 10),
    ("parkingcrew.net", 5),
];

/// Shared-hosting providers with their Table VII weights.
const SHARED_HOSTS: [(&str, u32); 5] = [
    ("cafe24.com", 40),
    ("ovh.net", 30),
    ("bizgabia.com", 20),
    ("nayana.com", 6),
    ("suksawadplywood.co.th", 4),
];

impl HostingProfile {
    /// Samples a hosting profile consistent with the domain's content
    /// category.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, content: ContentCategory) -> Option<Self> {
        if !content.resolves() {
            return None;
        }
        Some(match content {
            ContentCategory::Parked | ContentCategory::ForSale => HostingProfile::Parked {
                provider: pick(rng, &PARKING),
            },
            ContentCategory::Meaningful | ContentCategory::Redirected => match rng.gen_range(0..10)
            {
                0..=4 => HostingProfile::SharedHosting {
                    provider: pick(rng, &SHARED_HOSTS),
                },
                5 => HostingProfile::Cdn,
                _ => HostingProfile::SelfHosted,
            },
            _ => match rng.gen_range(0..10) {
                0..=6 => HostingProfile::SharedHosting {
                    provider: pick(rng, &SHARED_HOSTS),
                },
                _ => HostingProfile::SelfHosted,
            },
        })
    }

    /// The IP the domain's A record points at. Parking and shared hosting
    /// concentrate in a handful of /24s (Finding 7); self-hosted domains
    /// scatter across a wide space.
    pub fn assign_ip<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        match self {
            HostingProfile::Parked { provider } => {
                // A handful of /24s per parking provider (the paper's top
                // ten hosts four parking segments).
                let base = provider_octet(provider);
                Ipv4Addr::new(
                    91,
                    195,
                    base.wrapping_add(rng.gen_range(0..4)),
                    rng.gen_range(1..=254),
                )
            }
            HostingProfile::SharedHosting { provider } => {
                let base = provider_octet(provider);
                Ipv4Addr::new(
                    104,
                    27,
                    base.wrapping_add(rng.gen_range(0..3)),
                    rng.gen_range(1..=254),
                )
            }
            HostingProfile::Cdn => {
                Ipv4Addr::new(23, 56, rng.gen_range(0..8), rng.gen_range(1..=254))
            }
            HostingProfile::SelfHosted => Ipv4Addr::new(
                rng.gen_range(40..=220),
                rng.gen_range(0..=255),
                rng.gen_range(0..=255),
                rng.gen_range(1..=254),
            ),
        }
    }

    /// The certificate the server presents when `https` is deployed, where
    /// `today` is the evaluation day. Reproduces the Table VI failure mix:
    /// parked/shared domains serve the provider's certificate (invalid CN);
    /// self-hosted servers are split between correct, self-signed and
    /// expired installs.
    pub fn issue_certificate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        domain: &str,
        today: i64,
    ) -> Certificate {
        match self {
            HostingProfile::Parked { provider } => {
                Certificate::ca_issued(provider, vec![], "DigiCert CA", today - 200, today + 165)
            }
            HostingProfile::SharedHosting { provider } => Certificate::ca_issued(
                &format!("*.{provider}"),
                vec![provider.to_string()],
                "Sectigo RSA DV",
                today - 100,
                today + 265,
            ),
            HostingProfile::Cdn => Certificate::ca_issued(
                "a248.e.akamai.net",
                vec![],
                "DigiCert CA",
                today - 50,
                today + 315,
            ),
            HostingProfile::SelfHosted => match rng.gen_range(0..100) {
                // Correct install.
                0..=24 => Certificate::ca_issued(
                    domain,
                    vec![format!("www.{domain}")],
                    "Let's Encrypt R3",
                    today - 30,
                    today + 60,
                ),
                // Self-signed.
                25..=64 => Certificate::self_signed(domain, today - 365, today + 3650),
                // Expired (was correct once).
                _ => Certificate::ca_issued(
                    domain,
                    vec![],
                    "Let's Encrypt R3",
                    today - 500,
                    today - rng.gen_range(10..300),
                ),
            },
        }
    }
}

fn pick<R: Rng + ?Sized>(rng: &mut R, table: &[(&'static str, u32)]) -> &'static str {
    let total: u32 = table.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(name, w) in table {
        if roll < w {
            return name;
        }
        roll -= w;
    }
    table[table.len() - 1].0
}

fn provider_octet(provider: &str) -> u8 {
    provider
        .bytes()
        .fold(7u8, |acc, b| acc.wrapping_mul(31).wrapping_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_certs::{CertProblem, Validator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unresolved_domains_have_no_hosting() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            HostingProfile::sample(&mut rng, ContentCategory::NotResolved),
            None
        );
    }

    #[test]
    fn parked_content_parks() {
        let mut rng = StdRng::seed_from_u64(2);
        match HostingProfile::sample(&mut rng, ContentCategory::Parked).unwrap() {
            HostingProfile::Parked { .. } => {}
            other => panic!("expected parked, got {other:?}"),
        }
    }

    #[test]
    fn parking_ips_concentrate() {
        let mut rng = StdRng::seed_from_u64(3);
        let profile = HostingProfile::Parked {
            provider: "sedoparking.com",
        };
        let segments: std::collections::HashSet<[u8; 3]> = (0..200)
            .map(|_| {
                let ip = profile.assign_ip(&mut rng).octets();
                [ip[0], ip[1], ip[2]]
            })
            .collect();
        assert!(
            (1..=4).contains(&segments.len()),
            "parking spans a handful of /24s, got {}",
            segments.len()
        );
    }

    #[test]
    fn self_hosted_ips_scatter() {
        let mut rng = StdRng::seed_from_u64(4);
        let segments: std::collections::HashSet<[u8; 3]> = (0..200)
            .map(|_| {
                let ip = HostingProfile::SelfHosted.assign_ip(&mut rng).octets();
                [ip[0], ip[1], ip[2]]
            })
            .collect();
        assert!(segments.len() > 150, "self-hosted spans many /24s");
    }

    #[test]
    fn parked_certificates_mismatch_cn() {
        let mut rng = StdRng::seed_from_u64(5);
        let profile = HostingProfile::Parked {
            provider: "sedoparking.com",
        };
        let cert = profile.issue_certificate(&mut rng, "xn--0wwy37b.com", 17_400);
        let validator = Validator::with_default_roots(17_400);
        assert_eq!(
            validator.classify(&cert, "xn--0wwy37b.com"),
            Some(CertProblem::InvalidCommonName)
        );
    }

    #[test]
    fn self_hosted_cert_mix_covers_all_buckets() {
        let mut rng = StdRng::seed_from_u64(6);
        let validator = Validator::with_default_roots(17_400);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let cert = HostingProfile::SelfHosted.issue_certificate(&mut rng, "shop.com", 17_400);
            seen.insert(validator.classify(&cert, "shop.com"));
        }
        assert!(seen.contains(&None));
        assert!(seen.contains(&Some(CertProblem::InvalidAuthority)));
        assert!(seen.contains(&Some(CertProblem::Expired)));
    }
}
