//! Deterministic synthetic IDN-ecosystem generator.
//!
//! The paper's raw inputs — production TLD zone snapshots, WHOIS crawls,
//! passive-DNS feeds, commercial blacklists, live certificate scans — are
//! proprietary. This crate replaces them with a *seeded generative model*
//! whose marginal distributions are anchored to the statistics the paper
//! reports (Tables I–VII, Figures 1–4), so every downstream analysis
//! exercises the same code paths it would on the real feeds:
//!
//! * per-TLD registration volumes and IDN rates (Table I),
//! * language mix (Table II), registrar market (Table IV), opportunistic
//!   registrant clusters (Table III),
//! * creation-date timeline with the 2000/2004 spikes and the 2015/2017
//!   malicious spikes (Figure 1),
//! * hosting concentration (Figure 4), content categories (Table V),
//! * certificate issuance with parking/hosting sharing (Tables VI/VII),
//! * blacklist feeds with the per-source skew of Table I, and
//! * injected homograph & Type-1 semantic attack populations targeting the
//!   embedded brand list (Tables VIII/IX, XIII/XIV).
//!
//! Everything is derived from a single `u64` seed: two runs with the same
//! [`EcosystemConfig`] produce identical ecosystems.
//!
//! # Examples
//!
//! ```
//! use idnre_datagen::{EcosystemConfig, Ecosystem};
//!
//! let config = EcosystemConfig { scale: 2000, ..EcosystemConfig::default() };
//! let eco = Ecosystem::generate(&config);
//! assert!(eco.idn_registrations.len() > 300);
//! // Deterministic: same seed, same ecosystem.
//! let again = Ecosystem::generate(&config);
//! assert_eq!(eco.idn_registrations.len(), again.idn_registrations.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod brands;
mod config;
mod content;
pub mod dataset;
mod ecosystem;
pub mod epoch;
mod hosting;
mod labels;
mod registration;
pub mod stream;

pub use brands::{Brand, BrandList};
pub use config::{EcosystemConfig, TldSpec, TABLE_I};
pub use content::ContentCategory;
pub use dataset::{dataset_fingerprint, render_dataset, DATASET_SCHEMA};
pub use ecosystem::Ecosystem;
pub use epoch::{DaySimulator, EpochCorpus, EpochDelta, EpochDeltaKind};
pub use hosting::HostingProfile;
pub use registration::{DomainRegistration, MaliciousKind};
pub use stream::{generate_streamed, generate_streamed_traced, KeyedCorpus, PEAK_RESIDENT_RECORDS};
