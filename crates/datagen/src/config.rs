//! Generator configuration: the paper's measured anchors, scaled.

use idnre_whois::Date;

/// Declared shape of one TLD population, anchored to Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TldSpec {
    /// TLD label in ACE form (`com`, `net`, `org`, or an `xn--` iTLD).
    pub tld: &'static str,
    /// Total SLDs in the real zone (Table I's "# SLD").
    pub declared_slds: u64,
    /// IDN SLDs in the real zone (Table I's "# IDN").
    pub declared_idns: u64,
    /// Domains with obtainable WHOIS (Table I's "Domain WHOIS").
    pub declared_whois: u64,
    /// Blacklisted counts per source: (VirusTotal, Qihoo 360, Baidu).
    pub declared_blacklisted: (u64, u64, u64),
}

/// The Table I anchor rows. The 53 iTLDs are modelled as one aggregate zone
/// plus three representative concrete iTLDs used for browser/registry tests.
pub const TABLE_I: [TldSpec; 4] = [
    TldSpec {
        tld: "com",
        declared_slds: 129_216_926,
        declared_idns: 1_007_148,
        declared_whois: 590_542,
        declared_blacklisted: (3_571, 1_807, 26),
    },
    TldSpec {
        tld: "net",
        declared_slds: 14_785_199,
        declared_idns: 231_896,
        declared_whois: 131_573,
        declared_blacklisted: (661, 91, 1),
    },
    TldSpec {
        tld: "org",
        declared_slds: 10_390_116,
        declared_idns: 25_629,
        declared_whois: 19_271,
        declared_blacklisted: (56, 2, 1),
    },
    TldSpec {
        tld: "xn--fiqs8s", // the iTLD aggregate, keyed by 中国
        declared_slds: 208_163,
        declared_idns: 208_163,
        declared_whois: 2_226,
        declared_blacklisted: (90, 63, 2),
    },
];

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EcosystemConfig {
    /// RNG seed; every derived stream is a function of it.
    pub seed: u64,
    /// Scale denominator: generated counts ≈ declared counts / `scale`.
    /// 100 reproduces every distribution with ~14.7K IDNs; 1 would emit the
    /// full 1.47M-domain corpus.
    pub scale: u64,
    /// Attack populations (homograph / semantic) are small, so they get
    /// their own denominator; 1 generates them at full size.
    pub attack_scale: u64,
    /// The zone-snapshot date (Table I: 2017-09-21 for com/net).
    pub snapshot: Date,
    /// How many non-IDNs to sample per TLD for the comparison populations
    /// (the paper sampled 1M/100K/100K; this is the total across TLDs,
    /// subject to `scale`).
    pub non_idn_sample: u64,
    /// Number of brands in the target list (Alexa Top 1K).
    pub brand_count: usize,
    /// Worker threads for the pipeline's parallel stages (zone emission,
    /// detector scans, surveys). Affects wall time only — every stage is
    /// byte-identical across thread counts. Defaults to the machine's
    /// available parallelism.
    pub threads: usize,
}

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            seed: 0x1DAE_2018,
            scale: 100,
            attack_scale: 1,
            snapshot: Date::new(2017, 9, 21).expect("valid snapshot date"),
            non_idn_sample: 1_200_000,
            brand_count: 1000,
            threads: idnre_par::default_threads(),
        }
    }
}

impl EcosystemConfig {
    /// Scaled IDN count for a TLD spec.
    pub fn scaled_idns(&self, spec: &TldSpec) -> u64 {
        (spec.declared_idns / self.scale).max(1)
    }

    /// Scaled non-IDN sample size for a TLD spec (proportional to the
    /// paper's 1M/100K/100K sampling, zero for iTLDs).
    pub fn scaled_non_idn_sample(&self, spec: &TldSpec) -> u64 {
        let share = match spec.tld {
            "com" => 1_000_000,
            "net" | "org" => 100_000,
            _ => 0,
        };
        share * self.non_idn_sample / 1_200_000 / self.scale
    }

    /// Scaled WHOIS coverage count for a TLD spec.
    pub fn scaled_whois(&self, spec: &TldSpec) -> u64 {
        spec.declared_whois / self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_totals() {
        let slds: u64 = TABLE_I.iter().map(|t| t.declared_slds).sum();
        let idns: u64 = TABLE_I.iter().map(|t| t.declared_idns).sum();
        let whois: u64 = TABLE_I.iter().map(|t| t.declared_whois).sum();
        assert_eq!(slds, 154_600_404);
        assert_eq!(idns, 1_472_836);
        assert_eq!(whois, 743_612); // paper prints 739,160 for the union;
                                    // per-row values sum slightly higher
                                    // (row overlap), close enough to anchor.
    }

    #[test]
    fn scaling() {
        let config = EcosystemConfig::default();
        let com = &TABLE_I[0];
        assert_eq!(config.scaled_idns(com), 10_071);
        assert_eq!(config.scaled_non_idn_sample(com), 10_000);
        assert_eq!(config.scaled_whois(com), 5_905);
        let itld = &TABLE_I[3];
        assert_eq!(config.scaled_non_idn_sample(itld), 0);
    }

    #[test]
    fn scale_never_yields_zero_idns() {
        let config = EcosystemConfig {
            scale: 10_000_000,
            ..EcosystemConfig::default()
        };
        for spec in &TABLE_I {
            assert!(config.scaled_idns(spec) >= 1);
        }
    }
}
