//! Day-simulator epochs: a delta overlay over the streamed corpus plan.
//!
//! The paper measures one frozen snapshot, but real registries publish
//! daily deltas — registrations appear, expire, get re-registered, move
//! registrar, and land on blacklists days after creation. This module
//! expresses those dynamics without giving up the streaming corpus's
//! regenerate-any-shard-on-demand property:
//!
//! - [`EpochCorpus`] is a **delta overlay** over a borrowed
//!   [`KeyedCorpus`]: a removal set, a patch map, and an append tail.
//!   Record indices are **stable forever** — removal leaves a hole, new
//!   registrations take fresh tail indices, and a shard materializes as
//!   "regenerate the base span, skip holes, apply patches, splice the
//!   tail" — so index-addressed analysis state (column rows, head-sample
//!   cutoffs, resident shard partials) stays valid across epochs.
//! - [`DaySimulator`] draws each epoch's churn from the appended
//!   day-simulator [`StageId`]s (`EpochChurn`…`EpochBlacklistLag`) keyed
//!   by `(seed, stage, epoch, k)`, so a delta history is a pure function
//!   of the master seed and is byte-identical across threads, runs, and
//!   machines. The frozen stages 1–11 are never drawn from here, so the
//!   v2 dataset fingerprint of the underlying snapshot is untouched.
//!
//! Deltas are deliberately **cohort-clustered** (contiguous expiry
//! cohorts, clustered registrar migrations, tail-biased blacklisting) the
//! way real zone diffs are: a day's churn touches few shards, which is
//! what makes re-fold-only-dirty incremental maintenance win.

use crate::config::TABLE_I;
use crate::ecosystem::{draw_idn_domain, finish_idn};
use crate::labels;
use crate::registration::{sample_registrant, DomainRegistration, MaliciousKind};
use crate::stream::KeyedCorpus;
use idnre_rng::{Key, StageId};
use idnre_whois::Date;
use rand::Rng;
use std::collections::{BTreeSet, HashMap};

/// What one [`EpochDelta`] did to the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochDeltaKind {
    /// A new registration appended at a fresh tail index.
    Add,
    /// An existing registration expired out of the zone.
    Remove,
    /// A previously expired index re-registered (drop-catching): the
    /// record revives with a new creation date and registrant.
    Reregister,
    /// A nameserver/registrar migration; the record stays in the zone.
    NsChange,
    /// A blacklist listing that lagged the registration by ≥1 epoch.
    Blacklist,
}

/// One record-level zone-diff event applied during an epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochDelta {
    /// Stable IDN-population index of the affected record.
    pub index: u64,
    /// What happened to it.
    pub kind: EpochDeltaKind,
}

/// Field-level mutations applied on top of a regenerated base record.
#[derive(Debug, Clone, Default)]
struct Patch {
    registrar: Option<String>,
    recreated: Option<Date>,
    registrant: Option<Option<String>>,
    malicious: Option<MaliciousKind>,
}

impl Patch {
    fn apply(&self, reg: &mut DomainRegistration) {
        if let Some(registrar) = &self.registrar {
            reg.registrar.clone_from(registrar);
        }
        if let Some(recreated) = self.recreated {
            reg.created = recreated;
        }
        if let Some(registrant) = &self.registrant {
            reg.registrant_email.clone_from(registrant);
            reg.privacy = registrant.is_none();
        }
        if let Some(kind) = self.malicious {
            reg.malicious = Some(kind);
        }
    }
}

/// A mutable delta overlay over a borrowed [`KeyedCorpus`].
///
/// Indices are stable: the IDN **index space** only ever grows (base plan
/// plus append tail), removals leave holes, and
/// [`EpochCorpus::with_idn_shard_indexed`] yields each surviving record
/// with its original global index. The non-IDN population is passed
/// through unchanged — the day simulator models IDN zone churn.
#[derive(Debug)]
pub struct EpochCorpus<'a> {
    base: &'a KeyedCorpus,
    removed: BTreeSet<u64>,
    patches: HashMap<u64, Patch>,
    appended: Vec<DomainRegistration>,
}

impl<'a> EpochCorpus<'a> {
    /// An overlay with no deltas: byte-identical to `base`.
    pub fn new(base: &'a KeyedCorpus) -> Self {
        EpochCorpus {
            base,
            removed: BTreeSet::new(),
            patches: HashMap::new(),
            appended: Vec::new(),
        }
    }

    /// Records in the base plan (tail indices start here).
    pub fn base_idn_len(&self) -> u64 {
        self.base.idn_len()
    }

    /// Size of the IDN index space: base plan plus append tail,
    /// **including** removal holes. Shard grids are laid over this.
    pub fn idn_index_space(&self) -> u64 {
        self.base.idn_len() + self.appended.len() as u64
    }

    /// Surviving (non-removed) IDN records.
    pub fn live_idn_len(&self) -> u64 {
        self.idn_index_space() - self.removed.len() as u64
    }

    /// Non-IDN records (passed through from the base plan).
    pub fn non_idn_len(&self) -> u64 {
        self.base.non_idn_len()
    }

    /// The appended tail registrations, in index order (tail slot `k` is
    /// global index `base_idn_len() + k`). Callers growing index-aligned
    /// side tables (corpus columns) read new rows from here.
    pub fn appended(&self) -> &[DomainRegistration] {
        &self.appended
    }

    /// Whether `index` is currently a removal hole.
    pub fn is_removed(&self, index: u64) -> bool {
        self.removed.contains(&index)
    }

    /// Appends `reg` at the next tail index and returns that index.
    pub fn push_add(&mut self, reg: DomainRegistration) -> u64 {
        let index = self.idn_index_space();
        self.appended.push(reg);
        index
    }

    /// Expires `index` out of the zone. Returns `false` (and does
    /// nothing) when the index is outside the index space or already
    /// removed — adversarial streams may name records that never existed.
    pub fn remove(&mut self, index: u64) -> bool {
        if index >= self.idn_index_space() {
            return false;
        }
        self.removed.insert(index)
    }

    /// Migrates `index` to `registrar`. Returns `false` for holes and
    /// out-of-space indices.
    pub fn set_registrar(&mut self, index: u64, registrar: &str) -> bool {
        if index >= self.idn_index_space() || self.removed.contains(&index) {
            return false;
        }
        self.patches.entry(index).or_default().registrar = Some(registrar.to_string());
        true
    }

    /// Blacklists `index` as `kind`. Returns `false` for holes and
    /// out-of-space indices (a lagged listing may arrive after expiry).
    pub fn set_malicious_kind(&mut self, index: u64, kind: MaliciousKind) -> bool {
        if index >= self.idn_index_space() || self.removed.contains(&index) {
            return false;
        }
        self.patches.entry(index).or_default().malicious = Some(kind);
        true
    }

    /// Revives removed `index` with a fresh creation date and registrant
    /// (drop-catching). Returns `false` unless `index` is currently a
    /// hole. Any earlier blacklist patch is cleared — the re-registered
    /// name starts benign (its listing lag is the simulator's to model).
    pub fn reregister(&mut self, index: u64, recreated: Date, email: Option<String>) -> bool {
        if !self.removed.remove(&index) {
            return false;
        }
        let patch = self.patches.entry(index).or_default();
        patch.recreated = Some(recreated);
        patch.registrant = Some(email);
        patch.malicious = None;
        true
    }

    /// Materializes IDN index range `[start, start + len)`: regenerates
    /// the base span on demand, skips removal holes, applies patches,
    /// splices the append tail — then calls `f` once with the surviving
    /// records and their stable global indices (parallel slices).
    /// Residency is tracked on the base corpus's gauge.
    pub fn with_idn_shard_indexed(
        &self,
        start: u64,
        len: usize,
        f: &mut dyn FnMut(&[DomainRegistration], &[u64]),
    ) {
        self.base.gauge().add(len as u64);
        let base_len = self.base.idn_len();
        let end = start.saturating_add(len as u64).min(self.idn_index_space());
        let mut records = Vec::with_capacity(len);
        let mut indices = Vec::with_capacity(len);
        for i in start..end {
            if self.removed.contains(&i) {
                continue;
            }
            let mut reg = if i < base_len {
                self.base.regen_idn(i)
            } else {
                self.appended[(i - base_len) as usize].clone()
            };
            if let Some(patch) = self.patches.get(&i) {
                patch.apply(&mut reg);
            }
            records.push(reg);
            indices.push(i);
        }
        f(&records, &indices);
        drop(records);
        self.base.gauge().sub(len as u64);
    }

    /// Non-IDN passthrough to [`KeyedCorpus::with_non_idn_shard`].
    pub fn with_non_idn_shard(
        &self,
        start: u64,
        len: usize,
        f: &mut dyn FnMut(&[DomainRegistration]),
    ) {
        self.base.with_non_idn_shard(start, len, f);
    }
}

/// Registrars that day-simulated migrations move cohorts onto.
const MIGRATION_REGISTRARS: [&str; 4] = [
    "Gname.com Pte. Ltd.",
    "NameSilo, LLC.",
    "Sav.com, LLC.",
    "Dominet (HK) Limited.",
];

/// How many epochs a scheduled blacklist listing may lag its draw.
const MAX_BLACKLIST_LAG: u64 = 2;

/// The keyed zone-diff generator: one call per epoch, deltas applied to
/// an [`EpochCorpus`] and returned for dirty-shard mapping.
///
/// Determinism: every draw comes from
/// `Key::root(seed).stage(epoch_stage).derive(epoch).record(k)`, and all
/// internal iteration is over ordered structures, so the same
/// `(seed, churn, epoch)` always yields the same delta list.
#[derive(Debug)]
pub struct DaySimulator {
    churn_per_mille: u64,
    /// Scheduled lagged listings: `(due_epoch, index)`, in draw order.
    pending_blacklist: Vec<(u64, u64)>,
}

impl DaySimulator {
    /// A simulator applying roughly `churn_per_mille` ‰ of the base
    /// corpus per epoch (clamped to at least one event per category).
    pub fn new(churn_per_mille: u64) -> Self {
        DaySimulator {
            churn_per_mille,
            pending_blacklist: Vec::new(),
        }
    }

    /// Lagged listings drawn but not yet applied (due in later epochs).
    pub fn pending_blacklist_len(&self) -> usize {
        self.pending_blacklist.len()
    }

    /// Advances one epoch: applies lagged blacklist listings now due,
    /// then draws this epoch's churn (adds, an expiry cohort,
    /// re-registrations, a registrar migration, and newly scheduled
    /// lagged listings) into `corpus`. Returns the record-level deltas
    /// **applied this epoch** — scheduled-but-not-yet-due listings are
    /// not in the list; they appear in the epoch that applies them.
    pub fn advance(&mut self, corpus: &mut EpochCorpus<'_>, epoch: u64) -> Vec<EpochDelta> {
        let config = corpus.base.config();
        let root = Key::root(config.seed);
        let base_len = corpus.base_idn_len();
        let budget = (base_len * self.churn_per_mille / 1000).max(1);
        let mut deltas = Vec::new();

        // Lagged listings due this epoch fire first: they were drawn in an
        // earlier epoch against the corpus as it then stood.
        let mut still_pending = Vec::new();
        for (due, index) in self.pending_blacklist.drain(..) {
            if due > epoch {
                still_pending.push((due, index));
            } else if corpus.set_malicious_kind(index, MaliciousKind::Other) {
                deltas.push(EpochDelta {
                    index,
                    kind: EpochDeltaKind::Blacklist,
                });
            }
        }
        self.pending_blacklist = still_pending;

        // New registrations append at the tail: ~40% of the budget.
        let churn_key = root.stage(StageId::EpochChurn).derive(epoch);
        for k in 0..(budget * 2 / 5).max(1) {
            let record_key = churn_key.record(k);
            let mut drawn = None;
            for attempt in 0..8u64 {
                let mut rng = record_key.derive(attempt).rng();
                let language = labels::sample_language(&mut rng);
                let label = labels::generate_label(&mut rng, language);
                let tld = TABLE_I[rng.gen_range(0..TABLE_I.len())].tld;
                if let Some((domain, unicode)) = draw_idn_domain(&mut rng, &label, tld) {
                    let (email, _) = sample_registrant(&mut rng, k);
                    let mut reg =
                        finish_idn(&mut rng, config, domain, unicode, language, tld, email);
                    // Day-simulated names register "today": the epoch's
                    // zone date, not the historical snapshot spread.
                    reg.created = config.snapshot;
                    reg.malicious = None;
                    drawn = Some(reg);
                    break;
                }
            }
            if let Some(reg) = drawn {
                let index = corpus.push_add(reg);
                deltas.push(EpochDelta {
                    index,
                    kind: EpochDeltaKind::Add,
                });
            }
        }

        // Re-registrations revive holes left by *earlier* epochs (~10%),
        // drawn before this epoch's expiry cohort opens new ones.
        let revivable: Vec<u64> = corpus.removed.iter().copied().collect();
        let rereg_key = root.stage(StageId::EpochReRegistration).derive(epoch);
        for (k, &index) in revivable.iter().take((budget / 10).max(1) as usize).enumerate() {
            let mut rng = rereg_key.record(k as u64).rng();
            let (email, _) = sample_registrant(&mut rng, index);
            if corpus.reregister(index, config.snapshot, email) {
                deltas.push(EpochDelta {
                    index,
                    kind: EpochDeltaKind::Reregister,
                });
            }
        }

        // An expiry cohort: ~30% of the budget, contiguous — real zone
        // drops cluster by registration batch, so churn stays shard-local.
        let mut expiry_rng = root.stage(StageId::EpochExpiry).derive(epoch).record(0).rng();
        let cohort = (budget * 3 / 10).max(1);
        let span = corpus.idn_index_space();
        let start = expiry_rng.gen_range(0..span.saturating_sub(cohort).max(1));
        for index in start..(start + cohort).min(span) {
            if corpus.remove(index) {
                deltas.push(EpochDelta {
                    index,
                    kind: EpochDeltaKind::Remove,
                });
            }
        }

        // A registrar migration cohort (~10%), also contiguous.
        let mut ns_rng = root.stage(StageId::EpochNsChange).derive(epoch).record(0).rng();
        let cohort = (budget / 10).max(1);
        let start = ns_rng.gen_range(0..span.saturating_sub(cohort).max(1));
        let registrar = MIGRATION_REGISTRARS[ns_rng.gen_range(0..MIGRATION_REGISTRARS.len())];
        for index in start..(start + cohort).min(span) {
            if corpus.set_registrar(index, registrar) {
                deltas.push(EpochDelta {
                    index,
                    kind: EpochDeltaKind::NsChange,
                });
            }
        }

        // Schedule lagged listings (~10%) against the *recent* tail —
        // abuse studies find newly registered names dominate listings,
        // and the listing itself lags registration by one or two epochs.
        // Listings cluster around one anchor per epoch (campaign domains
        // registered together get listed together), so a day's listings
        // stay shard-local like the other delta cohorts.
        let lag_key = root.stage(StageId::EpochBlacklistLag).derive(epoch);
        let window = span.min(4096).max(1);
        let anchor = span - 1 - lag_key.record(0).rng().gen_range(0..window);
        for k in 0..(budget / 10).max(1) {
            let mut rng = lag_key.record(k + 1).rng();
            let index = anchor.saturating_sub(rng.gen_range(0..64));
            let due = epoch + 1 + rng.gen_range(0..MAX_BLACKLIST_LAG);
            self.pending_blacklist.push((due, index));
        }

        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EcosystemConfig;
    use crate::stream::generate_streamed;
    use idnre_telemetry::NoopRecorder;

    fn small_corpus() -> KeyedCorpus {
        let config = EcosystemConfig {
            scale: 200,
            ..EcosystemConfig::default()
        };
        generate_streamed(&config, 64, &NoopRecorder).1
    }

    #[test]
    fn overlay_without_deltas_matches_base() {
        let base = small_corpus();
        let overlay = EpochCorpus::new(&base);
        assert_eq!(overlay.idn_index_space(), base.idn_len());
        assert_eq!(overlay.live_idn_len(), base.idn_len());
        base.with_idn_shard(3, 5, &mut |expected| {
            overlay.with_idn_shard_indexed(3, 5, &mut |records, indices| {
                assert_eq!(records, expected);
                assert_eq!(indices, [3, 4, 5, 6, 7]);
            });
        });
    }

    #[test]
    fn removal_leaves_a_hole_with_stable_indices() {
        let base = small_corpus();
        let mut overlay = EpochCorpus::new(&base);
        assert!(overlay.remove(4));
        assert!(!overlay.remove(4), "double-remove must be a no-op");
        assert!(!overlay.remove(u64::MAX), "remove-nonexistent must be safe");
        overlay.with_idn_shard_indexed(3, 4, &mut |records, indices| {
            assert_eq!(indices, [3, 5, 6], "index 4 is a hole, others keep place");
            assert_eq!(records.len(), 3);
        });
        assert_eq!(overlay.live_idn_len(), base.idn_len() - 1);
    }

    #[test]
    fn appended_records_take_stable_tail_indices() {
        let base = small_corpus();
        let mut overlay = EpochCorpus::new(&base);
        let mut reg = base.regen_idn(0);
        reg.domain = "xn--tail.com".to_string();
        let index = overlay.push_add(reg.clone());
        assert_eq!(index, base.idn_len());
        overlay.with_idn_shard_indexed(index, 3, &mut |records, indices| {
            assert_eq!(indices, [index]);
            assert_eq!(records[0].domain, "xn--tail.com");
        });
    }

    #[test]
    fn patches_apply_on_regeneration() {
        let base = small_corpus();
        let mut overlay = EpochCorpus::new(&base);
        assert!(overlay.set_registrar(2, "Example Registrar"));
        assert!(overlay.set_malicious_kind(2, MaliciousKind::Other));
        overlay.with_idn_shard_indexed(2, 1, &mut |records, _| {
            assert_eq!(records[0].registrar, "Example Registrar");
            assert_eq!(records[0].malicious, Some(MaliciousKind::Other));
        });
        // A hole accepts no patches.
        assert!(overlay.remove(2));
        assert!(!overlay.set_registrar(2, "X"));
        assert!(!overlay.set_malicious_kind(2, MaliciousKind::Other));
    }

    #[test]
    fn simulator_is_a_pure_function_of_seed_and_epoch() {
        let base = small_corpus();
        let run = || {
            let mut overlay = EpochCorpus::new(&base);
            let mut sim = DaySimulator::new(20);
            (0..4u64)
                .map(|epoch| sim.advance(&mut overlay, epoch))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn blacklist_listings_lag_their_draw_epoch() {
        let base = small_corpus();
        let mut overlay = EpochCorpus::new(&base);
        let mut sim = DaySimulator::new(20);
        let first = sim.advance(&mut overlay, 0);
        assert!(
            first.iter().all(|d| d.kind != EpochDeltaKind::Blacklist),
            "epoch 0 can only schedule listings, never apply them"
        );
        assert!(sim.pending_blacklist_len() > 0, "listings were scheduled");
        let applied: Vec<EpochDelta> = (1..=1 + MAX_BLACKLIST_LAG)
            .flat_map(|epoch| sim.advance(&mut overlay, epoch))
            .filter(|d| d.kind == EpochDeltaKind::Blacklist)
            .collect();
        assert!(
            !applied.is_empty(),
            "every scheduled listing fires within MAX_BLACKLIST_LAG epochs \
             unless its target expired first"
        );
    }

    #[test]
    fn reregistration_revives_holes_benign() {
        let base = small_corpus();
        let mut overlay = EpochCorpus::new(&base);
        assert!(overlay.set_malicious_kind(7, MaliciousKind::Other));
        assert!(overlay.remove(7));
        let recreated = overlay.base.config().snapshot;
        assert!(overlay.reregister(7, recreated, Some("new@owner.example".into())));
        assert!(!overlay.reregister(7, recreated, None), "not a hole anymore");
        overlay.with_idn_shard_indexed(7, 1, &mut |records, indices| {
            assert_eq!(indices, [7]);
            assert_eq!(records[0].created, recreated);
            assert_eq!(records[0].registrant_email.as_deref(), Some("new@owner.example"));
            assert_eq!(records[0].malicious, None, "revival clears the listing");
        });
    }
}
