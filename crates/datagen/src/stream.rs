//! Streaming generation: plan once, regenerate any shard on demand.
//!
//! [`generate_streamed`] runs the same nine-stage pipeline as
//! [`Ecosystem::generate_recorded`] but never materializes the registration
//! corpus. The stages with cross-record state (dedup, blacklist, attack
//! injection) already split into parallel-plan/sequential-apply phases for
//! schedule independence; here the plan phase is kept — compacted into a
//! [`Recipe`] table of a few bytes per record — and the apply phase is
//! deferred to shard regeneration time. Because every record's randomness
//! is a pure function of `(seed, stage, record index)` (PR 4's keyed RNG),
//! shard `k` regenerates byte-identically to the batch vectors whenever it
//! is asked for, in any order, from any thread.
//!
//! Peak registration residency is `shard_size × workers`, tracked by a
//! shared [`Gauge`] and reported as the `datagen.peak_resident_records`
//! gauge (level + peak) in the metrics snapshot.

use crate::attacks::{self, AttackDomain};
use crate::brands::BrandList;
use crate::config::{EcosystemConfig, TABLE_I};
use crate::ecosystem::{
    build_non_idn, draw_idn_domain, finish_idn, ns_record_for, prepare_attack_registration,
    sample_traffic, whois_record_for, Ecosystem, ATTACK_CHANNELS, ORDINARY_ATTEMPTS,
};
use crate::labels;
use crate::registration::{
    sample_registrant, themed_label, DomainRegistration, MaliciousKind, BULK_REGISTRANTS,
};
use idnre_arena::{Interner, Symbol};
use idnre_blacklist::{BlacklistSet, Source};
use idnre_certs::Certificate;
use idnre_langid::Language;
use idnre_pdns::{DomainAggregate, PdnsStore, PopulationClass};
use idnre_rng::{Key, StageId};
use idnre_telemetry::{Gauge, Recorder, SpanCtx};
use idnre_whois::{Date, WhoisRecord};
use idnre_zonefile::{ResourceRecord, Zone};
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// Gauge name of the peak-residency level.
pub const PEAK_RESIDENT_RECORDS: &str = "datagen.peak_resident_records";

/// How one IDN record regenerates: which keyed stream to replay and (for
/// ordinary registrations) which retry-ladder rung won the dedup race.
/// Twelve bytes per record instead of a full [`DomainRegistration`].
#[derive(Debug, Clone, Copy)]
enum Recipe {
    /// Bulk job `index` of `registrant`'s portfolio.
    Bulk { registrant: u32, index: u32 },
    /// Ordinary record `index` of TLD spec `spec`, surviving at `attempt`.
    Ordinary { spec: u8, index: u32, attempt: u8 },
    /// Attack `index` of channel `kind` (0 homograph, 1 type-1, 2 type-2).
    Attack { kind: u8, index: u32 },
}

/// The compact streaming plan: enough to regenerate any corpus shard
/// byte-identically to the batch vectors, without holding any records.
#[derive(Debug)]
pub struct KeyedCorpus {
    config: EcosystemConfig,
    /// Attack ground-truth lists, indexed by [`Recipe::Attack`] recipes.
    attacks: [Vec<AttackDomain>; 3],
    idn_recipes: Vec<Recipe>,
    /// Stage-3 blacklist mutations: IDN corpus index → (kind, created).
    overrides: HashMap<u64, (MaliciousKind, Date)>,
    /// Per-spec non-IDN population spans: `(global start, count)`.
    non_idn_spans: Vec<(u64, u64)>,
    gauge: Arc<Gauge>,
}

impl KeyedCorpus {
    /// Records in the IDN population.
    pub fn idn_len(&self) -> u64 {
        self.idn_recipes.len() as u64
    }

    /// Records in the non-IDN population.
    pub fn non_idn_len(&self) -> u64 {
        self.non_idn_spans
            .last()
            .map_or(0, |&(start, count)| start + count)
    }

    /// The residency gauge shared by every shard this corpus
    /// materializes: how many registration records are resident across
    /// all worker threads right now, with a high-water mark.
    pub fn gauge(&self) -> &Gauge {
        &self.gauge
    }

    /// Materializes IDN records `[start, start + len)` and calls `f` once
    /// with the slice. Residency is gauge-tracked for the call's duration.
    pub fn with_idn_shard(&self, start: u64, len: usize, f: &mut dyn FnMut(&[DomainRegistration])) {
        self.gauge.add(len as u64);
        let records: Vec<DomainRegistration> = (start..start + len as u64)
            .map(|i| self.regen_idn(i))
            .collect();
        f(&records);
        drop(records);
        self.gauge.sub(len as u64);
    }

    /// Non-IDN counterpart of [`KeyedCorpus::with_idn_shard`].
    pub fn with_non_idn_shard(
        &self,
        start: u64,
        len: usize,
        f: &mut dyn FnMut(&[DomainRegistration]),
    ) {
        self.gauge.add(len as u64);
        let records: Vec<DomainRegistration> = (start..start + len as u64)
            .map(|i| self.regen_non_idn(i))
            .collect();
        f(&records);
        drop(records);
        self.gauge.sub(len as u64);
    }

    /// The configuration this plan was generated under (the epoch overlay
    /// derives day-simulator keys from its seed and snapshot date).
    pub(crate) fn config(&self) -> &EcosystemConfig {
        &self.config
    }

    /// Regenerates IDN record `index` from its keyed stream.
    pub(crate) fn regen_idn(&self, index: u64) -> DomainRegistration {
        let root = Key::root(self.config.seed);
        let mut reg = match self.idn_recipes[index as usize] {
            Recipe::Bulk {
                registrant,
                index: i,
            } => {
                let (email, _, theme) = BULK_REGISTRANTS[registrant as usize];
                let mut rng = root
                    .stage(StageId::BulkRegistrations)
                    .derive(u64::from(registrant))
                    .record(u64::from(i))
                    .rng();
                let label = themed_label(&mut rng, theme);
                let label = format!("{label}{i}");
                let (domain, unicode) =
                    draw_idn_domain(&mut rng, &label, "com").expect("planned bulk record");
                finish_idn(
                    &mut rng,
                    &self.config,
                    domain,
                    unicode,
                    Language::Chinese,
                    "com",
                    Some(email.to_string()),
                )
            }
            Recipe::Ordinary {
                spec,
                index: i,
                attempt,
            } => {
                let tld = TABLE_I[spec as usize].tld;
                let record_key = root
                    .stage(StageId::OrdinaryRegistrations)
                    .derive(u64::from(spec))
                    .record(u64::from(i));
                let mut meta = record_key.rng();
                let language = labels::sample_language(&mut meta);
                let mut label = labels::generate_label(&mut meta, language);
                let (email, _) = sample_registrant(&mut meta, u64::from(i));
                // Replay the suffix growth of every losing rung before the
                // winning one: the label accumulates across the ladder.
                for a in 1..u64::from(attempt) {
                    let mut rung = record_key.derive(a + 1).rng();
                    label.push_str(&rung.gen_range(2..1000u32).to_string());
                }
                let mut rng = record_key.derive(u64::from(attempt) + 1).rng();
                if attempt > 0 {
                    label.push_str(&rng.gen_range(2..1000u32).to_string());
                }
                let (domain, unicode) =
                    draw_idn_domain(&mut rng, &label, tld).expect("planned ordinary record");
                finish_idn(
                    &mut rng,
                    &self.config,
                    domain,
                    unicode,
                    language,
                    tld,
                    email,
                )
            }
            Recipe::Attack { kind, index: i } => {
                let (malicious_kind, per_mille) = ATTACK_CHANNELS[kind as usize];
                let mut rng = root
                    .stage(StageId::AttackInjection)
                    .derive(u64::from(kind))
                    .record(u64::from(i))
                    .rng();
                let (reg, _, _) = prepare_attack_registration(
                    &mut rng,
                    &self.config,
                    &self.attacks[kind as usize][i as usize],
                    malicious_kind,
                    per_mille,
                );
                reg
            }
        };
        if let Some(&(kind, created)) = self.overrides.get(&index) {
            reg.malicious = Some(kind);
            reg.created = created;
        }
        reg
    }

    /// Regenerates non-IDN record `index` from its keyed stream.
    fn regen_non_idn(&self, index: u64) -> DomainRegistration {
        let (spec_idx, start) = self
            .non_idn_spans
            .iter()
            .enumerate()
            .rev()
            .find(|&(_, &(start, _))| start <= index)
            .map(|(s, &(start, _))| (s, start))
            .expect("non-IDN index in range");
        let i = index - start;
        let mut rng = Key::root(self.config.seed)
            .stage(StageId::NonIdnSample)
            .derive(spec_idx as u64)
            .record(i)
            .rng();
        build_non_idn(&mut rng, &self.config, i, TABLE_I[spec_idx].tld)
    }
}

/// Evenly sized `(start, len)` shard spans covering `total` records.
fn shard_spans(total: u64, shard_size: usize) -> Vec<(u64, usize)> {
    let shard_size = shard_size.max(1);
    let mut spans = Vec::new();
    let mut start = 0u64;
    while start < total {
        let len = (total - start).min(shard_size as u64) as usize;
        spans.push((start, len));
        start += len as u64;
    }
    spans
}

/// Streaming twin of [`Ecosystem::generate_recorded`]: produces an
/// [`Ecosystem`] whose registration vectors are **empty** (artifacts —
/// WHOIS, pDNS, certificates, blacklist, zones — are fully populated and
/// byte-identical to the batch path) plus the [`KeyedCorpus`] that
/// regenerates any registration shard on demand.
pub fn generate_streamed(
    config: &EcosystemConfig,
    shard_size: usize,
    recorder: &dyn Recorder,
) -> (Ecosystem, KeyedCorpus) {
    generate_streamed_traced(config, shard_size, recorder, SpanCtx::NONE)
}

/// Like [`generate_streamed`], parenting the plan/artifact stage spans
/// under `parent` in the span tree.
pub fn generate_streamed_traced(
    config: &EcosystemConfig,
    shard_size: usize,
    recorder: &dyn Recorder,
    parent: SpanCtx,
) -> (Ecosystem, KeyedCorpus) {
    let root = Key::root(config.seed);
    let threads = config.threads;
    let brands = BrandList::with_size(config.brand_count);

    // --- Plan phase: stages 1–5's randomness, domain-construction draws
    //     only, compacted into recipes + overrides + the blacklist. ---
    let mut span = recorder.span_at("datagen.stream.plan", parent, 0);

    // Stage 1: bulk registrations (no cross-record dedup in the batch
    // path, so every surviving job becomes a recipe).
    let bulk_key = root.stage(StageId::BulkRegistrations);
    let mut bulk_jobs: Vec<(u32, crate::registration::BulkTheme, u32)> = Vec::new();
    for (registrant, &(_, declared, theme)) in BULK_REGISTRANTS.iter().enumerate() {
        let n = (u64::from(declared) / config.scale).max(1);
        for i in 0..n {
            bulk_jobs.push((registrant as u32, theme, i as u32));
        }
    }
    let bulk_domains = idnre_par::par_map(&bulk_jobs, threads, |&(registrant, theme, i)| {
        let mut rng = bulk_key
            .derive(u64::from(registrant))
            .record(u64::from(i))
            .rng();
        let label = themed_label(&mut rng, theme);
        draw_idn_domain(&mut rng, &format!("{label}{i}"), "com").map(|(domain, _)| domain)
    });
    let mut idn_recipes: Vec<Recipe> = Vec::new();
    // One interner doubles as the dedup set and the domain table; the
    // per-record `symbols` column maps recipe index → arena slot so stage 3
    // can resolve a candidate's domain without a second Vec<String> copy of
    // the corpus. (Bulk keeps duplicate domains as distinct records — the
    // batch path has no bulk dedup — so arena slots are NOT 1:1 with
    // recipes and `Symbol::from_index(recipe_idx)` would misresolve.)
    let mut seen = Interner::with_capacity(bulk_jobs.len() * 2);
    let mut symbols: Vec<Symbol> = Vec::new();
    let mut tlds: Vec<&'static str> = Vec::new();
    for (&(registrant, _, i), domain) in bulk_jobs.iter().zip(bulk_domains) {
        if let Some(domain) = domain {
            idn_recipes.push(Recipe::Bulk {
                registrant,
                index: i,
            });
            symbols.push(seen.intern(&domain));
            tlds.push("com");
        }
    }

    // Stage 2: ordinary registrations — rung-0 domains planned in
    // parallel, later rungs derived lazily only when the sequential dedup
    // probe collides (the common case never re-rolls).
    let ordinary_key = root.stage(StageId::OrdinaryRegistrations);
    for (spec_idx, spec) in TABLE_I.iter().enumerate() {
        let n = config.scaled_idns(spec);
        let spec_key = ordinary_key.derive(spec_idx as u64);
        let indices: Vec<u64> = (0..n).collect();
        let ladders = idnre_par::par_map(&indices, threads, |&i| {
            let record_key = spec_key.record(i);
            let mut meta = record_key.rng();
            let language = labels::sample_language(&mut meta);
            let label = labels::generate_label(&mut meta, language);
            // The registrant draw follows the label on the meta stream, so
            // the domain-only plan can stop here.
            let mut rng = record_key.derive(1).rng();
            let rung0 = draw_idn_domain(&mut rng, &label, spec.tld).map(|(domain, _)| domain);
            (label, rung0)
        });
        for (i, (mut label, rung0)) in ladders.into_iter().enumerate() {
            let mut won = None;
            if let Some(domain) = rung0 {
                let (sym, fresh) = seen.intern_full(&domain);
                if fresh {
                    won = Some((0u8, sym));
                }
            }
            if won.is_none() {
                let record_key = spec_key.record(i as u64);
                for attempt in 1..ORDINARY_ATTEMPTS {
                    let mut rng = record_key.derive(attempt + 1).rng();
                    label.push_str(&rng.gen_range(2..1000u32).to_string());
                    let Some((domain, _)) = draw_idn_domain(&mut rng, &label, spec.tld) else {
                        continue;
                    };
                    let (sym, fresh) = seen.intern_full(&domain);
                    if fresh {
                        won = Some((attempt as u8, sym));
                        break;
                    }
                }
            }
            if let Some((attempt, sym)) = won {
                idn_recipes.push(Recipe::Ordinary {
                    spec: spec_idx as u8,
                    index: i as u32,
                    attempt,
                });
                symbols.push(sym);
                tlds.push(spec.tld);
            }
        }
    }

    // Stage 3: blacklist assignment — identical index arithmetic to the
    // batch `assign_blacklist`, against (domain, tld) metadata instead of
    // records; flag mutations become regeneration-time overrides.
    let mut blacklist = BlacklistSet::new();
    let mut overrides: HashMap<u64, (MaliciousKind, Date)> = HashMap::new();
    {
        let blacklist_key = root.stage(StageId::Blacklist);
        let spec_indices: Vec<u64> = (0..TABLE_I.len() as u64).collect();
        let plans = idnre_par::par_map(&spec_indices, threads, |&spec_idx| {
            let spec = &TABLE_I[spec_idx as usize];
            let mut rng = blacklist_key.record(spec_idx).rng();
            let (vt, qihoo, baidu) = spec.declared_blacklisted;
            let scaled =
                |n: u64| -> usize { (n / config.scale.max(1)).max(u64::from(n > 0)) as usize };
            // Bulk+ordinary records all carry `malicious: None` at this
            // stage, so TLD equality is the whole candidate filter.
            let mut candidates: Vec<usize> = tlds
                .iter()
                .enumerate()
                .filter(|&(_, t)| *t == spec.tld)
                .map(|(i, _)| i)
                .collect();
            let n_vt = scaled(vt);
            let n_q = scaled(qihoo);
            let n_q_unique = n_q / 3;
            let n_b_unique = scaled(baidu).min(1) * u64::from(baidu > 0) as usize;
            let union = n_vt + n_q_unique + n_b_unique;
            let mut flags = Vec::new();
            for _ in 0..union.min(candidates.len()) {
                let idx = candidates.swap_remove(rng.gen_range(0..candidates.len()));
                let kind = if rng.gen_ratio(7, 10) {
                    MaliciousKind::UndergroundBusiness
                } else {
                    MaliciousKind::Other
                };
                let created =
                    crate::registration::sample_malicious_creation_date(&mut rng, config.snapshot);
                flags.push((idx, kind, created));
            }
            let q_overlap = n_q - n_q_unique;
            let mut inserts = Vec::new();
            for (k, &(idx, _, _)) in flags.iter().enumerate() {
                if k < n_vt {
                    inserts.push((Source::VirusTotal, idx));
                    if k >= n_vt.saturating_sub(q_overlap) {
                        inserts.push((Source::Qihoo360, idx));
                    }
                } else if k < n_vt + n_q_unique {
                    inserts.push((Source::Qihoo360, idx));
                } else {
                    inserts.push((Source::Baidu, idx));
                }
            }
            (flags, inserts)
        });
        for (flags, inserts) in plans {
            for (idx, kind, created) in flags {
                overrides.insert(idx as u64, (kind, created));
            }
            for (source, idx) in inserts {
                blacklist.insert(source, seen.resolve(symbols[idx]));
            }
        }
    }

    // Stage 4: attack populations + injection plan. The prepared records
    // are discarded here (recipes replay them on demand); only domains,
    // dedup survival and blacklist feed inserts matter now.
    let homograph_attacks = attacks::generate_homographs(
        root.stage(StageId::HomographAttacks),
        &brands,
        config.attack_scale,
        threads,
    );
    let semantic_attacks = attacks::generate_semantic_type1(
        root.stage(StageId::SemanticType1Attacks),
        &brands,
        config.attack_scale,
        threads,
    );
    let semantic2_attacks = attacks::generate_semantic_type2(
        root.stage(StageId::SemanticType2Attacks),
        config.attack_scale,
    );
    let inject_key = root.stage(StageId::AttackInjection);
    let attack_lists = [&homograph_attacks, &semantic_attacks, &semantic2_attacks];
    for (kind_word, (list, (kind, per_mille))) in
        attack_lists.into_iter().zip(ATTACK_CHANNELS).enumerate()
    {
        let key = inject_key.derive(kind_word as u64);
        let indices: Vec<u64> = (0..list.len() as u64).collect();
        let prepared = idnre_par::par_map(&indices, threads, |&i| {
            let mut rng = key.record(i).rng();
            let (reg, blacklisted, qihoo_too) =
                prepare_attack_registration(&mut rng, config, &list[i as usize], kind, per_mille);
            (reg.domain, blacklisted, qihoo_too)
        });
        for (i, (domain, blacklisted, qihoo_too)) in prepared.into_iter().enumerate() {
            if !seen.intern_full(&domain).1 {
                continue;
            }
            if blacklisted {
                blacklist.insert(Source::VirusTotal, &domain);
                if qihoo_too {
                    blacklist.insert(Source::Qihoo360, &domain);
                }
            }
            idn_recipes.push(Recipe::Attack {
                kind: kind_word as u8,
                index: i as u32,
            });
        }
    }
    drop(tlds);
    drop(symbols);
    drop(seen);

    // Stage 5: the non-IDN sample needs no planning at all — per-spec
    // counts are a pure function of the config.
    let mut non_idn_spans = Vec::new();
    let mut non_idn_start = 0u64;
    for spec in TABLE_I {
        let count = config.scaled_non_idn_sample(&spec);
        non_idn_spans.push((non_idn_start, count));
        non_idn_start += count;
    }

    let corpus = KeyedCorpus {
        config: config.clone(),
        attacks: [
            homograph_attacks.clone(),
            semantic_attacks.clone(),
            semantic2_attacks.clone(),
        ],
        idn_recipes,
        overrides,
        non_idn_spans,
        gauge: Arc::new(Gauge::new()),
    };
    span.add_records(corpus.idn_len() + corpus.non_idn_len());
    drop(span);

    // --- Artifact phase (stages 6–9): one fused traversal computing
    //     WHOIS, pDNS, certificates and zone records per shard in
    //     parallel, applied sequentially in shard order so every artifact
    //     lands in exactly the batch path's order. ---
    let mut span = recorder.span_at("datagen.stream.artifacts", parent, 1);
    let snapshot_day = config.snapshot.day_number();
    let whois_key = root.stage(StageId::Whois);
    let pdns_key = root.stage(StageId::PdnsTraffic);
    let cert_key = root.stage(StageId::Certificates);
    let origins: Vec<_> = TABLE_I
        .iter()
        .filter_map(|spec| spec.tld.parse::<idnre_idna::DomainName>().ok())
        .collect();
    let origin_tlds: Vec<String> = origins.iter().map(|o| o.to_string()).collect();

    struct ShardArtifacts {
        whois: Vec<WhoisRecord>,
        aggregates: Vec<DomainAggregate>,
        certificates: Vec<(String, Certificate)>,
        zone_records: Vec<Vec<ResourceRecord>>,
        zone_matched: u64,
        zone_parse_skipped: u64,
    }

    let idn_len = corpus.idn_len();
    let shards: Vec<(bool, u64, usize)> = shard_spans(idn_len, shard_size)
        .into_iter()
        .map(|(start, len)| (true, start, len))
        .chain(
            shard_spans(corpus.non_idn_len(), shard_size)
                .into_iter()
                .map(|(start, len)| (false, start, len)),
        )
        .collect();
    let artifact_shards = idnre_par::par_map(&shards, threads, |&(is_idn, start, len)| {
        let mut out = ShardArtifacts {
            whois: Vec::new(),
            aggregates: Vec::new(),
            certificates: Vec::new(),
            zone_records: vec![Vec::new(); origin_tlds.len()],
            zone_matched: 0,
            zone_parse_skipped: 0,
        };
        let mut emit = |records: &[DomainRegistration]| {
            for (offset, reg) in records.iter().enumerate() {
                let index = start + offset as u64;
                // The pDNS/certificate streams are keyed by the chained
                // idn-then-non-idn enumeration, like the batch stages 7–8.
                let chained = if is_idn { index } else { idn_len + index };
                if is_idn {
                    if let Some(record) = whois_record_for(whois_key, index, reg) {
                        out.whois.push(record);
                    }
                }
                let class = if is_idn {
                    match reg.malicious {
                        Some(MaliciousKind::Homograph) => PopulationClass::Homographic,
                        Some(MaliciousKind::SemanticType1 | MaliciousKind::SemanticType2) => {
                            PopulationClass::SemanticType1
                        }
                        Some(_) => PopulationClass::MaliciousIdn,
                        None => PopulationClass::BenignIdn,
                    }
                } else {
                    PopulationClass::NonIdn
                };
                let mut rng = pdns_key.record(chained).rng();
                if let Some(aggregate) = sample_traffic(&mut rng, reg, class, snapshot_day) {
                    out.aggregates.push(aggregate);
                }
                if reg.https {
                    if let Some(hosting) = reg.hosting.as_ref() {
                        let mut rng = cert_key.record(chained).rng();
                        out.certificates.push((
                            reg.domain.clone(),
                            hosting.issue_certificate(&mut rng, &reg.domain, snapshot_day),
                        ));
                    }
                }
                if let Some(origin) = origin_tlds.iter().position(|tld| *tld == reg.tld) {
                    out.zone_matched += 1;
                    match ns_record_for(reg) {
                        Some(record) => out.zone_records[origin].push(record),
                        None => out.zone_parse_skipped += 1,
                    }
                }
            }
        };
        if is_idn {
            corpus.with_idn_shard(start, len, &mut emit);
        } else {
            corpus.with_non_idn_shard(start, len, &mut emit);
        }
        out
    });

    let mut whois = Vec::new();
    let mut pdns = PdnsStore::new();
    let mut certificates = Vec::new();
    let mut zones: Vec<Zone> = origins.into_iter().map(Zone::new).collect();
    let mut zone_matched = 0u64;
    let mut zone_parse_skipped = 0u64;
    for shard in artifact_shards {
        whois.extend(shard.whois);
        for aggregate in shard.aggregates {
            pdns.insert_aggregate(aggregate);
        }
        certificates.extend(shard.certificates);
        for (zone, records) in zones.iter_mut().zip(shard.zone_records) {
            zone.records.extend(records);
        }
        zone_matched += shard.zone_matched;
        zone_parse_skipped += shard.zone_parse_skipped;
    }
    let total = idn_len + corpus.non_idn_len();
    let zones_skipped = zone_parse_skipped + (total - zone_matched);
    span.add_records(
        whois.len() as u64
            + pdns.len() as u64
            + certificates.len() as u64
            + zones.iter().map(|z| z.records.len() as u64).sum::<u64>(),
    );
    drop(span);
    recorder.add("datagen.zones.skipped", zones_skipped);

    let eco = Ecosystem {
        config: config.clone(),
        brands,
        idn_registrations: Vec::new(),
        non_idn_registrations: Vec::new(),
        homograph_attacks,
        semantic_attacks,
        semantic2_attacks,
        whois,
        pdns,
        certificates,
        blacklist,
        zones,
    };
    (eco, corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idnre_telemetry::NoopRecorder;

    fn config() -> EcosystemConfig {
        EcosystemConfig {
            scale: 500,
            attack_scale: 10,
            ..EcosystemConfig::default()
        }
    }

    fn collect_idn(corpus: &KeyedCorpus, shard_size: usize) -> Vec<DomainRegistration> {
        let mut out = Vec::new();
        for (start, len) in shard_spans(corpus.idn_len(), shard_size) {
            corpus.with_idn_shard(start, len, &mut |records| out.extend_from_slice(records));
        }
        out
    }

    fn collect_non_idn(corpus: &KeyedCorpus, shard_size: usize) -> Vec<DomainRegistration> {
        let mut out = Vec::new();
        for (start, len) in shard_spans(corpus.non_idn_len(), shard_size) {
            corpus.with_non_idn_shard(start, len, &mut |records| out.extend_from_slice(records));
        }
        out
    }

    #[test]
    fn streamed_shards_reproduce_batch_records() {
        let config = config();
        let batch = Ecosystem::generate(&config);
        let (_, corpus) = generate_streamed(&config, 64, &NoopRecorder);
        assert_eq!(corpus.idn_len(), batch.idn_registrations.len() as u64);
        assert_eq!(
            corpus.non_idn_len(),
            batch.non_idn_registrations.len() as u64
        );
        assert_eq!(collect_idn(&corpus, 64), batch.idn_registrations);
        assert_eq!(collect_non_idn(&corpus, 64), batch.non_idn_registrations);
        // Shard size must not matter.
        assert_eq!(collect_idn(&corpus, 7), batch.idn_registrations);
    }

    #[test]
    fn streamed_artifacts_match_batch_artifacts() {
        let config = config();
        let batch = Ecosystem::generate(&config);
        let (eco, _) = generate_streamed(&config, 128, &NoopRecorder);
        assert_eq!(eco.whois, batch.whois);
        assert_eq!(eco.blacklist, batch.blacklist);
        assert_eq!(eco.certificates, batch.certificates);
        assert_eq!(eco.zones, batch.zones);
        assert_eq!(eco.pdns.len(), batch.pdns.len());
        for aggregate in eco.pdns.iter() {
            assert_eq!(
                Some(aggregate),
                batch.pdns.lookup(&aggregate.domain),
                "{}",
                aggregate.domain
            );
        }
        assert_eq!(eco.homograph_attacks, batch.homograph_attacks);
        assert_eq!(eco.semantic_attacks, batch.semantic_attacks);
        assert_eq!(eco.semantic2_attacks, batch.semantic2_attacks);
        assert!(eco.idn_registrations.is_empty());
    }

    #[test]
    fn residency_stays_bounded_by_shards_not_corpus() {
        let config = config();
        let (_, corpus) = generate_streamed(&config, 32, &NoopRecorder);
        // The artifact pass already ran with shard size 32.
        let corpus_size = corpus.idn_len() + corpus.non_idn_len();
        let bound = 32 * idnre_par::MAX_THREADS as u64;
        assert!(corpus_size > bound / 4, "corpus too small for the probe");
        assert!(
            corpus.gauge().peak() <= bound,
            "peak {} exceeds shard_size × workers {}",
            corpus.gauge().peak(),
            bound
        );
        assert!(corpus.gauge().peak() > 0);
    }

    #[test]
    fn single_record_shards_work() {
        let config = config();
        let (_, corpus) = generate_streamed(&config, 1024, &NoopRecorder);
        let full = collect_idn(&corpus, 1024);
        corpus.with_idn_shard(3, 1, &mut |records| {
            assert_eq!(records, &full[3..4]);
        });
    }
}
